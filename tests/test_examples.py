"""Smoke tests: every example script runs end to end.

Each example is executed as a subprocess with scaled-down arguments so
the whole module stays in CI territory.  These catch API drift between
the library and its documented entry points.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=420):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "compression" in out
    assert "max faults while still serving writes" in out


def test_compression_explorer():
    out = run_example("compression_explorer.py", "--workloads", "milc",
                      "--writes", "600")
    assert "milc" in out and "BEST" in out


def test_fault_tolerance_study():
    out = run_example("fault_tolerance_study.py", "--sizes", "32",
                      "--trials", "25")
    assert "ecp6" in out and "aegis17x31" in out


def test_wear_map():
    out = run_example("wear_map.py", "--lines", "4", "--writes", "600")
    assert "wear imbalance" in out
    assert "Comp+W" in out


def test_lifetime_study():
    out = run_example("lifetime_study.py", "--workloads", "milc",
                      "--lines", "32", "--endurance", "15")
    assert "milc" in out and "Comp+WF" in out


def test_consolidation_study():
    out = run_example("consolidation_study.py", "--lines", "32",
                      "--endurance", "15")
    assert "mix(milc+lbm)" in out and "Comp+WF" in out


def test_cache_pressure_study():
    out = run_example("cache_pressure_study.py", "--lines", "32",
                      "--endurance", "12", "--caches", "1")
    assert "WPKI" in out


def test_service_demo():
    out = run_example("service_demo.py", "--shards", "2",
                      "--requests", "400")
    assert "recovered exactly" in out
    assert "shard_recovered: shard=1" in out


@pytest.mark.slow
def test_design_space_sweep():
    out = run_example("design_space_sweep.py", "--workload", "milc",
                      "--lines", "24", "--endurance", "15")
    assert "correction scheme" in out
