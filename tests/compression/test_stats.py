"""Unit tests for compression statistics helpers."""

import struct

import numpy as np
import pytest

from repro.compression import (
    BestOfCompressor,
    compressed_sizes,
    size_cdf,
    size_change_probability,
    summarize,
    summarize_members,
)


@pytest.fixture(scope="module")
def best():
    return BestOfCompressor()


@pytest.fixture(scope="module")
def lines():
    return [
        bytes(64),
        struct.pack("<8q", *[(1 << 40) + i for i in range(8)]),
        bytes(range(64)),
    ]


def test_compressed_sizes_per_line(best, lines):
    sizes = compressed_sizes(best, lines)
    assert len(sizes) == 3
    assert sizes[0] == 1  # all-zero line
    assert all(1 <= size <= 64 for size in sizes)


def test_summarize_matches_mean(best, lines):
    summary = summarize(best, lines)
    sizes = compressed_sizes(best, lines)
    assert summary.line_count == 3
    assert summary.mean_size_bytes == pytest.approx(np.mean(sizes))
    assert summary.compression_ratio == pytest.approx(np.mean(sizes) / 64)


def test_summarize_members_includes_best(best, lines):
    summaries = summarize_members(best, lines)
    assert set(summaries) == {"bdi", "fpc", "best"}
    assert summaries["best"].mean_size_bytes <= summaries["bdi"].mean_size_bytes
    assert summaries["best"].mean_size_bytes <= summaries["fpc"].mean_size_bytes


def test_summarize_empty_raises(best):
    with pytest.raises(ValueError):
        summarize(best, [])


def test_size_change_probability_basic():
    assert size_change_probability([10, 10, 10]) == 0.0
    assert size_change_probability([10, 20, 20]) == pytest.approx(0.5)
    assert size_change_probability([10, 20, 30]) == 1.0
    assert size_change_probability([10]) == 0.0


def test_size_change_probability_tolerance():
    sizes = [10, 12, 10, 30]
    assert size_change_probability(sizes, tolerance=4) == pytest.approx(1 / 3)


def test_size_cdf_monotone():
    sizes = [4, 4, 8, 16, 16, 16, 64]
    values, cumulative = size_cdf(sizes)
    assert list(values) == [4, 8, 16, 64]
    assert cumulative[-1] == pytest.approx(1.0)
    assert np.all(np.diff(cumulative) > 0)
    assert cumulative[0] == pytest.approx(2 / 7)


def test_size_cdf_empty_raises():
    with pytest.raises(ValueError):
        size_cdf([])
