"""Unit tests for the FVC compressor."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    DEFAULT_DICTIONARY,
    BestOfCompressor,
    CompressionError,
    FVCCompressor,
    LINE_SIZE_BYTES,
)


@pytest.fixture(scope="module")
def fvc():
    return FVCCompressor()


def pack_words(words):
    return struct.pack("<16I", *[w & 0xFFFFFFFF for w in words])


def test_all_frequent_line_is_8_bytes(fvc):
    line = pack_words([0, 1, 2, 4, 8, 0xFFFFFFFF, 0xFFFF, 0x80000000] * 2)
    result = fvc.compress(line)
    assert result.size_bits == 16 * 4  # 1 flag + 3 index bits per word
    assert result.size_bytes == 8
    assert fvc.decompress(result) == line


def test_all_zero_line(fvc):
    result = fvc.compress(bytes(64))
    assert result.size_bytes == 8
    assert fvc.decompress(result) == bytes(64)


def test_infrequent_words_cost_33_bits(fvc):
    line = pack_words([0xDEAD0000 + i * 7 + 5 for i in range(16)])
    result = fvc.compress(line)
    assert result.size_bits == 16 * 33
    assert fvc.decompress(result) == line


def test_mixed_line(fvc):
    line = pack_words([0] * 8 + [0x12345678] * 8)
    result = fvc.compress(line)
    assert result.size_bits == 8 * 4 + 8 * 33
    assert fvc.decompress(result) == line


def test_hit_rate(fvc):
    line = pack_words([0] * 12 + [0xDEADBEEF] * 4)
    assert fvc.hit_rate(line) == pytest.approx(0.75)


def test_custom_dictionary():
    magic = 0xCAFEBABE
    fvc = FVCCompressor(dictionary=(0, magic))
    line = pack_words([magic] * 16)
    result = fvc.compress(line)
    assert result.size_bits == 16 * 2  # 1 flag + 1 index bit
    assert fvc.decompress(result) == line


def test_dictionary_validation():
    with pytest.raises(ValueError):
        FVCCompressor(dictionary=())
    with pytest.raises(ValueError):
        FVCCompressor(dictionary=(0, 1, 2))  # not a power of two
    with pytest.raises(ValueError):
        FVCCompressor(dictionary=(0, 0))  # duplicates
    with pytest.raises(ValueError):
        FVCCompressor(dictionary=(0, 1 << 32))  # not 32-bit


def test_truncated_payload(fvc):
    result = fvc.compress(bytes(64))
    bad = type(result)(result.algorithm, result.encoding, result.size_bits, b"\x00")
    with pytest.raises(CompressionError):
        fvc.decompress(bad)


def test_wrong_input_length(fvc):
    with pytest.raises(CompressionError):
        fvc.compress(bytes(32))


def test_works_as_best_of_member():
    best = BestOfCompressor(
        (FVCCompressor(),)
    )
    line = bytes(64)
    assert best.decompress(best.compress(line)) == line

    three_way = BestOfCompressor()
    from repro.compression import BDICompressor, FPCCompressor

    three_way = BestOfCompressor((BDICompressor(), FPCCompressor(), FVCCompressor()))
    for line in (bytes(64), pack_words([1] * 16), pack_words(range(16))):
        chosen = three_way.compress(line)
        assert three_way.decompress(chosen) == line


def test_default_dictionary_has_zero_first():
    assert DEFAULT_DICTIONARY[0] == 0
    assert len(DEFAULT_DICTIONARY) == 8


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=LINE_SIZE_BYTES, max_size=LINE_SIZE_BYTES))
def test_roundtrip_random(data):
    fvc = FVCCompressor()
    result = fvc.compress(data)
    assert fvc.decompress(result) == data
    assert result.size_bits <= 16 * 33
