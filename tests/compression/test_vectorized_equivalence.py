"""Vectorized kernels vs the frozen pre-rewrite references.

The FPC and BDI ``compress`` paths were rewritten with numpy array
predicates for the hot-path overhaul.  These tests pin the rewrite to
the original word-at-a-time encoders (``reference_impls.py``, frozen
copies): for adversarial boundary lines and a broad randomized corpus,
the production kernels must produce *byte-identical*
``CompressionResult``s, and every result must still round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import BDICompressor, FPCCompressor
from repro.compression.base import LINE_SIZE_BYTES

from .reference_impls import reference_bdi_compress, reference_fpc_compress

FPC = FPCCompressor()
BDI = BDICompressor()


def _words(*values) -> bytes:
    padded = list(values) + [0] * (16 - len(values))
    return b"".join((v & 0xFFFFFFFF).to_bytes(4, "little") for v in padded)


# Every FPC pattern-class boundary, both sides: SE4/SE8/SE16 edges,
# half-zero words, byte-extending halfword pairs, repeated bytes, and
# values one off each class.
FPC_ADVERSARIAL = [
    bytes(LINE_SIZE_BYTES),
    bytes([0xFF]) * LINE_SIZE_BYTES,
    _words(7, 8, -8 & 0xFFFFFFFF, -9 & 0xFFFFFFFF),
    _words(127, 128, -128 & 0xFFFFFFFF, -129 & 0xFFFFFFFF),
    _words(32767, 32768, -32768 & 0xFFFFFFFF, -32769 & 0xFFFFFFFF),
    _words(0x12340000, 0x00015678, 0xFFFF0000, 0x0000FFFF),
    _words(0x007F007F, 0x0080FF80, 0xFF80007F, 0x00800080),
    _words(0xABABABAB, 0xAB00ABAB, 0x01010101, 0x80808080),
    # Zero runs: max-length (8), split runs, run at line end.
    _words(*([0] * 9 + [1] + [0] * 6)),
    _words(*([1] + [0] * 15)),
    _words(*([0] * 15 + [1])),
    _words(*(0xDEADBEEF if i % 2 else 0 for i in range(16))),
]

# BDI boundaries: zeros, repeated 8-byte pattern (and a near-miss),
# exact delta-limit fits/misses for each (base, delta) variant.
BDI_ADVERSARIAL = [
    bytes(LINE_SIZE_BYTES),
    bytes(range(8)) * 8,
    bytes(range(8)) * 7 + bytes(range(1, 9)),
    # base8-delta1: deltas exactly at +127 / -128, and one past.
    b"".join((1000 + d).to_bytes(8, "little") for d in [0, 127, -128 + 256, 0, 0, 0, 0, 0]),
    b"".join(((1 << 40) + d).to_bytes(8, "little", signed=False) for d in [0, 127, 128, 1, 2, 3, 4, 5]),
    # base4-delta1 / base4-delta2 / base2-delta1 shapes.
    b"".join((0x10000 + d).to_bytes(4, "little") for d in range(16)),
    b"".join((0x70000000 + d * 300).to_bytes(4, "little") for d in range(16)),
    b"".join((0x4000 + (d % 100)).to_bytes(2, "little") for d in range(32)),
    np.arange(16, dtype="<u4").tobytes(),
    bytes([0x80]) * LINE_SIZE_BYTES,
]


def _random_corpus() -> list[bytes]:
    rng = np.random.default_rng(2024)
    corpus: list[bytes] = []
    for _ in range(150):
        corpus.append(rng.bytes(LINE_SIZE_BYTES))
    for _ in range(150):
        # Low-entropy words drawn from a tiny pool: exercises zero runs,
        # repeats, and small sign-extended values.
        pool = np.array([0, 1, 0xFF, 0xFFFFFFFF, 0x01010101, 0x00010000,
                         0x7FFF, 0x8000, 0xDEADBEEF], dtype="<u4")
        corpus.append(rng.choice(pool, 16).astype("<u4").tobytes())
    for width in (2, 4, 8):
        for _ in range(100):
            # Clustered values around a random base: BDI's home turf,
            # with delta magnitudes straddling every variant's limit.
            base = int(rng.integers(0, min(1 << (8 * width - 1), 1 << 62)))
            spread = int(rng.choice([4, 100, 40_000, 1 << 20]))
            values = base + rng.integers(
                -spread, spread, LINE_SIZE_BYTES // width
            )
            # Unsafe downcast wraps modulo 2**(8*width), the wire format.
            corpus.append(values.astype(f"<i{width}", casting="unsafe").tobytes())
    return corpus


CORPUS = _random_corpus()


@pytest.mark.parametrize("line", FPC_ADVERSARIAL, ids=range(len(FPC_ADVERSARIAL)))
def test_fpc_matches_reference_adversarial(line):
    assert FPC.compress(line) == reference_fpc_compress(line)


@pytest.mark.parametrize("line", BDI_ADVERSARIAL, ids=range(len(BDI_ADVERSARIAL)))
def test_bdi_matches_reference_adversarial(line):
    assert BDI.compress(line) == reference_bdi_compress(line)


def test_fpc_matches_reference_randomized():
    for line in CORPUS:
        result = FPC.compress(line)
        assert result == reference_fpc_compress(line)
        assert FPC.decompress(result) == line


def test_bdi_matches_reference_randomized():
    for line in CORPUS:
        result = BDI.compress(line)
        assert result == reference_bdi_compress(line)
        assert BDI.decompress(result) == line
