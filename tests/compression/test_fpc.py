"""Unit tests for the FPC compressor."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import LINE_SIZE_BYTES, CompressionError, FPCCompressor


@pytest.fixture(scope="module")
def fpc():
    return FPCCompressor()


def pack_words(words):
    return struct.pack("<16I", *[w & 0xFFFFFFFF for w in words])


def test_zero_line_uses_runs(fpc):
    result = fpc.compress(bytes(64))
    # 16 zero words = two maximal runs of 8, each 3+3 bits.
    assert result.size_bits == 12
    assert fpc.decompress(result) == bytes(64)


def test_single_zero_word_costs_six_bits(fpc):
    line = pack_words([5] * 15 + [0])
    zero_free = pack_words([5] * 16)
    cost_with_zero = fpc.compress(line).size_bits
    cost_without = fpc.compress(zero_free).size_bits
    assert cost_with_zero - cost_without == 6 - 7  # zero run replaces a 4-bit SE word


def test_four_bit_sign_extended(fpc):
    line = pack_words([7, -8, 1, 2] * 4)
    result = fpc.compress(line)
    assert result.size_bits == 16 * 7
    assert fpc.decompress(result) == line


def test_one_byte_sign_extended(fpc):
    line = pack_words([100, -100, 127, -128] * 4)
    result = fpc.compress(line)
    assert result.size_bits == 16 * 11
    assert fpc.decompress(result) == line


def test_halfword_sign_extended(fpc):
    line = pack_words([30000, -30000, 128, -129] * 4)
    result = fpc.compress(line)
    assert fpc.decompress(result) == line


def test_halfword_padded_with_zero_halfword(fpc):
    line = pack_words([0x1234_0000] * 16)
    result = fpc.compress(line)
    assert result.size_bits == 16 * 19
    assert fpc.decompress(result) == line


def test_two_sign_extended_halfwords(fpc):
    # Each halfword is a sign-extended byte: 0x00XX or 0xFFXX patterns.
    word = (0x0042 << 16) | 0xFFC0  # high half = 0x42, low half = -64
    line = pack_words([word] * 16)
    result = fpc.compress(line)
    assert result.size_bits == 16 * 19
    assert fpc.decompress(result) == line


def test_repeated_bytes_word(fpc):
    line = pack_words([0xABABABAB] * 16)
    result = fpc.compress(line)
    assert result.size_bits == 16 * 11
    assert fpc.decompress(result) == line


def test_incompressible_words_cost_35_bits(fpc):
    line = pack_words([0x12345678 + 0x9E3779B9 * i for i in range(16)])
    result = fpc.compress(line)
    assert result.size_bits <= 16 * 35
    assert fpc.decompress(result) == line


def test_wrong_input_length_raises(fpc):
    with pytest.raises(CompressionError):
        fpc.compress(b"\x00" * 65)


def test_truncated_payload_raises(fpc):
    result = fpc.compress(bytes(64))
    truncated = type(result)(result.algorithm, result.encoding, result.size_bits, b"")
    with pytest.raises(CompressionError):
        fpc.decompress(truncated)


def test_minimum_chunk_cost_matches_table1(fpc):
    # Table I: FPC encodes a 4-byte chunk in as few as 3 bits (a zero
    # word inside a run) and at most 3+32 bits standalone.
    eight_zeros = pack_words([0] * 8 + [0x7FFFFFFF] * 8)
    result = fpc.compress(eight_zeros)
    # 8 zero words in one 6-bit run: amortized 0.75 bits per word.
    assert result.size_bits == 6 + 8 * 35


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=LINE_SIZE_BYTES, max_size=LINE_SIZE_BYTES))
def test_roundtrip_random_lines(data):
    fpc = FPCCompressor()
    result = fpc.compress(data)
    assert fpc.decompress(result) == data


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.just(0),
            st.integers(min_value=-8, max_value=7),
            st.integers(min_value=-128, max_value=127),
            st.integers(min_value=-(2**15), max_value=2**15 - 1),
            st.integers(min_value=-(2**31), max_value=2**31 - 1),
        ),
        min_size=16,
        max_size=16,
    )
)
def test_roundtrip_patterned_lines(words):
    fpc = FPCCompressor()
    line = pack_words(words)
    result = fpc.compress(line)
    assert fpc.decompress(result) == line
    assert result.size_bits <= 16 * 35
