"""Batched compression must be value-identical to the per-line loop.

``compress_batch`` on FPC/BDI/Best is a 2-D rewrite of the serial
kernels; the batched write engine (``pipeline.step_batch``) relies on
exact equality of every field -- encoding, bit-exact payload, size --
for its batched/serial bit-identity guarantee.  ``CachingCompressor``
additionally must leave the *cache* (hit/miss counters, LRU key order,
stored values) in exactly the state the serial loop would.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    BDICompressor,
    BestOfCompressor,
    CachingCompressor,
    FPCCompressor,
)
from repro.compression.base import CompressionError

LINE = 64


def _crafted_lines() -> list[bytes]:
    """Lines hitting every FPC prefix class and BDI variant."""
    lines = [
        bytes(LINE),                                   # zeros
        bytes.fromhex("deadbeef" * 2) * (LINE // 8),   # rep8
        b"\x01" + bytes(LINE - 1),                     # near-zero / SE4
        (7).to_bytes(4, "little") * (LINE // 4),       # small words
        (0x1234).to_bytes(4, "little") * (LINE // 4),  # halfword
        (0xABCD0000).to_bytes(4, "little") * (LINE // 4),  # hi-half
        (0x00FF00FE).to_bytes(4, "little") * (LINE // 4),  # two bytes
        (0x42424242).to_bytes(4, "little") * (LINE // 4),  # repeated byte
        bytes(range(LINE)),                            # b8d1-ish ramp
        bytes.fromhex("ff" * LINE),                    # all ones
    ]
    # Base + narrow deltas for each BDI width.
    base = int.from_bytes(b"\x11" * 8, "little")
    lines.append(
        b"".join(((base + d) % (1 << 64)).to_bytes(8, "little") for d in range(8))
    )
    lines.append(
        b"".join(
            ((base + d * 300) % (1 << 64)).to_bytes(8, "little") for d in range(8)
        )
    )
    return lines


def _random_lines(count: int, seed: int) -> list[bytes]:
    rng = np.random.default_rng(seed)
    lines = []
    for index in range(count):
        if index % 3 == 0:
            # Low-entropy: narrow deltas, long zero runs.
            row = rng.integers(0, 4, size=LINE, dtype=np.uint8)
        elif index % 3 == 1:
            row = rng.integers(0, 256, size=LINE, dtype=np.uint8)
        else:
            word = rng.integers(0, 2**16, dtype=np.uint64)
            row = np.frombuffer(
                int(word).to_bytes(8, "little") * (LINE // 8), dtype=np.uint8
            ).copy()
            row[rng.integers(0, LINE)] ^= 1
        lines.append(row.tobytes())
    return lines


def _assert_equal_results(batched, serial) -> None:
    assert len(batched) == len(serial)
    for got, want in zip(batched, serial):
        assert got.algorithm == want.algorithm
        assert got.encoding == want.encoding
        assert got.size_bits == want.size_bits
        assert got.payload == want.payload


@pytest.mark.parametrize(
    "compressor", [FPCCompressor(), BDICompressor(), BestOfCompressor()],
    ids=["fpc", "bdi", "best"],
)
def test_batch_matches_serial_on_crafted_lines(compressor):
    lines = _crafted_lines()
    _assert_equal_results(
        compressor.compress_batch(lines), [compressor.compress(d) for d in lines]
    )


@pytest.mark.parametrize(
    "compressor", [FPCCompressor(), BDICompressor(), BestOfCompressor()],
    ids=["fpc", "bdi", "best"],
)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_matches_serial_on_random_lines(compressor, seed):
    lines = _random_lines(200, seed)
    _assert_equal_results(
        compressor.compress_batch(lines), [compressor.compress(d) for d in lines]
    )


def test_batch_empty_and_single():
    compressor = BestOfCompressor()
    assert compressor.compress_batch([]) == []
    line = bytes(range(LINE))
    _assert_equal_results(
        compressor.compress_batch([line]), [compressor.compress(line)]
    )


def test_batch_rejects_misshaped_lines():
    with pytest.raises(CompressionError):
        BDICompressor().compress_batch([bytes(LINE), bytes(3)])
    with pytest.raises(CompressionError):
        FPCCompressor().compress_batch([bytes(63)])


class _CountingInner(BestOfCompressor):
    """Counts how many lines reach the inner compressor."""

    def __init__(self):
        super().__init__()
        self.lines_compressed = 0

    def compress(self, data):
        self.lines_compressed += 1
        return super().compress(data)

    def compress_batch(self, lines):
        self.lines_compressed += len(lines)
        return super().compress_batch(lines)


def _cache_state(cache: CachingCompressor):
    return (
        cache.hits,
        cache.misses,
        [
            (key, value.payload, value.size_bits)
            for key, value in cache._entries.items()
        ],
    )


@pytest.mark.parametrize("capacity", [1, 2, 3, 8, 64])
@pytest.mark.parametrize("seed", [0, 7])
def test_caching_batch_matches_serial_cache_semantics(capacity, seed):
    """Counters, LRU order, and stored values match the serial loop.

    The sequence deliberately repeats a tiny content pool so batches
    contain duplicate keys, mid-batch evictions, and re-misses of keys
    evicted earlier in the same batch -- every corner of the
    placeholder protocol.
    """
    rng = np.random.default_rng(seed)
    pool = _crafted_lines()[: max(3, capacity + 2)]
    sequence = [pool[int(i)] for i in rng.integers(0, len(pool), size=120)]

    serial = CachingCompressor(_CountingInner(), capacity=capacity)
    batched = CachingCompressor(_CountingInner(), capacity=capacity)

    cursor = 0
    serial_results = []
    batched_results = []
    while cursor < len(sequence):
        size = int(rng.integers(1, 9))
        chunk = sequence[cursor : cursor + size]
        cursor += size
        serial_results.extend(serial.compress(data) for data in chunk)
        batched_results.extend(batched.compress_batch(chunk))
        assert _cache_state(batched) == _cache_state(serial)

    _assert_equal_results(batched_results, serial_results)
    # Batched compute of duplicate misses collapses to one inner call
    # per distinct content; it must never exceed the serial count.
    assert batched.inner.lines_compressed <= serial.inner.lines_compressed


def test_caching_batch_then_scalar_interop():
    """A compress() after a batch sees real results, never placeholders."""
    cache = CachingCompressor(BestOfCompressor(), capacity=4)
    lines = _crafted_lines()[:6]
    cache.compress_batch(lines)
    for data in lines:
        result = cache.compress(data)
        assert result.payload == BestOfCompressor().compress(data).payload


def test_caching_batch_error_leaves_no_placeholders():
    cache = CachingCompressor(BestOfCompressor(), capacity=4)
    with pytest.raises(CompressionError):
        cache.compress_batch([bytes(LINE), bytes(5)])
    for value in cache._entries.values():
        assert hasattr(value, "payload"), "placeholder leaked into the cache"
    # And a scalar probe of the rolled-back key recomputes cleanly.
    assert cache.compress(bytes(LINE)).payload == (
        BestOfCompressor().compress(bytes(LINE)).payload
    )
