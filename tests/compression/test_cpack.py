"""Unit tests for the C-Pack compressor."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import CompressionError, LINE_SIZE_BYTES
from repro.compression.cpack import CPackCompressor


@pytest.fixture(scope="module")
def cpack():
    return CPackCompressor()


def pack_words(words):
    return struct.pack("<16I", *[w & 0xFFFFFFFF for w in words])


def test_zero_line_is_two_bits_per_word(cpack):
    result = cpack.compress(bytes(64))
    assert result.size_bits == 16 * 2
    assert cpack.decompress(result) == bytes(64)


def test_repeated_word_hits_dictionary(cpack):
    line = pack_words([0xDEADBEEF] * 16)
    result = cpack.compress(line)
    # First word verbatim (34 bits), the other 15 full matches (6 bits).
    assert result.size_bits == 34 + 15 * 6
    assert cpack.decompress(result) == line


def test_low_byte_words_use_zzzx(cpack):
    line = pack_words([0x7F] * 16)
    result = cpack.compress(line)
    assert result.size_bits == 16 * 12
    assert cpack.decompress(result) == line


def test_prefix_matches(cpack):
    # Same upper 3 bytes, differing low byte: first verbatim, rest mmmx.
    line = pack_words([0x12345600 | i for i in range(16)])
    result = cpack.compress(line)
    assert result.size_bits == 34 + 15 * 16
    assert cpack.decompress(result) == line


def test_upper_half_matches(cpack):
    # Same upper 2 bytes, random lower halves (no 3-byte prefix match).
    line = pack_words([0x43210000 | (0x1111 * (i + 1)) for i in range(15)] + [0])
    result = cpack.compress(line)
    assert cpack.decompress(result) == line
    assert result.size_bits < 16 * 34  # beats all-verbatim


def test_incompressible_words(cpack):
    line = pack_words([0x9E3779B9 * (i + 1) & 0xFFFFFFFF for i in range(16)])
    result = cpack.compress(line)
    assert cpack.decompress(result) == line


def test_dictionary_fifo_eviction_roundtrip(cpack):
    # More than 16 distinct words forces FIFO evictions; decompression
    # must replay them identically.
    words = [0x01010000 + 0x10101 * i for i in range(16)]
    line = pack_words(words[:8] + words[:8])
    assert cpack.decompress(cpack.compress(line)) == line


def test_truncated_payload(cpack):
    result = cpack.compress(pack_words(range(16)))
    bad = type(result)(result.algorithm, result.encoding, result.size_bits, b"\x01")
    with pytest.raises(CompressionError):
        cpack.decompress(bad)


def test_wrong_length(cpack):
    with pytest.raises(CompressionError):
        cpack.compress(bytes(60))


def test_works_in_best_of():
    from repro.compression import BDICompressor, BestOfCompressor, FPCCompressor

    best = BestOfCompressor((BDICompressor(), FPCCompressor(), CPackCompressor()))
    for line in (bytes(64), pack_words([0xAA] * 16), pack_words(range(16))):
        result = best.compress(line)
        assert best.decompress(result) == line
        metadata = best.encode_metadata(result)
        member, encoding = best.decode_metadata(metadata)
        assert member.name == result.algorithm


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=LINE_SIZE_BYTES, max_size=LINE_SIZE_BYTES))
def test_roundtrip_random(data):
    cpack = CPackCompressor()
    result = cpack.compress(data)
    assert cpack.decompress(result) == data
    assert result.size_bits <= 16 * 34


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.just(0),
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=2**32 - 1),
            st.just(0x12345678),
        ),
        min_size=16,
        max_size=16,
    )
)
def test_roundtrip_patterned(words):
    cpack = CPackCompressor()
    line = pack_words(words)
    assert cpack.decompress(cpack.compress(line)) == line
