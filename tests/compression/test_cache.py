"""CachingCompressor: LRU behaviour, counters, and transparency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import BestOfCompressor, CachingCompressor


def _line(fill: int) -> bytes:
    return bytes([fill]) * 64


@pytest.fixture()
def cache():
    return CachingCompressor(BestOfCompressor(), capacity=3)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError, match="capacity"):
        CachingCompressor(BestOfCompressor(), capacity=0)
    with pytest.raises(ValueError, match="capacity"):
        CachingCompressor(BestOfCompressor(), capacity=-1)


def test_hit_and_miss_counters(cache):
    cache.compress(_line(1))
    cache.compress(_line(2))
    cache.compress(_line(1))
    cache.compress(_line(1))
    assert (cache.misses, cache.hits) == (2, 2)
    assert len(cache) == 2


def test_hits_return_the_memoized_result_object(cache):
    first = cache.compress(_line(7))
    assert cache.compress(_line(7)) is first


def test_lru_evicts_least_recently_used(cache):
    for fill in (1, 2, 3):
        cache.compress(_line(fill))
    cache.compress(_line(1))  # touch 1: now 2 is the LRU entry
    cache.compress(_line(4))  # evicts 2
    assert len(cache) == 3
    hits, misses = cache.hits, cache.misses
    cache.compress(_line(2))  # miss: 2 was evicted (and 3 goes next)
    assert cache.misses == misses + 1
    cache.compress(_line(1))
    cache.compress(_line(4))
    assert cache.hits == hits + 2


def test_results_match_the_inner_compressor(cache):
    rng = np.random.default_rng(5)
    inner = BestOfCompressor()
    for _ in range(20):
        line = rng.bytes(64)
        assert cache.compress(line) == inner.compress(line)
        assert cache.compress(line) == inner.compress(line)  # hit path too


def test_buffer_inputs_are_snapshotted(cache):
    payload = bytearray(_line(9))
    result = cache.compress(payload)
    payload[0] ^= 0xFF  # mutating the caller's buffer must not corrupt
    assert cache.compress(_line(9)) is result


def test_clear_drops_entries_but_keeps_counters(cache):
    cache.compress(_line(1))
    cache.compress(_line(1))
    cache.clear()
    assert len(cache) == 0
    assert (cache.hits, cache.misses) == (1, 1)
    cache.compress(_line(1))
    assert cache.misses == 2


def test_pickle_round_trip(cache):
    """Pickle/copy probe dunders via __getattr__ before __dict__ exists.

    The delegating __getattr__ must raise AttributeError for ``inner``
    and dunder lookups instead of recursing (regression: unpickling an
    empty instance looked up ``__setstate__`` -> ``self.inner`` ->
    ``__getattr__`` forever).
    """
    import copy
    import pickle

    cache.compress(_line(1))
    cache.compress(_line(1))
    restored = pickle.loads(pickle.dumps(cache))
    assert (restored.hits, restored.misses) == (cache.hits, cache.misses)
    assert restored.capacity == cache.capacity
    assert len(restored) == len(cache)
    # The restored wrapper still works end-to-end: hit on the restored
    # entry, delegation to the restored inner compressor intact.
    result = restored.compress(_line(1))
    assert restored.hits == cache.hits + 1
    assert restored.decompress(result) == _line(1)
    assert restored.encode_metadata(result) == cache.encode_metadata(result)
    # deepcopy exercises the same protocol probes.
    duplicate = copy.deepcopy(cache)
    assert duplicate.compress(_line(1)) == cache.compress(_line(1))


def test_getattr_raises_for_inner_and_dunders(cache):
    """Protocol probes must fail cleanly, never delegate or recurse."""
    empty = CachingCompressor.__new__(CachingCompressor)  # no __dict__ state
    with pytest.raises(AttributeError):
        _ = empty.inner
    with pytest.raises(AttributeError):
        _ = empty.__deepcopy__
    # Non-dunder misses on a fully built wrapper still report the
    # missing attribute instead of recursing.
    with pytest.raises(AttributeError):
        _ = cache.does_not_exist


def test_wrapper_is_transparent(cache):
    inner = cache.inner
    assert cache.name == inner.name
    assert cache.decompression_latency_cycles == inner.decompression_latency_cycles
    assert cache.encoding_space == inner.encoding_space
    assert cache.members is inner.members  # __getattr__ delegation
    result = cache.compress(_line(3))
    assert cache.decompress(result) == _line(3)
    # The bound metadata codecs round-trip like the inner ones.
    encoded = cache.encode_metadata(result)
    assert encoded == inner.encode_metadata(result)
    assert cache.decode_metadata(encoded) == inner.decode_metadata(encoded)
