"""Unit tests for the best-of-N compression policy."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    LINE_SIZE_BYTES,
    BDICompressor,
    BestOfCompressor,
    CompressionError,
    FPCCompressor,
)


@pytest.fixture(scope="module")
def best():
    return BestOfCompressor()


def test_default_members_are_bdi_then_fpc(best):
    assert [member.name for member in best.members] == ["bdi", "fpc"]


def test_picks_smaller_of_the_two(best):
    # A line of tiny 4-byte words: FPC gets ~7 bits/word (14 B), while
    # BDI's best fit is b4d1 (20 B).
    line = struct.pack("<16i", *[(i % 8) for i in range(16)])
    result = best.compress(line)
    per_member = best.compress_all(line)
    assert result.size_bits == min(r.size_bits for r in per_member.values())
    assert result.algorithm == "fpc"


def test_bdi_wins_on_wide_base_narrow_delta(best):
    base = 1 << 40
    line = struct.pack("<8q", *[base + i for i in range(8)])
    result = best.compress(line)
    assert result.algorithm == "bdi"
    assert result.size_bytes == 16


def test_decompress_dispatches_to_winner(best):
    for line in (
        bytes(64),
        struct.pack("<8q", *[(1 << 40) + i for i in range(8)]),
        struct.pack("<16i", *range(16)),
        bytes(range(64)),
    ):
        assert best.decompress(best.compress(line)) == line


def test_decompression_latency_tracks_member(best):
    bdi_line = struct.pack("<8q", *[(1 << 40) + i for i in range(8)])
    fpc_line = struct.pack("<16i", *[(i % 8) for i in range(16)])
    assert best.decompression_latency(best.compress(bdi_line)) == 1
    assert best.decompression_latency(best.compress(fpc_line)) == 5


def test_metadata_roundtrip(best):
    for line in (bytes(64), bytes(range(64)), struct.pack("<16i", *range(16))):
        result = best.compress(line)
        metadata = best.encode_metadata(result)
        assert 0 <= metadata < 32
        member, encoding = best.decode_metadata(metadata)
        assert member.name == result.algorithm
        assert encoding == result.encoding


def test_metadata_out_of_range_rejected(best):
    with pytest.raises(CompressionError):
        best.decode_metadata(32)
    with pytest.raises(CompressionError):
        best.decode_metadata(-1)


def test_foreign_result_rejected(best):
    result = BDICompressor().compress(bytes(64))
    renamed = type(result)("zstd", result.encoding, result.size_bits, result.payload)
    with pytest.raises(CompressionError):
        best.decompress(renamed)


def test_requires_members():
    with pytest.raises(ValueError):
        BestOfCompressor(())


def test_duplicate_member_names_rejected():
    with pytest.raises(ValueError):
        BestOfCompressor((BDICompressor(), BDICompressor()))


def test_single_member_still_works():
    solo = BestOfCompressor((FPCCompressor(),))
    line = bytes(range(64))
    assert solo.decompress(solo.compress(line)) == line


@settings(max_examples=150, deadline=None)
@given(st.binary(min_size=LINE_SIZE_BYTES, max_size=LINE_SIZE_BYTES))
def test_best_never_worse_than_members(data):
    best = BestOfCompressor()
    chosen = best.compress(data)
    for result in best.compress_all(data).values():
        assert chosen.size_bits <= result.size_bits
    assert best.decompress(chosen) == data
