"""Pre-vectorization reference compressors (re-export shim).

The frozen loop-based FPC and BDI encoders now live in
:mod:`repro.validate.refcompress`, where the differential-validation
oracle stores lines with them.  This module keeps the historical import
path for ``test_vectorized_equivalence.py``; the implementations are
unchanged in behaviour (the BDI delta loop was rewritten numpy-free,
pinned byte-identical by ``tests/validate/test_refcompress.py``).
"""

from repro.validate.refcompress import (  # noqa: F401
    reference_bdi_compress,
    reference_fpc_compress,
)
