"""Pre-vectorization reference compressors (frozen copies).

These are the pure-Python FPC and BDI ``compress`` paths exactly as
they existed before the numpy hot-path rewrite (PR 2).  They are kept
only as test oracles: ``test_vectorized_equivalence.py`` asserts the
production kernels produce byte-identical :class:`CompressionResult`s
for random and adversarial inputs.  Do not optimize this file -- its
entire value is that it stays slow and obviously correct.
"""

from __future__ import annotations

import numpy as np

from repro.compression.base import LINE_SIZE_BYTES, CompressionResult
from repro.compression.bdi import (
    ENC_REP8,
    ENC_UNCOMPRESSED,
    ENC_ZEROS,
    _SIGNED_DTYPE,
    _UNSIGNED_DTYPE,
    _VARIANTS_BY_SIZE,
)
from repro.compression.fpc import ENC_FPC

_WORD_BYTES = 4
_WORDS_PER_LINE = LINE_SIZE_BYTES // _WORD_BYTES
_BYTE_ORDER = "little"

_PREFIX_BITS = 3
_PREFIX_ZERO_RUN = 0b000
_PREFIX_SE4 = 0b001
_PREFIX_SE8 = 0b010
_PREFIX_SE16 = 0b011
_PREFIX_HI_HALF = 0b100
_PREFIX_TWO_BYTES = 0b101
_PREFIX_REPEATED = 0b110
_PREFIX_UNCOMPRESSED = 0b111
_MAX_ZERO_RUN = 8


class _BitWriter:
    """Append-only MSB-first bit buffer (pre-rewrite original)."""

    def __init__(self) -> None:
        self._value = 0
        self.bit_count = 0

    def write(self, value: int, width: int) -> None:
        self._value = (self._value << width) | (value & ((1 << width) - 1))
        self.bit_count += width

    def to_bytes(self) -> bytes:
        pad = (-self.bit_count) % 8
        return ((self._value << pad)).to_bytes((self.bit_count + pad) // 8, "big")


def _sign_extends(value: int, bits: int) -> bool:
    limit = 1 << (bits - 1)
    return -limit <= value < limit


def _to_signed32(word: int) -> int:
    return word - (1 << 32) if word >= (1 << 31) else word


def _both_halves_byte_extend(word: int) -> bool:
    for half in ((word >> 16) & 0xFFFF, word & 0xFFFF):
        signed = half - (1 << 16) if half >= (1 << 15) else half
        if not _sign_extends(signed, 8):
            return False
    return True


def _repeated_bytes(word: int) -> bool:
    byte = word & 0xFF
    return word == byte * 0x01010101


def _encode_word(writer: _BitWriter, word: int) -> None:
    signed = _to_signed32(word)
    if _sign_extends(signed, 4):
        writer.write(_PREFIX_SE4, _PREFIX_BITS)
        writer.write(signed, 4)
    elif _sign_extends(signed, 8):
        writer.write(_PREFIX_SE8, _PREFIX_BITS)
        writer.write(signed, 8)
    elif _sign_extends(signed, 16):
        writer.write(_PREFIX_SE16, _PREFIX_BITS)
        writer.write(signed, 16)
    elif word & 0xFFFF == 0:
        writer.write(_PREFIX_HI_HALF, _PREFIX_BITS)
        writer.write(word >> 16, 16)
    elif _both_halves_byte_extend(word):
        writer.write(_PREFIX_TWO_BYTES, _PREFIX_BITS)
        writer.write((word >> 16) & 0xFF, 8)
        writer.write(word & 0xFF, 8)
    elif _repeated_bytes(word):
        writer.write(_PREFIX_REPEATED, _PREFIX_BITS)
        writer.write(word & 0xFF, 8)
    else:
        writer.write(_PREFIX_UNCOMPRESSED, _PREFIX_BITS)
        writer.write(word, 32)


def reference_fpc_compress(data: bytes) -> CompressionResult:
    """The original word-at-a-time FPC encoder."""
    words = [
        int.from_bytes(data[offset : offset + _WORD_BYTES], _BYTE_ORDER)
        for offset in range(0, LINE_SIZE_BYTES, _WORD_BYTES)
    ]
    writer = _BitWriter()
    index = 0
    while index < _WORDS_PER_LINE:
        word = words[index]
        if word == 0:
            run = 1
            while (
                index + run < _WORDS_PER_LINE
                and words[index + run] == 0
                and run < _MAX_ZERO_RUN
            ):
                run += 1
            writer.write(_PREFIX_ZERO_RUN, _PREFIX_BITS)
            writer.write(run - 1, 3)
            index += run
            continue
        _encode_word(writer, word)
        index += 1
    return CompressionResult("fpc", ENC_FPC, writer.bit_count, writer.to_bytes())


def _wrapped_deltas(data: bytes, width: int) -> np.ndarray:
    words = np.frombuffer(data, dtype=_UNSIGNED_DTYPE[width])
    return (words - words[0]).view(_SIGNED_DTYPE[width])


def _try_variant(data: bytes, variant) -> bytes | None:
    """The original per-delta ``int.to_bytes`` variant encoder."""
    deltas = _wrapped_deltas(data, variant.base_bytes)
    limit = 1 << (8 * variant.delta_bytes - 1)
    if not bool(((deltas >= -limit) & (deltas < limit)).all()):
        return None
    parts = [data[: variant.base_bytes]]
    parts.extend(
        int(delta).to_bytes(variant.delta_bytes, _BYTE_ORDER, signed=True)
        for delta in deltas
    )
    return b"".join(parts)


def reference_bdi_compress(data: bytes) -> CompressionResult:
    """The original sequential BDI encoder."""
    if data == bytes(LINE_SIZE_BYTES):
        return CompressionResult("bdi", ENC_ZEROS, 8, b"\x00")
    if data[:8] * (LINE_SIZE_BYTES // 8) == data:
        return CompressionResult("bdi", ENC_REP8, 64, data[:8])
    for variant in _VARIANTS_BY_SIZE:
        payload = _try_variant(data, variant)
        if payload is not None:
            return CompressionResult(
                "bdi", variant.encoding, variant.compressed_bytes * 8, payload
            )
    return CompressionResult(
        "bdi", ENC_UNCOMPRESSED, LINE_SIZE_BYTES * 8, bytes(data)
    )
