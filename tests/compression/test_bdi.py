"""Unit tests for the BDI compressor."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import LINE_SIZE_BYTES, BDICompressor, CompressionError
from repro.compression.bdi import ENC_REP8, ENC_UNCOMPRESSED, ENC_ZEROS


@pytest.fixture(scope="module")
def bdi():
    return BDICompressor()


def pack64(values, width):
    fmt = {1: "b", 2: "h", 4: "i", 8: "q"}[width]
    return struct.pack(f"<{len(values)}{fmt}", *values)


def test_zero_line_compresses_to_one_byte(bdi):
    result = bdi.compress(bytes(64))
    assert result.encoding == ENC_ZEROS
    assert result.size_bytes == 1
    assert bdi.decompress(result) == bytes(64)


def test_repeated_value_compresses_to_eight_bytes(bdi):
    line = struct.pack("<q", 0xDEADBEEF) * 8
    result = bdi.compress(line)
    assert result.encoding == ENC_REP8
    assert result.size_bytes == 8
    assert bdi.decompress(result) == line


def test_base8_delta1_size(bdi):
    base = 1 << 40
    line = pack64([base + d for d in range(8)], 8)
    result = bdi.compress(line)
    assert result.size_bytes == 16
    assert bdi.decompress(result) == line


def test_base8_delta2_size(bdi):
    base = 1 << 40
    line = pack64([base + 300 * d for d in range(8)], 8)
    result = bdi.compress(line)
    assert result.size_bytes == 24
    assert bdi.decompress(result) == line


def test_base8_delta4_size(bdi):
    base = 1 << 40
    line = pack64([base + 100_000 * d for d in range(8)], 8)
    result = bdi.compress(line)
    assert result.size_bytes == 40
    assert bdi.decompress(result) == line


def test_base4_delta1_size(bdi):
    # 16 4-byte words near a large 4-byte base, alternating so no 8-byte
    # variant with a narrower delta wins.
    words = [0x40000000 + (7 * i) % 100 for i in range(16)]
    line = pack64(words, 4)
    result = bdi.compress(line)
    assert result.size_bytes == 20
    assert bdi.decompress(result) == line


def test_base2_delta1_size(bdi):
    words = [0x4000 + ((13 * i) % 64) for i in range(32)]
    line = pack64(words, 2)
    result = bdi.compress(line)
    # b4d1 (20 B) cannot apply: adjacent 2-byte words merge into 4-byte
    # words whose mutual deltas exceed one signed byte.
    assert result.size_bytes == 34
    assert bdi.decompress(result) == line


def test_incompressible_line_falls_back_to_uncompressed(bdi):
    import random

    rng = random.Random(7)
    line = bytes(rng.randrange(256) for _ in range(64))
    result = bdi.compress(line)
    assert result.encoding == ENC_UNCOMPRESSED
    assert result.size_bytes == 64
    assert bdi.decompress(result) == line


def test_negative_deltas_round_trip(bdi):
    base = 1 << 32
    line = pack64([base, base - 1, base - 100, base + 5, base, base, base - 7, base], 8)
    result = bdi.compress(line)
    assert result.size_bytes == 16
    assert bdi.decompress(result) == line


def test_wrong_input_length_raises(bdi):
    with pytest.raises(CompressionError):
        bdi.compress(b"\x00" * 63)


def test_decompress_rejects_foreign_result(bdi):
    from repro.compression import FPCCompressor

    fpc_result = FPCCompressor().compress(bytes(64))
    with pytest.raises(CompressionError):
        bdi.decompress(fpc_result)


def test_decompress_rejects_bad_payload_length(bdi):
    result = bdi.compress(bytes(64))
    bad = type(result)(result.algorithm, ENC_REP8, 64, b"\x00" * 3)
    with pytest.raises(CompressionError):
        bdi.decompress(bad)


def test_variant_size_table(bdi):
    sizes = BDICompressor.variant_sizes()
    assert sizes == {
        "b8d1": 16,
        "b4d1": 20,
        "b8d2": 24,
        "b2d1": 34,
        "b4d2": 36,
        "b8d4": 40,
    }


def test_sizes_match_table1_bounds(bdi):
    # Table I: BDI output spans 1..40 bytes for compressible lines.
    assert min(BDICompressor.variant_sizes().values()) > 1
    assert max(BDICompressor.variant_sizes().values()) == 40


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=LINE_SIZE_BYTES, max_size=LINE_SIZE_BYTES))
def test_roundtrip_random_lines(data):
    bdi = BDICompressor()
    result = bdi.compress(data)
    assert bdi.decompress(result) == data
    assert 1 <= result.size_bytes <= LINE_SIZE_BYTES


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=2**10, max_value=2**63),
    st.lists(st.integers(min_value=-128, max_value=127), min_size=8, max_size=8),
)
def test_roundtrip_narrow_delta_lines(base, deltas):
    bdi = BDICompressor()
    words = [base + delta for delta in deltas]
    line = b"".join(word.to_bytes(8, "little") for word in words)
    result = bdi.compress(line)
    assert bdi.decompress(result) == line
    assert result.size_bytes <= 40
