"""The bounded latency reservoir behind QueueingStats percentiles."""

import numpy as np
import pytest

from repro.perf.queueing import (
    RESERVOIR_CAPACITY,
    LatencyReservoir,
    MemoryControllerSim,
    QueueingStats,
    synthesize_requests,
)


class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        reservoir = LatencyReservoir(capacity=64)
        values = [float(v) for v in range(50)]
        for value in values:
            reservoir.append(value)
        for percentile in (0, 25, 50, 90, 99, 100):
            assert reservoir.percentile(percentile) == pytest.approx(
                float(np.percentile(values, percentile))
            )

    def test_memory_stays_bounded(self):
        reservoir = LatencyReservoir(capacity=128)
        for value in range(100_000):
            reservoir.append(float(value))
        assert len(reservoir) == 128
        assert reservoir.count == 100_000

    def test_percentile_accuracy_on_known_distribution(self):
        # 200k exponential draws: the default-capacity reservoir's
        # percentile estimates must track the exact full-stream values.
        rng = np.random.default_rng(11)
        values = rng.exponential(scale=100.0, size=200_000)
        reservoir = LatencyReservoir()
        for value in values:
            reservoir.append(float(value))
        assert len(reservoir) == RESERVOIR_CAPACITY
        for percentile, tolerance in ((50, 0.05), (90, 0.05), (99, 0.10)):
            exact = float(np.percentile(values, percentile))
            estimate = reservoir.percentile(percentile)
            assert abs(estimate - exact) / exact < tolerance, (
                f"p{percentile}: estimate {estimate:.2f} vs exact {exact:.2f}"
            )

    def test_deterministic_given_seed(self):
        streams = [LatencyReservoir(seed=5), LatencyReservoir(seed=5)]
        rng = np.random.default_rng(0)
        for value in rng.exponential(50.0, size=20_000):
            for reservoir in streams:
                reservoir.append(float(value))
        assert streams[0].percentile(99) == streams[1].percentile(99)

    def test_empty_reservoir(self):
        reservoir = LatencyReservoir()
        assert not reservoir
        assert reservoir.percentile(50) == 0.0
        assert QueueingStats().read_latency_percentile(99) == 0.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)


class TestSimIntegration:
    def test_long_run_keeps_constant_sample_memory(self):
        requests = synthesize_requests(30_000, seed=3)
        stats = MemoryControllerSim().run(requests)
        assert stats.reads > RESERVOIR_CAPACITY
        assert len(stats.read_latencies) == RESERVOIR_CAPACITY
        assert stats.read_latencies.count == stats.reads
        p50 = stats.read_latency_percentile(50)
        p99 = stats.read_latency_percentile(99)
        assert 0 < p50 <= p99
        # The reservoir median must sit near the true mean-latency scale.
        assert p50 < 4 * stats.mean_read_latency_ns
