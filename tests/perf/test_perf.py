"""Unit tests for the latency and overhead models (Section V-B)."""

import pytest

from repro.perf import (
    AccessLatency,
    LatencyModel,
    PerformanceModel,
    ReadMix,
    measure_read_mix,
)
from repro.traces import get_profile


class TestLatencyModel:
    def test_base_read_latency(self):
        model = LatencyModel()
        latency = model.read_latency()
        # (tRCD + tCL + burst) * 2.5ns + 48ns array read.
        assert latency.interface_ns == pytest.approx(73 * 2.5)
        assert latency.array_ns == 48.0
        assert latency.decompression_ns == 0.0

    def test_decompression_penalties(self):
        model = LatencyModel()
        bdi = model.read_latency("bdi")
        fpc = model.read_latency("fpc")
        assert bdi.decompression_ns == pytest.approx(0.4)  # 1 cyc @ 2.5GHz
        assert fpc.decompression_ns == pytest.approx(2.0)  # 5 cyc @ 2.5GHz
        assert fpc.total_ns > bdi.total_ns > model.read_latency().total_ns

    def test_write_latency_has_no_decompression(self):
        latency = LatencyModel().write_latency()
        assert latency.decompression_ns == 0.0
        assert latency.array_ns == 150.0  # SET-dominated

    def test_unknown_decompressor(self):
        with pytest.raises(ValueError):
            LatencyModel().read_latency("zstd")
        with pytest.raises(ValueError):
            LatencyModel(cpu_ghz=0)


class TestReadMix:
    def test_must_sum_to_one(self):
        ReadMix(uncompressed=0.2, bdi=0.5, fpc=0.3)
        with pytest.raises(ValueError):
            ReadMix(uncompressed=0.2, bdi=0.5, fpc=0.5)
        with pytest.raises(ValueError):
            ReadMix(uncompressed=-0.2, bdi=0.7, fpc=0.5)

    def test_measured_mix_is_valid(self):
        mix = measure_read_mix(get_profile("milc"), samples=400, seed=0)
        assert mix.uncompressed + mix.bdi + mix.fpc == pytest.approx(1.0)
        # milc is highly compressible: most reads hit compressed lines.
        assert mix.uncompressed < 0.5


class TestPerformanceModel:
    def test_overhead_bounded_by_worst_case(self):
        model = PerformanceModel()
        all_fpc = ReadMix(uncompressed=0.0, bdi=0.0, fpc=1.0)
        worst = model.read_latency_overhead(all_fpc)
        assert 0 < worst < 0.02  # FPC adds 2ns on a ~230ns read

    def test_uncompressed_mix_has_zero_overhead(self):
        model = PerformanceModel()
        plain = ReadMix(uncompressed=1.0, bdi=0.0, fpc=0.0)
        assert model.read_latency_overhead(plain) == pytest.approx(0.0)
        assert model.slowdown(plain) == pytest.approx(0.0)

    def test_section5b_claims_hold(self):
        # Read-latency overhead <= 2% and slowdown < 0.3% for every
        # evaluated workload.
        model = PerformanceModel()
        for name in ("milc", "gcc", "lbm", "sjeng"):
            report = model.report(
                get_profile(name), n_lines=64, samples=500, seed=1
            )
            assert report.read_latency_overhead <= 0.02, name
            assert report.slowdown < 0.003, name

    def test_slowdown_scales_with_cpi_fraction(self):
        model = PerformanceModel()
        mix = ReadMix(uncompressed=0.0, bdi=0.5, fpc=0.5)
        low = model.slowdown(mix, memory_read_cpi_fraction=0.1)
        high = model.slowdown(mix, memory_read_cpi_fraction=0.2)
        assert high == pytest.approx(2 * low)
        with pytest.raises(ValueError):
            model.slowdown(mix, memory_read_cpi_fraction=1.5)
