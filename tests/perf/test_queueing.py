"""Unit tests for the event-driven controller queueing model."""

import pytest

from repro.perf import (
    MemoryControllerSim,
    Request,
    read_latency_overhead_queued,
    synthesize_requests,
)


def test_idle_read_latency_matches_latency_model():
    sim = MemoryControllerSim()
    stats = sim.run([Request(0.0, 0, False)])
    assert stats.reads == 1
    assert stats.mean_read_latency_ns == pytest.approx(
        sim.latency.read_latency(None).total_ns
    )


def test_decompression_adds_to_read_latency():
    sim = MemoryControllerSim()
    plain = sim.run([Request(0.0, 0, False)]).mean_read_latency_ns
    fpc = sim.run([Request(0.0, 0, False, "fpc")]).mean_read_latency_ns
    assert fpc == pytest.approx(plain + 2.0)  # 5 cycles at 2.5 GHz


def test_back_to_back_reads_queue_on_one_bank():
    sim = MemoryControllerSim()
    service = sim.latency.read_latency(None).total_ns
    stats = sim.run([Request(0.0, 0, False), Request(0.0, 0, False)])
    assert stats.read_stall_events == 1
    assert stats.total_read_latency_ns == pytest.approx(service + 2 * service)


def test_banks_are_independent():
    sim = MemoryControllerSim()
    stats = sim.run([Request(0.0, 0, False), Request(0.0, 1, False)])
    assert stats.read_stall_events == 0


def test_write_queue_absorbs_writes_silently():
    sim = MemoryControllerSim(write_queue_depth=32)
    requests = [Request(float(i), 0, True) for i in range(10)]
    requests.append(Request(10.0, 0, False))
    stats = sim.run(requests)
    # 10 queued writes below the drain threshold never block the read.
    assert stats.read_stall_events == 0


def test_write_queue_overflow_stalls_reads():
    sim = MemoryControllerSim(write_queue_depth=4)
    requests = [Request(float(i), 0, True) for i in range(4)]  # forces a drain
    requests.append(Request(4.0, 0, False))
    stats = sim.run(requests)
    assert stats.read_stall_events == 1
    assert stats.mean_read_latency_ns > sim.latency.read_latency(None).total_ns


def test_synthesize_requests_mix():
    requests = synthesize_requests(2000, read_fraction=0.7, seed=1)
    reads = [r for r in requests if not r.is_write]
    assert 0.6 < len(reads) / len(requests) < 0.8
    assert any(r.decompressor == "fpc" for r in reads)
    assert all(r.arrival_ns >= 0 for r in requests)
    with pytest.raises(ValueError):
        synthesize_requests(10, read_fraction=1.5)


def test_queued_overhead_stays_small():
    # Section V-B under queueing: decompression still costs ~<2% even
    # with bank contention.
    _, _, overhead = read_latency_overhead_queued(
        n_requests=8000, mean_interarrival_ns=80.0, seed=2
    )
    assert 0.0 <= overhead < 0.02


def test_percentiles_available():
    sim = MemoryControllerSim()
    stats = sim.run([Request(float(i * 1000), 0, False) for i in range(50)])
    assert stats.read_latency_percentile(99) >= stats.read_latency_percentile(50)


def test_validation():
    with pytest.raises(ValueError):
        MemoryControllerSim(n_banks=0)
    with pytest.raises(ValueError):
        MemoryControllerSim(write_queue_depth=0)
