"""Regression tests for the read-mix seams feeding the energy model.

Two latent bugs (PR 9's bugfix sweep), pinned failing-first:

* ``measure_read_mix`` raised ``KeyError`` when the winning compressor
  was neither BDI nor FPC (any custom ``BestOfCompressor`` membership,
  e.g. CPack/FVC) and ``ZeroDivisionError`` at ``samples=0``;
* ``ReadMix.__post_init__`` ran the sum check before the sign check,
  so invalid negative fractions were reported as (or masked by) a sum
  error instead of the sign error.
"""

import pytest

from repro.compression import BestOfCompressor
from repro.compression.bdi import BDICompressor
from repro.compression.cpack import CPackCompressor
from repro.compression.fpc import FPCCompressor
from repro.perf import PerformanceModel, ReadMix, measure_read_mix
from repro.traces import get_profile


class TestMeasureReadMixUnknownAlgorithms:
    def test_cpack_winner_buckets_as_other(self):
        # CPack first in member order wins ties, so a compressible
        # profile routinely produces algorithm="cpack" results --
        # which used to KeyError out of the bdi/fpc counts dict.
        compressor = BestOfCompressor(
            (CPackCompressor(), BDICompressor(), FPCCompressor())
        )
        mix = measure_read_mix(
            get_profile("milc"), samples=200, seed=0, compressor=compressor
        )
        assert mix.other > 0
        total = mix.uncompressed + mix.bdi + mix.fpc + mix.other
        assert total == pytest.approx(1.0)

    def test_default_members_leave_other_empty(self):
        mix = measure_read_mix(get_profile("milc"), samples=200, seed=0)
        assert mix.other == 0.0

    @pytest.mark.parametrize("samples", [0, -1])
    def test_non_positive_samples_rejected(self, samples):
        with pytest.raises(ValueError, match="samples"):
            measure_read_mix(get_profile("milc"), samples=samples)


class TestReadMixValidationOrder:
    def test_negative_fraction_reported_as_sign_error_even_off_sum(self):
        # Sum is 0.8: both checks are violated, and the sign error must
        # win -- the sum message would mask the real defect.
        with pytest.raises(ValueError, match="negative"):
            ReadMix(uncompressed=-0.2, bdi=0.5, fpc=0.5)

    def test_negative_fraction_summing_to_one_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ReadMix(uncompressed=1.2, bdi=-0.2, fpc=0.0)

    def test_negative_other_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ReadMix(uncompressed=1.1, bdi=0.0, fpc=0.0, other=-0.1)

    def test_sum_within_tolerance_accepted(self):
        ReadMix(uncompressed=0.5 + 5e-7, bdi=0.5, fpc=0.0)

    def test_sum_just_past_tolerance_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            ReadMix(uncompressed=0.5 + 2e-6, bdi=0.5, fpc=0.0)

    def test_sum_just_under_tolerance_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            ReadMix(uncompressed=0.5 - 2e-6, bdi=0.5, fpc=0.0)


class TestOtherBucketLatency:
    def test_other_charged_at_slowest_known_decompressor(self):
        model = PerformanceModel()
        as_other = model.average_read_latency_ns(
            ReadMix(uncompressed=0.5, bdi=0.0, fpc=0.0, other=0.5)
        )
        as_fpc = model.average_read_latency_ns(
            ReadMix(uncompressed=0.5, bdi=0.0, fpc=0.5)
        )
        as_bdi = model.average_read_latency_ns(
            ReadMix(uncompressed=0.5, bdi=0.5, fpc=0.0)
        )
        # Conservative bucketing: unknown algorithms cost as much as
        # the slowest modelled decompressor (FPC), never less.
        assert as_other == pytest.approx(max(as_fpc, as_bdi))

    def test_overhead_positive_for_other_only_mix(self):
        model = PerformanceModel()
        mix = ReadMix(uncompressed=0.0, bdi=0.0, fpc=0.0, other=1.0)
        assert model.read_latency_overhead(mix) > 0
