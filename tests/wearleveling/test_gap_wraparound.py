"""Gap-wraparound boundary audit (pinning tests).

PR 10's issue flagged the cyclic wrap move (``gap == 0``: last physical
slot copies into slot 0, the start register advances) as a suspected
off-by-one site, both in :class:`~repro.wearleveling.StartGap` /
:class:`~repro.wearleveling.RegionStartGap` themselves and across a
checkpoint/resume that straddles the wrap.  The audit found the
arithmetic correct; these tests pin the exact boundary semantics so a
future regression fails loudly instead of silently corrupting mappings.
"""

import pickle
import tempfile

from repro.lifetime import build_simulator
from repro.wearleveling import RegionStartGap, StartGap


def test_wrap_move_exact_semantics():
    sg = StartGap(n_lines=4, psi=1)
    # Walk the gap from its initial slot (4) down to 0.
    for expected_dest in (4, 3, 2, 1):
        movement = sg.on_write()
        assert movement.destination == expected_dest
        assert movement.source == expected_dest - 1
    assert sg.gap == 0 and sg.start == 0
    # The straddling move: last slot -> slot 0, start advances, gap
    # returns to the top.  One full rotation complete.
    movement = sg.on_write()
    assert (movement.source, movement.destination) == (4, 0)
    assert sg.gap == 4 and sg.start == 1


def test_mapping_is_bijective_through_the_wrap():
    sg = StartGap(n_lines=4, psi=1)
    for _ in range(4):
        sg.on_write()
    assert sg.gap == 0
    before = {line: sg.map(line) for line in range(4)}
    sg.on_write()  # the wrap
    after = {line: sg.map(line) for line in range(4)}
    # Only the line that rode the wrap move changed slots.
    moved = [line for line in range(4) if before[line] != after[line]]
    assert moved == [sg.logical_of(0)]
    assert sorted(after.values()) == [0, 1, 2, 3]
    for line in range(4):
        assert sg.logical_of(sg.map(line)) == line
    assert sg.logical_of(sg.gap) is None


def test_pickled_gap_replays_identically_across_the_wrap():
    sg = StartGap(n_lines=5, psi=3)
    # Park one write short of the wrap move (gap at 0, psi counter at 2).
    while not (sg.gap == 0 and sg.write_count % sg.psi == sg.psi - 1):
        sg.on_write()
    clone = pickle.loads(pickle.dumps(sg))
    for _ in range(40):
        a, b = sg.on_write(), clone.on_write()
        assert a == b
    assert (clone.start, clone.gap, clone.write_count) == (
        sg.start, sg.gap, sg.write_count
    )


def test_region_wrap_stays_inside_the_owning_region():
    # 7 lines / 3 regions -> sizes (3, 2, 2): the uneven split puts the
    # last region's slots at the top of the physical range, where a
    # base-offset bug in the wrap move would leak into a neighbor.
    rsg = RegionStartGap(n_lines=7, psi=1, regions=3)
    last_base = rsg._physical_bases[-1]
    top = rsg.physical_lines
    wrapped = False
    for _ in range(30):
        movement = rsg.on_write(6)  # hot line in the last region
        if movement is None:
            continue
        assert last_base <= movement.source < top
        assert last_base <= movement.destination < top
        if movement.destination == last_base:
            wrapped = True
            assert movement.source == top - 1
    assert wrapped, "stream never exercised the wrap move"
    for line in range(7):
        assert rsg.logical_of(rsg.map(line)) == line


def test_checkpoint_straddling_a_wrap_resumes_bit_identically():
    def mk():
        # psi=1 and a tiny array make every checkpoint interval straddle
        # several full gap rotations.
        return build_simulator(
            "comp_wf", "mcf", n_lines=6, endurance_mean=200.0,
            endurance_cov=0.15, seed=9, start_gap_psi=1,
        )

    straight, resumed = mk(), mk()
    resumed.run(max_writes=157)  # mid-rotation stopping point
    with tempfile.TemporaryDirectory() as checkpoint_dir:
        path = resumed.save_checkpoint(checkpoint_dir)
        restored = mk()
        restored.restore(path)
        a = straight.run(max_writes=900)
        b = restored.run(max_writes=900)
    for fld in ("writes_issued", "failed", "total_flips", "set_flips",
                "reset_flips", "deaths", "revivals", "lost_writes",
                "dead_blocks", "stored_writes"):
        assert getattr(a, fld) == getattr(b, fld), fld
