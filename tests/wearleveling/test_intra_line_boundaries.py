"""Intra-line wear-leveling boundary behavior.

Pins the three edges the paper's cheap per-bank rotation scheme has:
counter saturation exactly at ``counter_limit``, offset wraparound at
the 64-byte line size, and rotation landing on the identical write when
a run is cut by a checkpoint/resume.
"""

import numpy as np
import pytest

from repro.engine.registry import get_system
from repro.lifetime import LifetimeSimulator
from repro.traces import SyntheticWorkload, get_profile
from repro.wearleveling import IntraLineWearLeveler


class TestCounterSaturation:
    def test_rotation_fires_exactly_at_counter_limit(self):
        leveler = IntraLineWearLeveler(n_banks=2, counter_limit=5)
        for _ in range(4):
            assert leveler.record_write(0) is False
        assert leveler.writes_until_rotation(0) == 1
        assert leveler.offset(0) == 0
        assert leveler.record_write(0) is True  # write number counter_limit
        assert leveler.offset(0) == 1
        assert leveler.writes_until_rotation(0) == 5  # counter reset
        # The other bank's counter is untouched.
        assert leveler.offset(1) == 0
        assert leveler.writes_until_rotation(1) == 5

    def test_counter_limit_one_rotates_every_write(self):
        leveler = IntraLineWearLeveler(n_banks=1, counter_limit=1)
        for write in range(1, 10):
            assert leveler.record_write(0) is True
            assert leveler.offset(0) == write % 64
        assert leveler.rotations == 9

    def test_power_of_two_default_limit(self):
        leveler = IntraLineWearLeveler(n_banks=1, counter_bits=3)
        assert leveler.counter_limit == 8
        rotated = [leveler.record_write(0) for _ in range(16)]
        assert rotated == [False] * 7 + [True] + [False] * 7 + [True]


class TestOffsetWraparound:
    def test_offset_wraps_at_line_bytes(self):
        leveler = IntraLineWearLeveler(n_banks=1, counter_limit=1)
        for write in range(64):
            leveler.record_write(0)
        assert leveler.rotations == 64
        assert leveler.offset(0) == 0  # full cycle back to byte 0
        leveler.record_write(0)
        assert leveler.offset(0) == 1

    def test_offset_visits_every_byte_once_per_cycle(self):
        leveler = IntraLineWearLeveler(n_banks=1, counter_limit=1)
        seen = set()
        for _ in range(64):
            seen.add(leveler.offset(0))
            leveler.record_write(0)
        assert seen == set(range(64))

    def test_multi_byte_step_wraps_modulo_line(self):
        leveler = IntraLineWearLeveler(n_banks=1, counter_limit=1, step_bytes=24)
        offsets = []
        for _ in range(8):
            leveler.record_write(0)
            offsets.append(leveler.offset(0))
        assert offsets == [24, 48, 8, 32, 56, 16, 40, 0]


class TestRotationAcrossCheckpoint:
    def _simulator(self, limit):
        config = get_system("comp_wf").configured(
            correction_scheme="ecp6", intra_counter_limit=limit
        )
        workload = SyntheticWorkload(get_profile("gcc"), n_lines=12, seed=6)
        return LifetimeSimulator(
            config, workload, n_lines=12, endurance_mean=200.0, seed=6,
            n_banks=4,
        )

    @staticmethod
    def _registers(simulator):
        intra = simulator.controller.intra_wl
        return (tuple(intra._counters), tuple(intra._offsets), intra.rotations)

    def test_rotation_lands_identically_after_resume(self, tmp_path):
        # Checkpoint mid-count: the counters (not just the offsets) must
        # survive the cut, or the post-resume rotation fires on the
        # wrong write.  The checkpoint at write 90 sits inside a
        # 40-write rotation period, so at least one rotation straddles
        # the cut.
        straight = self._simulator(limit=40)
        straight.run(max_writes=200)
        assert self._registers(straight)[2] > 0, "campaign never rotated"

        interrupted = self._simulator(limit=40)
        interrupted.run(max_writes=90, checkpoint_dir=tmp_path,
                        checkpoint_interval=90)
        mid = self._registers(interrupted)
        assert any(counter != 0 for counter in mid[0]), (
            "checkpoint landed on a rotation edge; pick another interval"
        )

        resumed = self._simulator(limit=40)
        resumed.run(max_writes=200, resume_from=sorted(
            tmp_path.glob("checkpoint-*.pkl"))[0])
        assert self._registers(resumed) == self._registers(straight)
        assert (
            resumed.controller.memory.stored.tolist()
            == straight.controller.memory.stored.tolist()
        )


class TestRejectsBadParameters:
    def test_bad_limits(self):
        with pytest.raises(ValueError):
            IntraLineWearLeveler(n_banks=1, counter_limit=0)
        with pytest.raises(ValueError):
            IntraLineWearLeveler(n_banks=0)
        with pytest.raises(ValueError):
            IntraLineWearLeveler(n_banks=1, step_bytes=64)

    def test_bank_range_checks(self):
        leveler = IntraLineWearLeveler(n_banks=2, counter_limit=4)
        with pytest.raises(IndexError):
            leveler.offset(2)
        with pytest.raises(IndexError):
            leveler.record_write(-1)
