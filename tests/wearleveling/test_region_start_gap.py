"""Unit tests for region-based Start-Gap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wearleveling import RegionStartGap


def drive(remapper, writes, rng_lines):
    """Issue writes to given lines, applying movements to shadow data."""
    data = {remapper.map(line): line for line in range(remapper.n_lines)}
    for step in range(writes):
        line = rng_lines[step % len(rng_lines)]
        movement = remapper.on_write(line)
        if movement is not None:
            data[movement.destination] = data.pop(movement.source)
    return data


def test_physical_layout_one_spare_per_region():
    remapper = RegionStartGap(n_lines=12, psi=1, regions=4)
    assert remapper.physical_lines == 16


def test_initial_mapping_is_bijective():
    remapper = RegionStartGap(n_lines=10, psi=1, regions=3)
    physicals = [remapper.map(line) for line in range(10)]
    assert len(set(physicals)) == 10


def test_uneven_division_handled():
    remapper = RegionStartGap(n_lines=10, psi=1, regions=3)
    # Region sizes 4, 3, 3.
    assert remapper._sizes == [4, 3, 3]
    for line in range(10):
        assert remapper.logical_of(remapper.map(line)) == line


def test_data_tracks_mapping():
    remapper = RegionStartGap(n_lines=9, psi=1, regions=3)
    data = drive(remapper, 200, list(range(9)))
    for line in range(9):
        assert data[remapper.map(line)] == line


def test_regions_move_independently():
    remapper = RegionStartGap(n_lines=8, psi=2, regions=2)
    # Write only to region 0's lines: only its gap should move.
    for _ in range(10):
        remapper.on_write(0)
    assert remapper._gaps[0].gap_moves == 5
    assert remapper._gaps[1].gap_moves == 0


def test_movements_stay_within_region():
    remapper = RegionStartGap(n_lines=8, psi=1, regions=2)
    for _ in range(30):
        movement = remapper.on_write(6)  # region 1
        if movement is not None:
            assert movement.source >= 5  # region 1's physical base
            assert movement.destination >= 5


def test_bounds():
    remapper = RegionStartGap(n_lines=8, psi=1, regions=2)
    with pytest.raises(IndexError):
        remapper.map(8)
    with pytest.raises(IndexError):
        remapper.logical_of(10)
    with pytest.raises(ValueError):
        RegionStartGap(n_lines=2, psi=1, regions=4)
    with pytest.raises(ValueError):
        RegionStartGap(n_lines=8, psi=1, regions=0)


def test_controller_accepts_regions():
    import numpy as np

    from repro.core import CompressedPCMController, comp_wf
    from repro.pcm import EnduranceModel

    controller = CompressedPCMController(
        config=comp_wf(start_gap_regions=4, start_gap_psi=10),
        n_lines=16,
        endurance_model=EnduranceModel(mean=1000, cov=0.0),
        rng=np.random.default_rng(0),
    )
    rng = np.random.default_rng(1)
    last = {}
    for _ in range(400):
        line = int(rng.integers(0, 16))
        data = rng.bytes(64)
        controller.write(line, data)
        last[line] = data
    for line, expected in last.items():
        assert controller.read(line) == expected


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=150),
)
def test_mapping_consistency_random(n_lines, regions, writes):
    regions = min(regions, n_lines)
    remapper = RegionStartGap(n_lines=n_lines, psi=1, regions=regions)
    data = drive(remapper, writes, list(range(n_lines)))
    for line in range(n_lines):
        assert data[remapper.map(line)] == line
