"""Unit tests for Start-Gap inter-line wear-leveling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wearleveling import StartGap


def drive(start_gap, writes):
    """Issue writes, applying movements to a shadow data array."""
    data = {start_gap.map(line): line for line in range(start_gap.n_lines)}
    for _ in range(writes):
        movement = start_gap.on_write()
        if movement is not None:
            data[movement.destination] = data.pop(movement.source)
    return data


def test_initial_mapping_is_identity():
    sg = StartGap(n_lines=8, psi=10)
    assert [sg.map(line) for line in range(8)] == list(range(8))
    assert sg.physical_lines == 9


def test_mapping_stays_bijective_forever():
    sg = StartGap(n_lines=8, psi=1)
    for _ in range(100):
        sg.on_write()
        physicals = [sg.map(line) for line in range(8)]
        assert len(set(physicals)) == 8
        assert sg.gap not in physicals
        assert all(0 <= p < 9 for p in physicals)


def test_data_tracks_mapping_through_moves():
    """The mapping always points at the slot the data was copied to."""
    sg = StartGap(n_lines=8, psi=1)
    data = drive(sg, 200)
    for line in range(8):
        assert data[sg.map(line)] == line


def test_wrap_advances_start():
    sg = StartGap(n_lines=4, psi=1)
    assert sg.start == 0
    drive(sg, 5)  # four down-moves plus the cyclic wrap
    assert sg.start == 1
    assert sg.gap == 4


def test_every_line_visits_every_slot():
    sg = StartGap(n_lines=4, psi=1)
    visited = {line: set() for line in range(4)}
    for _ in range(4 * 5 * 3):  # several full gap rotations
        sg.on_write()
        for line in range(4):
            visited[line].add(sg.map(line))
    for line, slots in visited.items():
        assert slots == set(range(5)), f"line {line} missed slots"


def test_psi_controls_movement_rate():
    sg = StartGap(n_lines=8, psi=10)
    movements = sum(1 for _ in range(100) if sg.on_write() is not None)
    assert movements == 10
    assert sg.gap_moves == 10


def test_logical_of_inverts_map():
    sg = StartGap(n_lines=8, psi=1)
    drive(sg, 37)
    for line in range(8):
        assert sg.logical_of(sg.map(line)) == line
    assert sg.logical_of(sg.gap) is None


def test_bounds():
    sg = StartGap(n_lines=4, psi=1)
    with pytest.raises(IndexError):
        sg.map(4)
    with pytest.raises(IndexError):
        sg.map(-1)
    with pytest.raises(IndexError):
        sg.logical_of(5)
    with pytest.raises(ValueError):
        StartGap(n_lines=0)
    with pytest.raises(ValueError):
        StartGap(n_lines=4, psi=0)


def test_write_overhead_is_one_per_psi():
    # Start-Gap's extra-write overhead is 1/psi (paper reports <1% at
    # psi=100).
    sg = StartGap(n_lines=16, psi=100)
    moves = sum(1 for _ in range(10_000) if sg.on_write() is not None)
    assert moves == 100


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=300),
)
def test_mapping_consistency_random(n_lines, psi, writes):
    sg = StartGap(n_lines=n_lines, psi=psi)
    data = drive(sg, writes)
    for line in range(n_lines):
        assert data[sg.map(line)] == line
