"""Unit tests for the WoLFRaM programmable-address-decoder backend."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wearleveling import PadSpareRemapper, PadSwap, WolframPAD


def drive(pad, writes, hot_line=0):
    """Issue writes to one hot line, applying swaps to a shadow array."""
    data = {pad.map(line): line for line in range(pad.n_lines)}
    for _ in range(writes):
        movement = pad.on_write(hot_line)
        if movement is not None:
            owners = {slot: pad.logical_of(slot) for slot in movement.destinations}
            for slot, owner in owners.items():
                data[slot] = owner
    return data


def test_initial_mapping_is_identity_with_no_gap_slot():
    pad = WolframPAD(n_lines=8, period=10)
    assert [pad.map(line) for line in range(8)] == list(range(8))
    assert pad.physical_lines == 8  # no Start-Gap-style gap slot


def test_mapping_stays_bijective_forever():
    pad = WolframPAD(n_lines=8, period=1)
    for i in range(200):
        pad.on_write(i % 8)
        physicals = [pad.map(line) for line in range(8)]
        assert sorted(physicals) == list(range(8))
        for line in range(8):
            assert pad.logical_of(pad.map(line)) == line


def test_swap_schedule_honors_period():
    pad = WolframPAD(n_lines=8, period=10)
    swaps = sum(1 for i in range(100) if pad.on_write(i % 8) is not None)
    assert swaps == 10
    assert pad.swaps == 10
    assert pad.table_writes == 20  # two PAD entries per swap


def test_swap_pairs_written_line_with_rotating_partner():
    pad = WolframPAD(n_lines=4, period=1)
    movement = pad.on_write(2)
    assert isinstance(movement, PadSwap)
    # Line 2 sits in slot 2; the partner pointer starts at slot 0.
    assert movement.destinations == (2, 0)
    assert movement.perturbed_lines == (2, 0)
    assert pad.map(2) == 0
    assert pad.logical_of(2) == 0


def test_swap_skips_self_pairing():
    pad = WolframPAD(n_lines=4, period=1)
    # Line 0 sits in slot 0, which is also the initial partner: the
    # schedule must advance past the collision instead of emitting a
    # degenerate (0, 0) swap.
    movement = pad.on_write(0)
    assert movement.slot_a != movement.slot_b


def test_single_line_array_never_swaps():
    pad = WolframPAD(n_lines=1, period=1)
    assert pad.on_write(0) is None
    assert pad.map(0) == 0


def test_data_tracks_mapping_through_swaps():
    pad = WolframPAD(n_lines=8, period=1)
    data = drive(pad, 300, hot_line=3)
    for line in range(8):
        assert data[pad.map(line)] == line


def test_bounds():
    pad = WolframPAD(n_lines=4, period=1)
    with pytest.raises(IndexError):
        pad.map(4)
    with pytest.raises(IndexError):
        pad.map(-1)
    with pytest.raises(IndexError):
        pad.logical_of(4)
    with pytest.raises(ValueError):
        WolframPAD(n_lines=0)
    with pytest.raises(ValueError):
        WolframPAD(n_lines=4, period=0)


def test_stats_binding_mirrors_table_writes():
    class Stats:
        pad_table_writes = 0

    stats = Stats()
    pad = WolframPAD(n_lines=8, period=1)
    pad.bind_stats(stats)
    for i in range(5):
        pad.on_write(i)
    assert stats.pad_table_writes == pad.table_writes == 10


def test_pickle_round_trip_preserves_schedule():
    pad = WolframPAD(n_lines=8, period=3)
    drive(pad, 50, hot_line=1)
    clone = pickle.loads(pickle.dumps(pad))
    for _ in range(30):
        a = pad.on_write(1)
        b = clone.on_write(1)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.destinations == b.destinations
    assert clone._forward == pad._forward


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=5),
    st.lists(st.integers(min_value=0, max_value=11), max_size=200),
)
def test_mapping_consistency_random(n_lines, period, stream):
    pad = WolframPAD(n_lines=n_lines, period=period)
    data = {pad.map(line): line for line in range(n_lines)}
    for raw in stream:
        movement = pad.on_write(raw % n_lines)
        if movement is not None:
            for slot in movement.destinations:
                data[slot] = pad.logical_of(slot)
    for line in range(n_lines):
        assert data[pad.map(line)] == line


# -- PadSpareRemapper ------------------------------------------------------


def test_remap_consumes_spares_in_order_and_ignores_mask():
    remapper = PadSpareRemapper(spare_lines=[10, 11])
    # A fully-worn mask would make FREE-p refuse; the PAD remap must not.
    assert remapper.remap(3, faulty_mask=[True] * 512) == 10
    assert remapper.resolve(3) == 10
    assert remapper.spares_available == 1
    assert remapper.remap(5) == 11
    assert remapper.remap(7) is None  # pool exhausted
    assert remapper.remaps_performed == 2


def test_remap_chain_collapses_and_counts_rewrites():
    class Stats:
        pad_table_writes = 0

    stats = Stats()
    remapper = PadSpareRemapper(spare_lines=[10, 11])
    remapper.bind_stats(stats)
    remapper.remap(3)          # 3 -> 10, one entry rewrite
    assert stats.pad_table_writes == 1
    remapper.remap(10)         # 10 -> 11, plus collapsing 3 -> 11
    assert remapper.resolve(3) == 11
    assert remapper.resolve(10) == 11
    assert stats.pad_table_writes == 3
    assert remapper.table_writes == 3


def test_resolve_passes_unmapped_lines_through():
    remapper = PadSpareRemapper(spare_lines=[10])
    assert remapper.resolve(4) == 4
    assert remapper.is_spare(10)
    remapper.remap(4)
    assert not remapper.is_spare(10)
