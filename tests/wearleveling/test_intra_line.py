"""Unit tests for intra-line wear-leveling."""

import pytest

from repro.wearleveling import IntraLineWearLeveler


def test_initial_offsets_zero():
    wl = IntraLineWearLeveler(n_banks=4)
    assert [wl.offset(b) for b in range(4)] == [0, 0, 0, 0]


def test_rotation_after_counter_saturation():
    wl = IntraLineWearLeveler(n_banks=2, counter_bits=4, step_bytes=1)
    for _ in range(15):
        assert not wl.record_write(0)
    assert wl.record_write(0)  # 16th write saturates the 4-bit counter
    assert wl.offset(0) == 1
    assert wl.offset(1) == 0  # banks are independent


def test_offset_wraps_around_line():
    wl = IntraLineWearLeveler(n_banks=1, counter_bits=1, step_bytes=16, line_bytes=64)
    rotations = 0
    for _ in range(2 * 5):
        rotations += wl.record_write(0)
    assert rotations == 5
    assert wl.offset(0) == (5 * 16) % 64


def test_default_parameters_match_paper():
    # 16-bit counters with a one-byte step (Section III-A.2).
    wl = IntraLineWearLeveler(n_banks=1)
    assert wl.counter_limit == 2**16
    assert wl.step_bytes == 1
    assert wl.line_bytes == 64


def test_writes_until_rotation():
    wl = IntraLineWearLeveler(n_banks=1, counter_bits=3)
    assert wl.writes_until_rotation(0) == 8
    wl.record_write(0)
    assert wl.writes_until_rotation(0) == 7


def test_uniform_coverage_over_long_run():
    wl = IntraLineWearLeveler(n_banks=1, counter_bits=2, step_bytes=1, line_bytes=8)
    seen = set()
    for _ in range(4 * 8):
        wl.record_write(0)
        seen.add(wl.offset(0))
    assert seen == set(range(8))


def test_validation():
    with pytest.raises(ValueError):
        IntraLineWearLeveler(n_banks=0)
    with pytest.raises(ValueError):
        IntraLineWearLeveler(n_banks=1, counter_bits=0)
    with pytest.raises(ValueError):
        IntraLineWearLeveler(n_banks=1, step_bytes=0)
    with pytest.raises(ValueError):
        IntraLineWearLeveler(n_banks=1, step_bytes=64, line_bytes=64)
    with pytest.raises(IndexError):
        IntraLineWearLeveler(n_banks=1).offset(1)
