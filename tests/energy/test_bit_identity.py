"""Encoding-off and identity-parameter bit-identity safety rails.

Mirrors the ``tier_lines=0`` rail: a feature that is configured off --
or configured on with parameters that make it a mathematical no-op --
must leave every externally observable bit unchanged.  Two rails:

* ``encoding="none"`` builds no encoder at all; the golden-trace suite
  (``tests/golden``) already pins those digests.  Here we pin the
  sharper claim: an encoder *attached* but restricted to the identity
  transform replays the golden fixture digest-for-digest.
* The lockstep oracle does not model encoding, so a fuzz-style
  validation run with an identity-parameter encoder attached can only
  stay divergence-free if the encoder is a true pass-through on every
  path (windowed writes, rescues, deaths, reads).
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import EVALUATED_SYSTEMS, CompressedPCMController, make_config
from repro.energy import WireEncoder
from repro.engine.registry import get_system
from repro.pcm import EnduranceModel
from repro.traces import SyntheticWorkload, get_profile
from repro.validate import ValidatingController

from tests.golden.generate_golden import result_row

FIXTURE = Path(__file__).parent.parent / "golden" / "golden_trace.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("system", EVALUATED_SYSTEMS)
def test_identity_encoder_replays_the_golden_trace(golden, system):
    trace = golden["trace"]
    expected = golden["systems"][system]
    controller = CompressedPCMController(
        config=make_config(system, intra_counter_limit=64),
        n_lines=trace["n_lines"],
        endurance_model=EnduranceModel(
            mean=trace["endurance_mean"], cov=trace["endurance_cov"]
        ),
        rng=np.random.default_rng(trace["seed"] + 1),
    )
    # Attach a degenerate encoder: identity is its only coset, so the
    # encode/decode path runs on every write yet must change nothing.
    controller.engine.encoder = WireEncoder(
        len(controller.engine.metadata), transforms=("identity",)
    )
    workload = SyntheticWorkload(
        get_profile(trace["workload"]), n_lines=trace["n_lines"],
        seed=trace["seed"],
    )
    digest = hashlib.sha256()
    for write in workload.iter_writes(trace["writes"]):
        row = result_row(controller.write(write.line, write.data))
        digest.update(json.dumps(row).encode())
    assert digest.hexdigest() == expected["write_results_sha256"]
    assert controller.dead_fraction == expected["dead_fraction"]
    stats = controller.stats
    assert stats.encoding_flag_set_flips == 0
    assert stats.encoding_flag_reset_flips == 0
    assert stats.encoded_words == 0


def test_identity_encoder_survives_lockstep_validation():
    config = get_system("comp_wf").configured(correction_scheme="ecp6")
    validating = ValidatingController(
        config, 16, endurance_mean=24.0, seed=6, n_banks=4,
    )
    validating.fast.engine.encoder = WireEncoder(
        len(validating.fast.engine.metadata), transforms=("identity",)
    )
    rng = np.random.default_rng(6)
    for step in range(400):
        logical = int(rng.integers(16))
        kind = int(rng.integers(3))
        if kind == 0:
            data = bytes(64)
        elif kind == 1:
            data = bytes(rng.integers(256, size=8, dtype=np.uint8)) * 8
        else:
            data = bytes(rng.integers(256, size=64, dtype=np.uint8))
        validating.write(logical, data)  # raises DivergenceError on any drift


def test_disabled_encoding_builds_no_encoder():
    controller = CompressedPCMController(
        config=make_config("comp_wf"),
        n_lines=8,
        endurance_model=EnduranceModel(mean=100.0),
        rng=np.random.default_rng(0),
    )
    assert controller.engine.encoder is None


@pytest.mark.parametrize("system", ["baseline_wire", "comp_wf_wire",
                                    "comp_coset", "comp_wf_coset"])
def test_encoded_systems_read_back_exactly(system):
    """Encoding changes stored bits, never read-back data."""
    config = get_system(system).configured(correction_scheme="ecp6")
    controller = CompressedPCMController(
        config, 16, EnduranceModel(mean=10**6),
        np.random.default_rng(1), n_banks=4,
    )
    rng = np.random.default_rng(2)
    written = {}
    for step in range(150):
        logical = int(rng.integers(16))
        data = (
            bytes(rng.integers(256, size=8, dtype=np.uint8)) * 8
            if step % 2
            else bytes(rng.integers(256, size=64, dtype=np.uint8))
        )
        controller.write(logical, data)
        written[logical] = data
    for logical, data in written.items():
        assert controller.read(logical) == data
