"""Property tests for the WIRE / restricted-coset line encoders."""

import numpy as np
import pytest

from repro.core import LINE_BYTES
from repro.energy import (
    CosetEncoder,
    LineEncoder,
    WireEncoder,
    make_encoder,
)
from repro.pcm import PCMEnergy
from repro.pcm.block import bits_to_bytes, bytes_to_bits


def random_bits(rng):
    return rng.integers(0, 2, size=LINE_BYTES * 8, dtype=np.uint8)


class TestConstruction:
    def test_make_encoder_dispatch(self):
        assert make_encoder("none", 8) is None
        assert isinstance(make_encoder("wire", 8), WireEncoder)
        assert isinstance(make_encoder("coset", 8), CosetEncoder)
        with pytest.raises(ValueError, match="unknown encoding"):
            make_encoder("gray", 8)

    def test_transform_zero_must_be_identity(self):
        with pytest.raises(ValueError, match="identity"):
            LineEncoder(4, transforms=("invert", "identity"))

    def test_word_size_must_divide_the_line(self):
        with pytest.raises(ValueError, match="word size"):
            LineEncoder(4, word_bits=33)

    def test_selector_overhead(self):
        assert WireEncoder(4).overhead_bits_per_line == 16  # 16 words x 1b
        assert CosetEncoder(4).overhead_bits_per_line == 32  # 16 words x 2b
        identity = WireEncoder(4, transforms=("identity",))
        assert identity.overhead_bits_per_line == 0


@pytest.mark.parametrize("encoder_cls", [WireEncoder, CosetEncoder])
class TestInvolutionProperties:
    def test_full_line_round_trip(self, encoder_cls):
        rng = np.random.default_rng(0)
        encoder = encoder_cls(4)
        stored = np.zeros(LINE_BYTES * 8, dtype=np.uint8)
        for step in range(50):
            logical = random_bits(rng)
            outcome = encoder.encode(
                2, stored, logical, 0, LINE_BYTES, compressed=True
            )
            assert np.array_equal(encoder.decode(2, outcome.target), logical)
            stored = outcome.target

    def test_windowed_write_leaves_out_of_window_cells_stored(self, encoder_cls):
        # The involution safety property: words not fully inside the
        # window re-encode to exactly their stored cells, so the
        # program stage's update mask masks nothing that changed.
        rng = np.random.default_rng(1)
        encoder = encoder_cls(4)
        stored = random_bits(rng)
        encoder.flags[1] = rng.integers(
            0, len(encoder.transforms), size=encoder.n_words, dtype=np.uint8
        )
        logical = encoder.decode(1, stored)
        for start, size in [(5, 11), (0, 32), (40, 24), (63, 1)]:
            target_logical = logical.copy()
            window = slice(start * 8, (start + size) * 8)
            target_logical[window] = rng.integers(
                0, 2, size=size * 8, dtype=np.uint8
            )
            outcome = encoder.encode(
                1, stored, target_logical, start, size, compressed=True
            )
            outside = np.ones(LINE_BYTES * 8, dtype=bool)
            outside[window] = False
            assert np.array_equal(
                outcome.target[outside], stored[outside]
            ), f"window ({start}, {size}) leaked outside itself"
            # Undo the state change for the next window.
            logical = encoder.decode(1, outcome.target)
            stored = outcome.target

    def test_identity_parameters_are_a_pure_pass_through(self, encoder_cls):
        rng = np.random.default_rng(2)
        encoder = encoder_cls(4, transforms=("identity",))
        stored = random_bits(rng)
        logical = random_bits(rng)
        outcome = encoder.encode(
            0, stored, logical, 0, LINE_BYTES, compressed=True
        )
        assert np.array_equal(outcome.target, logical)
        assert outcome.flag_set_flips == 0
        assert outcome.flag_reset_flips == 0
        assert outcome.encoded_words == 0


class TestEnergyObjective:
    def _write_energy(self, stored, target, energy):
        sets = int(((target == 1) & (stored == 0)).sum())
        resets = int(((target == 0) & (stored == 1)).sum())
        return energy.write_energy_pj(sets, resets)

    @pytest.mark.parametrize("encoder_cls", [WireEncoder, CosetEncoder])
    def test_never_costs_more_than_storing_plain(self, encoder_cls):
        # Identity is always a candidate coset, so the chosen image
        # (data cells + flag cells) can never exceed the plain image's
        # array cost against the same stored state.
        rng = np.random.default_rng(3)
        energy = PCMEnergy()
        encoder = encoder_cls(2, energy=energy)
        stored = np.zeros(LINE_BYTES * 8, dtype=np.uint8)
        for _ in range(100):
            logical = random_bits(rng)
            plain_cost = self._write_energy(stored, logical, energy)
            outcome = encoder.encode(
                0, stored, logical, 0, LINE_BYTES, compressed=True
            )
            encoded_cost = self._write_energy(stored, outcome.target, energy)
            encoded_cost += energy.write_energy_pj(
                outcome.flag_set_flips, outcome.flag_reset_flips
            )
            assert encoded_cost <= plain_cost + 1e-9
            stored = outcome.target

    def test_wire_inverts_an_expensive_word(self):
        # All-zero stored cells, all-ones logical word: storing plain
        # costs 32 SET pulses, storing inverted costs 1 flag SET.
        encoder = WireEncoder(1)
        stored = np.zeros(LINE_BYTES * 8, dtype=np.uint8)
        logical = np.zeros(LINE_BYTES * 8, dtype=np.uint8)
        logical[: 32] = 1
        outcome = encoder.encode(
            0, stored, logical, 0, LINE_BYTES, compressed=True
        )
        assert encoder.flags[0, 0] == 1  # word 0 stored complemented
        assert outcome.target[:32].sum() == 0  # no data SET pulses
        assert outcome.encoded_words == 1

    def test_restriction_forces_identity_on_uncompressed_writes(self):
        encoder = CosetEncoder(1)
        stored = np.zeros(LINE_BYTES * 8, dtype=np.uint8)
        logical = np.ones(LINE_BYTES * 8, dtype=np.uint8)
        outcome = encoder.encode(
            0, stored, logical, 0, LINE_BYTES, compressed=False
        )
        assert not encoder.flags[0].any()
        assert np.array_equal(outcome.target, logical)
        assert outcome.encoded_words == 0
        # The same write compressed *does* spend slack on selectors.
        outcome = encoder.encode(
            0, stored, logical, 0, LINE_BYTES, compressed=True
        )
        assert encoder.flags[0].all()

    def test_ties_break_toward_identity(self):
        # A logical word equal to its stored cells costs 0 either way
        # it is already stored; argmin's first-minimum rule must keep
        # the identity selector (bit-identity rail for quiet words).
        encoder = WireEncoder(1)
        stored = np.zeros(LINE_BYTES * 8, dtype=np.uint8)
        logical = np.zeros(LINE_BYTES * 8, dtype=np.uint8)
        encoder.encode(0, stored, logical, 0, LINE_BYTES, compressed=True)
        assert not encoder.flags[0].any()


class TestBitHelpers:
    def test_bytes_bits_round_trip(self):
        data = bytes(range(64))
        assert bits_to_bytes(bytes_to_bits(data)) == data
