"""Unit tests for the per-operation energy model (repro.energy.model)."""

import pytest

from repro.energy import (
    CORRECTION_ENERGY,
    EnergyBreakdown,
    EnergyModel,
    correction_energy,
)
from repro.engine.context import ControllerStats
from repro.pcm import PCMEnergy


class TestCorrectionEnergyTable:
    @pytest.mark.parametrize("scheme", ["ecp6", "safer32", "aegis17x31", "secded"])
    def test_every_supported_scheme_has_an_entry(self, scheme):
        entry = correction_energy(scheme)
        assert entry.name == scheme
        assert entry.check_gates > 0
        assert entry.commit_register_bits > 0

    def test_unknown_scheme_falls_back_to_ecp6(self):
        assert correction_energy("no-such-scheme") is CORRECTION_ENERGY["ecp6"]

    def test_check_and_commit_pricing(self):
        entry = correction_energy("ecp6")
        assert entry.check_pj(gate_pj=0.01) == pytest.approx(
            entry.check_gates * 0.01
        )
        assert entry.commit_pj(register_pj=0.1) == pytest.approx(
            entry.commit_register_bits * 0.1
        )


class TestEnergyBreakdown:
    def _breakdown(self):
        return EnergyBreakdown(
            array_set_pj=10.0, array_reset_pj=5.0,
            flag_set_pj=2.0, flag_reset_pj=1.0,
            correction_check_pj=3.0, correction_commit_pj=0.5,
            writes=4,
        )

    def test_groups_and_total_add_up(self):
        b = self._breakdown()
        assert b.array_pj == pytest.approx(15.0)
        assert b.flag_pj == pytest.approx(3.0)
        assert b.correction_pj == pytest.approx(3.5)
        assert b.total_pj == pytest.approx(21.5)
        assert b.per_write_pj == pytest.approx(21.5 / 4)

    def test_zero_writes_divides_to_zero(self):
        b = EnergyBreakdown(0, 0, 0, 0, 0, 0, writes=0)
        assert b.per_write_pj == 0.0

    def test_to_dict_is_json_ready_and_consistent(self):
        d = self._breakdown().to_dict()
        assert d["total_pj"] == pytest.approx(21.5)
        assert d["per_write_pj"] == pytest.approx(21.5 / 4)
        assert d["writes"] == 4


class TestEnergyModelPricing:
    def test_each_counter_prices_into_its_group(self):
        cell = PCMEnergy()
        stats = ControllerStats(
            demand_writes=10, compressed_writes=5, uncompressed_writes=4,
            set_flips=100, reset_flips=50,
            encoding_flag_set_flips=7, encoding_flag_reset_flips=3,
            repair_commits=2,
        )
        assert stats.stored_writes == 9  # derived, feeds the check term
        b = EnergyModel().breakdown(stats, scheme="safer32")
        assert b.array_set_pj == pytest.approx(100 * cell.set_pj_per_bit)
        assert b.array_reset_pj == pytest.approx(50 * cell.reset_pj_per_bit)
        assert b.flag_set_pj == pytest.approx(7 * cell.set_pj_per_bit)
        assert b.flag_reset_pj == pytest.approx(3 * cell.reset_pj_per_bit)
        entry = correction_energy("safer32")
        assert b.correction_check_pj == pytest.approx(9 * entry.check_pj())
        assert b.correction_commit_pj == pytest.approx(2 * entry.commit_pj())
        assert b.writes == 10

    def test_counter_source_is_duck_typed(self):
        class Sparse:  # pre-energy record: most counters absent
            set_flips = 8
            writes_issued = 2

        b = EnergyModel().breakdown(Sparse())
        assert b.array_set_pj > 0
        assert b.flag_pj == 0.0
        assert b.correction_pj == 0.0
        assert b.writes == 2

    def test_empty_stub_prices_to_all_zero(self):
        # PR 10 audit: the breakdown must never AttributeError on a
        # counter source that has *no* recognised fields at all (legacy
        # pickles, hand-rolled stat stubs).  Every term defaults to 0.
        class Empty:
            pass

        b = EnergyModel().breakdown(Empty())
        assert b.total_pj == 0.0
        assert b.pad_table_pj == 0.0
        assert b.writes == 0
        assert b.per_write_pj == 0.0

    def test_pad_table_writes_price_as_register_updates(self):
        from repro.energy.model import PAD_ENTRY_BITS

        class WolframStats:
            demand_writes = 4
            pad_table_writes = 10

        model = EnergyModel()
        b = model.breakdown(WolframStats())
        assert b.pad_table_pj == pytest.approx(
            10 * PAD_ENTRY_BITS * model.register_pj
        )
        assert b.total_pj == pytest.approx(b.pad_table_pj)
        assert b.to_dict()["pad_table_pj"] == pytest.approx(b.pad_table_pj)

    def test_legacy_lifetime_record_prices_without_pad_field(self):
        # Records pickled before the WoLFRaM backend lack the
        # pad_table_writes slot; pricing must read it as 0, and a
        # pre-PR10 EnergyBreakdown constructed without the new field
        # must stay buildable (default 0.0 keeps old call sites valid).
        from repro.lifetime.results import LifetimeResult

        legacy = LifetimeResult.__new__(LifetimeResult)
        object.__setattr__(legacy, "set_flips", 12)
        object.__setattr__(legacy, "reset_flips", 6)
        object.__setattr__(legacy, "writes_issued", 3)
        b = EnergyModel().breakdown(legacy)
        assert b.pad_table_pj == 0.0
        assert b.array_pj > 0.0
        old_style = EnergyBreakdown(1.0, 1.0, 0.0, 0.0, 0.0, 0.0, writes=1)
        assert old_style.pad_table_pj == 0.0
        assert old_style.total_pj == pytest.approx(2.0)

    def test_pricing_is_additive_over_stats_merge(self):
        # The Pareto sweep prices merged fleet records; pricing must
        # commute with the stats monoid for that to be sound.
        a = ControllerStats(
            demand_writes=5, compressed_writes=5, set_flips=40, reset_flips=10,
            encoding_flag_set_flips=4, repair_commits=1,
        )
        b = ControllerStats(
            demand_writes=3, uncompressed_writes=2, set_flips=15, reset_flips=25,
            encoding_flag_reset_flips=6, repair_commits=2,
        )
        model = EnergyModel()
        merged = model.breakdown(a.merge(b))
        merged_swapped = model.breakdown(b.merge(a))
        parts = (model.breakdown(a), model.breakdown(b))
        assert merged == merged_swapped
        assert merged.total_pj == pytest.approx(sum(p.total_pj for p in parts))
        assert merged.flag_pj == pytest.approx(sum(p.flag_pj for p in parts))
        assert merged.correction_pj == pytest.approx(
            sum(p.correction_pj for p in parts)
        )
