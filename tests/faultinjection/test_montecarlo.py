"""Unit tests for the Figure 9 Monte Carlo harness."""

import numpy as np
import pytest

from repro.correction import aegis17x31, ecp6, safer32
from repro.faultinjection import (
    PAPER_DATA_SIZES,
    block_survives,
    failure_probability,
    sweep,
    tolerable_faults,
)


@pytest.fixture(scope="module")
def ecp():
    return ecp6()


class TestBlockSurvives:
    def test_few_faults_always_survive(self, ecp):
        faults = np.array([0, 100, 200, 300, 400, 500])
        assert block_survives(ecp, faults, data_bytes=64)

    def test_full_line_dies_past_capability(self, ecp):
        assert not block_survives(ecp, np.arange(7), data_bytes=64)

    def test_small_window_escapes_cluster(self, ecp):
        # 20 faults in the first 3 bytes; a 16-byte window fits elsewhere.
        faults = np.arange(20)
        assert block_survives(ecp, faults, data_bytes=16)
        assert not block_survives(ecp, faults, data_bytes=64)

    def test_ecp_fast_path_matches_generic(self, ecp):
        from repro.core.window import find_window

        rng = np.random.default_rng(0)
        for _ in range(100):
            n = int(rng.integers(0, 60))
            faults = np.sort(rng.choice(512, size=n, replace=False))
            size = int(rng.integers(1, 65))
            fast = block_survives(ecp, faults, size)
            generic = find_window(faults, size, ecp) is not None
            assert fast == generic, (n, size)

    def test_wraparound_window_counts(self, ecp):
        # Faults at both ends: a circular window covering the middle is
        # the only survivor.
        faults = np.concatenate([np.arange(10), np.arange(502, 512)])
        assert block_survives(ecp, faults, data_bytes=32)


class TestFailureProbability:
    def test_zero_faults_never_fail(self, ecp):
        point = failure_probability(ecp, 32, 0, trials=10, rng=np.random.default_rng(0))
        assert point.failure_probability == 0.0

    def test_saturated_faults_always_fail(self, ecp):
        # One fault per byte everywhere: every window holds > 6 faults.
        point = failure_probability(ecp, 32, 512, trials=5, rng=np.random.default_rng(0))
        assert point.failure_probability == 1.0

    def test_ecp_64byte_is_step_function(self, ecp):
        rng = np.random.default_rng(1)
        below = failure_probability(ecp, 64, 6, 20, rng)
        above = failure_probability(ecp, 64, 7, 20, rng)
        assert below.failure_probability == 0.0
        assert above.failure_probability == 1.0

    def test_smaller_windows_tolerate_more(self, ecp):
        rng = np.random.default_rng(2)
        p_small = failure_probability(ecp, 8, 24, 150, rng).failure_probability
        p_large = failure_probability(ecp, 48, 24, 150, rng).failure_probability
        assert p_small < p_large

    def test_validation(self, ecp):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            failure_probability(ecp, 0, 4, 10, rng)
        with pytest.raises(ValueError):
            failure_probability(ecp, 32, 513, 10, rng)
        with pytest.raises(ValueError):
            failure_probability(ecp, 32, 4, 0, rng)


class TestPaperHeadlines:
    @pytest.mark.slow
    def test_tolerable_faults_ordering_at_32_bytes(self):
        # Figure 9's 0.5-failure-probability crossings at 32 bytes:
        # paper reports ~18 / ~38 / ~41 for ECP-6 / SAFER-32 / Aegis.
        ecp_val = tolerable_faults(ecp6(), 32, trials=60, seed=3)
        safer_val = tolerable_faults(safer32(), 32, trials=60, seed=3)
        aegis_val = tolerable_faults(aegis17x31(), 32, trials=60, seed=3)
        assert 14 <= ecp_val <= 26
        assert safer_val > 1.5 * ecp_val
        assert aegis_val > 1.5 * ecp_val

    def test_sweep_covers_grid(self):
        points = sweep(
            (ecp6(),), data_sizes=(16, 64), fault_counts=(0, 8, 16), trials=20
        )
        assert len(points) == 6
        assert {point.data_bytes for point in points} == {16, 64}

    def test_paper_data_sizes_sane(self):
        assert 1 in PAPER_DATA_SIZES and 64 in PAPER_DATA_SIZES
