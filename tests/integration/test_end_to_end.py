"""Cross-module integration tests.

These exercise the full stack the way the lifetime simulator does --
synthetic workload -> controller -> wear model -> correction --
and check the system-level invariants the unit tests cannot see.
"""

import numpy as np
import pytest

from repro.core import CompressedPCMController, EVALUATED_SYSTEMS, make_config
from repro.lifetime import LifetimeSimulator, build_simulator
from repro.pcm import EnduranceModel
from repro.traces import SyntheticWorkload, get_profile


@pytest.mark.parametrize("system", EVALUATED_SYSTEMS)
def test_reads_match_writes_until_death(system):
    """Every live line returns exactly the last data written to it,
    through compression, window sliding, rotation, and Start-Gap moves."""
    config = make_config(system, start_gap_psi=20)
    controller = CompressedPCMController(
        config=config,
        n_lines=12,
        endurance_model=EnduranceModel(mean=400, cov=0.15),
        rng=np.random.default_rng(0),
    )
    generator = SyntheticWorkload(get_profile("mcf"), n_lines=12, seed=1)
    last_written = {}
    for write in generator.iter_writes(2500):
        result = controller.write(write.line, write.data)
        if not result.lost:
            last_written[write.line] = write.data
        else:
            last_written.pop(write.line, None)

    checked = 0
    for line, expected in last_written.items():
        physical = controller.start_gap.map(line)
        if controller.dead[physical]:
            continue  # a later gap move can strand a line on a dead block
        assert controller.read(line) == expected, (system, line)
        checked += 1
    assert checked > 5


def test_flip_accounting_is_conserved():
    """Total programmed flips equals the sum of per-cell write counts."""
    controller = CompressedPCMController(
        config=make_config("comp_wf", start_gap_psi=50),
        n_lines=8,
        endurance_model=EnduranceModel(mean=10_000, cov=0.0),
        rng=np.random.default_rng(3),
    )
    generator = SyntheticWorkload(get_profile("gcc"), n_lines=8, seed=4)
    for write in generator.iter_writes(600):
        controller.write(write.line, write.data)
    assert controller.stats.total_flips == controller.memory.total_programmed_flips()


def test_compression_reduces_wear_for_compressible_streams():
    """Under milc, compression programs meaningfully fewer cells."""
    def flips(system):
        simulator = build_simulator(
            system, "milc", n_lines=32, endurance_mean=10**6, seed=5
        )
        return simulator.run(max_writes=6000).flips_per_write

    assert flips("comp") < 0.8 * flips("baseline")


@pytest.mark.slow
def test_all_systems_reach_failure_and_order_sanely():
    """On a compression-friendly workload the systems' lifetimes are
    ordered baseline <= comp <= comp_wf (the Figure 10 milc column)."""
    lifetimes = {}
    for system in ("baseline", "comp", "comp_wf"):
        simulator = build_simulator(
            system, "milc", n_lines=48, endurance_mean=30, seed=6
        )
        result = simulator.run(max_writes=1_500_000)
        assert result.failed, system
        lifetimes[system] = result.writes_issued
    assert lifetimes["comp"] > lifetimes["baseline"]
    assert lifetimes["comp_wf"] > lifetimes["baseline"]


@pytest.mark.slow
def test_trace_replay_equals_generator_distribution():
    """Replaying a saved trace produces the same lifetime as streaming
    the generator that produced it (same writes, same order)."""
    generator = SyntheticWorkload(get_profile("sjeng"), n_lines=16, seed=7)
    trace = generator.generate_trace(3000)

    replay = LifetimeSimulator(
        config=make_config("comp_wf"),
        source=trace,
        n_lines=16,
        endurance_mean=25,
        seed=8,
    ).run(max_writes=1_000_000)
    assert replay.failed
    assert replay.workload == "sjeng"


def test_dead_fraction_monotonically_reaches_threshold():
    simulator = build_simulator("baseline", "lbm", n_lines=24, endurance_mean=15, seed=9)
    result = simulator.run(max_writes=1_000_000)
    assert result.failed
    assert result.dead_fraction >= 0.5
    assert result.deaths >= result.n_lines // 2
