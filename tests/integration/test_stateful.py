"""Hypothesis stateful test: controller correctness under random ops.

A rule-based state machine throws arbitrary interleavings of writes
(compressible and not, across lines and systems) at the controller and
checks the global invariants after every step:

* a read returns exactly the last successfully written data, unless
  the backing physical block died;
* flip accounting matches the wear model's ground truth;
* the dead set only grows for systems without revival.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core import CompressedPCMController, make_config
from repro.pcm import EnduranceModel

N_LINES = 6

payloads = st.one_of(
    st.just(bytes(64)),
    st.binary(min_size=64, max_size=64),
    st.integers(min_value=0, max_value=2**30).map(
        lambda base: (np.arange(16) + base).astype(np.uint32).tobytes()
    ),
    st.integers(min_value=0, max_value=255).map(lambda byte: bytes([byte]) * 64),
)


class ControllerMachine(RuleBasedStateMachine):
    @initialize(
        system=st.sampled_from(["baseline", "comp", "comp_w", "comp_wf"]),
        endurance=st.integers(min_value=30, max_value=500),
        seed=st.integers(min_value=0, max_value=2**16),
        # Tiny rotation periods so intra-line wear-leveling rotates
        # (often repeatedly, wrapping offsets) within a 30-step run.
        intra_limit=st.sampled_from([1, 3, 7, 2**16]),
    )
    def setup(self, system, endurance, seed, intra_limit):
        self.config = make_config(
            system, start_gap_psi=17, intra_counter_limit=intra_limit
        )
        self.controller = CompressedPCMController(
            config=self.config,
            n_lines=N_LINES,
            endurance_model=EnduranceModel(mean=endurance, cov=0.1),
            rng=np.random.default_rng(seed),
        )
        self.shadow = {}
        self.max_deaths_seen = 0

    @rule(line=st.integers(min_value=0, max_value=N_LINES - 1), data=payloads)
    def write(self, line, data):
        result = self.controller.write(line, data)
        if result.lost:
            self.shadow.pop(line, None)
        else:
            self.shadow[line] = data

    @invariant()
    def reads_match_shadow(self):
        if not hasattr(self, "controller"):
            return
        for line, expected in self.shadow.items():
            physical = self.controller.start_gap.map(line)
            if self.controller.dead[physical]:
                continue  # data stranded by a later death or gap move
            assert self.controller.read(line) == expected

    @invariant()
    def flip_accounting_consistent(self):
        if not hasattr(self, "controller"):
            return
        stats = self.controller.stats
        assert stats.set_flips + stats.reset_flips == stats.total_flips
        assert stats.total_flips == self.controller.memory.total_programmed_flips()

    @invariant()
    def intra_wl_registers_in_range(self):
        if not hasattr(self, "controller"):
            return
        leveler = self.controller.intra_wl
        if leveler is None:
            return
        for bank in range(leveler.n_banks):
            assert 0 <= leveler.offset(bank) < leveler.line_bytes
            assert 0 <= leveler._counters[bank] < leveler.counter_limit
        # Every saturation rotated exactly once, and only landed writes
        # advance the counters (lost/dying writes never note_commit):
        # residues plus rotations*period reconstruct the stored total.
        recorded = sum(leveler._counters) + leveler.rotations * leveler.counter_limit
        assert recorded == self.controller.stats.stored_writes

    @invariant()
    def deaths_monotone_without_revival(self):
        if not hasattr(self, "controller"):
            return
        if not self.config.use_dead_block_revival:
            assert self.controller.stats.revivals == 0
        deaths = self.controller.stats.deaths
        assert deaths >= self.max_deaths_seen
        self.max_deaths_seen = deaths


TestControllerMachine = ControllerMachine.TestCase
TestControllerMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
