"""Unit tests for workload profiles (Table III data)."""

import numpy as np
import pytest

from repro.traces import (
    PROFILES,
    WORKLOAD_ORDER,
    CompressibilityClass,
    SizeShape,
    WorkloadProfile,
    get_profile,
    tilted_weights,
)


def test_fifteen_workloads():
    assert len(PROFILES) == 15
    assert set(WORKLOAD_ORDER) == set(PROFILES)


def test_table3_values_spotcheck():
    assert PROFILES["lbm"].wpki == 15.6
    assert PROFILES["lbm"].cr == 0.79
    assert PROFILES["cactusADM"].cr == 0.03
    assert PROFILES["mcf"].wpki == 10.35
    assert PROFILES["sjeng"].cr == 0.08


def test_compressibility_classes_match_table3():
    # H: CR < 0.3; L: CR >= 0.7; M otherwise.
    for profile in PROFILES.values():
        if profile.cr < 0.3:
            assert profile.comp_class is CompressibilityClass.HIGH, profile.name
        elif profile.cr >= 0.7:
            assert profile.comp_class is CompressibilityClass.LOW, profile.name
        else:
            assert profile.comp_class is CompressibilityClass.MEDIUM, profile.name


def test_high_class_membership():
    high = {n for n, p in PROFILES.items() if p.comp_class is CompressibilityClass.HIGH}
    assert high == {"cactusADM", "milc", "sjeng", "zeusmp"}


def test_volatile_apps_have_high_size_change():
    # Figure 6's outliers.
    assert PROFILES["bzip2"].size_change_prob > 0.6
    assert PROFILES["gcc"].size_change_prob > 0.6
    assert PROFILES["hmmer"].size_change_prob < 0.2


def test_mean_compressed_bytes():
    assert PROFILES["gcc"].mean_compressed_bytes == pytest.approx(32.0)


def test_size_class_distribution_mean():
    for profile in PROFILES.values():
        classes, weights = profile.size_class_distribution()
        assert weights.sum() == pytest.approx(1.0)
        assert classes @ weights == pytest.approx(
            profile.mean_compressed_bytes, abs=1e-6
        )


def test_tilted_weights_edge_cases():
    classes = np.array([1.0, 10.0, 64.0])
    for target in (2.0, 25.0, 60.0):
        weights = tilted_weights(classes, target)
        assert np.all(weights > 0)
        assert classes @ weights == pytest.approx(target, abs=1e-6)
    with pytest.raises(ValueError):
        tilted_weights(classes, 0.5)
    with pytest.raises(ValueError):
        tilted_weights(classes, 65.0)


def test_get_profile():
    assert get_profile("milc").name == "milc"
    with pytest.raises(ValueError, match="unknown workload"):
        get_profile("perlbench")


def test_profile_validation():
    kwargs = dict(
        name="x", wpki=1.0, cr=0.5, comp_class=CompressibilityClass.MEDIUM,
        shape=SizeShape.MID, size_change_prob=0.5, jump_prob=0.5,
        bdi_fraction=0.5, turbulence=0.5,
    )
    WorkloadProfile(**kwargs)  # valid
    with pytest.raises(ValueError):
        WorkloadProfile(**{**kwargs, "cr": 0.0})
    with pytest.raises(ValueError):
        WorkloadProfile(**{**kwargs, "wpki": 0.0})
    with pytest.raises(ValueError):
        WorkloadProfile(**{**kwargs, "turbulence": 1.5})
