"""Unit tests for trace containers and IO."""

import pytest

from repro.traces import (
    Trace,
    TraceFormatError,
    WriteBack,
    load_trace,
    save_trace,
)


def make_trace():
    trace = Trace(workload="demo", n_lines=8)
    trace.append(WriteBack(line=0, data=bytes(64)))
    trace.append(WriteBack(line=3, data=bytes(range(64))))
    trace.append(WriteBack(line=3, data=b"\xff" * 64))
    return trace


def test_writeback_validation():
    with pytest.raises(ValueError):
        WriteBack(line=-1, data=bytes(64))
    with pytest.raises(ValueError):
        WriteBack(line=0, data=bytes(10))


def test_trace_append_bounds():
    trace = Trace(workload="demo", n_lines=2)
    with pytest.raises(ValueError):
        trace.append(WriteBack(line=2, data=bytes(64)))


def test_trace_accessors():
    trace = make_trace()
    assert len(trace) == 3
    assert trace[1].line == 3
    assert trace.lines_touched() == {0, 3}
    assert trace.writes_per_line() == {0: 1, 3: 2}
    assert [write.line for write in trace] == [0, 3, 3]


def test_roundtrip_io(tmp_path):
    trace = make_trace()
    path = tmp_path / "demo.trace"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.workload == trace.workload
    assert loaded.n_lines == trace.n_lines
    assert list(loaded) == list(trace)


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_bytes(b"not a trace at all")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_load_rejects_truncation(tmp_path):
    trace = make_trace()
    path = tmp_path / "trunc.trace"
    save_trace(trace, path)
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_unicode_workload_names(tmp_path):
    trace = Trace(workload="hämmer", n_lines=4)
    trace.append(WriteBack(line=1, data=bytes(64)))
    path = tmp_path / "unicode.trace"
    save_trace(trace, path)
    assert load_trace(path).workload == "hämmer"
