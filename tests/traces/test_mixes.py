"""Unit tests for multiprogrammed workload mixes."""

import numpy as np
import pytest

from repro.traces import MixMember, MixedWorkload, get_profile


def two_way(n_lines=64, seed=0, shares=(1.0, 1.0)):
    return MixedWorkload(
        [
            MixMember(get_profile("milc"), share=shares[0]),
            MixMember(get_profile("lbm"), share=shares[1]),
        ],
        n_lines=n_lines,
        seed=seed,
    )


def test_writes_stay_in_bounds():
    mix = two_way()
    for write in mix.iter_writes(500):
        assert 0 <= write.line < 64
        assert len(write.data) == 64


def test_partitions_are_disjoint():
    mix = two_way(n_lines=64)
    milc_lines = set()
    lbm_lines = set()
    # milc occupies the first half of the address space, lbm the rest.
    for write in mix.iter_writes(3000):
        (milc_lines if write.line < 32 else lbm_lines).add(write.line)
    assert milc_lines and lbm_lines
    assert max(milc_lines) < 32 <= min(lbm_lines)


def test_traffic_weighted_by_wpki():
    mix = two_way(n_lines=64, seed=1)
    lbm_writes = sum(1 for write in mix.iter_writes(4000) if write.line >= 32)
    # lbm's WPKI (15.6) dwarfs milc's (3.4): expect ~82% of the traffic.
    assert 0.7 < lbm_writes / 4000 < 0.95


def test_shares_control_partition_sizes():
    mix = MixedWorkload(
        [
            MixMember(get_profile("milc"), share=3.0),
            MixMember(get_profile("lbm"), share=1.0),
        ],
        n_lines=64,
        seed=2,
    )
    milc_max = max(
        write.line for write in mix.iter_writes(3000) if write.line < 48
    )
    assert milc_max < 48  # milc got ~3/4 of the lines


def test_name_and_members():
    mix = two_way()
    assert mix.name == "mix(milc+lbm)"
    assert len(mix.members) == 2


def test_generate_trace():
    trace = two_way().generate_trace(200)
    assert len(trace) == 200
    assert trace.workload == "mix(milc+lbm)"


def test_runs_through_lifetime_simulator():
    from repro.core import comp_wf
    from repro.lifetime import LifetimeSimulator

    simulator = LifetimeSimulator(
        config=comp_wf(),
        source=two_way(n_lines=32, seed=3),
        n_lines=32,
        endurance_mean=20,
        seed=4,
    )
    result = simulator.run(max_writes=600_000)
    assert result.failed
    assert result.workload == "mix(milc+lbm)"


def test_compressibility_is_heterogeneous():
    from repro.compression import BestOfCompressor

    best = BestOfCompressor()
    mix = two_way(n_lines=64, seed=5)
    milc_sizes, lbm_sizes = [], []
    for write in mix.iter_writes(2500):
        size = best.compress(write.data).size_bytes
        (milc_sizes if write.line < 32 else lbm_sizes).append(size)
    assert np.mean(milc_sizes) < np.mean(lbm_sizes)  # milc compresses better


def test_validation():
    with pytest.raises(ValueError):
        MixedWorkload([], n_lines=16)
    with pytest.raises(ValueError):
        MixMember(get_profile("milc"), share=0)
    with pytest.raises(ValueError):
        MixedWorkload([MixMember(get_profile("milc"))] * 5, n_lines=3)
