"""Unit tests for the write-back LLC model."""

import pytest

from repro.traces import WritebackCache


def small_cache(ways=2, sets=4):
    return WritebackCache(capacity_bytes=ways * sets * 64, line_bytes=64, ways=ways)


def payload(tag):
    return bytes([tag]) * 64


def test_geometry():
    cache = WritebackCache(capacity_bytes=4 * 2**20, line_bytes=64, ways=8)
    assert cache.sets == 4 * 2**20 // 64 // 8


def test_read_miss_then_hit():
    cache = small_cache()
    assert cache.access(0) is None  # miss, clean fill
    assert cache.access(0) is None  # hit
    assert cache.stats.accesses == 2
    assert cache.stats.hits == 1
    assert cache.stats.reads_to_memory == 1


def test_dirty_eviction_produces_writeback():
    cache = small_cache(ways=2, sets=1)
    cache.access(0, payload(1))
    cache.access(1, payload(2))
    evicted = cache.access(2)  # evicts line 0 (LRU), which is dirty
    assert evicted is not None
    assert evicted.line == 0
    assert evicted.data == payload(1)
    assert cache.stats.writebacks == 1


def test_clean_eviction_is_silent():
    cache = small_cache(ways=2, sets=1)
    cache.access(0)
    cache.access(1)
    assert cache.access(2) is None  # line 0 clean, dropped silently
    assert cache.stats.writebacks == 0


def test_lru_updated_on_hit():
    cache = small_cache(ways=2, sets=1)
    cache.access(0, payload(1))
    cache.access(1, payload(2))
    cache.access(0)  # touch 0 so 1 becomes LRU
    evicted = cache.access(2)
    assert evicted.line == 1


def test_write_hit_marks_dirty():
    cache = small_cache(ways=2, sets=1)
    cache.access(0)  # clean fill
    cache.access(0, payload(9))  # write hit
    cache.access(1)
    evicted = cache.access(2)
    assert evicted.line == 0
    assert evicted.data == payload(9)


def test_set_mapping_isolates_conflicts():
    cache = small_cache(ways=1, sets=4)
    cache.access(0, payload(1))
    cache.access(1, payload(2))  # different set, no eviction
    assert cache.stats.writebacks == 0
    evicted = cache.access(4, payload(3))  # same set as line 0
    assert evicted.line == 0


def test_flush_drains_dirty_lines():
    cache = small_cache()
    cache.access(0, payload(1))
    cache.access(1, payload(2))
    cache.access(2)
    flushed = cache.flush()
    assert {write.line for write in flushed} == {0, 1}
    assert cache.flush() == []


def test_hit_rate():
    cache = small_cache()
    for _ in range(4):
        cache.access(0)
    assert cache.stats.hit_rate == pytest.approx(0.75)


def test_validation():
    with pytest.raises(ValueError):
        WritebackCache(capacity_bytes=0)
    with pytest.raises(ValueError):
        WritebackCache(capacity_bytes=100, line_bytes=64, ways=3)
    cache = small_cache()
    with pytest.raises(ValueError):
        cache.access(-1)
    with pytest.raises(ValueError):
        cache.access(0, b"short")
