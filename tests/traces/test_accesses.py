"""Unit tests for the access-stream -> LLC front-end."""

import numpy as np
import pytest

from repro.traces import (
    AccessStreamGenerator,
    CachedWorkload,
    get_profile,
)


class TestAccessStreamGenerator:
    def test_accesses_in_bounds(self):
        generator = AccessStreamGenerator(n_lines=32, seed=0)
        for _ in range(500):
            access = generator.next_access()
            assert 0 <= access.line < 32

    def test_write_ratio_respected(self):
        generator = AccessStreamGenerator(n_lines=64, write_ratio=0.3, seed=1)
        writes = sum(generator.next_access().is_write for _ in range(4000))
        assert 0.25 < writes / 4000 < 0.35

    def test_sequential_runs_exist(self):
        generator = AccessStreamGenerator(n_lines=256, sequential_run=6, seed=2)
        lines = [generator.next_access().line for _ in range(2000)]
        sequential = sum(
            1 for a, b in zip(lines, lines[1:]) if b == (a + 1) % 256
        )
        assert sequential > 200  # plenty of next-line accesses

    def test_hot_lines_exist(self):
        generator = AccessStreamGenerator(n_lines=512, zipf_alpha=1.0, seed=3)
        lines = [generator.next_access().line for _ in range(5000)]
        _, counts = np.unique(lines, return_counts=True)
        assert counts.max() > 5 * np.median(counts)

    def test_validation(self):
        with pytest.raises(ValueError):
            AccessStreamGenerator(n_lines=0)
        with pytest.raises(ValueError):
            AccessStreamGenerator(n_lines=4, write_ratio=2.0)
        with pytest.raises(ValueError):
            AccessStreamGenerator(n_lines=4, sequential_run=0)


class TestCachedWorkload:
    def make(self, capacity=4 * 1024, seed=0):
        return CachedWorkload(
            get_profile("mcf"), n_lines=256,
            cache_capacity_bytes=capacity, seed=seed,
        )

    def test_produces_valid_writebacks(self):
        workload = self.make()
        for _ in range(100):
            write = workload.next_write()
            assert 0 <= write.line < 256
            assert len(write.data) == 64

    def test_bigger_cache_filters_more(self):
        small = self.make(capacity=2 * 1024, seed=4)
        large = self.make(capacity=8 * 1024, seed=4)
        for workload in (small, large):
            for _ in range(150):
                workload.next_write()
        assert large.accesses_issued > small.accesses_issued  # fewer evictions
        assert large.measured_wpki() < small.measured_wpki()

    def test_wpki_positive_after_run(self):
        workload = self.make()
        assert workload.measured_wpki() == 0.0
        for _ in range(50):
            workload.next_write()
        assert workload.measured_wpki() > 0

    def test_runs_through_lifetime_simulator(self):
        from repro.core import comp_wf
        from repro.lifetime import LifetimeSimulator

        # The cache (8 entries) must be far smaller than the working
        # set (32 lines) or no write-backs ever reach the PCM.
        workload = CachedWorkload(
            get_profile("milc"), n_lines=32,
            cache_capacity_bytes=512, cache_ways=2, seed=5,
        )
        simulator = LifetimeSimulator(
            config=comp_wf(), source=workload, n_lines=32,
            endurance_mean=15, seed=6,
        )
        result = simulator.run(max_writes=400_000)
        assert result.failed
        assert result.workload == "cached(milc)"

    def test_oversized_cache_raises_instead_of_spinning(self):
        workload = CachedWorkload(
            get_profile("milc"), n_lines=8,
            cache_capacity_bytes=64 * 1024, seed=7,
        )
        with pytest.raises(RuntimeError, match="no write-backs"):
            workload.next_write()

    def test_write_to_rejects_bad_line(self):
        from repro.traces import SyntheticWorkload

        generator = SyntheticWorkload(get_profile("mcf"), n_lines=8, seed=0)
        with pytest.raises(IndexError):
            generator.write_to(8)
