"""Unit and statistical tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.compression import BestOfCompressor, size_change_probability
from repro.traces import PROFILES, PayloadModel, SyntheticWorkload, get_profile


@pytest.fixture(scope="module")
def best():
    return BestOfCompressor()


class TestPayloadModel:
    def test_fpc_sizes_are_monotone_in_word_count(self, best):
        model = PayloadModel(np.random.default_rng(0))
        sizes = [best.compress(model.make_fpc(r)).size_bytes for r in range(17)]
        assert sizes[0] == 1  # all zeros
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == 64

    def test_bdi_variant_sizes(self, best):
        model = PayloadModel(np.random.default_rng(1))
        expected = {"zeros": 1, "rep8": 8, "b8d1": 16, "b8d2": 24, "b8d4": 40}
        for variant, size in expected.items():
            for _ in range(5):
                line = model.make_bdi(variant)
                assert best.compress(line).size_bytes == size, variant

    def test_raw_is_incompressible(self, best):
        model = PayloadModel(np.random.default_rng(2))
        assert best.compress(model.make_bdi("raw")).size_bytes == 64

    def test_fpc_perturbation_preserves_size(self, best):
        model = PayloadModel(np.random.default_rng(3))
        for r in (1, 4, 8, 12):
            line = model.make_fpc(r)
            size = best.compress(line).size_bytes
            for _ in range(10):
                line = model.perturb_fpc(line, r, turbulence=0.5)
                assert best.compress(line).size_bytes == size

    def test_bdi_perturbation_preserves_size(self, best):
        model = PayloadModel(np.random.default_rng(4))
        for variant in ("rep8", "b8d1", "b8d2", "b8d4", "raw"):
            line = model.make_bdi(variant)
            size = best.compress(line).size_bytes
            for _ in range(10):
                line = model.perturb_bdi(line, variant, turbulence=0.3)
                assert best.compress(line).size_bytes == size, variant

    def test_perturbation_changes_few_bits(self):
        from repro.pcm import bit_flips

        model = PayloadModel(np.random.default_rng(5))
        line = model.make_fpc(8)
        perturbed = model.perturb_fpc(line, 8, turbulence=0.25)
        assert 0 < bit_flips(line, perturbed) < 64

    def test_bad_inputs(self):
        model = PayloadModel(np.random.default_rng(6))
        with pytest.raises(ValueError):
            model.make_fpc(17)
        with pytest.raises(ValueError):
            model.make_bdi("b2d1")


class TestSyntheticWorkload:
    def test_writes_are_well_formed(self):
        gen = SyntheticWorkload(get_profile("gcc"), n_lines=64, seed=0)
        for write in gen.iter_writes(200):
            assert 0 <= write.line < 64
            assert len(write.data) == 64

    def test_deterministic_given_seed(self):
        a = SyntheticWorkload(get_profile("mcf"), n_lines=64, seed=9)
        b = SyntheticWorkload(get_profile("mcf"), n_lines=64, seed=9)
        for wa, wb in zip(a.iter_writes(100), b.iter_writes(100)):
            assert wa == wb

    def test_generate_trace(self):
        gen = SyntheticWorkload(get_profile("milc"), n_lines=32, seed=1)
        trace = gen.generate_trace(500)
        assert len(trace) == 500
        assert trace.workload == "milc"
        assert trace.lines_touched() <= set(range(32))

    def test_zipf_skew_concentrates_writes(self):
        gen = SyntheticWorkload(get_profile("lbm"), n_lines=512, seed=2)
        trace = gen.generate_trace(5000)
        counts = sorted(trace.writes_per_line().values(), reverse=True)
        top_decile = sum(counts[: max(1, len(counts) // 10)])
        assert top_decile > 0.2 * len(trace)  # hot lines exist

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_compression_ratio_matches_table3(self, best, name):
        profile = PROFILES[name]
        gen = SyntheticWorkload(profile, n_lines=256, seed=1)
        sizes = [
            best.compress(write.data).size_bytes for write in gen.iter_writes(2500)
        ]
        measured = np.mean(sizes) / 64
        assert measured == pytest.approx(profile.cr, abs=0.09), name

    def test_size_change_ordering_matches_figure6(self, best):
        def measured_change(name):
            gen = SyntheticWorkload(get_profile(name), n_lines=128, seed=3)
            per_line = {}
            for write in gen.iter_writes(3000):
                size = best.compress(write.data).size_bytes
                per_line.setdefault(write.line, []).append(size)
            rates = [
                size_change_probability(sizes)
                for sizes in per_line.values()
                if len(sizes) > 3
            ]
            return np.mean(rates)

        volatile = measured_change("bzip2")
        stable = measured_change("hmmer")
        compressible = measured_change("zeusmp")
        assert volatile > 2 * stable
        assert compressible < 0.15

    def test_needs_positive_lines(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(get_profile("gcc"), n_lines=0)
