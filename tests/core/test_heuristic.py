"""Unit tests for the Figure 8 bit-flip heuristic."""

import pytest

from repro.core import BitFlipHeuristic, LineMetadata


@pytest.fixture()
def heuristic():
    return BitFlipHeuristic(threshold1=16, threshold2=8)


def test_step1_small_writes_always_compress(heuristic):
    meta = LineMetadata(sc=3, stored_size=64)  # even a saturated counter
    decision = heuristic.decide(meta, new_size=8)
    assert decision.compress
    assert decision.step == 1
    assert meta.sc == 3  # step 1 leaves SC untouched


def test_step2_saturated_counter_blocks_compression(heuristic):
    meta = LineMetadata(sc=3, stored_size=40)
    decision = heuristic.decide(meta, new_size=40)
    assert not decision.compress
    assert decision.step == 2
    assert meta.sc == 3


def test_step3_stable_sizes_decrement(heuristic):
    meta = LineMetadata(sc=2, stored_size=32)
    decision = heuristic.decide(meta, new_size=36)  # |32-36| < 8
    assert decision.compress
    assert decision.step == 3
    assert meta.sc == 1


def test_step3_volatile_sizes_increment(heuristic):
    meta = LineMetadata(sc=1, stored_size=20)
    decision = heuristic.decide(meta, new_size=40)  # |20-40| >= 8
    assert decision.compress
    assert meta.sc == 2


def test_volatile_block_converges_to_uncompressed(heuristic):
    """A block alternating between two far-apart sizes saturates SC and
    stops being compressed -- the Figure 8 design goal."""
    meta = LineMetadata(sc=0, stored_size=24)
    sizes = [48, 20, 52, 24, 56, 28]
    decisions = []
    for size in sizes:
        decision = heuristic.decide(meta, size)
        decisions.append(decision)
        meta.stored_size = size if decision.compress else 64
    assert decisions[-1].step == 2
    assert not decisions[-1].compress


def test_stable_block_keeps_compressing(heuristic):
    meta = LineMetadata(sc=2, stored_size=30)
    for _ in range(10):
        decision = heuristic.decide(meta, new_size=32)
        assert decision.compress
        meta.stored_size = 32
    assert meta.sc == 0


def test_boundary_semantics(heuristic):
    # new_size == threshold1 is NOT "less than".
    meta = LineMetadata(sc=3)
    assert heuristic.decide(meta, new_size=15).step == 1
    assert heuristic.decide(meta, new_size=16).step == 2
    # |old - new| == threshold2 counts as a significant change.
    meta2 = LineMetadata(sc=0, stored_size=24)
    heuristic.decide(meta2, new_size=32)
    assert meta2.sc == 1


def test_validation():
    with pytest.raises(ValueError):
        BitFlipHeuristic(threshold1=0)
    with pytest.raises(ValueError):
        BitFlipHeuristic(threshold2=-1)
    heuristic = BitFlipHeuristic()
    with pytest.raises(ValueError):
        heuristic.decide(LineMetadata(), new_size=0)
    with pytest.raises(ValueError):
        heuristic.decide(LineMetadata(), new_size=65)
