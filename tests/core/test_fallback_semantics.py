"""The uncompressed->compressed rescue is a Comp+WF-only behaviour.

Section III-A.3/4: Comp and Comp+W give a block up the first time a
write cannot be stored in its chosen format; only the advanced
hard-error definition keeps using the block while the *compressed*
form still fits.  These tests pin that semantic difference, which is
what produces Figure 10's Comp degradation on volatile workloads.
"""

import numpy as np

from repro.core import CompressedPCMController, comp, comp_wf
from repro.pcm import EnduranceModel


def controller_for(config, endurance=25, seed=11):
    return CompressedPCMController(
        config=config,
        n_lines=4,
        endurance_model=EnduranceModel(mean=endurance, cov=0.0),
        rng=np.random.default_rng(seed),
    )


def wear_out_line(controller, line, writes=4000, seed=12):
    """Alternate far-apart compressed sizes until the block dies.

    The size swings saturate the Figure 8 counter, so the heuristic
    demands *uncompressed* storage -- the case where only Comp+WF's
    compressed fallback can keep a worn block alive.
    """
    from repro.traces import PayloadModel

    model = PayloadModel(np.random.default_rng(seed))
    for step in range(writes):
        # Alternate a tiny write (always compressed, hammers the LSB
        # window) with a mid-size one (stored raw once SC saturates).
        # Faults therefore cluster at the LSB: the full line becomes
        # unusable while a slid 41-byte window is still healthy.
        payload = model.make_fpc(1 if step % 2 else 9)
        result = controller.write(line, payload)
        if result.died:
            return step + 1
    return None


def test_comp_dies_on_unstorable_uncompressed_write():
    controller = controller_for(comp(start_gap_psi=10**9))
    died_at = wear_out_line(controller, 0)
    assert died_at is not None
    assert controller.stats.deaths >= 1


def test_comp_wf_outlives_comp_via_compressed_fallback():
    comp_controller = controller_for(comp(start_gap_psi=10**9))
    wf_controller = controller_for(comp_wf(start_gap_psi=10**9))
    comp_death = wear_out_line(comp_controller, 0)
    wf_death = wear_out_line(wf_controller, 0)
    assert comp_death is not None
    # Comp+WF either survives the whole run or dies strictly later.
    assert wf_death is None or wf_death > comp_death


def test_fallback_never_triggers_for_baseline():
    from repro.core import baseline

    controller = controller_for(baseline(start_gap_psi=10**9), endurance=10)
    died_at = wear_out_line(controller, 0, writes=2000)
    assert died_at is not None
    # Baseline stores nothing compressed, before or after deaths.
    assert controller.stats.compressed_writes == 0
