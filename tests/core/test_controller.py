"""Unit and integration tests for the compression-aware controller."""

import numpy as np
import pytest

from repro.core import CompressedPCMController, baseline, comp, comp_w, comp_wf
from repro.pcm import EnduranceModel


def make_controller(config, n_lines=16, endurance=500, cov=0.0, seed=0, **kwargs):
    return CompressedPCMController(
        config=config,
        n_lines=n_lines,
        endurance_model=EnduranceModel(mean=endurance, cov=cov),
        rng=np.random.default_rng(seed),
        **kwargs,
    )


def compressible_line(tag=0):
    words = (np.arange(16) + (1 << 20) + int(tag)).astype(np.uint32)
    return words.tobytes()


def incompressible_line(seed=0):
    return np.random.default_rng(seed).bytes(64)


class TestBasicOperation:
    def test_write_then_read_roundtrip_compressed(self):
        controller = make_controller(comp_wf())
        data = compressible_line()
        result = controller.write(3, data)
        assert result.compressed
        assert controller.read(3) == data

    def test_write_then_read_roundtrip_uncompressed(self):
        controller = make_controller(baseline())
        data = incompressible_line()
        controller.write(3, data)
        assert controller.read(3) == data
        assert controller.stats.uncompressed_writes >= 1

    def test_many_lines_roundtrip(self):
        controller = make_controller(comp_wf(), n_lines=8)
        rng = np.random.default_rng(1)
        last = {}
        for step in range(300):
            line = int(rng.integers(0, 8))
            data = compressible_line(step) if step % 2 else incompressible_line(step)
            controller.write(line, data)
            last[line] = data
        for line, data in last.items():
            assert controller.read(line) == data

    def test_unwritten_line_reads_none(self):
        controller = make_controller(comp_wf())
        assert controller.read(0) is None

    def test_rejects_bad_payload_size(self):
        controller = make_controller(comp_wf())
        with pytest.raises(ValueError):
            controller.write(0, b"short")


class TestCompressionDecisions:
    def test_baseline_never_compresses(self):
        controller = make_controller(baseline())
        for step in range(20):
            controller.write(step % 4, compressible_line(step))
        assert controller.stats.compressed_writes == 0

    def test_comp_compresses_compressible_data(self):
        controller = make_controller(comp())
        controller.write(0, compressible_line())
        assert controller.stats.compressed_writes == 1

    def test_incompressible_data_stored_raw(self):
        controller = make_controller(comp())
        result = controller.write(0, incompressible_line())
        assert not result.compressed
        assert result.size_bytes == 64

    def test_heuristic_steps_recorded(self):
        controller = make_controller(comp_wf())
        controller.write(0, bytes(64))  # tiny: step 1
        assert controller.stats.heuristic_steps.get(1, 0) >= 1


class TestWearAndDeath:
    def test_blocks_die_under_hammering(self):
        controller = make_controller(baseline(), n_lines=4, endurance=8, seed=2)
        rng = np.random.default_rng(3)
        for _ in range(600):
            controller.write(0, rng.bytes(64))
        assert controller.stats.deaths > 0
        assert controller.dead_fraction > 0

    def test_dead_block_write_is_lost(self):
        controller = make_controller(
            comp(start_gap_psi=10_000), n_lines=4, endurance=6, seed=2
        )
        rng = np.random.default_rng(4)
        for _ in range(800):
            controller.write(1, rng.bytes(64))
        assert controller.stats.lost_writes > 0

    def test_compression_survives_more_faults_than_ecp6(self):
        # The headline mechanism: with compressed data the block keeps
        # working past 6 faults by sliding the window.
        controller = make_controller(
            comp(start_gap_psi=10**9), n_lines=2, endurance=20, seed=5
        )
        rng = np.random.default_rng(6)
        deaths_seen = 0
        max_faults_while_alive = 0
        for step in range(4000):
            result = controller.write(0, compressible_line(rng.integers(1 << 16)))
            if result.died:
                deaths_seen += 1
                break
            physical = controller.start_gap.map(0)
            max_faults_while_alive = max(
                max_faults_while_alive, controller.memory.fault_count(physical)
            )
        assert max_faults_while_alive > 6

    def test_death_records_fault_count(self):
        controller = make_controller(baseline(), n_lines=2, endurance=8, seed=7)
        rng = np.random.default_rng(8)
        for _ in range(1000):
            controller.write(0, rng.bytes(64))
            if controller.stats.deaths:
                break
        assert controller.average_faults_per_dead_block() >= 7


class TestRevival:
    def test_comp_wf_revives_dead_blocks(self):
        controller = make_controller(
            comp_wf(start_gap_psi=5), n_lines=8, endurance=15, seed=9
        )
        rng = np.random.default_rng(10)
        for step in range(4000):
            line = int(rng.integers(0, 8))
            if step % 3:
                controller.write(line, bytes(64))  # highly compressible
            else:
                controller.write(line, rng.bytes(64))
            if controller.stats.revivals > 0:
                break
        assert controller.stats.revivals > 0

    def test_comp_w_never_revives(self):
        controller = make_controller(
            comp_w(start_gap_psi=5), n_lines=8, endurance=15, seed=9
        )
        rng = np.random.default_rng(10)
        for step in range(4000):
            line = int(rng.integers(0, 8))
            data = bytes(64) if step % 3 else rng.bytes(64)
            controller.write(line, data)
        assert controller.stats.revivals == 0


class TestWearLeveling:
    def test_start_gap_moves_cost_writes(self):
        controller = make_controller(comp(start_gap_psi=10), n_lines=8)
        for step in range(100):
            controller.write(step % 8, compressible_line(step))
        assert controller.stats.gap_move_writes > 0

    def test_intra_wl_rotates_window_starts(self):
        controller = make_controller(
            comp_w(intra_counter_limit=4, start_gap_psi=10**9), n_lines=8
        )
        starts = set()
        for step in range(200):
            result = controller.write(step % 8, compressible_line(step))
            if result.compressed:
                starts.add(result.window_start)
        assert len(starts) > 4  # windows drift across the line

    def test_comp_windows_stay_at_lsb(self):
        controller = make_controller(comp(start_gap_psi=10**9), n_lines=8)
        for step in range(100):
            result = controller.write(step % 8, compressible_line(step))
            if result.compressed:
                assert result.window_start == 0
