"""Unit tests for system configurations."""

import pytest

from repro.core import (
    EVALUATED_SYSTEMS,
    SystemConfig,
    baseline,
    comp,
    comp_w,
    comp_wf,
    make_config,
)


def test_four_evaluated_systems():
    assert EVALUATED_SYSTEMS == ("baseline", "comp", "comp_w", "comp_wf")
    for name in EVALUATED_SYSTEMS:
        assert make_config(name).name == name


def test_feature_matrix_matches_section4():
    base = baseline()
    assert not base.use_compression
    assert not base.use_intra_wear_leveling
    assert not base.use_dead_block_revival

    naive = comp()
    assert naive.use_compression
    assert not naive.use_intra_wear_leveling
    assert not naive.use_dead_block_revival

    with_wl = comp_w()
    assert with_wl.use_intra_wear_leveling
    assert not with_wl.use_dead_block_revival

    full = comp_wf()
    assert full.use_compression
    assert full.use_intra_wear_leveling
    assert full.use_dead_block_revival
    assert full.use_heuristic


def test_shared_substrate_defaults():
    for name in EVALUATED_SYSTEMS:
        config = make_config(name)
        assert config.correction_scheme == "ecp6"
        assert config.start_gap_psi == 100


def test_overrides():
    config = comp_wf(threshold1=8, correction_scheme="safer32")
    assert config.threshold1 == 8
    assert config.correction_scheme == "safer32"
    tweaked = config.with_overrides(start_gap_psi=10)
    assert tweaked.start_gap_psi == 10
    assert tweaked.threshold1 == 8


def test_unknown_system():
    with pytest.raises(ValueError, match="unknown system"):
        make_config("comp_x")


def test_validation():
    with pytest.raises(ValueError):
        comp_wf(threshold1=0)
    with pytest.raises(ValueError):
        comp_wf(threshold2=65)
    with pytest.raises(ValueError):
        comp_wf(start_gap_psi=0)
    with pytest.raises(ValueError):
        comp_wf(intra_counter_limit=0)
    with pytest.raises(ValueError, match="compression-window features"):
        SystemConfig(name="bad", use_compression=False)
