"""Write-accounting invariants for :class:`ControllerStats`.

Regression guard for the historical double-counting risk: the stored
write count used to be derivable from several counters owned by
different parts of the fused controller.  The per-stage counters are now
the single source of truth, and these invariants pin down how they must
relate after *any* seeded run:

* ``stored_writes == compressed_writes + uncompressed_writes``
* every accepted write is either stored or lost:
  ``demand_writes + gap_move_writes == stored_writes + lost_writes``
* the ``WriteResult`` stream agrees with the counters.
"""

import numpy as np
import pytest

from repro.core import EVALUATED_SYSTEMS, CompressedPCMController, make_config
from repro.pcm import EnduranceModel
from repro.traces import SyntheticWorkload, get_profile


def run_trace(system, workload="gcc", n_lines=32, writes=3000,
              endurance=25.0, seed=11):
    controller = CompressedPCMController(
        config=make_config(system, intra_counter_limit=64),
        n_lines=n_lines,
        endurance_model=EnduranceModel(mean=endurance, cov=0.15),
        rng=np.random.default_rng(seed + 1),
    )
    workload = SyntheticWorkload(
        get_profile(workload), n_lines=n_lines, seed=seed
    )
    results = [
        controller.write(write.line, write.data)
        for write in workload.iter_writes(writes)
    ]
    return controller, results


@pytest.mark.parametrize("system", EVALUATED_SYSTEMS)
def test_stored_writes_is_the_sum_of_the_format_counters(system):
    controller, _ = run_trace(system)
    stats = controller.stats
    assert stats.stored_writes == stats.compressed_writes + stats.uncompressed_writes
    if system == "baseline":
        assert stats.compressed_writes == 0


@pytest.mark.parametrize("system", EVALUATED_SYSTEMS)
def test_every_accepted_write_is_stored_or_lost(system):
    controller, _ = run_trace(system)
    stats = controller.stats
    assert (
        stats.demand_writes + stats.gap_move_writes
        == stats.stored_writes + stats.lost_writes
    )


@pytest.mark.parametrize("system", EVALUATED_SYSTEMS)
def test_result_stream_agrees_with_the_counters(system):
    controller, results = run_trace(system)
    stats = controller.stats
    stored = [r for r in results if not r.lost]
    assert stats.demand_writes == len(results)
    # Gap moves also store lines but do not emit demand WriteResults,
    # so the demand stream plus gap-move traffic covers stored_writes.
    assert len(stored) <= stats.stored_writes
    assert len(stored) + stats.gap_move_writes >= stats.stored_writes
    assert stats.lost_writes >= sum(1 for r in results if r.lost)
    compressed_demand = sum(1 for r in stored if r.compressed)
    assert compressed_demand <= stats.compressed_writes
    assert len(stored) - compressed_demand <= stats.uncompressed_writes


def test_flip_counters_split_by_direction():
    controller, results = run_trace("comp_wf")
    stats = controller.stats
    assert stats.total_flips == stats.set_flips + stats.reset_flips
    assert stats.total_flips > 0


def test_deaths_and_revivals_reconcile_with_the_dead_map():
    controller, _ = run_trace("comp_wf", endurance=12.0, writes=20000)
    stats = controller.stats
    assert stats.deaths >= stats.revivals
    # A failed revival attempt re-marks an already-dead block (counting
    # a death without toggling the map), so the map is a lower bound.
    assert int(controller.dead.sum()) <= stats.deaths - stats.revivals
    assert stats.deaths > 0
