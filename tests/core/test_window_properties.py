"""Property-based tests for window placement invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import faults_in_window, find_window, place_bytes, window_mask
from repro.correction import aegis17x31, ecp6, safer32
from repro.pcm import bytes_to_bits

fault_sets = st.lists(
    st.integers(min_value=0, max_value=511), min_size=0, max_size=40, unique=True
)


@settings(max_examples=80, deadline=None)
@given(
    fault_sets,
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=63),
)
def test_found_windows_are_always_feasible(faults, size, hint):
    """find_window never returns an infeasible placement (ECP-6)."""
    scheme = ecp6()
    faults = np.asarray(sorted(faults), dtype=np.int64)
    start = find_window(faults, size, scheme, start_hint=hint)
    if start is not None:
        inside = faults_in_window(faults, start, size)
        assert inside.size <= scheme.deterministic_capability or scheme.can_correct(
            inside
        )


@settings(max_examples=40, deadline=None)
@given(fault_sets, st.integers(min_value=1, max_value=64))
def test_smaller_windows_never_harder_to_place(faults, size):
    """If a window of size ``s`` fits, every smaller size fits too."""
    scheme = ecp6()
    faults = np.asarray(sorted(faults), dtype=np.int64)
    if find_window(faults, size, scheme) is not None and size > 1:
        assert find_window(faults, size - 1, scheme) is not None


@settings(max_examples=40, deadline=None)
@given(
    fault_sets,
    st.integers(min_value=1, max_value=32),
    st.sampled_from(["safer32", "aegis17x31"]),
)
def test_partition_schemes_respect_window_feasibility(faults, size, scheme_name):
    scheme = safer32() if scheme_name == "safer32" else aegis17x31()
    faults = np.asarray(sorted(faults), dtype=np.int64)
    start = find_window(faults, size, scheme)
    if start is not None:
        inside = faults_in_window(faults, start, size)
        assert inside.size <= scheme.deterministic_capability or scheme.can_correct(
            inside
        )


@settings(max_examples=60, deadline=None)
@given(
    st.binary(min_size=0, max_size=64),
    st.integers(min_value=0, max_value=63),
    st.binary(min_size=64, max_size=64),
)
def test_place_bytes_only_touches_its_window(payload, start, base_bytes):
    base = bytes_to_bits(base_bytes).copy()
    placed = place_bytes(base, payload, start)
    if payload:
        mask = window_mask(start, len(payload))
        assert np.array_equal(placed[~mask], base[~mask])
    else:
        assert np.array_equal(placed, base)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=1, max_value=64),
)
def test_window_mask_size_and_wrap(start, size):
    mask = window_mask(start, size)
    assert int(mask.sum()) == size * 8
    # Wrapping windows cover the head and tail of the line.
    if start + size > 64:
        assert mask[0] and mask[-1]
