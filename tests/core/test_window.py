"""Unit tests for compression-window placement."""

import numpy as np
import pytest

from repro.core import (
    extract_bytes,
    faults_in_window,
    find_window,
    place_bytes,
    window_mask,
)
from repro.correction import ecp6
from repro.pcm import bytes_to_bits


def test_mask_simple():
    mask = window_mask(0, 4)
    assert mask[:32].all()
    assert not mask[32:].any()


def test_mask_wraps():
    mask = window_mask(62, 4)
    expected = set(range(62 * 8, 64 * 8)) | set(range(0, 2 * 8))
    assert set(np.flatnonzero(mask)) == expected


def test_mask_cached_and_readonly():
    a = window_mask(3, 10)
    b = window_mask(3, 10)
    assert a is b
    with pytest.raises(ValueError):
        a[0] = True


def test_mask_validation():
    with pytest.raises(ValueError):
        window_mask(64, 4)
    with pytest.raises(ValueError):
        window_mask(0, 0)
    with pytest.raises(ValueError):
        window_mask(0, 65)


def test_place_and_extract_roundtrip():
    base = bytes_to_bits(bytes(64)).copy()
    payload = bytes(range(10))
    for start in (0, 13, 60):  # including a wrapping window
        placed = place_bytes(base, payload, start)
        assert extract_bytes(placed, start, 10) == payload


def test_place_leaves_rest_untouched():
    base = bytes_to_bits(b"\xaa" * 64).copy()
    placed = place_bytes(base, bytes(4), 8)
    assert extract_bytes(placed, 12, 52) == b"\xaa" * 52
    assert extract_bytes(placed, 0, 8) == b"\xaa" * 8


def test_place_rejects_oversize():
    base = bytes_to_bits(bytes(64)).copy()
    with pytest.raises(ValueError):
        place_bytes(base, bytes(65), 0)


def test_faults_in_window_rebased():
    faults = np.array([8, 100, 500])
    inside = faults_in_window(faults, start_byte=1, size_bytes=12)
    # Window covers bits [8, 104): faults 8 and 100 -> relative 0 and 92.
    assert inside.tolist() == [0, 92]


def test_faults_in_window_wrapping():
    faults = np.array([0, 8, 504])
    inside = faults_in_window(faults, start_byte=63, size_bytes=2)
    # Window covers bits [504, 512) + [0, 8): faults 504 -> 0, 0 -> 8.
    assert inside.tolist() == [0, 8]


def test_find_window_trivial_with_few_faults():
    scheme = ecp6()
    faults = np.array([1, 2, 3])
    assert find_window(faults, 16, scheme, start_hint=5) == 5


def test_find_window_slides_past_fault_cluster():
    scheme = ecp6()
    # 10 faults packed in byte 0..1: any window containing them fails,
    # so placement must start past them.
    faults = np.arange(10)
    start = find_window(faults, 32, scheme, start_hint=0)
    assert start is not None
    inside = faults_in_window(faults, start, 32)
    assert inside.size <= 6


def test_find_window_full_line():
    scheme = ecp6()
    assert find_window(np.arange(6), 64, scheme) == 0
    assert find_window(np.arange(7), 64, scheme) is None


def test_find_window_none_when_saturated():
    scheme = ecp6()
    # A fault every 4 bits: every 32-byte window holds 64 faults.
    faults = np.arange(0, 512, 4)
    assert find_window(faults, 32, scheme) is None


def test_find_window_prefers_hint():
    scheme = ecp6()
    faults = np.arange(10)  # cluster at bytes 0-1
    start = find_window(faults, 8, scheme, start_hint=40)
    assert start == 40
