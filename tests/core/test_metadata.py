"""Unit tests for per-line metadata."""

import pytest

from repro.core import METADATA_BITS, SC_MAX, LineMetadata


def test_metadata_is_13_bits():
    # Section III-B: 6-bit pointer + 5-bit encoding + 2-bit SC.
    assert METADATA_BITS == 13


def test_defaults():
    meta = LineMetadata()
    assert meta.start_pointer == 0
    assert not meta.compressed
    assert meta.stored_size == 64
    assert not meta.sc_saturated


def test_sc_saturation():
    meta = LineMetadata()
    for _ in range(5):
        meta.increment_sc()
    assert meta.sc == SC_MAX
    assert meta.sc_saturated
    meta.decrement_sc()
    assert meta.sc == SC_MAX - 1
    for _ in range(5):
        meta.decrement_sc()
    assert meta.sc == 0


def test_pack_unpack_roundtrip():
    meta = LineMetadata(start_pointer=37, encoding=21, sc=2, compressed=True, stored_size=24)
    packed = meta.pack()
    assert 0 <= packed < (1 << METADATA_BITS)
    restored = LineMetadata.unpack(packed, compressed=True, stored_size=24)
    assert restored == meta


def test_pack_unpack_extremes():
    for pointer, encoding, sc in ((0, 0, 0), (63, 31, 3)):
        meta = LineMetadata(start_pointer=pointer, encoding=encoding, sc=sc)
        restored = LineMetadata.unpack(meta.pack(), compressed=False, stored_size=64)
        assert (restored.start_pointer, restored.encoding, restored.sc) == (
            pointer, encoding, sc,
        )


def test_validation():
    with pytest.raises(ValueError):
        LineMetadata(start_pointer=64)
    with pytest.raises(ValueError):
        LineMetadata(encoding=32)
    with pytest.raises(ValueError):
        LineMetadata(sc=4)
    with pytest.raises(ValueError):
        LineMetadata(stored_size=0)
    with pytest.raises(ValueError):
        LineMetadata.unpack(1 << METADATA_BITS, compressed=False, stored_size=64)
