"""Unit tests for Aegis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correction import Aegis, aegis17x31


@pytest.fixture(scope="module")
def scheme():
    return aegis17x31()


def test_configuration(scheme):
    assert scheme.rows == 17
    assert scheme.columns == 31
    assert scheme.rows * scheme.columns >= 512
    assert scheme.deterministic_capability == 8  # C(8,2)=28 < 32 families
    assert scheme.metadata_bits <= 64


def test_deterministic_capability_random(scheme):
    rng = np.random.default_rng(2)
    for _ in range(300):
        faults = rng.choice(512, size=scheme.deterministic_capability, replace=False)
        assert scheme.can_correct(faults), faults


def test_pairs_collide_in_at_most_one_family(scheme):
    # The lattice property Aegis relies on.
    rng = np.random.default_rng(3)
    positions = rng.choice(512, size=40, replace=False)
    for a, b in zip(positions[::2], positions[1::2]):
        collisions = 0
        pair = np.array([a, b])
        for slope in range(scheme.columns + 1):
            ids = scheme.group_ids(slope, pair)
            collisions += ids[0] == ids[1]
        assert collisions <= 1


def test_find_slope_separates(scheme):
    faults = [0, 31, 62, 100, 200, 300, 400, 500]
    slope = scheme.find_slope(faults)
    assert slope is not None
    ids = scheme.group_ids(slope, np.asarray(faults))
    assert np.unique(ids).size == len(faults)


def test_more_faults_than_columns_fail(scheme):
    assert not scheme.can_correct(list(range(32)))


def test_same_column_faults_use_sloped_family(scheme):
    # Cells in one grid column (same x, different y) are separated by
    # any nonzero slope.
    faults = [0, 31, 62, 93]  # x=0, y=0..3
    slope = scheme.find_slope(faults)
    assert slope is not None and slope != 0


def test_beats_safer_below_its_guarantee(scheme):
    # Aegis guarantees 8 faults where SAFER-32 guarantees 6, so in the
    # 7..10 fault range Aegis succeeds at least as often (Figure 9's
    # low-error region).
    from repro.correction import safer32

    safer = safer32()
    trials = 150
    for size in (7, 8, 10):
        rng_a = np.random.default_rng(4)
        aegis_wins = sum(
            scheme.can_correct(rng_a.choice(512, size=size, replace=False))
            for _ in range(trials)
        )
        rng_s = np.random.default_rng(4)
        safer_wins = sum(
            safer.can_correct(rng_s.choice(512, size=size, replace=False))
            for _ in range(trials)
        )
        assert aegis_wins >= safer_wins


def test_empty_and_single(scheme):
    assert scheme.can_correct([])
    assert scheme.can_correct([511])


def test_validation():
    with pytest.raises(ValueError):
        Aegis(rows=17, columns=30)  # not prime
    with pytest.raises(ValueError):
        Aegis(rows=0, columns=31)
    with pytest.raises(ValueError):
        Aegis(rows=40, columns=31)
    with pytest.raises(ValueError):
        Aegis(rows=4, columns=31)  # 124 cells < 512


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=511), min_size=0, max_size=8, unique=True
    )
)
def test_up_to_eight_faults_always_correctable(faults):
    assert aegis17x31().can_correct(faults)
