"""Unit tests for the FREE-p remap extension."""

import numpy as np
import pytest

from repro.correction import FreePRemapper


def healthy_mask(faulty_count=0):
    mask = np.zeros(512, dtype=bool)
    mask[:faulty_count] = True
    return mask


class TestRemapper:
    def test_for_memory_reserves_top_lines(self):
        remapper = FreePRemapper.for_memory(100, spare_fraction=0.1)
        assert remapper.spares_available == 10
        assert remapper.is_spare(95)
        assert not remapper.is_spare(89)

    def test_resolve_identity_without_remaps(self):
        remapper = FreePRemapper([9], pointer_bits=4)
        assert remapper.resolve(3) == 3

    def test_remap_and_resolve(self):
        remapper = FreePRemapper([8, 9], pointer_bits=4)
        spare = remapper.remap(2, healthy_mask())
        assert spare == 8
        assert remapper.resolve(2) == 8
        assert remapper.spares_available == 1

    def test_chains_are_collapsed(self):
        remapper = FreePRemapper([8, 9], pointer_bits=4)
        first = remapper.remap(2, healthy_mask())
        second = remapper.remap(first, healthy_mask())
        assert second == 9
        # The original's pointer was rewritten to the final target.
        assert remapper.resolve(2) == 9
        assert remapper._remap[2] == 9  # collapsed, not chained

    def test_exhausted_spares(self):
        remapper = FreePRemapper([8], pointer_bits=4)
        assert remapper.remap(1, healthy_mask()) == 8
        assert remapper.remap(2, healthy_mask()) is None

    def test_pointer_needs_healthy_cells(self):
        remapper = FreePRemapper([8], pointer_bits=9, replication=7)
        assert remapper.pointer_cells_needed == 63
        # 460 faulty cells leave only 52 healthy: not enough.
        assert not remapper.can_store_pointer(healthy_mask(460))
        assert remapper.remap(1, healthy_mask(460)) is None
        assert remapper.spares_available == 1  # spare not consumed
        assert remapper.can_store_pointer(healthy_mask(440))

    def test_validation(self):
        with pytest.raises(ValueError):
            FreePRemapper([1], pointer_bits=0)
        with pytest.raises(ValueError):
            FreePRemapper([1], pointer_bits=4, replication=0)
        with pytest.raises(ValueError):
            FreePRemapper.for_memory(10, spare_fraction=1.0)


class TestControllerIntegration:
    def make_controller(self, spare_fraction):
        from repro.core import CompressedPCMController, comp_wf
        from repro.pcm import EnduranceModel

        return CompressedPCMController(
            config=comp_wf(spare_line_fraction=spare_fraction, start_gap_psi=50),
            n_lines=8,
            endurance_model=EnduranceModel(mean=20, cov=0.1),
            rng=np.random.default_rng(3),
        )

    def hammer(self, controller, writes=4000):
        rng = np.random.default_rng(4)
        for step in range(writes):
            controller.write(int(rng.integers(0, 8)), rng.bytes(64))

    def test_disabled_by_default(self):
        controller = self.make_controller(0.0)
        assert controller.remapper is None
        self.hammer(controller)
        assert controller.stats.remaps == 0

    def test_remaps_happen_and_data_flows_to_spares(self):
        controller = self.make_controller(0.5)
        assert controller.remapper is not None
        self.hammer(controller)
        assert controller.stats.remaps > 0
        # Remapped-but-live blocks are not dead capacity.
        assert controller.dead_fraction <= 1.0

    def test_reads_follow_remaps(self):
        controller = self.make_controller(0.5)
        rng = np.random.default_rng(5)
        last = {}
        for step in range(3000):
            line = int(rng.integers(0, 8))
            data = rng.bytes(64)
            result = controller.write(line, data)
            last[line] = None if result.lost else data
        for line, expected in last.items():
            if expected is None:
                continue
            physical = controller._resolve(controller.start_gap.map(line))
            if controller.dead[physical]:
                continue
            assert controller.read(line) == expected
