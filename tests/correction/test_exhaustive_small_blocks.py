"""Exhaustive verification of scheme guarantees on small blocks.

The 512-bit configurations are too large to enumerate, but the schemes
are parametric: on miniature blocks we can check *every* fault set
against the claimed deterministic capabilities, which validates the
partitioning logic far more strongly than sampling.
"""

from itertools import combinations

import pytest

from repro.correction import SAFER, Aegis, ECP


class TestSAFERExhaustive:
    """SAFER-4 on a 16-bit block: select 2 of 4 index bits."""

    @pytest.fixture(scope="class")
    def scheme(self):
        return SAFER(partitions=4, block_bits=16)

    def test_guarantee_holds_for_every_fault_set(self, scheme):
        # Deterministic capability: log2(4) + 1 = 3 faults, any placement.
        assert scheme.deterministic_capability == 3
        for faults in combinations(range(16), 3):
            assert scheme.can_correct(faults), faults

    def test_some_four_fault_sets_fail(self, scheme):
        failures = sum(
            not scheme.can_correct(faults)
            for faults in combinations(range(16), 4)
        )
        assert failures > 0  # the guarantee is tight

    def test_never_correct_more_than_partitions(self, scheme):
        for faults in combinations(range(16), 5):
            if scheme.can_correct(faults):
                # Possible (4 partitions can each hold <=1... no: 5 > 4).
                raise AssertionError(f"5 faults in 4 partitions: {faults}")
            break  # a single check suffices given partition counting


class TestAegisExhaustive:
    """Aegis 3x5 on a 15-bit block: 5 columns, 3 rows, 6 families."""

    @pytest.fixture(scope="class")
    def scheme(self):
        return Aegis(rows=3, columns=5, block_bits=15)

    def test_every_pair_collides_in_at_most_one_family(self, scheme):
        import numpy as np

        for a, b in combinations(range(15), 2):
            collisions = 0
            pair = np.array([a, b])
            for slope in range(scheme.columns + 1):
                ids = scheme.group_ids(slope, pair)
                collisions += ids[0] == ids[1]
            assert collisions <= 1, (a, b)

    def test_guarantee_holds_for_every_fault_set(self, scheme):
        capability = scheme.deterministic_capability
        assert capability == 3  # C(3,2)=3 < 6 families, capped by rows
        for faults in combinations(range(15), capability):
            assert scheme.can_correct(faults), faults

    def test_guarantee_is_tight(self, scheme):
        failures = sum(
            not scheme.can_correct(faults)
            for faults in combinations(range(15), scheme.deterministic_capability + 2)
        )
        assert failures > 0


class TestECPExhaustive:
    def test_exact_threshold_everywhere(self):
        scheme = ECP(entries=2, block_bits=16)
        for faults in combinations(range(16), 2):
            assert scheme.can_correct(faults)
        for faults in combinations(range(16), 3):
            assert not scheme.can_correct(faults)
