"""Unit tests for the bit-exact Hamming (72,64) SECDED codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correction import HammingSECDED


@pytest.fixture(scope="module")
def codec():
    return HammingSECDED()


def random_data(seed=0):
    return np.random.default_rng(seed).integers(0, 2, 64).astype(np.uint8)


def test_clean_roundtrip(codec):
    data = random_data(1)
    decoded, status = codec.decode(codec.encode(data))
    assert status == "ok"
    assert np.array_equal(decoded, data)


def test_every_single_bit_error_corrected(codec):
    data = random_data(2)
    code = codec.encode(data)
    for position in range(72):
        corrupted = code.copy()
        corrupted[position] ^= 1
        decoded, status = codec.decode(corrupted)
        assert status == "corrected", position
        assert np.array_equal(decoded, data), position


def test_double_errors_detected_not_miscorrected(codec):
    data = random_data(3)
    code = codec.encode(data)
    rng = np.random.default_rng(4)
    for _ in range(100):
        a, b = rng.choice(72, size=2, replace=False)
        corrupted = code.copy()
        corrupted[a] ^= 1
        corrupted[b] ^= 1
        _, status = codec.decode(corrupted)
        assert status == "detected", (a, b)


def test_parity_bit_flip_is_corrected(codec):
    data = random_data(5)
    code = codec.encode(data)
    code[0] ^= 1
    decoded, status = codec.decode(code)
    assert status == "corrected"
    assert np.array_equal(decoded, data)


def test_shape_validation(codec):
    with pytest.raises(ValueError):
        codec.encode(np.zeros(63, dtype=np.uint8))
    with pytest.raises(ValueError):
        codec.decode(np.zeros(71, dtype=np.uint8))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=64, max_size=64))
def test_roundtrip_random(bits):
    codec = HammingSECDED()
    data = np.array(bits, dtype=np.uint8)
    decoded, status = codec.decode(codec.encode(data))
    assert status == "ok"
    assert np.array_equal(decoded, data)
