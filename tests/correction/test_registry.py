"""Unit tests for the scheme registry and base-class behaviour."""

import pytest

from repro.correction import (
    PAPER_SCHEMES,
    CorrectionScheme,
    make_scheme,
    normalize_faults,
)


def test_paper_schemes_constructible():
    for name in PAPER_SCHEMES:
        scheme = make_scheme(name)
        assert isinstance(scheme, CorrectionScheme)
        assert scheme.name == name
        assert scheme.metadata_bits <= 64


def test_unknown_scheme_rejected():
    with pytest.raises(ValueError, match="unknown correction scheme"):
        make_scheme("raid5")


def test_secded_available():
    assert make_scheme("secded").name == "secded"


def test_normalize_faults_deduplicates_and_sorts():
    faults = normalize_faults([5, 1, 5, 3], 512)
    assert faults.tolist() == [1, 3, 5]


def test_normalize_faults_bounds():
    with pytest.raises(ValueError):
        normalize_faults([512], 512)
    with pytest.raises(ValueError):
        normalize_faults([-1], 512)


def test_spare_metadata_overflow():
    scheme = make_scheme("ecp6")
    with pytest.raises(ValueError):
        scheme.spare_metadata_bits(32)


def test_capabilities_ordering():
    # Figure 9's qualitative story: ECP-6 < SAFER-32 <= Aegis in
    # guaranteed capability.
    ecp = make_scheme("ecp6")
    safer = make_scheme("safer32")
    aegis = make_scheme("aegis17x31")
    assert ecp.deterministic_capability == 6
    assert safer.deterministic_capability == 6
    assert aegis.deterministic_capability > safer.deterministic_capability
