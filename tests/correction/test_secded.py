"""Unit tests for the SECDED reference scheme."""

import pytest

from repro.correction import SECDED


@pytest.fixture(scope="module")
def scheme():
    return SECDED()


def test_configuration(scheme):
    assert scheme.words == 8
    assert scheme.metadata_bits == 64
    assert scheme.deterministic_capability == 1
    assert scheme.spare_metadata_bits(64) == 0


def test_one_fault_per_word_ok(scheme):
    assert scheme.can_correct([])
    assert scheme.can_correct([0, 64, 128, 192, 256, 320, 384, 448])


def test_two_faults_in_one_word_fail(scheme):
    assert not scheme.can_correct([0, 63])
    assert scheme.can_correct([0, 64])


def test_word_boundaries(scheme):
    assert scheme.can_correct([63, 64])  # adjacent cells, different words
    assert not scheme.can_correct([64, 127])


def test_validation():
    with pytest.raises(ValueError):
        SECDED(word_bits=0)
    with pytest.raises(ValueError):
        SECDED(word_bits=100)  # 512 % 100 != 0
