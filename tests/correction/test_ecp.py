"""Unit tests for ECP."""

import numpy as np
import pytest

from repro.correction import ECP, ecp6


def test_ecp6_metadata_fits_ecc_chip():
    scheme = ecp6()
    assert scheme.metadata_bits == 61
    assert scheme.spare_metadata_bits(64) == 3  # compressed flag lives here
    assert scheme.deterministic_capability == 6


def test_corrects_up_to_entry_count():
    scheme = ecp6()
    assert scheme.can_correct([])
    assert scheme.can_correct([0, 511, 100, 200, 300, 400])
    assert not scheme.can_correct([0, 1, 2, 3, 4, 5, 6])


def test_duplicate_faults_counted_once():
    scheme = ecp6()
    assert scheme.can_correct([7] * 20)


def test_position_validation():
    scheme = ecp6()
    with pytest.raises(ValueError):
        scheme.can_correct([512])
    with pytest.raises(ValueError):
        scheme.can_correct([-1])


def test_custom_entry_counts():
    assert ECP(entries=1).metadata_bits == 11
    assert ECP(entries=12).metadata_bits == 121  # ECP-12 needs ~2x storage
    assert ECP(entries=0).can_correct([]) is True
    assert ECP(entries=0).can_correct([3]) is False


def test_repair_restores_true_bits():
    scheme = ecp6()
    rng = np.random.default_rng(0)
    true_bits = rng.integers(0, 2, 512).astype(np.uint8)
    stored = true_bits.copy()
    faults = [3, 77, 500]
    stored[faults] ^= 1  # stuck at the wrong value
    repaired = scheme.repair(stored, faults, true_bits)
    assert np.array_equal(repaired, true_bits)


def test_repair_rejects_overflow():
    scheme = ECP(entries=2)
    bits = np.zeros(512, dtype=np.uint8)
    with pytest.raises(ValueError):
        scheme.repair(bits, [1, 2, 3], bits)


def test_invalid_construction():
    with pytest.raises(ValueError):
        ECP(entries=-1)
    with pytest.raises(ValueError):
        ECP(entries=6, block_bits=0)
