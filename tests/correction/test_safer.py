"""Unit tests for SAFER."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.correction import SAFER, safer32


@pytest.fixture(scope="module")
def scheme():
    return safer32()


def test_configuration(scheme):
    assert scheme.partitions == 32
    assert scheme.select_bits == 5
    assert scheme.index_bits == 9
    assert scheme.deterministic_capability == 6
    assert scheme.metadata_bits <= 64  # fits the ECC-chip slice


def test_deterministic_capability_holds_everywhere(scheme):
    # Any 6 faults are correctable: exhaustively check adversarial
    # clusters plus random draws.
    rng = np.random.default_rng(1)
    for _ in range(300):
        faults = rng.choice(512, size=6, replace=False)
        assert scheme.can_correct(faults), faults
    # Dense cluster.
    assert scheme.can_correct([0, 1, 2, 3, 4, 5])


def test_probabilistic_range(scheme):
    # SAFER-32 can separate some large fault sets but not all.
    assert not scheme.can_correct(list(range(33)))  # more faults than partitions
    # 32 faults that differ only in the low 5 index bits are correctable
    # (select those 5 bits).
    assert scheme.can_correct(list(range(32)))
    # 9 one-hot positions are NOT separable: any 5-bit projection sends
    # the 4 out-of-selection faults all to partition 0.
    assert not scheme.can_correct([1 << k for k in range(9)])


def test_large_random_sets_increasingly_fail(scheme):
    # Figure 9b behaviour: correction probability collapses well before
    # 32 faults for uniformly placed fault sets.
    rng = np.random.default_rng(11)
    trials = 200
    successes_at = {
        size: sum(
            scheme.can_correct(rng.choice(512, size=size, replace=False))
            for _ in range(trials)
        )
        for size in (8, 20, 30)
    }
    assert successes_at[8] > 0.9 * trials
    assert successes_at[20] < successes_at[8]
    assert successes_at[30] < 0.05 * trials


def test_find_partition_separates(scheme):
    faults = [0, 17, 42, 300, 511]
    selection = scheme.find_partition(faults)
    assert selection is not None
    ids = scheme.partition_ids(selection, np.asarray(faults))
    assert np.unique(ids).size == len(faults)


def test_find_partition_matches_can_correct_on_random_sets(scheme):
    rng = np.random.default_rng(7)
    for size in (2, 6, 10, 16, 24, 32):
        for _ in range(25):
            faults = rng.choice(512, size=size, replace=False)
            assert (scheme.find_partition(faults) is not None) == scheme.can_correct(
                faults
            )


def test_empty_and_single_fault(scheme):
    assert scheme.can_correct([])
    assert scheme.can_correct([511])
    assert scheme.find_partition([3]) is not None


def test_validation():
    with pytest.raises(ValueError):
        SAFER(partitions=3)
    with pytest.raises(ValueError):
        SAFER(partitions=0)
    with pytest.raises(ValueError):
        SAFER(partitions=32, block_bits=500)
    with pytest.raises(ValueError):
        SAFER(partitions=1024, block_bits=512)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=511), min_size=0, max_size=6, unique=True
    )
)
def test_up_to_six_faults_always_correctable(faults):
    assert safer32().can_correct(faults)
