"""Regenerate the golden-trace equivalence fixture.

Run from the repo root against a known-good write path::

    PYTHONPATH=src python tests/golden/generate_golden.py

The fixture pins the externally observable behaviour of the four
evaluated systems on a fixed seeded trace: the full ``WriteResult``
sequence (as a SHA-256 digest), the final dead fraction and stats, and
a small lifetime comparison.  ``test_golden_trace.py`` replays the same
trace through the current write path and asserts bit-for-bit equality,
so any refactor of the controller/engine seam that changes semantics
fails loudly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core import EVALUATED_SYSTEMS, CompressedPCMController, make_config
from repro.lifetime import run_system_comparison
from repro.pcm import EnduranceModel
from repro.traces import SyntheticWorkload, get_profile

FIXTURE = Path(__file__).parent / "golden_trace.json"

TRACE_WORKLOAD = "gcc"
TRACE_LINES = 48
TRACE_WRITES = 4000
TRACE_SEED = 7
ENDURANCE_MEAN = 40.0
ENDURANCE_COV = 0.15

COMPARISON_WORKLOAD = "milc"
COMPARISON_LINES = 48
COMPARISON_ENDURANCE = 40.0
COMPARISON_SEED = 3
COMPARISON_MAX_WRITES = 4_000_000


def result_row(result) -> list:
    return [
        result.physical,
        int(result.compressed),
        result.size_bytes,
        result.window_start,
        result.flips,
        int(result.died),
        int(result.revived),
        int(result.lost),
        result.heuristic_step,
    ]


def replay(system: str) -> dict:
    config = make_config(system, intra_counter_limit=64)
    workload = SyntheticWorkload(
        get_profile(TRACE_WORKLOAD), n_lines=TRACE_LINES, seed=TRACE_SEED
    )
    controller = CompressedPCMController(
        config=config,
        n_lines=TRACE_LINES,
        endurance_model=EnduranceModel(mean=ENDURANCE_MEAN, cov=ENDURANCE_COV),
        rng=np.random.default_rng(TRACE_SEED + 1),
    )
    digest = hashlib.sha256()
    for write in workload.iter_writes(TRACE_WRITES):
        row = result_row(controller.write(write.line, write.data))
        digest.update(json.dumps(row).encode())
    stats = controller.stats
    return {
        "write_results_sha256": digest.hexdigest(),
        "dead_fraction": controller.dead_fraction,
        "avg_faults_per_dead_block": controller.average_faults_per_dead_block(),
        "stats": {
            "demand_writes": stats.demand_writes,
            "gap_move_writes": stats.gap_move_writes,
            "compressed_writes": stats.compressed_writes,
            "uncompressed_writes": stats.uncompressed_writes,
            "lost_writes": stats.lost_writes,
            "total_flips": stats.total_flips,
            "set_flips": stats.set_flips,
            "reset_flips": stats.reset_flips,
            "window_slides": stats.window_slides,
            "deaths": stats.deaths,
            "revivals": stats.revivals,
            "heuristic_steps": {
                str(step): count
                for step, count in sorted(stats.heuristic_steps.items())
            },
            "start_pointer_updates": stats.start_pointer_updates,
            "encoding_updates": stats.encoding_updates,
            "sc_updates": stats.sc_updates,
        },
    }


def lifetime_comparison() -> dict:
    results = run_system_comparison(
        COMPARISON_WORKLOAD,
        n_lines=COMPARISON_LINES,
        endurance_mean=COMPARISON_ENDURANCE,
        seed=COMPARISON_SEED,
        max_writes=COMPARISON_MAX_WRITES,
    )
    return {
        system: {
            "writes_issued": result.writes_issued,
            "failed": result.failed,
            "dead_fraction": result.dead_fraction,
            "deaths": result.deaths,
            "revivals": result.revivals,
            "total_flips": result.total_flips,
        }
        for system, result in results.items()
    }


def main() -> None:
    fixture = {
        "trace": {
            "workload": TRACE_WORKLOAD,
            "n_lines": TRACE_LINES,
            "writes": TRACE_WRITES,
            "seed": TRACE_SEED,
            "endurance_mean": ENDURANCE_MEAN,
            "endurance_cov": ENDURANCE_COV,
        },
        "systems": {system: replay(system) for system in EVALUATED_SYSTEMS},
        "comparison": {
            "workload": COMPARISON_WORKLOAD,
            "n_lines": COMPARISON_LINES,
            "endurance_mean": COMPARISON_ENDURANCE,
            "seed": COMPARISON_SEED,
            "max_writes": COMPARISON_MAX_WRITES,
            "results": lifetime_comparison(),
        },
    }
    FIXTURE.write_text(json.dumps(fixture, indent=2) + "\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    main()
