"""The tier across the stack: fleet, service, fuzzer, simulator.

The unit layer pins the tier policy; these tests pin the *wiring* --
every surface that can front controllers with DRAM tiers
(:class:`ShardedController`, :class:`MemoryService`,
:func:`run_fuzz`, :func:`run_workload_study`) must expose coherent
reads, conserve every write, and collapse to the bare system at
capacity 0.
"""

from __future__ import annotations

import pytest

from repro.core.config import comp_wf
from repro.service import MemoryService, ShardedController, make_stream
from repro.tier import HybridController
from repro.validate.fuzz import run_fuzz

LINES = 48
FLEET_KWARGS = dict(
    endurance_mean=500.0, endurance_cov=0.1, seed=13, n_banks=4,
)


def _stream(count, seed=13, profile="memcached"):
    stream = make_stream(profile, LINES, seed)
    return [(r.line, r.data) for r in stream.iter_requests(count)]


class TestShardedFleet:
    def test_each_shard_gets_its_own_tier(self):
        fleet = ShardedController(
            comp_wf(), LINES, shards=3, tier_lines=4, **FLEET_KWARGS
        )
        assert all(
            isinstance(controller, HybridController)
            for controller in fleet.controllers
        )

    def test_tiered_fleet_conserves_every_write(self):
        fleet = ShardedController(
            comp_wf(), LINES, shards=3, tier_lines=4, **FLEET_KWARGS
        )
        stream = _stream(400)
        fleet.write_batch(stream)
        shadow = {line: data for line, data in stream}
        for line, expected in shadow.items():
            assert fleet.read(line) == expected
        resident = sum(len(c.tier) for c in fleet.controllers)
        assert fleet.flush_tiers() == resident
        assert sum(len(c.tier) for c in fleet.controllers) == 0
        # Post-flush the PCM image alone must hold the full state.
        for line, expected in shadow.items():
            assert fleet.read(line) == expected

    def test_flush_tiers_is_a_noop_on_a_bare_fleet(self):
        fleet = ShardedController(comp_wf(), LINES, shards=2, **FLEET_KWARGS)
        fleet.write_batch(_stream(50))
        assert fleet.flush_tiers() == 0

    def test_capacity_zero_fleet_matches_bare_fleet(self):
        stream = _stream(300)
        bare = ShardedController(comp_wf(), LINES, shards=2, **FLEET_KWARGS)
        zero = ShardedController(
            comp_wf(), LINES, shards=2, tier_lines=0, **FLEET_KWARGS
        )
        bare.write_batch(stream)
        zero.write_batch(stream)
        assert bare.stats == zero.stats
        for line in range(LINES):
            assert bare.read(line) == zero.read(line)

    def test_fleet_stats_aggregate_tier_counters(self):
        fleet = ShardedController(
            comp_wf(), LINES, shards=2, tier_lines=4, **FLEET_KWARGS
        )
        fleet.write_batch(_stream(400))
        stats = fleet.stats
        assert stats.tier_pcm_writes_avoided > 0
        assert stats.tier_pcm_writes_avoided == sum(
            s.tier_pcm_writes_avoided for s in fleet.shard_stats()
        )


class TestMemoryService:
    def test_service_with_tiers_matches_the_inprocess_fleet(self):
        stream = _stream(300)
        reference = ShardedController(
            comp_wf(), LINES, shards=2, tier_lines=4, **FLEET_KWARGS
        )
        reference.write_batch(stream)
        with MemoryService(
            comp_wf(), LINES, shards=2, tier_lines=4, **FLEET_KWARGS
        ) as service:
            service.submit(stream)
            for line in range(LINES):
                assert service.read(line) == reference.read(line)
            result = service.stop()
        assert result.stats == reference.stats


class TestFuzzWithTier:
    def test_lockstep_validates_the_post_tier_stream(self):
        report = run_fuzz(
            systems=("comp_wf",), schemes=("ecp6",), writes=800,
            seed=2, tier_lines=8,
        )
        assert report.campaigns and not report.failures

    def test_rejects_negative_tier(self):
        with pytest.raises(ValueError, match="tier_lines"):
            run_fuzz(systems=("comp_wf",), schemes=("ecp6",),
                     writes=10, tier_lines=-1)


class TestLifetimeStudy:
    def test_tier_reduces_pcm_write_traffic(self):
        """The headline CARAM effect at simulator level: the hybrid's
        PCM write stream is strictly lighter than the bare one on a
        write-hot workload, and the run records the tier telemetry."""
        from repro.lifetime import run_system_comparison

        bare = run_system_comparison(
            "mcf", systems=("comp_wf",), n_lines=48,
            endurance_mean=30.0, seed=3, max_writes=400_000,
        )["comp_wf"]
        tiered = run_system_comparison(
            "mcf", systems=("comp_wf",), n_lines=48,
            endurance_mean=30.0, seed=3, max_writes=400_000, tier_lines=8,
        )["comp_wf"]
        assert bare.failed and tiered.failed
        # Fewer PCM stores per demand write -> the hybrid survives at
        # least as many demand writes as the bare system.
        assert tiered.writes_issued >= bare.writes_issued
        assert tiered.stored_writes < tiered.writes_issued

    def test_tier_requires_the_serial_path(self):
        from repro.lifetime import run_system_comparison

        with pytest.raises(ValueError, match="workers=1"):
            run_system_comparison(
                "mcf", systems=("comp_wf",), n_lines=16,
                max_writes=10, workers=2, tier_lines=4,
            )
