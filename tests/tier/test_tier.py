"""The content-aware DRAM front tier: routing, dedup, eviction, stats.

Unit tests pin the :class:`~repro.tier.DramTier` policy surface
(admission by compressibility, LRU eviction over unique contents,
coalescing, refcounted dedup) and the :class:`~repro.tier.HybridController`
facade semantics; property tests assert the load-bearing invariants --
the tier never loses a write, dedup never aliases lines, and capacity 0
is bit-identical to no tier at all -- over random traces.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import comp_wf
from repro.core.controller import CompressedPCMController
from repro.core.window import LINE_BYTES
from repro.pcm import EnduranceModel
from repro.tier import (
    ABSORBED,
    DEFAULT_ADMIT_THRESHOLD,
    DramTier,
    HybridController,
)

# Payload vocabulary: solid-color lines compress to a handful of bytes
# (write-through), high-entropy lines defeat both FPC and BDI
# (DRAM-resident).
INCOMPRESSIBLE = bytes(
    np.random.default_rng(99).integers(0, 256, LINE_BYTES, dtype=np.uint8)
)
COMPRESSIBLE = bytes(LINE_BYTES)


def noise(seed):
    rng = np.random.default_rng(seed)
    return bytes(rng.integers(0, 256, LINE_BYTES, dtype=np.uint8))


def build_controller(seed=7, n_lines=16, endurance=1e6):
    """A real PCM controller that will not die within a short test."""
    return CompressedPCMController(
        config=comp_wf(),
        n_lines=n_lines,
        endurance_model=EnduranceModel(mean=endurance, cov=0.1),
        rng=np.random.default_rng(seed),
        n_banks=4,
    )


payloads = st.one_of(
    st.integers(0, 255).map(lambda b: bytes([b]) * LINE_BYTES),
    st.binary(min_size=LINE_BYTES, max_size=LINE_BYTES),
    st.binary(min_size=8, max_size=8).map(lambda chunk: chunk * 8),
)
trace = st.lists(
    st.tuples(st.integers(0, 15), payloads), min_size=1, max_size=120
)


class TestDramTierPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            DramTier(-1)
        with pytest.raises(ValueError, match="threshold"):
            DramTier(4, admit_threshold=0)
        with pytest.raises(ValueError, match="threshold"):
            DramTier(4, admit_threshold=LINE_BYTES + 1)

    def test_capacity_zero_passes_everything_through(self):
        tier = DramTier(0)
        ops = []
        assert tier.write(3, INCOMPRESSIBLE, ops) is None
        assert ops == [(3, INCOMPRESSIBLE)]
        assert len(tier) == 0 and tier.stats.tier_pcm_writes_avoided == 0

    def test_compressible_lines_write_through(self):
        tier = DramTier(4)
        ops = []
        assert tier.write(0, COMPRESSIBLE, ops) is None
        assert ops == [(0, COMPRESSIBLE)]
        assert not tier.resident(0)

    def test_incompressible_lines_become_resident(self):
        tier = DramTier(4)
        ops = []
        assert tier.write(0, INCOMPRESSIBLE, ops) is ABSORBED
        assert ops == [] and tier.resident(0)
        assert tier.stats.tier_pcm_writes_avoided == 1

    def test_rewrites_coalesce_in_dram(self):
        tier = DramTier(4)
        ops = []
        tier.write(0, INCOMPRESSIBLE, ops)
        for seed in (1, 2, 3):
            assert tier.write(0, noise(seed), ops) is ABSORBED
        assert ops == [] and len(tier) == 1
        assert tier.stats.tier_coalesced_writes == 3
        assert tier.stats.tier_pcm_writes_avoided == 4
        assert tier.lookup(0) == noise(3)

    def test_coalescing_keeps_a_resident_compressible_rewrite(self):
        """A rewrite of a resident line coalesces even if the new
        content is compressible -- residency, not content, wins."""
        tier = DramTier(4)
        ops = []
        tier.write(0, INCOMPRESSIBLE, ops)
        assert tier.write(0, COMPRESSIBLE, ops) is ABSORBED
        assert ops == [] and tier.lookup(0) == COMPRESSIBLE

    def test_dedup_charges_capacity_once_per_content(self):
        tier = DramTier(2)
        ops = []
        for line in range(4):
            tier.write(line, INCOMPRESSIBLE, ops)
        # Four lines, one unique content: nothing evicted, cap charged 1.
        assert ops == [] and len(tier) == 4
        assert tier.unique_contents == 1
        assert tier.stats.tier_dedup_hits == 3

    def test_dedup_never_aliases_lines_that_diverge(self):
        tier = DramTier(4)
        ops = []
        tier.write(0, INCOMPRESSIBLE, ops)
        tier.write(1, INCOMPRESSIBLE, ops)
        tier.write(1, noise(5), ops)  # line 1 diverges
        assert tier.lookup(0) == INCOMPRESSIBLE
        assert tier.lookup(1) == noise(5)
        assert tier.unique_contents == 2

    def test_eviction_is_lru_and_reads_refresh_recency(self):
        tier = DramTier(2)
        ops = []
        tier.write(0, noise(1), ops)
        tier.write(1, noise(2), ops)
        assert tier.lookup(0) == noise(1)  # refresh line 0
        tier.write(2, noise(3), ops)  # over capacity: line 1 is LRU
        assert ops == [(1, noise(2))]
        assert tier.resident(0) and tier.resident(2)
        assert tier.stats.tier_evictions == 1

    def test_fresh_admission_is_never_its_own_victim(self):
        tier = DramTier(1)
        ops = []
        tier.write(0, noise(1), ops)
        tier.write(1, noise(2), ops)
        assert ops == [(0, noise(1))]  # the older line pays
        assert tier.resident(1)

    def test_drain_flushes_oldest_first_and_empties(self):
        tier = DramTier(4)
        ops = []
        for line, seed in ((3, 1), (1, 2), (2, 3)):
            tier.write(line, noise(seed), ops)
        drained = tier.drain()
        assert drained == [(3, noise(1)), (1, noise(2)), (2, noise(3))]
        assert len(tier) == 0 and tier.unique_contents == 0
        assert tier.stats.tier_evictions == 0  # drains are not evictions

    @given(ops=st.lists(st.tuples(st.integers(0, 31), payloads), max_size=150))
    @settings(deadline=None, max_examples=60)
    def test_tier_never_loses_a_write(self, ops):
        """Conservation: after draining, the PCM-visible image (last op
        per line) equals last-write-wins over the full input stream --
        no write is lost to eviction, coalescing, or dedup."""
        tier = DramTier(4)
        pcm_image = {}
        shadow = {}
        for line, data in ops:
            out = []
            tier.write(line, data, out)
            for flushed_line, flushed_data in out:
                pcm_image[flushed_line] = flushed_data
            shadow[line] = bytes(data)
            assert tier.unique_contents <= tier.capacity_lines
            # A resident line always reads back its newest content.
            if tier.resident(line):
                assert tier._resident[line] == shadow[line]
        for line, data in tier.drain():
            pcm_image[line] = data
        assert pcm_image == shadow


class TestHybridControllerFacade:
    def test_rejects_short_writes_when_tiered(self):
        hybrid = HybridController(build_controller(), 4)
        with pytest.raises(ValueError, match="bytes"):
            hybrid.write(0, b"short")
        with pytest.raises(ValueError, match="bytes"):
            hybrid.write_batch([(0, b"short")])

    def test_reads_hit_dram_then_fall_through_to_pcm(self):
        hybrid = HybridController(build_controller(), 4)
        hybrid.write(0, COMPRESSIBLE)  # write-through: PCM only
        hybrid.write(1, INCOMPRESSIBLE)  # resident: DRAM only
        assert hybrid.read(0) == COMPRESSIBLE
        assert hybrid.read(1) == INCOMPRESSIBLE
        assert not hybrid.tier.resident(0) and hybrid.tier.resident(1)

    def test_flush_lands_residents_in_pcm(self):
        hybrid = HybridController(build_controller(), 4)
        hybrid.write(0, INCOMPRESSIBLE)
        assert hybrid.inner.read(0) != INCOMPRESSIBLE
        assert hybrid.flush() == 1
        assert hybrid.inner.read(0) == INCOMPRESSIBLE
        assert hybrid.flush() == 0  # nothing left

    def test_batch_results_align_with_requests(self):
        hybrid = HybridController(build_controller(), 4)
        results = hybrid.write_batch([
            (0, COMPRESSIBLE),      # write-through
            (1, INCOMPRESSIBLE),    # absorbed
            (1, noise(8)),          # coalesced
            (2, COMPRESSIBLE),      # write-through
        ])
        assert len(results) == 4
        assert results[0].physical >= 0 and results[3].physical >= 0
        assert results[1] is ABSORBED and results[2] is ABSORBED

    def test_stats_merge_tier_and_pcm_counters(self):
        hybrid = HybridController(build_controller(), 4)
        hybrid.write(0, COMPRESSIBLE)
        hybrid.write(1, INCOMPRESSIBLE)
        hybrid.write(1, INCOMPRESSIBLE)
        stats = hybrid.stats
        assert stats.demand_writes == 1  # only the write-through hit PCM
        assert stats.tier_pcm_writes_avoided == 2
        assert stats.tier_coalesced_writes == 1

    def test_pcm_write_accounting_balances(self):
        """Demand stream conservation before any flush:
        pcm_demand + avoided - evictions == requests issued."""
        hybrid = HybridController(build_controller(n_lines=32), 4)
        rng = np.random.default_rng(11)
        issued = 200
        for _ in range(issued):
            line = int(rng.integers(0, 32))
            data = (
                COMPRESSIBLE if rng.random() < 0.5
                else bytes(rng.integers(0, 256, LINE_BYTES, dtype=np.uint8))
            )
            hybrid.write(line, data)
        stats = hybrid.stats
        pcm_writes = stats.demand_writes
        assert (
            pcm_writes
            + stats.tier_pcm_writes_avoided
            - stats.tier_evictions
            == issued
        )

    def test_tier_state_survives_pickling(self):
        hybrid = HybridController(build_controller(), 4)
        hybrid.write(0, INCOMPRESSIBLE)
        hybrid.write(1, INCOMPRESSIBLE)
        clone = pickle.loads(pickle.dumps(hybrid))
        assert clone.tier.resident(0) and clone.tier.resident(1)
        assert clone.stats == hybrid.stats
        assert clone.read(0) == INCOMPRESSIBLE  # (bumps clone's hits)

    @given(ops=st.lists(st.tuples(st.integers(0, 15), payloads),
                        min_size=1, max_size=60))
    @settings(deadline=None, max_examples=15)
    def test_eviction_never_loses_data(self, ops):
        """Every line reads back its last-written content, during the
        run (DRAM or PCM) and again after a full flush (PCM only)."""
        hybrid = HybridController(build_controller(), 3)
        shadow = {}
        for line, data in ops:
            hybrid.write(line, data)
            shadow[line] = bytes(data)
        for line, expected in shadow.items():
            assert hybrid.read(line) == expected
        hybrid.flush()
        assert len(hybrid.tier) == 0
        for line, expected in shadow.items():
            assert hybrid.inner.read(line) == expected

    @given(ops=st.lists(st.tuples(st.integers(0, 15), payloads),
                        min_size=1, max_size=60))
    @settings(deadline=None, max_examples=15)
    def test_capacity_zero_is_bit_identical_to_bare(self, ops):
        bare = build_controller(seed=21)
        hybrid = HybridController(build_controller(seed=21), 0)
        for line, data in ops:
            assert bare.write(line, data) == hybrid.write(line, data)
        assert bare.stats == hybrid.stats
        np.testing.assert_array_equal(
            bare.memory.stored, hybrid.memory.stored
        )
        for line in range(16):
            assert bare.read(line) == hybrid.read(line)
