"""The multi-process memory service: equivalence, telemetry, recovery.

Everything here compares the :class:`MemoryService` (one worker process
per shard) against the in-process :class:`ShardedController`, which the
sharded-fleet tests in turn pin to the monolithic golden digests -- so
these tests close the bit-identity chain:

    MemoryService == ShardedController == K independent controllers
                  == monolithic controller (at shards=1).

Worker-kill recovery is asserted to be *exact*: SIGTERM a shard worker
mid-run, and the final fleet view must equal the never-killed run field
for field, with the dead worker's telemetry quarantined sweep-style.
"""

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.core.config import comp_wf
from repro.lifetime.telemetry import TELEMETRY_VERSION
from repro.service import (
    MemoryService,
    ServiceError,
    ShardedController,
    make_stream,
    run_workload,
)

LINES = 48
SERVICE_KWARGS = dict(
    endurance_mean=40.0, endurance_cov=0.2, seed=13, n_banks=4,
)


def _stream(count, seed=13, profile="memcached"):
    stream = make_stream(profile, LINES, seed)
    return [(r.line, r.data) for r in stream.iter_requests(count)]


def _reference(stream, shards, chunk=None):
    """In-process fleet replaying the stream, ``chunk`` requests at a time.

    ``chunk`` must match how the service under test submits: the batch
    scheduler's wave telemetry depends on segment boundaries, and the
    bit-equality gates below include it -- same chunking, same waves.
    """
    fleet = ShardedController(comp_wf(), LINES, shards=shards, **SERVICE_KWARGS)
    if chunk is None:
        fleet.write_batch(stream)
    else:
        for start in range(0, len(stream), chunk):
            fleet.write_batch(stream[start:start + chunk])
    return fleet


def test_service_matches_in_process_fleet(tmp_path):
    stream = _stream(600)
    reference = _reference(stream, shards=3, chunk=64)
    with MemoryService(
        comp_wf(), LINES, shards=3, telemetry_dir=str(tmp_path),
        heartbeat_interval=100, fleet_interval=200, **SERVICE_KWARGS,
    ) as service:
        for start in range(0, len(stream), 64):
            service.submit(stream[start:start + 64])
        assert service.stats() == reference.stats
        for line in range(0, LINES, 5):
            assert service.read(line) == reference.read(line)
        result = service.stop()

    assert result.requests_routed == len(stream)
    assert result.recoveries == 0
    assert result.stats == reference.stats
    assert result.shard_stats == reference.shard_stats()
    assert result.dead_fraction == reference.dead_fraction
    assert sum(result.shard_writes) == len(stream)
    # to_dict must be JSON-serializable as-is (golden comparisons).
    json.dumps(result.to_dict())


def test_one_shard_service_matches_monolithic_reference(tmp_path):
    stream = _stream(300)
    reference = _reference(stream, shards=1)
    with MemoryService(comp_wf(), LINES, shards=1, **SERVICE_KWARGS) as service:
        service.submit(stream)
        result = service.stop()
    assert result.stats == reference.stats


def test_telemetry_streams_follow_the_jsonl_conventions(tmp_path):
    stream = _stream(500)
    with MemoryService(
        comp_wf(), LINES, shards=2, telemetry_dir=str(tmp_path),
        heartbeat_interval=100, fleet_interval=100, **SERVICE_KWARGS,
    ) as service:
        for start in range(0, len(stream), 50):
            service.submit(stream[start:start + 50])
        service.stop()

    fleet_events = [
        json.loads(line)
        for line in (tmp_path / "fleet.jsonl").read_text().splitlines()
    ]
    kinds = [event["event"] for event in fleet_events]
    assert kinds[0] == "service_start"
    assert kinds[-1] == "service_end"
    assert "fleet_heartbeat" in kinds
    assert all(event["version"] == TELEMETRY_VERSION for event in fleet_events)
    routed = [
        e["requests_routed"] for e in fleet_events
        if e["event"] == "fleet_heartbeat"
    ]
    assert routed == sorted(routed)
    for shard in range(2):
        shard_events = [
            json.loads(line)
            for line in (
                tmp_path / f"shard-{shard}" / "events.jsonl"
            ).read_text().splitlines()
        ]
        shard_kinds = [event["event"] for event in shard_events]
        assert shard_kinds[0] == "shard_start"
        assert shard_kinds[-1] == "shard_end"
        assert "shard_heartbeat" in shard_kinds
        assert all(e["shard"] == shard for e in shard_events)


def _kill_and_wait(service, shard):
    pid = service.worker_pid(shard)
    os.kill(pid, signal.SIGTERM)
    deadline = time.monotonic() + 10
    while service._workers[shard].is_alive():
        if time.monotonic() > deadline:  # pragma: no cover - hung kill
            raise RuntimeError("worker refused to die")
        time.sleep(0.01)


def test_sigterm_kill_recovers_bit_identically(tmp_path):
    stream = _stream(800)
    reference = _reference(stream, shards=4, chunk=50)
    victim = 2
    with MemoryService(
        comp_wf(), LINES, shards=4, telemetry_dir=str(tmp_path),
        heartbeat_interval=100, fleet_interval=100, **SERVICE_KWARGS,
    ) as service:
        half = len(stream) // 2
        for start in range(0, half, 50):
            service.submit(stream[start:start + 50])
        _kill_and_wait(service, victim)
        for start in range(half, len(stream), 50):
            service.submit(stream[start:start + 50])
        result = service.stop()

    assert result.recoveries == 1
    assert result.stats == reference.stats
    assert result.shard_stats == reference.shard_stats()
    assert result.dead_fraction == reference.dead_fraction

    # Sweep-style quarantine: the dead worker's telemetry moved aside...
    quarantined = tmp_path / f"shard-{victim}" / "attempt-1" / "events.jsonl"
    assert quarantined.exists()
    # ...and the respawned worker wrote a fresh stream alongside it.
    fresh = tmp_path / f"shard-{victim}" / "events.jsonl"
    assert fresh.exists()
    recovered = [
        json.loads(line)
        for line in (tmp_path / "fleet.jsonl").read_text().splitlines()
        if json.loads(line)["event"] == "shard_recovered"
    ]
    assert len(recovered) == 1
    assert recovered[0]["shard"] == victim
    assert recovered[0]["attempt"] == 1
    assert recovered[0]["quarantine"] == str(
        Path(tmp_path) / f"shard-{victim}" / "attempt-1"
    )


def test_retry_budget_exhaustion_raises_service_error():
    stream = _stream(200)
    service = MemoryService(
        comp_wf(), LINES, shards=2, retries=0, **SERVICE_KWARGS,
    )
    service.start()
    try:
        service.submit(stream[:100])
        _kill_and_wait(service, 1)
        with pytest.raises(ServiceError, match="retry budget"):
            service.submit(stream[100:])
    finally:
        # The healthy shard still stops cleanly.
        try:
            service.stop()
        except ServiceError:
            pass


def test_run_workload_drives_either_front_end():
    requests = 300
    reference = ShardedController(comp_wf(), LINES, shards=2, **SERVICE_KWARGS)
    run_workload(reference, "nginx", requests, batch=32, seed=5)
    with MemoryService(comp_wf(), LINES, shards=2, **SERVICE_KWARGS) as service:
        run_workload(service, "nginx", requests, batch=32, seed=5)
        result = service.stop()
    assert result.requests_routed == requests
    assert result.stats == reference.stats


def test_workers_clear_window_caches_across_shard_restarts(tmp_path):
    """Service runs leave no placement-cache residue (PR 3's sweep fix).

    Two layers: in this (parent) process a service run must not touch
    the module-global caches at all -- the simulation happens in the
    workers -- and a worker restart must reconstruct bit-identical
    state from a cold cache, which the SIGTERM test above proves and
    this one re-checks cheaply while inspecting the caches directly.
    """
    from repro.core import window

    stream = _stream(200)
    reference_stats = _reference(stream, shards=2, chunk=100).stats
    window.clear_window_caches()
    with MemoryService(comp_wf(), LINES, shards=2, **SERVICE_KWARGS) as service:
        service.submit(stream[:100])
        _kill_and_wait(service, 0)
        service.submit(stream[100:])
        result = service.stop()
    assert result.recoveries == 1
    assert result.stats == reference_stats
    # The parent never simulated anything, and worker teardown clears
    # its own (per-process) caches -- so ours must still be empty.
    assert not window._MASK_CACHE
    assert not window._PAYLOAD_BITS_CACHE

    # The teardown hook itself: a worker loop that exits (stop or
    # crash) must leave the process-global caches empty for whatever
    # runs next in that process.
    import multiprocessing as mp

    from repro.service.service import ShardSpec, shard_worker

    def probe(spec, requests, replies, leftovers):
        shard_worker(spec, requests, replies)
        leftovers.put(
            len(window._MASK_CACHE) + len(window._PAYLOAD_BITS_CACHE)
        )

    ctx = mp.get_context()
    requests, replies, leftovers = ctx.Queue(), ctx.Queue(), ctx.Queue()
    spec = ShardSpec(
        index=0, config=comp_wf(), start=0, stop=16,
        endurance_mean=40.0, endurance_cov=0.2, seed=3, n_banks=4,
        fault_mode=service.specs[0].fault_mode, cell_type="slc",
        telemetry_dir=None, heartbeat_interval=100,
    )
    in_range = [(line, data) for line, data in stream if line < 16]
    requests.put(("apply", in_range[:50]))
    requests.put(("stop",))
    worker = ctx.Process(target=probe, args=(spec, requests, replies, leftovers))
    worker.start()
    worker.join(timeout=60)
    assert leftovers.get(timeout=10) == 0
