"""The in-process sharded fleet: bit-identity up and down the chain.

The sharding contract has two directions, both asserted here against
real write streams:

* down -- a 1-shard :class:`ShardedController` IS the monolithic
  controller: it replays the frozen golden trace to the same SHA-256
  ``WriteResult`` digest the pre-refactor engine produced;
* across -- a K-shard fleet equals K *independent* single-space
  controllers each replaying its routed sub-stream, because sharding is
  pure routing plus address translation.
"""

import hashlib
import json

import pytest

from repro.core import EVALUATED_SYSTEMS, make_config
from repro.core.config import comp_wf
from repro.service import ShardedController, make_stream
from repro.traces import SyntheticWorkload, get_profile

from ..golden.generate_golden import result_row
from ..golden.test_golden_trace import FIXTURE


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("system", EVALUATED_SYSTEMS)
def test_one_shard_fleet_reproduces_golden_digests(golden, system):
    """The 1-shard service is bit-identical to the monolithic engine."""
    trace = golden["trace"]
    expected = golden["systems"][system]
    fleet = ShardedController(
        make_config(system, intra_counter_limit=64),
        trace["n_lines"], shards=1,
        endurance_mean=trace["endurance_mean"],
        endurance_cov=trace["endurance_cov"],
        seed=trace["seed"] + 1,
    )
    workload = SyntheticWorkload(
        get_profile(trace["workload"]), n_lines=trace["n_lines"],
        seed=trace["seed"],
    )
    digest = hashlib.sha256()
    for write in workload.iter_writes(trace["writes"]):
        row = result_row(fleet.write(write.line, write.data))
        digest.update(json.dumps(row).encode())
    assert digest.hexdigest() == expected["write_results_sha256"]
    assert fleet.dead_fraction == expected["dead_fraction"]
    stats = fleet.stats
    for counter, value in expected["stats"].items():
        if counter == "heuristic_steps":
            observed = {str(k): v for k, v in stats.heuristic_steps.items()}
        else:
            observed = getattr(stats, counter)
        assert observed == value, counter


def _request_stream(lines, count, seed):
    stream = make_stream("memcached", lines, seed)
    return [(r.line, r.data) for r in stream.iter_requests(count)]


def test_k_shards_equal_k_independent_runs():
    """Each shard's results are those of an independent controller."""
    lines, shards, seed = 64, 4, 9
    stream = _request_stream(lines, 1200, seed)

    fleet = ShardedController(
        comp_wf(), lines, shards=shards,
        endurance_mean=48.0, endurance_cov=0.2, seed=seed, n_banks=4,
    )
    fleet_results = [fleet.write(line, data) for line, data in stream]

    independent = [
        ShardedController(
            comp_wf(), fleet.shard_map.lines_of(shard), shards=1,
            endurance_mean=48.0, endurance_cov=0.2,
            seed=shard_seed, n_banks=4,
        )
        for shard, shard_seed in enumerate(fleet.shard_map.shard_seeds(seed))
    ]
    # Replay each routed sub-stream and compare the full WriteResult
    # sequences, interleaved back into global stream order.
    solo_results = [None] * len(stream)
    buckets = fleet.shard_map.partition(stream)
    positions = [[] for _ in range(shards)]
    for position, (line, _) in enumerate(stream):
        positions[fleet.shard_map.shard_of(line)].append(position)
    for shard, (bucket, slots) in enumerate(zip(buckets, positions)):
        for (local, data), slot in zip(bucket, slots):
            solo_results[slot] = independent[shard].write(local, data)

    assert fleet_results == solo_results
    assert fleet.shard_stats() == [c.stats for c in independent]
    for line in range(lines):
        shard, local = fleet.shard_map.to_local(line)
        assert fleet.read(line) == independent[shard].read(local)


def test_serial_and_batched_routing_agree():
    lines, seed = 48, 21
    stream = _request_stream(lines, 800, seed)
    serial = ShardedController(
        comp_wf(), lines, shards=3,
        endurance_mean=40.0, endurance_cov=0.2, seed=seed, n_banks=4,
    )
    batched = ShardedController(
        comp_wf(), lines, shards=3,
        endurance_mean=40.0, endurance_cov=0.2, seed=seed, n_banks=4,
    )
    serial_results = [serial.write(line, data) for line, data in stream]
    batched_results = []
    for start in range(0, len(stream), 64):
        batched_results.extend(batched.write_batch(stream[start:start + 64]))
    assert serial_results == batched_results
    # The batched fleet carries wave/barrier telemetry a serial replay
    # cannot have; every behavioural counter must agree exactly.
    assert serial.stats == batched.stats.without_scheduler_telemetry()
    assert all(serial.read(line) == batched.read(line) for line in range(lines))


def test_write_batch_accepts_a_generator():
    fleet = ShardedController(
        comp_wf(), 16, shards=2, endurance_mean=32.0, seed=1, n_banks=4,
    )
    stream = _request_stream(16, 40, 1)
    results = fleet.write_batch(pair for pair in stream)
    assert len(results) == 40
    assert all(result is not None for result in results)


def test_routing_rejects_out_of_space_lines():
    fleet = ShardedController(comp_wf(), 16, shards=2, n_banks=4)
    with pytest.raises(IndexError):
        fleet.write(16, bytes(64))
    with pytest.raises(IndexError):
        fleet.read(-1)
