"""Service request streams: determinism, shape, and the driver."""

import numpy as np
import pytest

from repro.core.config import comp_wf
from repro.service import ShardedController, make_stream, run_workload
from repro.service.workloads import SERVICE_WORKLOADS

LINES = 64


def _lines(stream, count):
    return [request.line for request in stream.iter_requests(count)]


@pytest.mark.parametrize("name", SERVICE_WORKLOADS)
def test_streams_are_deterministic_in_their_seed(name):
    def requests(seed):
        stream = make_stream(name, LINES, seed=seed)
        return [(r.line, r.data) for r in stream.iter_requests(400)]

    first, second, other = requests(4), requests(4), requests(5)
    assert first == second
    # Seed sensitivity: addresses for the scattered streams, payloads
    # always (monotonic addresses are seed-free by design).
    assert first != other
    assert all(0 <= line < LINES for line, _ in first)


@pytest.mark.parametrize("name", SERVICE_WORKLOADS)
def test_payloads_are_full_lines(name):
    stream = make_stream(name, LINES, seed=0)
    for request in stream.iter_requests(20):
        assert len(request.data) == 64


def test_unknown_stream_name_rejected():
    with pytest.raises(ValueError, match="unknown service workload"):
        make_stream("postgres", LINES)


def test_monotonic_sweeps_sequentially():
    assert _lines(make_stream("monotonic", 8), 19) == (
        list(range(8)) + list(range(8)) + [0, 1, 2]
    )


def test_high_reuse_concentrates_writes():
    stream = make_stream("high-reuse", LINES, seed=2)
    lines = _lines(stream, 4000)
    hot = set(int(line) for line in stream._hot)
    hot_hits = sum(1 for line in lines if line in hot)
    # hot_share=0.9 over 10% of the lines: the hot set must dominate.
    assert hot_hits / len(lines) > 0.8
    assert len(hot) <= LINES // 5


def test_memcached_is_skewed_but_scattered():
    stream = make_stream("memcached", LINES, seed=3)
    lines = _lines(stream, 6000)
    counts = np.bincount(lines, minlength=LINES)
    # Zipf-popular keys: the top line takes far more than a uniform
    # share, yet the traffic still touches most of the space.
    assert counts.max() > 3 * len(lines) / LINES
    assert (counts > 0).sum() > LINES // 2


def test_nginx_mixes_log_appends_with_object_writes():
    stream = make_stream(
        "nginx", LINES, seed=6, log_fraction=0.25, log_share=0.5
    )
    lines = _lines(stream, 4000)
    log = set(int(line) for line in stream._log)
    log_hits = [line for line in lines if line in log]
    assert 0.35 < len(log_hits) / len(lines) < 0.65
    # Log appends cycle the region sequentially: consecutive log hits
    # follow the region's fixed rotation order.
    order = {int(line): rank for rank, line in enumerate(stream._log)}
    ranks = [order[line] for line in log_hits]
    for previous, current in zip(ranks, ranks[1:]):
        assert current == (previous + 1) % len(log)


def test_run_workload_validates_arguments():
    fleet = ShardedController(comp_wf(), 16, shards=2, n_banks=4)
    with pytest.raises(ValueError, match="negative"):
        run_workload(fleet, "monotonic", -1)
    with pytest.raises(ValueError, match="batch"):
        run_workload(fleet, "monotonic", 10, batch=0)
    mismatched = make_stream("monotonic", 32)
    with pytest.raises(ValueError, match="32 lines"):
        run_workload(fleet, mismatched, 10)


def test_run_workload_delivers_exactly_the_requested_count():
    fleet = ShardedController(comp_wf(), 24, shards=3, n_banks=4)
    run_workload(fleet, "memcached", 157, batch=50, seed=1)
    assert fleet.stats.demand_writes == 157
