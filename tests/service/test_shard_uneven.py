"""Uneven-shard partitioning audit: routing, remaps, fleet merge.

PR 10's issue flagged ``ShardMap`` partitioning with
``lines % shards != 0`` in combination with remapped/spare lines as a
suspected fault-line.  The audit found routing purely logical (spares
are shard-local *physical* slots the map never sees), so these are
pinning/regression tests: uneven splits stay exhaustively consistent,
and a worn fleet with live spare remaps on both wear-leveling backends
still satisfies :func:`repro.validate.fuzz.assert_fleet_view`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import comp_wf
from repro.engine.address_space import ShardMap
from repro.service import ShardedController, make_stream
from repro.validate.fuzz import assert_fleet_view


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=17),
)
def test_uneven_partition_is_exhaustively_consistent(total_lines, shards):
    if shards > total_lines:
        with pytest.raises(ValueError):
            ShardMap(total_lines, shards)
        return
    shard_map = ShardMap(total_lines, shards)
    sizes = [shard_map.lines_of(s) for s in range(shards)]
    assert sum(sizes) == total_lines
    assert max(sizes) - min(sizes) <= 1
    # The first ``total_lines % shards`` shards carry the extra line.
    assert sizes == sorted(sizes, reverse=True)
    for line in range(total_lines):
        shard, local = shard_map.to_local(line)
        # O(1) arithmetic routing agrees with the range table.
        assert line in shard_map.range_of(shard)
        assert shard_map.to_global(shard, local) == line


@pytest.mark.parametrize("wl_backend", ["startgap_freep", "wolfram"])
def test_uneven_worn_fleet_with_remaps_merges_cleanly(wl_backend):
    # 25 lines / 3 shards -> sizes (9, 8, 8); brutal endurance plus a
    # spare pool drives deaths *and* remap-to-spare traffic per shard.
    lines, shards, seed = 25, 3, 5
    config = comp_wf(
        name="comp_wf_uneven",
        spare_line_fraction=0.2,
        start_gap_psi=3,
        wl_backend=wl_backend,
    )
    fleet = ShardedController(
        config, lines, shards=shards,
        endurance_mean=20.0, endurance_cov=0.25, seed=seed, n_banks=4,
    )
    stream = make_stream("memcached", lines, seed)
    for request in stream.iter_requests(3000):
        fleet.write(request.line, request.data)

    shard_stats = fleet.shard_stats()
    merged = assert_fleet_view(shard_stats)
    assert merged.deaths > 0, "stream never wore a line out"
    assert merged.remaps > 0, "stream never exercised the spare pool"
    if wl_backend == "wolfram":
        assert merged.pad_table_writes > 0
    else:
        assert merged.pad_table_writes == 0
    # Every global line still reads back from its owning shard.
    for line in range(lines):
        fleet.read(line)
