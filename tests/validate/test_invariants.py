"""Engine invariant checkers and the checkpoint round-trip checker."""

import numpy as np
import pytest

from repro.core import CompressedPCMController
from repro.engine.context import WriteResult
from repro.engine.registry import get_system
from repro.lifetime import LifetimeSimulator
from repro.pcm import EnduranceModel
from repro.traces import SyntheticWorkload, get_profile
from repro.validate import (
    FlipWearConservation,
    InvariantViolation,
    StatsConservation,
    WindowWithinLine,
    check_checkpoint_roundtrip,
    controller_state_snapshot,
    default_invariants,
)


def _controller(invariants=(), n_lines=16, endurance=16.0, seed=2):
    config = get_system("comp_wf").configured(correction_scheme="ecp6")
    return CompressedPCMController(
        config, n_lines, EnduranceModel(mean=endurance, cov=0.2),
        np.random.default_rng(seed), n_banks=4, invariants=invariants,
    )


def _drive(controller, writes=400, seed=9):
    rng = np.random.default_rng(seed)
    for _ in range(writes):
        logical = int(rng.integers(controller.n_lines))
        kind = int(rng.integers(3))
        if kind == 0:
            data = bytes(64)
        elif kind == 1:
            data = bytes(rng.integers(256, size=8, dtype=np.uint8)) * 8
        else:
            data = bytes(rng.integers(256, size=64, dtype=np.uint8))
        controller.write(logical, data)


class TestInvariantHooks:
    def test_default_invariants_pass_on_a_worn_run(self):
        controller = _controller(invariants=default_invariants())
        _drive(controller)
        assert controller.stats.deaths > 0  # the checkers saw real churn

    def test_checkers_are_pure_observers(self):
        checked = _controller(invariants=default_invariants())
        plain = _controller(invariants=())
        _drive(checked)
        _drive(plain)
        assert checked.memory.stored.tolist() == plain.memory.stored.tolist()
        assert checked.memory.counts.tolist() == plain.memory.counts.tolist()
        assert checked.stats.total_flips == plain.stats.total_flips

    def test_stats_conservation_trips_on_corrupted_counter(self):
        controller = _controller(invariants=(StatsConservation(),))
        controller.write(0, bytes(64))
        controller.stats.lost_writes += 1  # break the conservation law
        with pytest.raises(InvariantViolation, match="stats-conservation"):
            controller.write(1, bytes(64))

    def test_window_checker_rejects_fabricated_bad_results(self):
        controller = _controller(invariants=())
        controller.write(0, bytes(64))
        checker = WindowWithinLine()
        committed = dict(flips=0, died=False, revived=False, lost=False)
        with pytest.raises(InvariantViolation, match="out of range"):
            checker.after_write(controller.engine, WriteResult(
                physical=0, compressed=True, size_bytes=8, window_start=64,
                **committed))
        with pytest.raises(InvariantViolation, match="compressed write"):
            checker.after_write(controller.engine, WriteResult(
                physical=0, compressed=True, size_bytes=64, window_start=0,
                **committed))
        with pytest.raises(InvariantViolation, match="disagrees"):
            # Line 0 really stores the zero line (compressed to 1 byte);
            # a result claiming an uncompressed commit contradicts it.
            checker.after_write(controller.engine, WriteResult(
                physical=controller.pipeline.remap.map_logical(0),
                compressed=False, size_bytes=64, window_start=0,
                **committed))


class TestFlipWearConservation:
    """Energy accounting ground truth: flips counted == cells worn.

    The rescue (compression fallback after a failed uncompressed
    attempt) and spare-remap paths re-enter the program stage for the
    same demand write; these runs pin down that neither path prices a
    cell twice nor drops an attempt's wear.
    """

    def test_holds_across_rescue_and_remap_churn(self):
        config = get_system("comp_wf_freep").configured(
            correction_scheme="ecp6"
        )
        controller = CompressedPCMController(
            config, 32, EnduranceModel(mean=16.0, cov=0.2),
            np.random.default_rng(3), n_banks=4,
            invariants=(FlipWearConservation(),),
        )
        _drive(controller, writes=600, seed=11)
        # The run must actually have exercised the risky paths.
        assert controller.stats.remaps > 0
        assert controller.stats.deaths > 0
        assert controller.stats.total_flips == controller.memory.counts.sum()

    def test_holds_with_a_line_encoder_attached(self):
        # Encoder flag cells live outside the array, so attaching one
        # must not perturb the array-side conservation law.
        config = get_system("comp_wf_wire").configured(
            correction_scheme="ecp6"
        )
        controller = CompressedPCMController(
            config, 16, EnduranceModel(mean=24.0, cov=0.2),
            np.random.default_rng(5), n_banks=4,
            invariants=(FlipWearConservation(),),
        )
        _drive(controller, writes=300, seed=13)
        assert controller.stats.encoding_flag_set_flips > 0

    def test_trips_on_double_counted_flip(self):
        controller = _controller(invariants=(FlipWearConservation(),))
        controller.write(0, bytes(range(64)))
        controller.stats.total_flips += 1  # simulate a double-count
        with pytest.raises(InvariantViolation, match="flip-wear-conservation"):
            controller.write(1, bytes(range(64)))


class TestCheckpointRoundtrip:
    def _simulator(self):
        config = get_system("comp_wf").configured(correction_scheme="ecp6")
        workload = SyntheticWorkload(get_profile("gcc"), n_lines=12, seed=4)
        return LifetimeSimulator(
            config, workload, n_lines=12, endurance_mean=24.0, seed=4,
            n_banks=4,
        )

    def test_roundtrip_passes_on_live_simulator(self, tmp_path):
        simulator = self._simulator()
        simulator.run(max_writes=300)
        check_checkpoint_roundtrip(simulator, tmp_path)

    def test_roundtrip_detects_snapshot_drift(self):
        simulator = self._simulator()
        simulator.run(max_writes=100)
        snapshot = controller_state_snapshot(simulator.controller)
        # Same-state snapshots compare equal; a mutated one must not.
        assert snapshot == controller_state_snapshot(simulator.controller)
        simulator.controller.stats.total_flips += 1
        assert snapshot != controller_state_snapshot(simulator.controller)

    def test_roundtrip_after_resume_matches(self, tmp_path):
        simulator = self._simulator()
        simulator.run(max_writes=200, checkpoint_dir=tmp_path,
                      checkpoint_interval=100)
        resumed = self._simulator()
        resumed.run(max_writes=200, resume_from=sorted(
            tmp_path.glob("checkpoint-*.pkl"))[0])
        assert (
            controller_state_snapshot(resumed.controller)
            == controller_state_snapshot(simulator.controller)
        )
