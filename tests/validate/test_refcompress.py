"""Reference codecs vs the vectorized production compressors.

The reference encoders in ``repro.validate.refcompress`` are the frozen
pre-vectorization originals; these tests pin them bit-for-bit against
the numpy kernels (result fields, best-of selection, metadata packing)
and check that the loop-based decoders invert them.
"""

import numpy as np
import pytest

from repro.compression import BestOfCompressor
from repro.compression.base import CompressionError
from repro.compression.bdi import BDICompressor
from repro.compression.fpc import FPCCompressor
from repro.validate.refcompress import (
    reference_bdi_compress,
    reference_bdi_decompress,
    reference_best_compress,
    reference_decode_metadata,
    reference_decompress,
    reference_encode_metadata,
    reference_fpc_compress,
    reference_fpc_decompress,
)


def _adversarial_lines() -> list[bytes]:
    """Hand-built lines hitting every FPC prefix and BDI variant."""
    lines = [
        bytes(64),                                     # zeros
        b"\xAB\xCD\x01\x02\x03\x04\x05\x06" * 8,        # rep8
        b"\xFF" * 64,                                   # all ones
    ]
    # One line per BDI (base, delta) variant: base word + in-range deltas.
    for base_bytes, delta_bytes in ((8, 1), (4, 1), (8, 2), (2, 1), (4, 2), (8, 4)):
        base = (1 << (8 * base_bytes - 9)) + 12345 % (1 << (8 * base_bytes - 9))
        limit = 1 << (8 * delta_bytes - 1)
        words = [
            (base + (delta % limit) - limit // 2) % (1 << (8 * base_bytes))
            for delta in range(0, 64 // base_bytes)
        ]
        lines.append(
            b"".join(word.to_bytes(base_bytes, "little") for word in words)
        )
    # FPC prefixes: SE4 / SE8 / SE16 / hi-half / two-bytes / repeated /
    # uncompressed words, plus zero runs of every length 1..8.
    fpc_words = [
        7, (-3) & 0xFFFFFFFF,                      # SE4
        100, (-100) & 0xFFFFFFFF,                  # SE8
        30000, (-30000) & 0xFFFFFFFF,              # SE16
        0xABCD0000,                                # hi-half
        0x007F00FE,                                # two byte-extending halves
        0x5A5A5A5A,                                # repeated byte
        0xDEADBEEF,                                # uncompressed
        0, 0, 0,                                   # short zero run
        0x12345678, 0, 0xFFFFFFFF,
    ]
    lines.append(b"".join(word.to_bytes(4, "little") for word in fpc_words))
    for run in range(1, 9):
        words = [0] * run + [0xDEADBEEF] * (16 - run)
        lines.append(b"".join(word.to_bytes(4, "little") for word in words))
    # BDI wrap-around deltas: base near the top of the word range.
    top = (1 << 64) - 3
    words = [(top + delta) % (1 << 64) for delta in range(8)]
    lines.append(b"".join(word.to_bytes(8, "little") for word in words))
    return lines


def _random_lines(count: int = 200) -> list[bytes]:
    rng = np.random.default_rng(20260805)
    lines = []
    for index in range(count):
        kind = index % 4
        if kind == 0:
            lines.append(bytes(rng.integers(256, size=64, dtype=np.uint8)))
        elif kind == 1:  # BDI-friendly ramps
            base = int(rng.integers(1 << 56))
            words = [
                (base + int(delta)) % (1 << 64)
                for delta in rng.integers(-120, 120, size=8)
            ]
            lines.append(b"".join(word.to_bytes(8, "little") for word in words))
        elif kind == 2:  # FPC-friendly small words
            words = rng.integers(-(1 << 14), 1 << 14, size=16)
            lines.append(
                b"".join(int(w).to_bytes(4, "little", signed=True) for w in words)
            )
        else:  # sparse
            line = bytearray(64)
            for pos in rng.integers(64, size=3):
                line[int(pos)] = int(rng.integers(1, 256))
            lines.append(bytes(line))
    return lines


ALL_LINES = _adversarial_lines() + _random_lines()


class TestAgainstProduction:
    def test_fpc_matches_vectorized(self):
        fast = FPCCompressor()
        for data in ALL_LINES:
            ref = reference_fpc_compress(data)
            prod = fast.compress(data)
            assert (ref.encoding, ref.size_bits, ref.payload) == (
                prod.encoding, prod.size_bits, prod.payload,
            ), data.hex()

    def test_bdi_matches_vectorized(self):
        fast = BDICompressor()
        for data in ALL_LINES:
            ref = reference_bdi_compress(data)
            prod = fast.compress(data)
            assert (ref.encoding, ref.size_bits, ref.payload) == (
                prod.encoding, prod.size_bits, prod.payload,
            ), data.hex()

    def test_best_of_matches_production_selection(self):
        best = BestOfCompressor()
        for data in ALL_LINES:
            ref = reference_best_compress(data)
            prod = best.compress(data)
            assert (ref.algorithm, ref.encoding, ref.size_bits, ref.payload) == (
                prod.algorithm, prod.encoding, prod.size_bits, prod.payload,
            ), data.hex()

    def test_metadata_codec_matches_production(self):
        best = BestOfCompressor()
        for data in ALL_LINES:
            ref = reference_best_compress(data)
            prod = best.compress(data)
            metadata = reference_encode_metadata(ref)
            assert metadata == best.encode_metadata(prod)
            member, encoding = best.decode_metadata(metadata)
            assert reference_decode_metadata(metadata) == (member.name, encoding)


class TestRoundTrips:
    def test_fpc_round_trip(self):
        for data in ALL_LINES:
            result = reference_fpc_compress(data)
            assert reference_fpc_decompress(result.payload) == data

    def test_bdi_round_trip(self):
        for data in ALL_LINES:
            result = reference_bdi_compress(data)
            assert reference_bdi_decompress(result.encoding, result.payload) == data

    def test_best_round_trip_via_metadata(self):
        for data in ALL_LINES:
            result = reference_best_compress(data)
            metadata = reference_encode_metadata(result)
            restored = reference_decompress(metadata, result.payload, result.size_bits)
            assert restored == data


class TestErrors:
    def test_bdi_rejects_bad_payload_sizes(self):
        with pytest.raises(CompressionError):
            reference_bdi_decompress(1 + 1, b"short")  # rep8 wants 8 bytes
        with pytest.raises(CompressionError):
            reference_bdi_decompress(3, bytes(10))  # b8d1 wants 16 bytes
        with pytest.raises(CompressionError):
            reference_bdi_decompress(42, bytes(16))

    def test_fpc_rejects_truncated_bitstream(self):
        result = reference_fpc_compress(b"\xDE\xAD\xBE\xEF" * 16)
        with pytest.raises(CompressionError):
            reference_fpc_decompress(result.payload[:-4])

    def test_metadata_rejects_out_of_range(self):
        with pytest.raises(CompressionError):
            reference_decode_metadata(10)
        with pytest.raises(CompressionError):
            reference_decode_metadata(31)
