"""The differential fuzz driver: campaigns, shrinking, corpus, CLI."""

import json

import pytest

from repro.cli import main
from repro.engine import stages
from repro.validate import DivergenceError, run_fuzz, shrink_recipe
from repro.validate.fuzz import (
    normalize_scheme,
    replay_corpus_entry,
    write_corpus_entry,
)


class TestRunFuzz:
    def test_clean_campaigns_report_ok(self):
        report = run_fuzz(
            systems=("comp_wf",), schemes=("ecp6", "aegis"), writes=120,
            seed=0, lines=12, endurance_mean=16.0,
        )
        assert len(report.campaigns) == 2
        assert all(campaign.ok for campaign in report.campaigns)
        assert {c.scheme for c in report.campaigns} == {"ecp6", "aegis17x31"}
        assert all(c.writes_run == 120 for c in report.campaigns)
        assert not report.failures

    def test_campaigns_are_deterministic(self):
        kwargs = dict(systems=("comp_w",), schemes=("safer32",), writes=80,
                      seed=7, lines=10)
        first = run_fuzz(**kwargs)
        second = run_fuzz(**kwargs)
        assert first.campaigns[0].writes_run == second.campaigns[0].writes_run
        assert first.campaigns[0].ok and second.campaigns[0].ok

    def test_time_budget_skips_not_passes(self):
        report = run_fuzz(
            systems=("comp_wf", "comp"), schemes=("ecp6",), writes=50,
            lines=8, time_budget=0.0,
        )
        assert len(report.skipped) == 2
        assert not any(campaign.ok for campaign in report.campaigns)

    def test_scheme_alias(self):
        assert normalize_scheme("aegis") == "aegis17x31"
        assert normalize_scheme("ecp6") == "ecp6"


def _mutated(monkeypatch):
    """Install the broken window-search predicate (see test_lockstep)."""
    real = stages.find_window

    def broken(faults, size, scheme, start_hint=0, **kw):
        if len(faults) and size < 64:
            return (start_hint + 1) % 64
        return real(faults, size, scheme, start_hint=start_hint, **kw)

    monkeypatch.setattr(stages, "find_window", broken)


class TestDivergenceHandling:
    def test_mutation_produces_shrunk_corpus_entry(self, monkeypatch, tmp_path):
        _mutated(monkeypatch)
        report = run_fuzz(
            systems=("comp_wf",), schemes=("ecp6",), writes=2500,
            seed=0, lines=12, endurance_mean=10.0, corpus_dir=tmp_path,
        )
        (campaign,) = report.campaigns
        assert campaign.divergence is not None
        assert campaign.corpus_path is not None and campaign.corpus_path.exists()

        entry = json.loads(campaign.corpus_path.read_text())
        assert entry["campaign"] == "comp_wf-ecp6"
        assert entry["ops_shrunk_to"] <= entry["ops_shrunk_from"]
        assert entry["recipe"]["ops"], "shrunk recipe lost its write sequence"
        assert entry["diffs"], "corpus entry must carry the diff lines"

        # The corpus entry reproduces under the mutation...
        assert isinstance(replay_corpus_entry(campaign.corpus_path), DivergenceError)
        # ... and is clean once the mutation is reverted.
        monkeypatch.undo()
        assert replay_corpus_entry(campaign.corpus_path) is None

    def test_shrink_rejects_non_reproducing_recipe(self):
        from repro.validate import ValidatingController
        from repro.engine.registry import get_system

        config = get_system("comp_wf").configured(correction_scheme="ecp6")
        controller = ValidatingController(config, 8, seed=0, n_banks=4)
        controller.write(0, bytes(64))
        recipe = controller._recipe(0, bytes(64))
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_recipe(recipe)

    def test_corpus_entry_counter_avoids_collisions(self, tmp_path):
        recipe = {"ops": [[0, "00" * 64]]}
        first = write_corpus_entry(tmp_path, "sys-ecp6", recipe, ["diff"], 5)
        second = write_corpus_entry(tmp_path, "sys-ecp6", recipe, ["diff"], 5)
        assert first != second
        assert first.exists() and second.exists()


class TestShardedFuzz:
    def test_sharded_campaigns_run_clean(self):
        report = run_fuzz(
            systems=("comp_wf",), schemes=("ecp6", "safer32"), writes=300,
            seed=3, lines=24, endurance_mean=16.0, shards=4,
        )
        assert all(campaign.ok for campaign in report.campaigns)
        assert all(c.writes_run == 300 for c in report.campaigns)

    def test_one_shard_is_the_historical_campaign(self):
        kwargs = dict(systems=("comp_w",), schemes=("ecp6",), writes=200,
                      seed=5, lines=12, endurance_mean=12.0)
        implicit = run_fuzz(**kwargs)
        explicit = run_fuzz(shards=1, **kwargs)
        assert implicit.campaigns[0].ok and explicit.campaigns[0].ok
        assert (
            implicit.campaigns[0].writes_run
            == explicit.campaigns[0].writes_run
        )

    def test_rejects_bad_shard_counts(self):
        with pytest.raises(ValueError, match="at least one shard"):
            run_fuzz(systems=("comp_wf",), schemes=("ecp6",), writes=10,
                     lines=8, shards=0)
        with pytest.raises(ValueError, match="shards"):
            run_fuzz(systems=("comp_wf",), schemes=("ecp6",), writes=10,
                     lines=8, shards=9)

    def test_divergence_in_a_shard_yields_a_replayable_entry(
        self, monkeypatch, tmp_path
    ):
        _mutated(monkeypatch)
        report = run_fuzz(
            systems=("comp_wf",), schemes=("ecp6",), writes=2500,
            seed=0, lines=24, endurance_mean=10.0, corpus_dir=tmp_path,
            shards=2, shrink=False,
        )
        (campaign,) = report.campaigns
        assert campaign.divergence is not None
        # The per-shard recipe is self-contained (shard-local lines,
        # shard seed), so it replays without any shard map.
        assert isinstance(replay_corpus_entry(campaign.corpus_path), DivergenceError)
        monkeypatch.undo()
        assert replay_corpus_entry(campaign.corpus_path) is None

    def test_fleet_view_assertions_catch_broken_merges(self):
        from repro.engine.context import ControllerStats
        from repro.validate.fuzz import assert_fleet_view

        good = ControllerStats(
            demand_writes=10, gap_move_writes=2,
            compressed_writes=11, uncompressed_writes=1,
        )
        assert_fleet_view([good, ControllerStats.identity()])
        leaky = ControllerStats(demand_writes=10, compressed_writes=8)
        with pytest.raises(AssertionError, match="write accounting"):
            assert_fleet_view([leaky])


class TestCli:
    def test_fuzz_subcommand_smoke(self, capsys):
        status = main([
            "fuzz", "--systems", "comp_wf", "--schemes", "ecp6",
            "--writes", "60", "--lines", "10", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "0 divergences" in out

    def test_fuzz_subcommand_reports_divergence(
        self, monkeypatch, tmp_path, capsys
    ):
        _mutated(monkeypatch)
        status = main([
            "fuzz", "--systems", "comp_wf", "--schemes", "ecp6",
            "--writes", "2500", "--lines", "12", "--endurance", "10",
            "--corpus", str(tmp_path), "--no-shrink",
        ])
        out = capsys.readouterr().out
        assert status == 1
        assert "DIVERGED" in out or "divergence" in out
        assert list(tmp_path.glob("divergence-*.json"))

    def test_fuzz_replay_of_corpus_entry(self, monkeypatch, tmp_path, capsys):
        _mutated(monkeypatch)
        run_fuzz(
            systems=("comp_wf",), schemes=("ecp6",), writes=2500,
            seed=0, lines=12, endurance_mean=10.0, corpus_dir=tmp_path,
            shrink=False,
        )
        (path,) = tmp_path.glob("divergence-*.json")
        status = main(["fuzz", "--replay", str(path)])
        assert status == 1  # still reproduces under the mutation
        monkeypatch.undo()
        status = main(["fuzz", "--replay", str(path)])
        capsys.readouterr()
        assert status == 0  # mutation reverted: the recipe is clean

    def test_fuzz_shards_flag_recorded_in_manifest(self, tmp_path, capsys):
        status = main([
            "fuzz", "--systems", "comp_wf", "--schemes", "ecp6",
            "--writes", "120", "--lines", "16", "--shards", "2",
            "--corpus", str(tmp_path),
        ])
        capsys.readouterr()
        assert status == 0
        manifest = json.loads((tmp_path / "campaign-manifest.json").read_text())
        (run,) = manifest["runs"]
        assert run["shards"] == 2
