"""Lockstep oracle campaigns on the WoLFRaM PAD backend (PR 10).

The fast engine's :class:`~repro.wearleveling.wolfram.WolframPAD` /
:class:`~repro.wearleveling.wolfram.PadSpareRemapper` pair is validated
write-for-write against the reference model's independent, loop-based
``_RefWolframPAD`` / ``_RefPadRemapper`` re-derivation -- swap
schedule, decoder-table permutation, spare remaps, and the priced
``pad_table_writes`` counter all checked in lockstep, serially and
through the out-of-order batch scheduler.
"""

from repro.engine.registry import get_system

from .test_lockstep import _batched_campaign, _campaign


class TestWolframLockstep:
    def test_worn_campaign_agrees_with_deaths_and_revivals(self):
        config = get_system("comp_wf_wolfram").configured(
            correction_scheme="ecp6", start_gap_psi=23
        )
        controller = _campaign(config)
        stats = controller.fast.stats
        assert stats.deaths > 0, "campaign too gentle to exercise death"
        assert stats.revivals > 0, "campaign never exercised revival"
        assert stats.pad_table_writes > 0

    def test_spare_pool_campaign_exercises_pad_remap(self):
        config = get_system("comp_wf_wolfram").configured(
            correction_scheme="ecp6", start_gap_psi=23,
            spare_line_fraction=0.15,
        )
        controller = _campaign(config)
        stats = controller.fast.stats
        assert stats.remaps > 0, "PAD spare remap never fired"
        # Each swap costs 2 entry rewrites; each remap at least 1 more.
        assert stats.pad_table_writes >= (
            2 * controller.fast.engine.start_gap.swaps + stats.remaps
        )

    def test_safer_campaign_agrees(self):
        config = get_system("comp_wf_wolfram").configured(
            correction_scheme="safer32", start_gap_psi=23
        )
        controller = _campaign(config, writes=600)
        assert controller.fast.stats.deaths > 0

    def test_batched_campaign_agrees_through_wearout(self):
        config = get_system("comp_wf_wolfram").configured(
            correction_scheme="ecp6", start_gap_psi=23
        )
        controller = _batched_campaign(config)
        stats = controller.fast.stats
        assert stats.deaths > 0, "campaign too gentle to exercise death"
        assert stats.pad_table_writes > 0

    def test_batched_spare_campaign_agrees(self):
        config = get_system("comp_wf_wolfram").configured(
            correction_scheme="ecp6", start_gap_psi=23,
            spare_line_fraction=0.15,
        )
        controller = _batched_campaign(config)
        assert controller.fast.stats.remaps > 0
