"""The checked-in fuzz corpus: replay entries, audit the manifest.

``tests/validate/corpus/`` is the durable output of the differential
fuzz campaigns (``python -m repro fuzz --corpus tests/validate/corpus``):
one JSON repro seed per divergence ever found, plus the campaign
manifest recording how much fuzzing the corpus represents.  Divergence
entries are checked in together with their fixes, so replaying each one
must come back clean -- a reproducing entry means a fixed bug regressed.
"""

import json
from pathlib import Path

import pytest

from repro.validate.fuzz import replay_corpus_entry

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("divergence-*.json"))


@pytest.mark.parametrize(
    "entry", ENTRIES or [None], ids=lambda p: p.name if p else "corpus-empty"
)
def test_corpus_entries_stay_fixed(entry):
    if entry is None:
        pytest.skip("no divergences in the corpus (campaigns all clean)")
    assert replay_corpus_entry(entry) is None, (
        f"{entry.name} reproduces again -- a fixed divergence regressed"
    )


@pytest.fixture(scope="module")
def manifest():
    return json.loads((CORPUS / "campaign-manifest.json").read_text())


def test_every_corpus_entry_is_accounted_for(manifest):
    recorded = {
        divergence["corpus_entry"]
        for run in manifest["runs"]
        for divergence in run["divergences"]
        if divergence["corpus_entry"]
    }
    assert recorded == {path.name for path in ENTRIES}


def test_manifest_records_the_deep_campaigns(manifest):
    """The 10x-budget sweep: 20k writes, several seeds, full grid."""
    deep = [run for run in manifest["runs"] if run["writes"] >= 20_000]
    assert len({run["seed"] for run in deep}) >= 3, "several seeds required"
    for run in deep:
        assert set(run["schemes"]) == {"ecp6", "safer32", "aegis17x31"}
        assert {"baseline", "comp", "comp_w", "comp_wf"} <= set(run["systems"])
        assert run["campaigns"] == len(run["systems"]) * len(run["schemes"])
        assert run["skipped"] == 0
        # No campaign stopped early (early stop = divergence or budget).
        assert run["writes_run"] == run["campaigns"] * run["writes"]
