"""Lockstep differential execution: clean runs, divergences, recipes.

The mutation tests are the acceptance check for the whole oracle: each
deliberately breaks one vectorized fast-path predicate and asserts the
lockstep diff catches it with a recipe that reproduces the failure.
"""

import dataclasses

import numpy as np
import pytest

from repro.compression.fpc import FPCCompressor
from repro.engine import stages
from repro.engine.registry import get_system
from repro.validate import (
    DivergenceError,
    ValidatingController,
    controller_from_recipe,
    replay_recipe,
)
from repro.validate.fuzz import _PayloadPalette


def _campaign(config, *, lines=24, banks=4, endurance=16.0, seed=3,
              writes=800, payload_seed=5):
    """Drive one lockstep campaign; returns the controller."""
    controller = ValidatingController(
        config, lines, endurance_mean=endurance, endurance_cov=0.2,
        seed=seed, n_banks=banks,
    )
    palette = _PayloadPalette(np.random.default_rng(payload_seed), lines)
    for _ in range(writes):
        logical, payload = palette.next_op()
        controller.write(logical, payload)
    controller.verify_state()
    return controller


class TestCleanLockstep:
    def test_worn_campaign_agrees_with_deaths_and_revivals(self):
        # Small psi so Start-Gap cycles fast enough to revive dead
        # blocks within the campaign; tiny endurance so blocks die.
        config = get_system("comp_wf").configured(
            correction_scheme="ecp6", start_gap_psi=23
        )
        controller = _campaign(config)
        stats = controller.fast.stats
        assert stats.deaths > 0, "campaign too gentle to exercise death"
        assert stats.revivals > 0, "campaign never exercised revival"
        assert stats.window_slides > 0

    def test_freep_campaign_exercises_remap(self):
        config = get_system("comp_wf_freep").configured(
            correction_scheme="ecp6", start_gap_psi=23
        )
        controller = _campaign(config)
        assert controller.fast.stats.remaps > 0, "FREE-p remap never fired"

    def test_region_start_gap_and_safer_agree(self):
        config = get_system("comp_wf_regions").configured(
            correction_scheme="safer32", start_gap_psi=23
        )
        controller = _campaign(config, writes=600)
        assert controller.fast.stats.deaths > 0


def _batched_campaign(config, *, lines=24, banks=4, endurance=16.0, seed=3,
                      writes=800, payload_seed=5, chunk_seed=9):
    """Drive one lockstep campaign through write_batch; returns it.

    Chunk sizes vary randomly from 1 to 32, so the campaign covers the
    degenerate single-write batch, collision-induced flushes, and full
    vectorized epochs.
    """
    controller = ValidatingController(
        config, lines, endurance_mean=endurance, endurance_cov=0.2,
        seed=seed, n_banks=banks,
    )
    palette = _PayloadPalette(np.random.default_rng(payload_seed), lines)
    chunks = np.random.default_rng(chunk_seed)
    issued = 0
    while issued < writes:
        size = min(int(chunks.integers(1, 33)), writes - issued)
        controller.write_batch([palette.next_op() for _ in range(size)])
        issued += size
    controller.verify_state()
    return controller


class TestBatchedLockstep:
    """The batched engine against the serial oracle (strongest check)."""

    def test_batched_comp_wf_agrees_through_wearout(self):
        config = get_system("comp_wf").configured(
            correction_scheme="ecp6", start_gap_psi=23
        )
        controller = _batched_campaign(config)
        stats = controller.fast.stats
        assert stats.deaths > 0, "campaign too gentle to exercise death"
        assert stats.window_slides > 0

    def test_batched_safer_campaign_agrees(self):
        config = get_system("comp_wf").configured(
            correction_scheme="safer32", start_gap_psi=23
        )
        controller = _batched_campaign(config, writes=600)
        assert controller.fast.stats.deaths > 0

    def test_batched_results_equal_serial_lockstep(self):
        config = get_system("comp_wf").configured(correction_scheme="ecp6")
        serial = _campaign(config, writes=400)
        batched = _batched_campaign(config, writes=400)
        assert batched.ops == serial.ops  # identical stimulus...
        assert (  # ... identical verdicts (modulo wave telemetry)
            batched.fast.stats.without_scheduler_telemetry()
            == serial.fast.stats.without_scheduler_telemetry()
        )

    def test_batched_oracle_catches_missed_wearout(self):
        """A row kernel that never detects wear-out must be flushed out."""
        from repro.pcm.bank import PCMBankArray

        config = get_system("comp_wf").configured(correction_scheme="ecp6")
        real_write_rows = PCMBankArray.write_rows

        def blind_write_rows(self, rows, targets, masks=None):
            # Mutation: inflate the endurance seen by the batched
            # kernel, so batch-path writes never mark new faults while
            # the serial oracle does.
            saved = self.endurance
            self.endurance = saved + np.uint64(1_000)
            try:
                return real_write_rows(self, rows, targets, masks)
            finally:
                self.endurance = saved

        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(PCMBankArray, "write_rows", blind_write_rows)
            with pytest.raises(DivergenceError) as excinfo:
                _batched_campaign(config, writes=3000, endurance=12.0)
        assert excinfo.value.recipe["ops"]


class TestRecipes:
    def test_recipe_is_json_serializable_and_rebuildable(self):
        config = get_system("comp_wf").configured(correction_scheme="ecp6")
        controller = ValidatingController(config, 8, seed=1, n_banks=4)
        controller.write(3, bytes(64))
        recipe = controller._recipe(3, bytes(64))
        import json

        rebuilt = controller_from_recipe(json.loads(json.dumps(recipe)))
        assert rebuilt.config == config
        assert rebuilt.n_lines == 8
        assert rebuilt.seed == 1

    def test_replay_of_clean_sequence_returns_none(self):
        config = get_system("comp_wf").configured(correction_scheme="ecp6")
        controller = ValidatingController(config, 8, seed=1, n_banks=4)
        payloads = [bytes([i]) * 64 for i in range(6)]
        for index, payload in enumerate(payloads):
            controller.write(index % 8, payload)
        recipe = controller._recipe(*controller.ops[-1])
        assert replay_recipe(recipe) is None


def _run_until_divergence(config, *, max_writes=3000, **kwargs):
    """Drive a campaign expecting a mutation-induced divergence."""
    controller = ValidatingController(
        config, kwargs.pop("lines", 24),
        endurance_mean=kwargs.pop("endurance", 12.0), endurance_cov=0.2,
        seed=kwargs.pop("seed", 3), n_banks=kwargs.pop("banks", 4),
    )
    palette = _PayloadPalette(np.random.default_rng(7), 24)
    with pytest.raises(DivergenceError) as excinfo:
        for _ in range(max_writes):
            logical, payload = palette.next_op()
            controller.write(logical, payload)
        controller.verify_state()
        pytest.fail("mutated pipeline was never caught by the oracle")
    return excinfo.value


class TestMutationsAreCaught:
    """Seeded faults in the fast path must be flushed out by the oracle."""

    def test_broken_window_search_predicate_is_caught(self):
        config = get_system("comp_wf").configured(correction_scheme="ecp6")
        real_find_window = stages.find_window

        def broken_find_window(faults, size, scheme, start_hint=0, **kw):
            # Mutation: ignore fault positions once any exist -- the
            # exact class of bug the window-placement stage must not
            # have (placing payload bytes over stuck cells).
            if len(faults) and size < 64:
                return (start_hint + 1) % 64
            return real_find_window(faults, size, scheme, start_hint=start_hint, **kw)

        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(stages, "find_window", broken_find_window)
            error = _run_until_divergence(config)
            assert error.recipe["ops"], "recipe must carry the write sequence"
            assert any(
                "window" in diff or "stats" in diff or "stored" in diff
                or "result" in diff
                for diff in error.diffs
            )
            # The recipe is usable: replaying it under the same mutation
            # reproduces the divergence from scratch.
            replayed = replay_recipe(error.recipe)
            assert isinstance(replayed, DivergenceError)
        # ... and with the mutation reverted, the same recipe is clean.
        assert replay_recipe(error.recipe) is None

    def test_fpc_size_lie_is_caught(self):
        config = get_system("comp_wf").configured(correction_scheme="ecp6")
        real_compress = FPCCompressor.compress

        def lying_compress(self, data):
            result = real_compress(self, data)
            # Mutation: under-report the FPC bitstream size, flipping
            # best-of selections and corrupting the stored-size metadata.
            return dataclasses.replace(
                result, size_bits=max(8, result.size_bits - 48)
            )

        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(FPCCompressor, "compress", lying_compress)
            error = _run_until_divergence(config, max_writes=200)
            replayed = replay_recipe(error.recipe)
            assert isinstance(replayed, DivergenceError)
        assert replay_recipe(error.recipe) is None
