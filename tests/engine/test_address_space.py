"""The shardable address space: ranges, shard maps, translation, seeds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.address_space import AddressRange, ShardMap, shard_seeds
from repro.traces import SyntheticWorkload, get_profile
from repro.traces.trace import Trace


class TestAddressRange:
    def test_basic_geometry(self):
        r = AddressRange(32, 64)
        assert len(r) == 32
        assert 32 in r and 63 in r
        assert 31 not in r and 64 not in r

    def test_translation_round_trip(self):
        r = AddressRange(10, 25)
        for line in range(10, 25):
            assert r.to_global(r.to_local(line)) == line
        assert r.to_local(10) == 0
        assert r.to_local(24) == 14

    def test_rejects_degenerate_ranges(self):
        with pytest.raises(ValueError):
            AddressRange(-1, 4)
        with pytest.raises(ValueError):
            AddressRange(5, 5)
        with pytest.raises(ValueError):
            AddressRange(7, 3)

    def test_translation_bounds_checked(self):
        r = AddressRange(4, 8)
        with pytest.raises(IndexError):
            r.to_local(3)
        with pytest.raises(IndexError):
            r.to_local(8)
        with pytest.raises(IndexError):
            r.to_global(4)
        with pytest.raises(IndexError):
            r.to_global(-1)


class TestShardMap:
    def test_partition_is_contiguous_and_balanced(self):
        m = ShardMap(103, 4)
        sizes = [m.lines_of(s) for s in range(4)]
        assert sizes == [26, 26, 26, 25]
        assert m.ranges[0].start == 0
        assert m.ranges[-1].stop == 103
        for left, right in zip(m.ranges, m.ranges[1:]):
            assert left.stop == right.start

    @given(
        total=st.integers(min_value=1, max_value=500),
        shards=st.integers(min_value=1, max_value=32),
    )
    def test_routing_matches_ranges_for_every_line(self, total, shards):
        if shards > total:
            with pytest.raises(ValueError):
                ShardMap(total, shards)
            return
        m = ShardMap(total, shards)
        assert sum(m.lines_of(s) for s in range(shards)) == total
        assert max(m.lines_of(s) for s in range(shards)) - min(
            m.lines_of(s) for s in range(shards)
        ) <= 1
        for line in range(total):
            shard = m.shard_of(line)
            assert line in m.range_of(shard)
            owner, local = m.to_local(line)
            assert owner == shard
            assert m.to_global(owner, local) == line

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ShardMap(0, 1)
        with pytest.raises(ValueError):
            ShardMap(8, 0)
        with pytest.raises(ValueError):
            ShardMap(3, 4)
        with pytest.raises(IndexError):
            ShardMap(8, 2).shard_of(8)
        with pytest.raises(IndexError):
            ShardMap(8, 2).shard_of(-1)

    def test_single_shard_keeps_the_base_seed(self):
        # The golden-digest identity: a 1-shard map must not perturb
        # seeding in any way.
        assert shard_seeds(1234, 1) == [1234]
        assert ShardMap(16, 1).shard_seeds(1234) == [1234]

    def test_multi_shard_seeds_are_deterministic_and_distinct(self):
        seeds = shard_seeds(7, 4)
        assert seeds == shard_seeds(7, 4)
        assert len(set(seeds)) == 4
        assert shard_seeds(8, 4) != seeds

    def test_partition_preserves_stream_order(self):
        m = ShardMap(12, 3)
        stream = [(line, bytes([line])) for line in (0, 5, 11, 4, 1, 8, 7)]
        buckets = m.partition(stream)
        assert buckets[0] == [(0, b"\x00"), (1, b"\x01")]
        assert buckets[1] == [(1, b"\x05"), (0, b"\x04"), (3, b"\x07")]
        assert buckets[2] == [(3, b"\x0b"), (0, b"\x08")]

    def test_partition_trace_round_trips_every_write(self):
        workload = SyntheticWorkload(get_profile("milc"), n_lines=20, seed=3)
        trace = Trace(workload="milc", n_lines=20)
        for write in workload.iter_writes(200):
            trace.append(write)
        m = ShardMap(20, 3)
        parts = m.partition_trace(trace)
        assert [p.n_lines for p in parts] == [7, 7, 6]
        assert all(p.workload == "milc" for p in parts)
        assert sum(len(p) for p in parts) == len(trace)
        # Reassemble: map each sub-trace write back to the global space
        # and check the multiset of (line, payload) pairs survives.
        rebuilt = sorted(
            (m.to_global(shard, w.line), w.data)
            for shard, part in enumerate(parts)
            for w in part
        )
        assert rebuilt == sorted((w.line, w.data) for w in trace)
