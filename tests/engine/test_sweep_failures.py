"""Fault tolerance of the sweep runner.

The load-bearing property: one poisoned (workload, system) task must
never discard its siblings' results -- the old ``pool.map`` rethrow
aborted the whole grid.  A failing task comes back as a structured
:class:`~repro.engine.TaskFailure` (spec + traceback + attempt count),
the rest of the grid completes, and the run-manifest records both.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    SweepError,
    SweepRunner,
    SweepTask,
    TaskFailure,
    run_task,
)
from repro.lifetime import latest_checkpoint, run_system_comparison

SMALL = dict(n_lines=24, endurance_mean=12.0, max_writes=600_000)
#: An unregistered system name: the worker raises inside
#: ``build_simulator`` exactly like a bad config would mid-grid.
POISON = "no_such_system"


def poisoned_runner(**kwargs):
    return SweepRunner(systems=("baseline", POISON, "comp_wf"), **SMALL, **kwargs)


class TestPartialResults:
    def test_siblings_survive_a_poisoned_task(self):
        report = poisoned_runner(failure_mode="collect").run_report(
            ("milc",), seed=3
        )
        assert not report.ok
        assert set(report.results["milc"]) == {"baseline", "comp_wf"}
        assert report.n_tasks == 3
        [failure] = report.failures
        assert isinstance(failure, TaskFailure)
        assert failure.task.system == POISON
        assert failure.task.workload == "milc"
        assert failure.error_type == "ValueError"
        assert POISON in failure.message
        assert "build_simulator" in failure.traceback
        assert failure.attempts == 1

    def test_parallel_pool_matches_serial_partial_results(self):
        serial = poisoned_runner(failure_mode="collect").run_report(
            ("milc",), seed=3
        )
        parallel = poisoned_runner(
            failure_mode="collect", workers=3
        ).run_report(("milc",), seed=3)
        assert parallel.results["milc"] == serial.results["milc"]
        assert [f.task for f in parallel.failures] == [
            f.task for f in serial.failures
        ]

    def test_surviving_results_match_a_clean_sweep(self):
        clean = run_system_comparison(
            "milc", systems=("baseline", "comp_wf"), seed=3, **SMALL
        )
        report = poisoned_runner(failure_mode="collect").run_report(
            ("milc",), seed=3
        )
        assert report.results["milc"] == clean

    def test_multi_workload_grid_completes_around_failures(self):
        report = poisoned_runner(failure_mode="collect", workers=2).run_report(
            ("milc", "gcc"), seed=3
        )
        for workload in ("milc", "gcc"):
            assert set(report.results[workload]) == {"baseline", "comp_wf"}
        assert len(report.failures) == 2  # one poisoned task per workload


class TestFailureModes:
    def test_raise_mode_raises_after_finishing_the_grid(self):
        with pytest.raises(SweepError) as excinfo:
            poisoned_runner().run(("milc",), seed=3)
        report = excinfo.value.report
        assert set(report.results["milc"]) == {"baseline", "comp_wf"}
        assert POISON in str(excinfo.value)

    def test_collect_mode_returns_the_partial_grid(self):
        grid = poisoned_runner(failure_mode="collect").run(("milc",), seed=3)
        assert set(grid["milc"]) == {"baseline", "comp_wf"}

    def test_invalid_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="failure_mode"):
            SweepRunner(failure_mode="ignore")
        with pytest.raises(ValueError, match="retries"):
            SweepRunner(retries=-1)


class TestRetries:
    def test_retry_budget_is_spent_and_recorded(self):
        report = poisoned_runner(
            failure_mode="collect", retries=2
        ).run_report(("milc",), seed=3)
        [failure] = report.failures
        assert failure.attempts == 3  # 1 initial + 2 retries

    def test_parallel_retries_match(self):
        report = poisoned_runner(
            failure_mode="collect", retries=1, workers=2
        ).run_report(("milc",), seed=3)
        [failure] = report.failures
        assert failure.attempts == 2


class TestManifestAndCheckpoints:
    def test_manifest_records_completions_and_failures(self, tmp_path):
        runner = poisoned_runner(
            failure_mode="collect", checkpoint_dir=str(tmp_path)
        )
        runner.run_report(("milc",), seed=3)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["n_tasks"] == 3
        assert manifest["seed"] == 3
        done = {(c["workload"], c["system"]) for c in manifest["completed"]}
        assert done == {("milc", "baseline"), ("milc", "comp_wf")}
        [failure] = manifest["failures"]
        assert failure["system"] == POISON
        assert failure["error_type"] == "ValueError"
        assert "Traceback" in failure["traceback"]

    def test_tasks_checkpoint_into_per_run_directories(self, tmp_path):
        runner = SweepRunner(
            systems=("comp_wf",), checkpoint_dir=str(tmp_path),
            checkpoint_interval=500, **SMALL,
        )
        clean = runner.run(("milc",), seed=3)
        run_dir = tmp_path / "milc-comp_wf"
        assert latest_checkpoint(run_dir) is not None
        assert (run_dir / "events.jsonl").exists()
        # Resuming the finished run from its last checkpoint replays the
        # tail bit-identically.
        resumed_runner = SweepRunner(
            systems=("comp_wf",), checkpoint_dir=str(tmp_path),
            checkpoint_interval=500, resume=True, **SMALL,
        )
        resumed = resumed_runner.run(("milc",), seed=3)
        assert resumed["milc"]["comp_wf"] == clean["milc"]["comp_wf"]

    def test_poisoned_task_spec_round_trips_through_pickle(self):
        import pickle

        task = SweepTask(
            system=POISON, workload="milc", n_lines=8, endurance_mean=5.0,
            endurance_cov=0.15, seed=0, max_writes=100,
            checkpoint_dir="/tmp/x", checkpoint_interval=50, resume=True,
        )
        assert pickle.loads(pickle.dumps(task)) == task
        with pytest.raises(ValueError, match=POISON):
            run_task(task)
