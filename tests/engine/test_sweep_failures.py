"""Fault tolerance of the sweep runner.

The load-bearing property: one poisoned (workload, system) task must
never discard its siblings' results -- the old ``pool.map`` rethrow
aborted the whole grid.  A failing task comes back as a structured
:class:`~repro.engine.TaskFailure` (spec + traceback + attempt count),
the rest of the grid completes, and the run-manifest records both.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.engine import (
    SweepError,
    SweepRunner,
    SweepTask,
    TaskFailure,
    run_task,
)
from repro.engine.sweep import quarantine_attempt
from repro.lifetime import latest_checkpoint, run_system_comparison
from repro.lifetime.checkpoint import list_checkpoints

SMALL = dict(n_lines=24, endurance_mean=12.0, max_writes=600_000)
#: An unregistered system name: the worker raises inside
#: ``build_simulator`` exactly like a bad config would mid-grid.
POISON = "no_such_system"


def poisoned_runner(**kwargs):
    return SweepRunner(systems=("baseline", POISON, "comp_wf"), **SMALL, **kwargs)


class TestPartialResults:
    def test_siblings_survive_a_poisoned_task(self):
        report = poisoned_runner(failure_mode="collect").run_report(
            ("milc",), seed=3
        )
        assert not report.ok
        assert set(report.results["milc"]) == {"baseline", "comp_wf"}
        assert report.n_tasks == 3
        [failure] = report.failures
        assert isinstance(failure, TaskFailure)
        assert failure.task.system == POISON
        assert failure.task.workload == "milc"
        assert failure.error_type == "ValueError"
        assert POISON in failure.message
        assert "build_simulator" in failure.traceback
        assert failure.attempts == 1

    def test_parallel_pool_matches_serial_partial_results(self):
        serial = poisoned_runner(failure_mode="collect").run_report(
            ("milc",), seed=3
        )
        parallel = poisoned_runner(
            failure_mode="collect", workers=3
        ).run_report(("milc",), seed=3)
        assert parallel.results["milc"] == serial.results["milc"]
        assert [f.task for f in parallel.failures] == [
            f.task for f in serial.failures
        ]

    def test_surviving_results_match_a_clean_sweep(self):
        clean = run_system_comparison(
            "milc", systems=("baseline", "comp_wf"), seed=3, **SMALL
        )
        report = poisoned_runner(failure_mode="collect").run_report(
            ("milc",), seed=3
        )
        assert report.results["milc"] == clean

    def test_multi_workload_grid_completes_around_failures(self):
        report = poisoned_runner(failure_mode="collect", workers=2).run_report(
            ("milc", "gcc"), seed=3
        )
        for workload in ("milc", "gcc"):
            assert set(report.results[workload]) == {"baseline", "comp_wf"}
        assert len(report.failures) == 2  # one poisoned task per workload


class TestFailureModes:
    def test_raise_mode_raises_after_finishing_the_grid(self):
        with pytest.raises(SweepError) as excinfo:
            poisoned_runner().run(("milc",), seed=3)
        report = excinfo.value.report
        assert set(report.results["milc"]) == {"baseline", "comp_wf"}
        assert POISON in str(excinfo.value)

    def test_collect_mode_returns_the_partial_grid(self):
        grid = poisoned_runner(failure_mode="collect").run(("milc",), seed=3)
        assert set(grid["milc"]) == {"baseline", "comp_wf"}

    def test_invalid_failure_mode_rejected(self):
        with pytest.raises(ValueError, match="failure_mode"):
            SweepRunner(failure_mode="ignore")
        with pytest.raises(ValueError, match="retries"):
            SweepRunner(retries=-1)


class TestRetries:
    def test_retry_budget_is_spent_and_recorded(self):
        report = poisoned_runner(
            failure_mode="collect", retries=2
        ).run_report(("milc",), seed=3)
        [failure] = report.failures
        assert failure.attempts == 3  # 1 initial + 2 retries

    def test_parallel_retries_match(self):
        report = poisoned_runner(
            failure_mode="collect", retries=1, workers=2
        ).run_report(("milc",), seed=3)
        [failure] = report.failures
        assert failure.attempts == 2


class TestRetryQuarantine:
    """A retry must never resume the crashed attempt's stale state.

    Before the fix, a retried task reran into the same run directory:
    with ``resume=True`` it silently resumed from the *failed*
    attempt's latest checkpoint -- state that may be exactly what made
    the attempt crash -- and its telemetry was appended onto the
    crashed stream.  Now every retry quarantines the leftovers into
    ``attempt-<N>/`` first and starts clean.
    """

    def test_retry_does_not_resume_the_crashed_attempts_state(
        self, tmp_path, monkeypatch
    ):
        """Crash after the second checkpoint; the first attempt's state
        is (silently) corrupted in between, so resuming its checkpoint
        would finish with a result no clean run can produce."""
        from repro.lifetime.telemetry import JsonlObserver

        clean = run_system_comparison(
            "milc", systems=("comp_wf",), seed=3, **SMALL
        )["comp_wf"]

        state = {"simulator": None, "checkpoints": 0}
        real_start = JsonlObserver.on_run_start
        real_checkpoint = JsonlObserver.on_checkpoint

        def spying_start(self, simulator, writes_issued):
            state["simulator"] = simulator
            real_start(self, simulator, writes_issued)

        def sabotaging_checkpoint(self, path, writes_issued):
            real_checkpoint(self, path, writes_issued)
            state["checkpoints"] += 1
            if state["checkpoints"] == 1:
                # Corrupt the running attempt: skip part of the write
                # stream, so the next checkpoint captures a state no
                # clean run ever reaches.
                for _ in range(3):
                    state["simulator"]._next_write()
            elif state["checkpoints"] == 2:
                raise RuntimeError("transient storage hiccup")

        monkeypatch.setattr(JsonlObserver, "on_run_start", spying_start)
        monkeypatch.setattr(JsonlObserver, "on_checkpoint", sabotaging_checkpoint)

        runner = SweepRunner(
            systems=("comp_wf",), workers=1, retries=1,
            checkpoint_dir=str(tmp_path), checkpoint_interval=300,
            resume=True, **SMALL,
        )
        report = runner.run_report(("milc",), seed=3)
        assert report.ok
        assert report.results["milc"]["comp_wf"] == clean

        run_dir = tmp_path / "milc-comp_wf"
        quarantined = run_dir / "attempt-1"
        assert list_checkpoints(quarantined), "crashed checkpoints kept"
        assert (quarantined / "events.jsonl").exists()
        # The retry's telemetry is a fresh stream: exactly one start
        # event, and it did not resume anything.
        events = [
            json.loads(line)
            for line in (run_dir / "events.jsonl").read_text().splitlines()
        ]
        starts = [e for e in events if e["event"] == "start"]
        assert len(starts) == 1
        assert starts[0]["resumed"] is False

    def test_corrupt_checkpoint_self_heals_in_the_parallel_pool(self, tmp_path):
        """A torn/garbage checkpoint fails the first attempt; the retry
        quarantines it and completes cleanly (both pool workers)."""
        clean = run_system_comparison(
            "milc", systems=("baseline", "comp_wf"), seed=3, **SMALL
        )
        run_dir = tmp_path / "milc-comp_wf"
        run_dir.mkdir(parents=True)
        poison = run_dir / "checkpoint-000000000100.pkl"
        poison.write_bytes(b"not a pickle")

        runner = SweepRunner(
            systems=("baseline", "comp_wf"), workers=2, retries=1,
            checkpoint_dir=str(tmp_path), checkpoint_interval=300,
            resume=True, **SMALL,
        )
        report = runner.run_report(("milc",), seed=3)
        assert report.ok
        assert report.results["milc"] == clean
        assert (run_dir / "attempt-1" / poison.name).read_bytes() == (
            b"not a pickle"
        )
        assert poison not in list_checkpoints(run_dir)

    def test_quarantine_numbering_and_noop_paths(self, tmp_path):
        task = SweepTask(
            system="comp_wf", workload="milc", n_lines=8,
            endurance_mean=5.0, endurance_cov=0.15, seed=0, max_writes=100,
            checkpoint_dir=str(tmp_path),
        )
        # Checkpointing off, missing run dir, empty run dir: no-ops.
        assert quarantine_attempt(
            dataclasses.replace(task, checkpoint_dir=None), 1
        ) is None
        assert quarantine_attempt(task, 1) is None
        run_dir = Path(task.run_dir)
        run_dir.mkdir(parents=True)
        assert quarantine_attempt(task, 1) is None

        (run_dir / "events.jsonl").write_text("{}\n")
        assert quarantine_attempt(task, 1) == str(run_dir / "attempt-1")
        assert (run_dir / "attempt-1" / "events.jsonl").exists()

        (run_dir / "checkpoint-000000000001.pkl").write_bytes(b"x")
        assert quarantine_attempt(task, 2) == str(run_dir / "attempt-2")
        # Later quarantines never disturb earlier ones...
        assert (run_dir / "attempt-1" / "events.jsonl").exists()
        assert (run_dir / "attempt-2" / "checkpoint-000000000001.pkl").exists()
        # ... and a directory holding only attempt-*/ is again a no-op.
        assert quarantine_attempt(task, 3) is None


class TestManifestAndCheckpoints:
    def test_manifest_records_completions_and_failures(self, tmp_path):
        runner = poisoned_runner(
            failure_mode="collect", checkpoint_dir=str(tmp_path)
        )
        runner.run_report(("milc",), seed=3)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["n_tasks"] == 3
        assert manifest["seed"] == 3
        done = {(c["workload"], c["system"]) for c in manifest["completed"]}
        assert done == {("milc", "baseline"), ("milc", "comp_wf")}
        [failure] = manifest["failures"]
        assert failure["system"] == POISON
        assert failure["error_type"] == "ValueError"
        assert "Traceback" in failure["traceback"]

    def test_tasks_checkpoint_into_per_run_directories(self, tmp_path):
        runner = SweepRunner(
            systems=("comp_wf",), checkpoint_dir=str(tmp_path),
            checkpoint_interval=500, **SMALL,
        )
        clean = runner.run(("milc",), seed=3)
        run_dir = tmp_path / "milc-comp_wf"
        assert latest_checkpoint(run_dir) is not None
        assert (run_dir / "events.jsonl").exists()
        # Resuming the finished run from its last checkpoint replays the
        # tail bit-identically.
        resumed_runner = SweepRunner(
            systems=("comp_wf",), checkpoint_dir=str(tmp_path),
            checkpoint_interval=500, resume=True, **SMALL,
        )
        resumed = resumed_runner.run(("milc",), seed=3)
        assert resumed["milc"]["comp_wf"] == clean["milc"]["comp_wf"]

    def test_poisoned_task_spec_round_trips_through_pickle(self):
        import pickle

        task = SweepTask(
            system=POISON, workload="milc", n_lines=8, endurance_mean=5.0,
            endurance_cov=0.15, seed=0, max_writes=100,
            checkpoint_dir="/tmp/x", checkpoint_interval=50, resume=True,
        )
        assert pickle.loads(pickle.dumps(task)) == task
        with pytest.raises(ValueError, match=POISON):
            run_task(task)
