"""Batched write engine vs the serial pipeline: bit-identity.

``CompressedPCMController.write_batch`` / ``WritePipeline.step_batch``
promise results and final state *bit-identical* to issuing the same
writes serially, for every system composition -- including runs harsh
enough to exercise wear-out mid-write, the fallback-to-compressed
rescue, FREE-p retirement, and block death.  These tests pin that
promise, plus the order-invariance property the batched engine's
vectorized program step relies on: applying a conflict-free request
set in any permutation or partition leaves byte-identical bank state.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.controller import CompressedPCMController
from repro.engine.context import SCHEDULER_FIELDS
from repro.engine.registry import get_system, system_names
from repro.pcm import EnduranceModel
from repro.validate.invariants import default_invariants

LINE = 64
N_LINES = 40


def make_controller(config, endurance_mean=70.0, seed=11):
    return CompressedPCMController(
        config=config,
        n_lines=N_LINES,
        endurance_model=EnduranceModel(mean=endurance_mean, cov=0.25),
        rng=np.random.default_rng(seed),
        n_banks=4,
    )


def make_requests(count, seed=3, n_lines=N_LINES):
    """A logical write stream over a small mixed-entropy content pool."""
    rng = np.random.default_rng(seed)
    pool = []
    for index in range(10):
        if index % 3 == 0:
            pool.append(rng.integers(0, 3, LINE, dtype=np.uint8).tobytes())
        elif index % 3 == 1:
            pool.append(rng.integers(0, 256, LINE, dtype=np.uint8).tobytes())
        else:
            pool.append(rng.integers(0, 2, LINE, dtype=np.uint8).tobytes())
    return [
        (int(rng.integers(0, n_lines)), pool[int(rng.integers(0, len(pool)))])
        for _ in range(count)
    ]


def state_fingerprint(controller):
    """Every externally observable piece of controller state."""
    engine = controller.engine
    memory = engine.memory
    start_gap = engine.start_gap
    gaps = getattr(start_gap, "_gaps", None)
    forward = getattr(start_gap, "_forward", None)
    if forward is not None:  # WoLFRaM PAD backend
        gap_state = ("pad", tuple(forward), start_gap._partner,
                     start_gap.write_count, start_gap.swaps)
    elif gaps is not None:  # RegionStartGap
        gap_state = [(g.start, g.gap, g.write_count, g.gap_moves) for g in gaps]
    else:
        gap_state = (start_gap.start, start_gap.gap, start_gap.write_count,
                     start_gap.gap_moves)
    intra = engine.intra_wl
    remapper = engine.remapper
    return {
        "stored": memory.stored.copy(),
        "counts": memory.counts.copy(),
        "faulty": memory.faulty.copy(),
        "fault_counts": memory.fault_counts.copy(),
        "dead": engine.dead.copy(),
        "dead_count": engine.dead_count,
        "metadata": [
            (m.start_pointer, m.compressed, m.stored_size, m.encoding, m.sc)
            for m in engine.metadata
        ],
        "repairs": [dict(r) for r in engine.repairs],
        "death_fault_counts": dict(engine.death_fault_counts),
        # Scheduler telemetry describes *how* a stream was executed
        # (waves, barriers) and legitimately differs between a batched
        # run and its serial replay; everything else must be identical.
        "stats": {
            name: value
            for name, value in dataclasses.asdict(engine.stats).items()
            if name not in SCHEDULER_FIELDS
        },
        "start_gap": gap_state,
        "intra_wl": (
            None if intra is None
            else (tuple(intra._counters), tuple(intra._offsets), intra.rotations)
        ),
        "freep": (
            None if remapper is None
            else (tuple(remapper._free_spares),
                  tuple(sorted(remapper._remap.items())),
                  remapper.remaps_performed)
        ),
    }


def assert_same_state(got, want, label=""):
    for key in want:
        got_value, want_value = got[key], want[key]
        if isinstance(want_value, np.ndarray):
            assert np.array_equal(got_value, want_value), f"{label}: {key}"
        else:
            assert got_value == want_value, f"{label}: {key}"


@pytest.mark.parametrize("system", system_names())
def test_write_batch_matches_serial(system):
    """Every registered system, across batch sizes, under heavy wear."""
    config = get_system(system).config
    requests = make_requests(1500)
    serial = make_controller(config)
    serial_results = [serial.write(line, data) for line, data in requests]
    want = state_fingerprint(serial)
    assert serial.stats.deaths or serial.stats.total_flips  # stream did work

    for batch_size in (2, 7, 32):
        batched = make_controller(config)
        got_results = []
        for index in range(0, len(requests), batch_size):
            got_results.extend(
                batched.write_batch(requests[index:index + batch_size])
            )
        assert got_results == serial_results, f"{system} batch={batch_size}"
        assert_same_state(
            state_fingerprint(batched), want, f"{system} batch={batch_size}"
        )


def test_write_batch_exercises_hard_paths():
    """The equivalence stream must actually hit deaths/rescues/remaps."""
    config = get_system("comp_wf_freep").config
    controller = make_controller(config, endurance_mean=55.0)
    for index in range(0, 3000, 16):
        controller.write_batch(make_requests(3000)[index:index + 16])
    stats = controller.stats
    assert stats.deaths > 0
    assert stats.remaps > 0
    assert stats.lost_writes > 0


def test_step_batch_rejects_duplicate_physical_lines():
    controller = make_controller(get_system("comp_wf").config)
    data = bytes(LINE)
    with pytest.raises(ValueError, match="distinct"):
        controller.pipeline.step_batch([(0, data), (0, data)])


def test_write_batch_serializes_same_line_collisions():
    """Repeated writes to one logical line flush and stay serial-equal."""
    config = get_system("comp_wf").config
    requests = [(5, bytes([value]) * LINE) for value in range(40)]
    serial = make_controller(config)
    serial_results = [serial.write(line, data) for line, data in requests]
    batched = make_controller(config)
    assert batched.write_batch(requests) == serial_results
    assert_same_state(
        state_fingerprint(batched), state_fingerprint(serial), "collisions"
    )


def test_write_batch_validates_payload_size_up_front():
    controller = make_controller(get_system("comp").config)
    before = state_fingerprint(controller)
    with pytest.raises(ValueError, match="64 bytes"):
        controller.write_batch([(0, bytes(LINE)), (1, bytes(3))])
    # Up-front validation: no side effects from the valid prefix.
    assert_same_state(state_fingerprint(controller), before, "validation")


def test_step_batch_with_invariants_falls_back_to_serial():
    """Checkers assert per-write accounting, so batching must stage
    through the fully serial path -- and still match its results."""
    config = get_system("comp_wf").config
    checked = CompressedPCMController(
        config=config,
        n_lines=N_LINES,
        endurance_model=EnduranceModel(mean=70.0, cov=0.25),
        rng=np.random.default_rng(11),
        n_banks=4,
        invariants=default_invariants(),
    )
    plain = make_controller(config)
    requests = make_requests(300)
    got = []
    for index in range(0, len(requests), 8):
        got.extend(checked.write_batch(requests[index:index + 8]))
    want = [plain.write(line, data) for line, data in requests]
    assert got == want


# -- order-invariance property (the batched program step's foundation) ----


def _conflict_free_controller():
    """A controller whose next writes cannot rotate or evict mid-set.

    Order invariance only holds when no order-dependent shared machinery
    fires *inside* the set: a huge intra-WL counter limit keeps the
    rotation offsets fixed and a large content cache never evicts.
    """
    config = get_system("comp_wf").configured(
        intra_counter_limit=1_000_000, compression_cache_lines=4096
    )
    return make_controller(config, endurance_mean=90.0)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_conflict_free_sets_are_order_and_partition_invariant(seed):
    """Any permutation/partition of distinct-line requests is equivalent.

    Warm the controller with a serial prefix, snapshot it, then apply
    one conflict-free request set (distinct physical lines) every way:
    serially, as one batch, permuted, and split into uneven partitions.
    The final bank state and ControllerStats must be byte-identical.
    """
    rng = np.random.default_rng(seed)
    base = _conflict_free_controller()
    for line, data in make_requests(400, seed=seed + 10):
        base.write(line, data)
    frozen = pickle.dumps(base)

    remap = base.pipeline.remap
    logicals = list(rng.choice(N_LINES, size=24, replace=False))
    physicals = {remap.map_logical(int(l)) for l in logicals}
    assert len(physicals) == len(logicals)  # genuinely conflict-free
    pool = make_requests(60, seed=seed + 20)
    batch = [(int(logical), pool[i][1]) for i, logical in enumerate(logicals)]
    requests = [
        (base.pipeline.remap.map_logical(logical), data)
        for logical, data in batch
    ]

    def apply(plan):
        controller = pickle.loads(frozen)
        for chunk in plan:
            controller.pipeline.step_batch(list(chunk))
        return state_fingerprint(controller)

    want = apply([[request] for request in requests])  # serial order
    permuted = list(requests)
    rng.shuffle(permuted)
    plans = {
        "one-batch": [requests],
        "permuted-one-batch": [permuted],
        "pairs": [requests[i:i + 2] for i in range(0, len(requests), 2)],
        "uneven": [requests[:5], requests[5:6], requests[6:]],
        "permuted-uneven": [permuted[:7], permuted[7:]],
    }
    for label, plan in plans.items():
        assert_same_state(apply(plan), want, label)
