"""Tests for the declarative system registry."""

import pytest

from repro.core import EVALUATED_SYSTEMS, SystemConfig, make_config
from repro.engine import (
    PAPER_SYSTEMS,
    SystemSpec,
    get_system,
    list_systems,
    register_system,
    resolve_config,
    system_names,
)
from repro.engine.registry import _REGISTRY


def test_paper_systems_registered_in_paper_order():
    assert PAPER_SYSTEMS == EVALUATED_SYSTEMS
    assert system_names(tag="paper") == PAPER_SYSTEMS


def test_specs_match_the_legacy_factories():
    for name in EVALUATED_SYSTEMS:
        assert get_system(name).config == make_config(name)


def test_unknown_system_rejected_with_choices():
    with pytest.raises(ValueError, match="unknown system"):
        get_system("comp_wxyz")


def test_spec_name_must_match_config_name():
    with pytest.raises(ValueError, match="!= config name"):
        SystemSpec(name="a", description="", config=make_config("comp"))


def test_serialization_round_trip():
    for spec in list_systems():
        rebuilt = SystemSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert isinstance(rebuilt.config, SystemConfig)


def test_resolve_config_handles_names_configs_and_overrides():
    assert resolve_config("comp_wf") == make_config("comp_wf")
    assert resolve_config("comp_wf", threshold1=8).threshold1 == 8
    explicit = make_config("comp_w", start_gap_psi=50)
    assert resolve_config(explicit) is explicit
    assert resolve_config(explicit, start_gap_psi=25).start_gap_psi == 25


def test_ablation_variants_differ_in_exactly_the_advertised_knob():
    full = get_system("comp_wf").config
    assert get_system("comp_wf_no_heuristic").config == full.with_overrides(
        name="comp_wf_no_heuristic", use_heuristic=False
    )
    assert get_system("comp_wf_safer32").config.correction_scheme == "safer32"
    assert get_system("comp_wf_aegis").config.correction_scheme == "aegis17x31"
    assert get_system("comp_wf_freep").config.spare_line_fraction == 0.05
    assert get_system("comp_wf_regions").config.start_gap_regions == 4


def test_duplicate_registration_needs_replace():
    spec = get_system("comp")
    with pytest.raises(ValueError, match="already registered"):
        register_system(spec)
    assert register_system(spec, replace=True) is spec
    assert _REGISTRY["comp"] is spec


def test_stage_summary_reflects_the_composition():
    baseline = get_system("baseline").stage_summary()
    assert any("compress: off" in line for line in baseline)
    full = get_system("comp_wf").stage_summary()
    assert any("fig8 heuristic" in line for line in full)
    assert any("intra-line WL" in line for line in full)
    assert any("revival at gap-move checkpoints" in line for line in full)
    assert any("ecp6" in line for line in full)
    safer = get_system("comp_wf_safer32").stage_summary()
    assert any("safer32" in line for line in safer)
