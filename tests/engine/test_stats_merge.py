"""``ControllerStats.merge`` is a commutative monoid; shard sums are exact.

Two layers of evidence for the fleet-view contract:

* algebraic -- ``merge`` over hypothesis-generated counter sets is
  associative and commutative with :meth:`ControllerStats.identity` as
  its identity element, so any reduction order (and any shard count)
  yields the same fleet view;
* end-to-end -- partitioning a real write stream across K shards and
  merging the K per-shard stats reproduces, field for field, the stats
  of the sharded address space run on the full stream (and each shard's
  stats equal an *independent* controller of that size replaying the
  shard's sub-stream, which is the whole point of the refactor).
"""

import dataclasses

from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import comp_wf
from repro.engine.context import ControllerStats
from repro.service import ShardedController
from repro.traces import SyntheticWorkload, get_profile

_COUNTER_FIELDS = [
    f.name
    for f in dataclasses.fields(ControllerStats)
    if f.name != "heuristic_steps"
]


def stats_strategy():
    counters = {
        name: st.integers(min_value=0, max_value=10**6)
        for name in _COUNTER_FIELDS
    }
    counters["heuristic_steps"] = st.dictionaries(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=1, max_value=10**4),
        max_size=6,
    )
    return st.builds(ControllerStats, **counters)


class TestMergeAlgebra:
    @given(stats_strategy())
    def test_identity_element(self, stats):
        identity = ControllerStats.identity()
        assert stats.merge(identity) == stats
        assert identity.merge(stats) == stats
        assert ControllerStats.merge_all([]) == identity

    @given(stats_strategy(), stats_strategy())
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(stats_strategy(), stats_strategy(), stats_strategy())
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))
        assert ControllerStats.merge_all([a, b, c]) == a.merge(b).merge(c)

    @given(stats_strategy(), stats_strategy())
    def test_merge_does_not_mutate_operands(self, a, b):
        before_a = dataclasses.replace(a, heuristic_steps=dict(a.heuristic_steps))
        before_b = dataclasses.replace(b, heuristic_steps=dict(b.heuristic_steps))
        a.merge(b)
        assert a == before_a
        assert b == before_b


class TestShardSumsAreExact:
    def _stream(self, lines, writes, seed):
        workload = SyntheticWorkload(get_profile("mcf"), n_lines=lines, seed=seed)
        return [(w.line, w.data) for w in workload.iter_writes(writes)]

    def test_merged_shard_stats_equal_full_space_stats(self):
        """K merged shard views == the sharded space run on the full trace."""
        lines, shards, seed = 48, 3, 11
        stream = self._stream(lines, 900, seed)

        fleet = ShardedController(
            comp_wf(), lines, shards=shards,
            endurance_mean=40.0, endurance_cov=0.2, seed=seed, n_banks=4,
        )
        for line, data in stream:
            fleet.write(line, data)

        # Independent single-space controllers, one per shard, each
        # replaying only its routed sub-stream in local coordinates.
        independent = [
            ShardedController(
                comp_wf(), fleet.shard_map.lines_of(shard), shards=1,
                endurance_mean=40.0, endurance_cov=0.2,
                seed=shard_seed, n_banks=4,
            )
            for shard, shard_seed in enumerate(
                fleet.shard_map.shard_seeds(seed)
            )
        ]
        for bucket, controller in zip(
            fleet.shard_map.partition(stream), independent
        ):
            for local, data in bucket:
                controller.write(local, data)

        shard_views = [c.stats for c in independent]
        assert shard_views == fleet.shard_stats()
        assert ControllerStats.merge_all(shard_views) == fleet.stats
        # Reduction order cannot matter for an exact sum.
        assert ControllerStats.merge_all(reversed(shard_views)) == fleet.stats

    def test_fleet_invariants_survive_aggregation(self):
        lines, seed = 40, 3
        fleet = ShardedController(
            comp_wf(), lines, shards=4,
            endurance_mean=32.0, endurance_cov=0.2, seed=seed, n_banks=4,
        )
        fleet.write_batch(self._stream(lines, 600, seed))
        merged = fleet.stats
        assert merged.demand_writes == 600
        assert merged.stored_writes == (
            merged.compressed_writes + merged.uncompressed_writes
        )
        assert (
            merged.demand_writes + merged.gap_move_writes
            == merged.stored_writes + merged.lost_writes
        )
        assert merged.heuristic_steps == {
            step: sum(s.heuristic_steps.get(step, 0) for s in fleet.shard_stats())
            for step in {
                step for s in fleet.shard_stats() for step in s.heuristic_steps
            }
        }
