"""Tests for the parallel (profile x system) sweep runner.

The load-bearing property is determinism: with the default
``seed_mode="shared"`` a parallel sweep must reproduce the serial
``run_system_comparison`` results bit-for-bit, regardless of worker
count or OS scheduling.  The runs here are deliberately tiny so the
process-pool tests stay fast.
"""

import dataclasses

import pytest

from repro.engine import SweepRunner, SweepTask, run_task
from repro.lifetime import run_system_comparison

SMALL = dict(n_lines=24, endurance_mean=12.0, max_writes=600_000)
SYSTEMS = ("baseline", "comp_wf")


def results_equal(a, b):
    return (
        a.writes_issued == b.writes_issued
        and a.failed == b.failed
        and a.dead_fraction == b.dead_fraction
        and a.deaths == b.deaths
        and a.revivals == b.revivals
        and a.total_flips == b.total_flips
    )


class TestTaskGrid:
    def test_grid_covers_the_cross_product_in_order(self):
        runner = SweepRunner(systems=SYSTEMS, **SMALL)
        tasks = runner.tasks(("milc", "gcc"), seed=5)
        assert [(t.workload, t.system) for t in tasks] == [
            ("milc", "baseline"), ("milc", "comp_wf"),
            ("gcc", "baseline"), ("gcc", "comp_wf"),
        ]
        assert all(t.seed == 5 for t in tasks)

    def test_spawned_mode_gives_each_run_its_own_seed(self):
        runner = SweepRunner(systems=SYSTEMS, seed_mode="spawned", **SMALL)
        tasks = runner.tasks(("milc", "gcc"), seed=5)
        seeds = [t.seed for t in tasks]
        assert len(set(seeds)) == len(seeds)
        # Deterministic derivation: the same root reproduces the grid.
        assert seeds == [t.seed for t in runner.tasks(("milc", "gcc"), seed=5)]

    def test_tasks_are_pickleable_frozen_records(self):
        import pickle

        task = SweepRunner(systems=SYSTEMS, **SMALL).tasks(("milc",))[0]
        assert pickle.loads(pickle.dumps(task)) == task
        with pytest.raises(dataclasses.FrozenInstanceError):
            task.seed = 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="seed_mode"):
            SweepRunner(seed_mode="lockstep")
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(workers=0)


class TestDeterminism:
    def test_parallel_sweep_matches_serial_comparison_bit_for_bit(self):
        serial = run_system_comparison("milc", systems=SYSTEMS, seed=3, **SMALL)
        runner = SweepRunner(systems=SYSTEMS, workers=4, **SMALL)
        parallel = runner.run_comparison("milc", seed=3)
        assert set(parallel) == set(serial)
        for system in SYSTEMS:
            assert results_equal(parallel[system], serial[system]), system

    def test_worker_count_does_not_change_results(self):
        runner1 = SweepRunner(systems=("comp_wf",), workers=1, **SMALL)
        runner2 = SweepRunner(systems=("comp_wf",), workers=2, **SMALL)
        grid1 = runner1.run(("milc", "gcc"), seed=1)
        grid2 = runner2.run(("milc", "gcc"), seed=1)
        for workload in ("milc", "gcc"):
            assert results_equal(
                grid1[workload]["comp_wf"], grid2[workload]["comp_wf"]
            ), workload

    def test_run_task_matches_in_process_simulation(self):
        task = SweepTask(
            system="comp_wf", workload="milc", n_lines=SMALL["n_lines"],
            endurance_mean=SMALL["endurance_mean"], endurance_cov=0.15,
            seed=9, max_writes=SMALL["max_writes"],
        )
        serial = run_system_comparison(
            "milc", systems=("comp_wf",), seed=9, **SMALL
        )["comp_wf"]
        assert results_equal(run_task(task), serial)

    def test_spawned_seeds_change_the_outcome(self):
        shared = SweepRunner(systems=("comp_wf",), **SMALL)
        spawned = SweepRunner(systems=("comp_wf",), seed_mode="spawned", **SMALL)
        a = shared.run_comparison("milc", seed=3)["comp_wf"]
        b = spawned.run_comparison("milc", seed=3)["comp_wf"]
        # Independent endurance draws essentially never agree exactly.
        assert not results_equal(a, b)


class TestWorkersPlumbing:
    def test_run_system_comparison_workers_flag_delegates(self):
        serial = run_system_comparison("gcc", systems=SYSTEMS, seed=2, **SMALL)
        parallel = run_system_comparison(
            "gcc", systems=SYSTEMS, seed=2, workers=2, **SMALL
        )
        for system in SYSTEMS:
            assert results_equal(parallel[system], serial[system]), system

    def test_config_overrides_reach_the_workers(self):
        runner = SweepRunner(
            systems=("comp_wf",), workers=2,
            config_overrides={"threshold1": 4}, **SMALL
        )
        plain = SweepRunner(systems=("comp_wf",), workers=2, **SMALL)
        changed = runner.run_comparison("milc", seed=3)["comp_wf"]
        default = plain.run_comparison("milc", seed=3)["comp_wf"]
        assert not results_equal(changed, default)
