"""Unit tests for the composable write-path stages and pipeline."""

import numpy as np
import pytest

from repro.core import LINE_BYTES, CompressedPCMController, make_config
from repro.engine import (
    CompressStage,
    CorrectionStage,
    EncodingStage,
    PlacementStage,
    ProgramStage,
    RemapStage,
    WriteContext,
    WritePipeline,
)
from repro.pcm import EnduranceModel


def build_controller(system="comp_wf", n_lines=16, endurance=10**6, seed=0,
                     **overrides):
    return CompressedPCMController(
        config=make_config(system, **overrides),
        n_lines=n_lines,
        endurance_model=EnduranceModel(mean=endurance),
        rng=np.random.default_rng(seed),
    )


def compressible_line(tag=0):
    return tag.to_bytes(4, "little") + bytes(60)


class TestPipelineComposition:
    def test_stage_order_is_the_write_path_order(self):
        pipeline = build_controller().pipeline
        kinds = [type(stage) for stage in pipeline.stages]
        assert kinds == [
            CompressStage, PlacementStage, EncodingStage, ProgramStage,
            CorrectionStage, RemapStage,
        ]

    def test_stages_share_one_engine_state(self):
        controller = build_controller()
        states = {id(stage.state) for stage in controller.pipeline.stages}
        assert states == {id(controller.engine)}

    def test_custom_stage_is_honoured(self):
        controller = build_controller()

        class CountingProgram(ProgramStage):
            calls = 0

            def program(self, physical, ctx, start):
                CountingProgram.calls += 1
                return super().program(physical, ctx, start)

        controller.pipeline = WritePipeline(
            controller.engine, program=CountingProgram(controller.engine)
        )
        controller.write(0, compressible_line())
        assert CountingProgram.calls == 1


class TestCompressStage:
    def test_compressed_format_chosen_for_compressible_data(self):
        controller = build_controller()
        stage = controller.pipeline.compress
        ctx = WriteContext(physical=0, data=compressible_line())
        stage.run(ctx)
        assert ctx.compressed
        assert ctx.size < LINE_BYTES
        assert ctx.payload == ctx.result.payload

    def test_compression_disabled_stores_raw(self):
        controller = build_controller("baseline")
        ctx = WriteContext(physical=0, data=compressible_line())
        controller.pipeline.compress.run(ctx)
        assert not ctx.compressed
        assert ctx.size == LINE_BYTES
        assert ctx.result is None

    def test_incompressible_data_stores_raw(self):
        controller = build_controller()
        data = np.random.default_rng(1).bytes(LINE_BYTES)
        ctx = WriteContext(physical=0, data=data)
        controller.pipeline.compress.run(ctx)
        assert not ctx.compressed
        assert ctx.size == LINE_BYTES


class TestPlacementStage:
    def test_initial_hint_uses_intra_wl_offset_when_enabled(self):
        controller = build_controller(intra_counter_limit=1)
        placement = controller.pipeline.placement
        bank = controller.engine.bank_of(3)
        for _ in range(5):
            controller.engine.intra_wl.record_write(bank)
        ctx = WriteContext(physical=3, data=compressible_line(), compressed=True)
        assert placement.initial_hint(3, ctx) == controller.engine.intra_wl.offset(bank)

    def test_initial_hint_is_pointer_without_intra_wl(self):
        controller = build_controller("comp")
        controller.engine.metadata[3].start_pointer = 17
        ctx = WriteContext(physical=3, data=compressible_line(), compressed=True)
        assert controller.pipeline.placement.initial_hint(3, ctx) == 17

    def test_uncompressed_writes_anchor_at_zero(self):
        controller = build_controller()
        ctx = WriteContext(physical=3, data=compressible_line(), compressed=False)
        assert controller.pipeline.placement.initial_hint(3, ctx) == 0

    def test_place_returns_hint_on_fault_free_line(self):
        controller = build_controller()
        ctx = WriteContext(
            physical=0, data=compressible_line(), compressed=True,
            payload=b"x" * 8, size=8, hint=21,
        )
        assert controller.pipeline.placement.place(0, ctx) == 21


class TestCorrectionStage:
    def test_commit_updates_metadata_and_counters(self):
        controller = build_controller()
        result = controller.write(0, compressible_line())
        meta = controller.engine.metadata[result.physical]
        assert meta.compressed
        assert meta.stored_size == result.size_bytes
        assert meta.start_pointer == result.window_start
        assert controller.stats.compressed_writes == 1
        assert controller.stats.uncompressed_writes == 0

    def test_try_remap_without_remapper_is_none(self):
        controller = build_controller()
        assert controller.pipeline.correction.try_remap(0) is None


class TestRemapStage:
    def test_dead_gate_blocks_demand_writes(self):
        controller = build_controller()
        controller.engine.dead[:] = True
        physical = controller.pipeline.remap.map_logical(0)
        assert controller.pipeline.remap.blocked(physical, revival_allowed=False)
        result = controller.write(0, compressible_line())
        assert result.lost and not result.died
        assert controller.stats.lost_writes == 1

    def test_revival_allowed_only_with_the_feature(self):
        wf = build_controller("comp_wf").pipeline.remap
        w = build_controller("comp_w").pipeline.remap
        wf.state.dead[5] = True
        w.state.dead[5] = True
        assert not wf.blocked(5, revival_allowed=True)
        assert w.blocked(5, revival_allowed=True)

    def test_fallback_requires_compressible_result_and_feature(self):
        controller = build_controller()
        stage = controller.pipeline.remap
        ctx = WriteContext(physical=0, data=compressible_line())
        controller.pipeline.compress.run(ctx)
        # Already compressed: no second rescue.
        assert ctx.compressed and not stage.fallback_to_compressed(ctx)
        # Uncompressed-by-heuristic with a small compressed form: rescued.
        ctx.compressed = False
        ctx.size = LINE_BYTES
        assert stage.fallback_to_compressed(ctx)
        assert ctx.compressed and ctx.size == ctx.result.size_bytes

    def test_mark_dead_records_death_and_loss(self):
        controller = build_controller()
        controller.pipeline.remap.mark_dead(4)
        assert controller.engine.dead[4]
        assert controller.stats.deaths == 1
        assert controller.stats.lost_writes == 1
        assert 4 in controller.engine.death_fault_counts


class TestFacadeEquivalence:
    def test_write_read_round_trip_through_pipeline(self):
        controller = build_controller()
        rng = np.random.default_rng(7)
        for step in range(200):
            line = int(rng.integers(0, controller.n_lines))
            data = compressible_line(step) if step % 2 else rng.bytes(LINE_BYTES)
            controller.write(line, data)
            assert controller.read(line) == data

    def test_write_rejects_short_data(self):
        with pytest.raises(ValueError, match="64 bytes"):
            build_controller().write(0, b"short")
