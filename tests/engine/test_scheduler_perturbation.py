"""Placement-perturbation properties of the batch scheduler (PR 10).

The scheduler treats a wear-leveler's placement perturbation
(Start-Gap's one-destination gap move, the WoLFRaM PAD's
two-destination swap) as ordinary dependency-tracked relocations.  The
contract under test, on *both* backends:

* every perturbation relocation either **cuts a barrier**
  (``barrier_gap_move``) or is **proven conflict-free** -- it joins a
  wave, where the exact wave/barrier/lost accounting below must close,
  and the run stays bit-identical to the serial replay;
* the wave counters remain a **mergeable monoid** (order-independent
  ``ControllerStats.merge``) and **checkpoint-stable** (a pickled
  controller resumes to the identical stream and counters).
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.context import ControllerStats
from repro.engine.registry import get_system

from .test_step_batch import (
    assert_same_state,
    make_controller,
    make_requests,
    state_fingerprint,
)

BACKENDS = ("startgap_freep", "wolfram")


def _configured(backend, **overrides):
    return get_system("comp_wf").configured(wl_backend=backend, **overrides)


def _run_batched(config, requests, chunk, endurance_mean=70.0):
    controller = make_controller(config, endurance_mean=endurance_mean)
    results = []
    for start in range(0, len(requests), chunk):
        results.extend(controller.write_batch(requests[start:start + chunk]))
    return controller, results


@pytest.mark.parametrize("backend", BACKENDS)
def test_healthy_perturbations_schedule_without_barriers(backend):
    """No wear pressure: every relocation is conflict-free and scheduled.

    With endurance far above the stream's write pressure nothing dies
    and no row approaches its wear bound, so the accounting must close
    exactly: every demand write and every relocation lands in a wave,
    zero barriers, zero losses -- and a PAD swap contributes *two*
    scheduled relocations where a gap move contributes one.
    """
    config = _configured(backend, start_gap_psi=5)
    requests = make_requests(600, seed=13)
    controller, _ = _run_batched(config, requests, chunk=48,
                                 endurance_mean=10_000.0)
    stats = controller.stats
    assert stats.gap_move_writes > 0, "stream never perturbed placement"
    assert stats.barrier_gap_move == 0
    assert stats.barrier_collision == 0
    assert stats.barrier_ineligible_row == 0
    assert stats.lost_writes == 0
    assert stats.batch_wave_ops == stats.demand_writes + stats.gap_move_writes
    # Relocations whose displaced slot holds a never-written line are
    # skipped before counting, so the perturbation count bounds the
    # relocation count from above (x2 for two-destination PAD swaps).
    start_gap = controller.engine.start_gap
    if backend == "wolfram":
        assert start_gap.swaps == start_gap.write_count // 5
        assert stats.gap_move_writes <= 2 * start_gap.swaps
        assert stats.pad_table_writes == 2 * start_gap.swaps
    else:
        assert start_gap.gap_moves == start_gap.write_count // 5
        assert stats.gap_move_writes <= start_gap.gap_moves
        assert stats.pad_table_writes == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_worn_perturbations_barrier_or_schedule_and_stay_serial(backend):
    """Heavy wear: the barrier/schedule split still closes, bit-identically.

    Under brutal endurance some relocations hit dead or near-worn
    destinations.  Each must either cut a ``barrier_gap_move`` (and run
    serially) or join a wave; either way the batched run's observable
    state equals the serial replay's, which is the operational proof
    that every *scheduled* perturbation was conflict-free.
    """
    config = _configured(backend, start_gap_psi=3)
    requests = make_requests(1200, seed=4)
    serial = make_controller(config, endurance_mean=18.0)
    want = [serial.write(line, data) for line, data in requests]
    batched, got = _run_batched(config, requests, chunk=32,
                                endurance_mean=18.0)
    assert got == want
    stats = batched.stats
    assert stats.gap_move_writes > 0
    assert stats.deaths > 0, "stream never wore a line out"
    assert stats.barrier_gap_move > 0, "no perturbation ever cut a barrier"
    # Scheduled ops = everything issued minus serial-path barriers and
    # scan-time losses.  ``lost_writes`` also counts losses *inside*
    # serial barrier writes, so it bounds the scan-time share from
    # above; the accounting closes as a two-sided sandwich.
    barriers = (stats.barrier_gap_move + stats.barrier_collision
                + stats.barrier_ineligible_row)
    issued = stats.demand_writes + stats.gap_move_writes
    assert issued - barriers - stats.lost_writes <= stats.batch_wave_ops
    assert stats.batch_wave_ops <= issued - barriers
    assert_same_state(
        state_fingerprint(batched), state_fingerprint(serial),
        f"{backend}-worn",
    )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from(BACKENDS),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=3, max_value=40),
)
def test_random_streams_close_the_perturbation_accounting(
    backend, psi, seed, chunk
):
    config = _configured(backend, start_gap_psi=psi)
    requests = make_requests(500, seed=seed)
    serial = make_controller(config, endurance_mean=30.0)
    want = [serial.write(line, data) for line, data in requests]
    batched, got = _run_batched(config, requests, chunk=chunk,
                                endurance_mean=30.0)
    assert got == want
    stats = batched.stats
    barriers = (stats.barrier_gap_move + stats.barrier_collision
                + stats.barrier_ineligible_row)
    issued = stats.demand_writes + stats.gap_move_writes
    assert issued - barriers - stats.lost_writes <= stats.batch_wave_ops
    assert stats.batch_wave_ops <= issued - barriers
    assert_same_state(
        state_fingerprint(batched), state_fingerprint(serial),
        f"{backend}-random",
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_wave_counters_merge_as_an_order_independent_monoid(backend):
    """Shard telemetry folds associatively whatever the reduction order."""
    config = _configured(backend, start_gap_psi=3)
    parts = []
    for seed in (1, 2, 3):
        controller, _ = _run_batched(
            config, make_requests(300, seed=seed), chunk=16,
            endurance_mean=25.0,
        )
        parts.append(controller.stats)
    assert any(p.batch_waves for p in parts)
    forward = ControllerStats.merge_all(parts)
    backward = ControllerStats.merge_all(reversed(parts))
    assert forward == backward
    assert forward.batch_waves == sum(p.batch_waves for p in parts)
    assert forward.batch_wave_ops == sum(p.batch_wave_ops for p in parts)
    assert forward.batch_wave_width_max == max(
        p.batch_wave_width_max for p in parts
    )
    assert forward.pad_table_writes == sum(p.pad_table_writes for p in parts)
    # Identity element: merging with a fresh stats record is a no-op.
    assert forward.merge(ControllerStats()) == forward


@pytest.mark.parametrize("backend", BACKENDS)
def test_wave_counters_are_checkpoint_stable(backend):
    """Pickle mid-stream, resume, and match the uninterrupted run exactly."""
    config = _configured(backend, start_gap_psi=3)
    requests = make_requests(800, seed=6)
    straight, want = _run_batched(config, requests, chunk=24,
                                  endurance_mean=25.0)

    boundary = 384  # a chunk boundary mid-stream
    fresh = make_controller(config, endurance_mean=25.0)
    head = []
    for start in range(0, boundary, 24):
        head.extend(fresh.write_batch(requests[start:start + 24]))
    clone = pickle.loads(pickle.dumps(fresh))
    tail = []
    for start in range(boundary, len(requests), 24):
        tail.extend(clone.write_batch(requests[start:start + 24]))
    assert head + tail == want
    assert clone.stats == straight.stats
    assert_same_state(
        state_fingerprint(clone), state_fingerprint(straight),
        f"{backend}-checkpoint",
    )