"""The out-of-order batch scheduler: waves, barriers, and adversaries.

PR 5's batched engine flushed the whole pending batch on every same-row
collision and every Start-Gap move; the scheduler replaces those global
flushes with per-row dependency edges.  These tests pin

* the headline regression -- a collision among otherwise-independent
  writes now costs dependency *edges* (extra waves), not flushes;
* the wave/barrier telemetry semantics;
* element-wise serial identity under hypothesis-generated adversarial
  streams (collision-heavy, gap-move-dense, duplicate-line bursts);
* the bank-parallel executor's bit-identity and teardown.

Whole-state equivalence across every system under heavy wear lives in
``test_step_batch.py``; lockstep-oracle campaigns in
``tests/validate/test_lockstep.py``.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.registry import get_system

from .test_step_batch import (
    LINE,
    N_LINES,
    assert_same_state,
    make_controller,
    make_requests,
    state_fingerprint,
)


def test_collision_costs_edges_not_flushes():
    """Three writes to one line among 31 independents: 3 waves, 0 barriers.

    The PR 5 engine served this batch with three full flushes (every
    repeat of the hot line drained all pending work).  The scheduler
    must keep every op scheduled -- the collisions only chain the hot
    line into later waves.
    """
    config = get_system("comp_wf").config
    hot = 7
    independents = [line for line in range(32) if line != hot]
    payload = lambda value: bytes([value]) * LINE  # noqa: E731
    requests = []
    for index, line in enumerate(independents[:15]):
        requests.append((line, payload(index)))
    requests.append((hot, payload(100)))
    for index, line in enumerate(independents[15:25]):
        requests.append((line, payload(32 + index)))
    requests.append((hot, payload(101)))
    for index, line in enumerate(independents[25:]):
        requests.append((line, payload(64 + index)))
    requests.append((hot, payload(102)))
    assert len(requests) == 34  # 31 independent + 3 to the hot line

    serial = make_controller(config)
    want = [serial.write(line, data) for line, data in requests]
    batched = make_controller(config)
    assert batched.write_batch(requests) == want

    stats = batched.stats
    assert stats.batch_waves == 3
    assert stats.batch_wave_ops == 34
    assert stats.batch_wave_width_max == 32  # 31 independents + first hot
    assert stats.batch_wave_width_mean == pytest.approx(34 / 3)
    assert stats.batch_collision_edges == 2
    assert stats.barrier_collision == 0
    assert stats.barrier_ineligible_row == 0
    assert stats.barrier_gap_move == 0
    assert_same_state(
        state_fingerprint(batched), state_fingerprint(serial), "hot-line"
    )


def test_gap_moves_do_not_barrier_healthy_segments():
    """Start-Gap relocations ride along as dependency-tracked ops."""
    config = get_system("comp_wf").configured(start_gap_psi=7)
    requests = make_requests(400, seed=5)
    serial = make_controller(config)
    want = [serial.write(line, data) for line, data in requests]
    batched = make_controller(config)
    got = []
    for start in range(0, len(requests), 32):
        got.extend(batched.write_batch(requests[start:start + 32]))
    assert got == want
    stats = batched.stats
    assert stats.gap_move_writes > 0, "stream too short to move the gap"
    # Relocations ride along as scheduled ops; only a destination near
    # its wear bound may still barrier (rare even in this small array).
    assert stats.barrier_gap_move * 10 <= stats.gap_move_writes
    assert stats.batch_waves > 0
    assert_same_state(
        state_fingerprint(batched), state_fingerprint(serial), "gap-moves"
    )


def test_worn_rows_cut_barriers_and_stay_serial_identical():
    """Near-endurance rows must fall back to the serial pipeline."""
    config = get_system("comp_wf").config
    requests = make_requests(1500, seed=8)
    serial = make_controller(config, endurance_mean=18.0)
    want = [serial.write(line, data) for line, data in requests]
    batched = make_controller(config, endurance_mean=18.0)
    got = []
    for start in range(0, len(requests), 32):
        got.extend(batched.write_batch(requests[start:start + 32]))
    assert got == want
    stats = batched.stats
    assert stats.deaths > 0, "stream too gentle to exercise wear-out"
    assert stats.barrier_ineligible_row > 0
    assert_same_state(
        state_fingerprint(batched), state_fingerprint(serial), "worn"
    )


# -- hypothesis: adversarial streams vs the serial loop ------------------


def _payload_pool(seed, size=8):
    rng = np.random.default_rng(seed)
    pool = [rng.integers(0, 3, LINE, dtype=np.uint8).tobytes()]
    for index in range(1, size):
        bound = 256 if index % 2 else 2
        pool.append(rng.integers(0, bound, LINE, dtype=np.uint8).tobytes())
    return pool


def _assert_batched_equals_serial(config, stream, chunk, endurance=70.0):
    serial = make_controller(config, endurance_mean=endurance)
    want = [serial.write(line, data) for line, data in stream]
    batched = make_controller(config, endurance_mean=endurance)
    got = []
    for start in range(0, len(stream), chunk):
        got.extend(batched.write_batch(stream[start:start + chunk]))
    assert got == want
    assert_same_state(
        state_fingerprint(batched), state_fingerprint(serial), "hypothesis"
    )


_ADVERSARIAL = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@_ADVERSARIAL
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 7)),
        min_size=4, max_size=120,
    ),
    chunk=st.integers(2, 40),
)
def test_collision_heavy_streams_match_serial(ops, chunk):
    """Four logical lines only: nearly every batch chains collisions."""
    pool = _payload_pool(1)
    stream = [(line, pool[payload]) for line, payload in ops]
    _assert_batched_equals_serial(get_system("comp_wf").config, stream, chunk)


@_ADVERSARIAL
@given(
    ops=st.lists(
        st.tuples(st.integers(0, N_LINES - 1), st.integers(0, 7)),
        min_size=4, max_size=120,
    ),
    psi=st.integers(3, 9),
    chunk=st.integers(2, 40),
)
def test_gap_move_dense_streams_match_serial(ops, psi, chunk):
    """Tiny psi: Start-Gap fires every few writes, often mid-segment."""
    pool = _payload_pool(2)
    stream = [(line, pool[payload]) for line, payload in ops]
    config = get_system("comp_wf").configured(start_gap_psi=psi)
    _assert_batched_equals_serial(config, stream, chunk)


@_ADVERSARIAL
@given(
    bursts=st.lists(
        st.tuples(
            st.integers(0, N_LINES - 1),  # line
            st.integers(1, 6),            # burst length
            st.integers(0, 7),            # payload
        ),
        min_size=1, max_size=30,
    ),
    chunk=st.integers(2, 40),
)
def test_duplicate_line_bursts_match_serial(bursts, chunk):
    """Runs of back-to-back writes to one line (worst-case chaining)."""
    pool = _payload_pool(3)
    stream = [
        (line, pool[(payload + repeat) % len(pool)])
        for line, length, payload in bursts
        for repeat in range(length)
    ]
    if not stream:
        return
    config = get_system("comp_wf_freep").config
    _assert_batched_equals_serial(config, stream, chunk, endurance=40.0)


# -- bank-parallel execution ---------------------------------------------


def test_bank_parallel_waves_are_bit_identical():
    """Process-pool wave programming equals in-process scheduling."""
    config = get_system("comp_wf").config
    requests = make_requests(600, seed=13)
    plain = make_controller(config)
    fanned = make_controller(config)
    executor = fanned.enable_bank_parallel(workers=2)
    assert fanned.enable_bank_parallel() is executor  # idempotent
    try:
        plain_results, fanned_results = [], []
        for start in range(0, len(requests), 32):
            chunk = requests[start:start + 32]
            plain_results.extend(plain.write_batch(chunk))
            fanned_results.extend(fanned.write_batch(chunk))
        assert fanned_results == plain_results
        # Same chunking on both sides: *all* stats agree, including the
        # scheduler's wave telemetry.
        assert fanned.stats == plain.stats
        assert_same_state(
            state_fingerprint(fanned), state_fingerprint(plain), "parallel"
        )
    finally:
        fanned.disable_bank_parallel()
    fanned.disable_bank_parallel()  # idempotent

    # Teardown privatized the arrays: serial writes keep agreeing.
    tail = make_requests(60, seed=14)
    for line, data in tail:
        assert fanned.write(line, data) == plain.write(line, data)
    assert_same_state(
        state_fingerprint(fanned), state_fingerprint(plain), "after-close"
    )


def test_bank_parallel_requires_schedulable_engine():
    from repro.core.controller import CompressedPCMController
    from repro.pcm import EnduranceModel
    from repro.validate.invariants import default_invariants

    checked = CompressedPCMController(
        config=get_system("comp_wf").config,
        n_lines=8,
        endurance_model=EnduranceModel(mean=50.0, cov=0.2),
        rng=np.random.default_rng(0),
        n_banks=4,
        invariants=default_invariants(),
    )
    with pytest.raises(ValueError, match="schedulable"):
        checked.enable_bank_parallel()
