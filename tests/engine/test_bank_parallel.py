"""``BankParallelExecutor`` lifecycle: shared segments must never leak.

A half-torn executor used to be able to strand POSIX shared-memory
segments -- a failure while releasing one segment abandoned the rest,
and a failure during ``__init__`` (e.g. the pool refusing to start)
left every already-created segment behind plus a bank whose arrays
pointed into soon-unlinked shared buffers.  These tests inject
failures at both points and assert the OS-level cleanup happens
regardless.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.engine import bank_parallel
from repro.engine.bank_parallel import _STATE_ARRAYS, BankParallelExecutor
from repro.pcm import EnduranceModel
from repro.pcm.bank import PCMBankArray


def small_memory(seed=0):
    return PCMBankArray(
        n_blocks=4,
        endurance_model=EnduranceModel(mean=50.0, cov=0.1),
        rng=np.random.default_rng(seed),
    )


def assert_all_private(memory):
    """Every state array owns its buffer (no dangling shared views)."""
    for attr in _STATE_ARRAYS:
        assert getattr(memory, attr).base is None, attr


def assert_segment_gone(name):
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


class TestClose:
    def test_close_is_idempotent(self):
        executor = BankParallelExecutor(small_memory(), n_banks=2, workers=1)
        names = [segment.name for segment in executor._segments]
        executor.close()
        executor.close()  # second call must be a silent no-op
        assert_all_private(executor.memory)
        for name in names:
            assert_segment_gone(name)

    def test_context_manager_closes(self):
        memory = small_memory()
        with BankParallelExecutor(memory, n_banks=2, workers=1) as executor:
            names = [segment.name for segment in executor._segments]
        assert_all_private(memory)
        for name in names:
            assert_segment_gone(name)

    def test_write_rows_after_close_is_rejected(self):
        executor = BankParallelExecutor(small_memory(), n_banks=2, workers=1)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.write_rows(np.array([0, 1]), np.zeros((2, 512), bool))

    def test_failing_segment_release_frees_the_rest(self, monkeypatch):
        """A mid-teardown unlink error must not strand the remaining
        segments: they are all still released, the first error is
        re-raised once teardown finishes, and a second close is a
        no-op."""
        executor = BankParallelExecutor(small_memory(), n_banks=2, workers=1)
        segments = list(executor._segments)
        names = [segment.name for segment in segments]
        assert len(segments) == len(_STATE_ARRAYS)

        original_unlink = segments[0].unlink
        monkeypatch.setattr(
            segments[0], "unlink",
            lambda: (_ for _ in ()).throw(RuntimeError("injected unlink")),
        )
        with pytest.raises(RuntimeError, match="injected unlink"):
            executor.close()
        # Every *other* segment was released despite the first failing,
        # and the bank was privatized before anything was unlinked.
        assert_all_private(executor.memory)
        for name in names[1:]:
            assert_segment_gone(name)
        # Idempotence holds even after a failed teardown.
        executor.close()
        assert executor._segments == [] and executor._pool is None
        monkeypatch.undo()
        original_unlink()  # release the survivor ourselves
        assert_segment_gone(names[0])


class TestInitFailure:
    def test_pool_failure_leaves_no_segments_behind(self, monkeypatch):
        """If the worker pool refuses to start, construction must unwind
        completely: no shared segment survives and the bank's arrays are
        private (usable) again."""
        created = []
        real_shared_memory = bank_parallel.shared_memory

        class Recording:
            @staticmethod
            def SharedMemory(*args, **kwargs):
                segment = real_shared_memory.SharedMemory(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(segment.name)
                return segment

        monkeypatch.setattr(bank_parallel, "shared_memory", Recording)

        def refuse(*args, **kwargs):
            raise RuntimeError("pool refused to start")

        monkeypatch.setattr(bank_parallel, "ProcessPoolExecutor", refuse)

        memory = small_memory()
        before = {
            attr: np.array(getattr(memory, attr)) for attr in _STATE_ARRAYS
        }
        with pytest.raises(RuntimeError, match="pool refused"):
            BankParallelExecutor(memory, n_banks=2, workers=1)

        assert len(created) == len(_STATE_ARRAYS)
        for name in created:
            assert_segment_gone(name)
        assert_all_private(memory)
        for attr, expected in before.items():
            np.testing.assert_array_equal(getattr(memory, attr), expected)

    def test_mid_segment_failure_frees_earlier_segments(self, monkeypatch):
        """A segment-creation failure partway through the mirror loop
        must release the segments already created."""
        created = []
        real_shared_memory = bank_parallel.shared_memory

        class Flaky:
            @staticmethod
            def SharedMemory(*args, **kwargs):
                if kwargs.get("create") and len(created) == 3:
                    raise OSError("out of shm")
                segment = real_shared_memory.SharedMemory(*args, **kwargs)
                if kwargs.get("create"):
                    created.append(segment.name)
                return segment

        monkeypatch.setattr(bank_parallel, "shared_memory", Flaky)
        memory = small_memory()
        with pytest.raises(OSError, match="out of shm"):
            BankParallelExecutor(memory, n_banks=2, workers=1)
        assert created  # the failure really was mid-loop
        for name in created:
            assert_segment_gone(name)
        assert_all_private(memory)


def test_parallel_writes_match_serial_after_roundtrip():
    """End-to-end sanity: open, program a wave, close -- the state is
    identical to a serial run and fully private afterwards."""
    serial, parallel = small_memory(7), small_memory(7)
    rows = np.array([0, 1, 2, 3])
    rng = np.random.default_rng(3)
    targets = rng.random((4, serial.stored.shape[1])) < 0.5
    expected = serial.write_rows(rows, targets)
    with BankParallelExecutor(parallel, n_banks=2, workers=2) as executor:
        got = executor.write_rows(rows, targets)
    for expected_part, got_part in zip(expected, got):
        np.testing.assert_array_equal(expected_part, got_part)
    assert_all_private(parallel)
    for attr in _STATE_ARRAYS:
        np.testing.assert_array_equal(
            getattr(parallel, attr), getattr(serial, attr)
        )
