"""Unit tests for Figure 1 / Figure 5 analyses."""

import numpy as np
import pytest

from repro.analysis import (
    classify_flip_impact,
    hot_block_flip_series,
)
from repro.traces import get_profile


def test_fig1_series_shape():
    series = hot_block_flip_series(
        get_profile("gobmk"), n_lines=32, writes=3000, seed=0
    )
    assert len(series) > 20  # the hot block is written many times
    assert all(0 <= flips <= 512 for flips in series)


def test_fig1_flips_are_scattered():
    # Figure 1's point: per-write flip counts vary wildly under DW.
    series = hot_block_flip_series(
        get_profile("gobmk"), n_lines=32, writes=3000, seed=0
    )
    steady = series[1:]  # skip the cold-start full write
    assert np.std(steady) > 5
    assert max(steady) > 2 * max(1, min(steady))


def test_fig5_fractions_sum_to_one():
    result = classify_flip_impact(get_profile("milc"), n_lines=32, writes=1500)
    assert result.increased + result.untouched + result.decreased == pytest.approx(1.0)
    assert result.samples > 100


def test_fig5_compressible_apps_mostly_decrease():
    result = classify_flip_impact(
        get_profile("sjeng"), n_lines=32, writes=2000, seed=1
    )
    assert result.decreased > result.increased


def test_fig5_volatile_apps_mostly_increase():
    result = classify_flip_impact(
        get_profile("bzip2"), n_lines=32, writes=2000, seed=1
    )
    assert result.increased > 0.3


def test_fig5_empty_stream():
    result = classify_flip_impact(get_profile("milc"), n_lines=32, writes=0)
    assert result.samples == 0
