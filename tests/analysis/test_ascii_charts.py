"""Unit tests for ASCII chart rendering."""

import numpy as np
import pytest

from repro.analysis import bar_chart, cdf_plot, sparkline, wear_imbalance, wear_map


def test_sparkline_length_and_extremes():
    line = sparkline([0, 1, 2, 3, 100], width=5)
    assert len(line) == 5
    assert line[-1] == "@"
    assert line[0] == " "


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_bar_chart_scales_to_max():
    chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
    lines = chart.splitlines()
    assert lines[0].startswith("a |#####")
    assert "##########" in lines[1]
    assert "2.00" in lines[1]


def test_bar_chart_empty():
    assert bar_chart({}) == ""


def test_cdf_plot_contains_staircase():
    values = np.array([1.0, 2.0, 4.0, 8.0])
    cumulative = np.array([0.25, 0.5, 0.75, 1.0])
    plot = cdf_plot(values, cumulative, width=20, height=6)
    assert plot.count("*") >= 3
    assert plot.splitlines()[0].startswith("1.0")


def test_wear_map_single_line():
    counts = np.zeros(512)
    counts[:64] = 50  # first 8 bytes hot
    rendered = wear_map(counts, label="demo")
    lines = rendered.splitlines()
    assert lines[0] == "demo"
    assert len(lines) == 1 + 8 + 1  # label + 8 rows + legend
    assert "@" in lines[1]
    assert "@" not in lines[5]


def test_wear_map_matrix_averages_blocks():
    counts = np.zeros((4, 512))
    counts[:, 0] = 100
    rendered = wear_map(counts)
    assert "@" in rendered.splitlines()[0]


def test_wear_map_shape_validation():
    with pytest.raises(ValueError):
        wear_map(np.zeros(100), cells_per_row=64)


def test_wear_imbalance():
    assert wear_imbalance(np.ones(512)) == pytest.approx(0.0)
    assert wear_imbalance(np.zeros(512)) == 0.0
    skewed = np.zeros(512)
    skewed[:8] = 100
    assert wear_imbalance(skewed) > 3
