"""Unit tests for Figures 3/6/7/11 analyses."""

import numpy as np
import pytest

from repro.analysis import (
    cdf_fraction_below,
    fig3_compressed_sizes,
    fig6_size_change_probability,
    fig7_size_trajectories,
    fig11_max_size_cdf,
)
from repro.traces import get_profile


def test_fig3_best_never_worse_than_members():
    row = fig3_compressed_sizes(get_profile("gcc"), writes=800, seed=0)
    assert row.best <= row.bdi
    assert row.best <= row.fpc
    assert row.best_ratio == pytest.approx(row.best / 64)


def test_fig3_matches_table3_cr():
    for name in ("milc", "lbm", "zeusmp"):
        profile = get_profile(name)
        row = fig3_compressed_sizes(profile, writes=2000, seed=1)
        assert row.best_ratio == pytest.approx(profile.cr, abs=0.09), name


def test_fig6_ordering():
    volatile = fig6_size_change_probability(get_profile("gcc"), writes=3000)
    stable = fig6_size_change_probability(get_profile("hmmer"), writes=3000)
    assert volatile > stable


def test_fig7_trajectories():
    trajectories = fig7_size_trajectories(
        get_profile("bzip2"), n_blocks=3, writes=4000, seed=0
    )
    assert len(trajectories) == 3
    lengths = [len(series) for series in trajectories.values()]
    assert min(lengths) > 10
    # bzip2 blocks swing widely (Figure 7a).
    spreads = [max(series) - min(series) for series in trajectories.values()]
    assert max(spreads) > 16


def test_fig7_hmmer_is_stable():
    trajectories = fig7_size_trajectories(
        get_profile("hmmer"), n_blocks=3, writes=4000, seed=0
    )
    # Figure 7b: hmmer block sizes wiggle within a narrow band.  Use the
    # p5-p95 band so a handful of rare jumps over a long horizon do not
    # dominate (matches the Figure 7 benchmark's metric).
    bands = [
        np.percentile(series, 95) - np.percentile(series, 5)
        for series in trajectories.values()
    ]
    bzip2 = fig7_size_trajectories(
        get_profile("bzip2"), n_blocks=3, writes=4000, seed=0
    )
    bzip2_bands = [
        np.percentile(series, 95) - np.percentile(series, 5)
        for series in bzip2.values()
    ]
    assert np.median(bands) < np.median(bzip2_bands)


def test_fig11_milc_is_bottom_heavy():
    values, cumulative = fig11_max_size_cdf(
        get_profile("milc"), n_lines=128, writes=4000, seed=0
    )
    below_25 = cdf_fraction_below(values, cumulative, 25)
    # Paper: ~80% of milc addresses stay under 25 bytes.
    assert below_25 > 0.5


def test_fig11_gcc_is_spread_out():
    values, cumulative = fig11_max_size_cdf(
        get_profile("gcc"), n_lines=128, writes=4000, seed=0
    )
    below_25 = cdf_fraction_below(values, cumulative, 25)
    # Paper: only ~10% of gcc addresses stay under 25 bytes.
    assert below_25 < 0.35


def test_cdf_fraction_below_edges():
    values = np.array([8, 16, 64])
    cumulative = np.array([0.25, 0.5, 1.0])
    assert cdf_fraction_below(values, cumulative, 5) == 0.0
    assert cdf_fraction_below(values, cumulative, 20) == 0.5
    assert cdf_fraction_below(values, cumulative, 100) == 1.0
