"""Unit tests for the lifetime-study wrappers."""

import pytest

from repro.analysis import (
    geometric_mean_normalized,
    high_variation_study,
    run_full_study,
    run_workload_study,
)


@pytest.fixture(scope="module")
def tiny_study():
    return run_workload_study(
        "milc", systems=("baseline", "comp_wf"),
        n_lines=32, endurance_mean=15, seed=0, max_writes=600_000,
    )


def test_study_normalizes_against_baseline(tiny_study):
    assert tiny_study.normalized["baseline"] == pytest.approx(1.0)
    assert tiny_study.normalized["comp_wf"] > 1.0


def test_study_months(tiny_study):
    base = tiny_study.months("baseline")
    wf = tiny_study.months("comp_wf")
    assert base > 0
    assert wf / base == pytest.approx(tiny_study.normalized["comp_wf"], rel=1e-6)


def test_study_tolerated_faults(tiny_study):
    assert tiny_study.tolerated_faults("comp_wf") > tiny_study.tolerated_faults(
        "baseline"
    ) * 0.9


def test_unfinished_runs_raise():
    with pytest.raises(RuntimeError, match="failure criterion"):
        run_workload_study(
            "milc", systems=("baseline",), n_lines=32,
            endurance_mean=1000, seed=0, max_writes=200,
        )


@pytest.mark.slow
def test_full_study_and_mean():
    studies = run_full_study(
        workloads=("milc", "zeusmp"), systems=("baseline", "comp_wf"),
        n_lines=32, endurance_mean=12, seed=0, max_writes=800_000,
    )
    assert set(studies) == {"milc", "zeusmp"}
    mean = geometric_mean_normalized(studies, "comp_wf")
    assert mean > 1.0


def test_high_variation_study_uses_cov_025():
    studies = high_variation_study(
        workloads=("milc",), n_lines=32, endurance_mean=12, seed=0,
        max_writes=800_000,
    )
    assert studies["milc"].normalized["comp_wf"] > 0.8
