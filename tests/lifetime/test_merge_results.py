"""``merge_results``: exact fleet aggregation of lifetime records."""

import dataclasses

import pytest

from repro.core.config import comp_wf
from repro.lifetime import LifetimeSimulator, merge_results
from repro.lifetime.results import LifetimeResult
from repro.traces import SyntheticWorkload, get_profile


def _run(lines, seed, writes=1500):
    simulator = LifetimeSimulator(
        comp_wf(),
        SyntheticWorkload(get_profile("mcf"), n_lines=lines, seed=seed),
        n_lines=lines, endurance_mean=24.0, seed=seed, n_banks=4,
    )
    return simulator.run(max_writes=writes)


@pytest.fixture(scope="module")
def shard_results():
    return [_run(12, 1), _run(12, 2), _run(10, 3)]


def test_single_record_merges_to_itself(shard_results):
    assert merge_results([shard_results[0]]) is shard_results[0]


def test_merge_requires_compatible_records(shard_results):
    with pytest.raises(ValueError, match="zero results"):
        merge_results([])
    alien = dataclasses.replace(shard_results[1], system="baseline")
    with pytest.raises(ValueError, match="across systems"):
        merge_results([shard_results[0], alien])
    rescaled = dataclasses.replace(shard_results[1], endurance_mean=100.0)
    with pytest.raises(ValueError, match="endurance means"):
        merge_results([shard_results[0], rescaled])


def test_additive_fields_sum_exactly(shard_results):
    merged = merge_results(shard_results)
    for name in (
        "n_lines", "writes_issued", "total_flips", "set_flips",
        "reset_flips", "lost_writes", "deaths", "revivals",
        "stored_writes", "compressed_writes", "capacity_lines",
        "dead_blocks", "death_fault_total", "death_fault_blocks",
    ):
        assert getattr(merged, name) == sum(
            getattr(r, name) for r in shard_results
        ), name


def test_ratio_fields_recompute_from_exact_numerators(shard_results):
    merged = merge_results(shard_results)
    assert merged.dead_fraction == merged.dead_blocks / merged.capacity_lines
    assert merged.compressed_write_fraction == (
        merged.compressed_writes / merged.stored_writes
    )
    if merged.death_fault_blocks:
        assert merged.avg_faults_per_dead_block == (
            merged.death_fault_total / merged.death_fault_blocks
        )


def test_merge_is_order_independent(shard_results):
    forward = merge_results(shard_results)
    backward = merge_results(list(reversed(shard_results)))
    assert forward == dataclasses.replace(backward, workload=forward.workload)


def test_mixed_workloads_collapse_to_fleet(shard_results):
    renamed = dataclasses.replace(shard_results[2], workload="gcc")
    merged = merge_results([shard_results[0], renamed])
    assert merged.workload == "fleet"
    uniform = merge_results(shard_results[:2])
    assert uniform.workload == "mcf"


def test_fleet_failure_requires_every_shard_failed(shard_results):
    failed = [dataclasses.replace(r, failed=True) for r in shard_results]
    half = failed[:1] + [dataclasses.replace(failed[1], failed=False)]
    assert merge_results(failed).failed
    assert not merge_results(half).failed


def test_pre_service_records_fall_back_to_weighted_ratios():
    """Records without the exact-merge fields still combine sensibly."""
    def legacy(lines, writes, dead_fraction, compressed_fraction):
        return LifetimeResult(
            system="comp_wf", workload="mcf", n_lines=lines,
            endurance_mean=24.0, writes_issued=writes, failed=False,
            dead_fraction=dead_fraction, total_flips=0, set_flips=0,
            reset_flips=0, lost_writes=0, deaths=0, revivals=0,
            avg_faults_per_dead_block=0.0,
            compressed_write_fraction=compressed_fraction,
        )

    merged = merge_results([legacy(10, 100, 0.5, 0.8), legacy(30, 300, 0.1, 0.4)])
    assert merged.dead_fraction == pytest.approx((0.5 * 10 + 0.1 * 30) / 40)
    assert merged.compressed_write_fraction == pytest.approx(
        (0.8 * 100 + 0.4 * 300) / 400
    )


def test_zero_write_legacy_records_merge_without_dividing_by_zero():
    """An empty shard (0 lines, 0 writes) used to crash the legacy
    write-weighted fallback with a ZeroDivisionError; it must merge as
    plain zeros instead."""
    def legacy(lines, writes, dead_fraction, compressed_fraction):
        return LifetimeResult(
            system="comp_wf", workload="mcf", n_lines=lines,
            endurance_mean=24.0, writes_issued=writes, failed=False,
            dead_fraction=dead_fraction, total_flips=0, set_flips=0,
            reset_flips=0, lost_writes=0, deaths=0, revivals=0,
            avg_faults_per_dead_block=0.0,
            compressed_write_fraction=compressed_fraction,
        )

    empty = legacy(0, 0, 0.0, 0.0)
    merged = merge_results([empty, empty])
    assert merged.dead_fraction == 0.0
    assert merged.compressed_write_fraction == 0.0

    populated = legacy(20, 200, 0.3, 0.6)
    mixed = merge_results([empty, populated])
    assert mixed.dead_fraction == pytest.approx(0.3)
    assert mixed.compressed_write_fraction == pytest.approx(0.6)


def test_simulator_populates_the_exact_merge_fields(shard_results):
    for result in shard_results:
        assert result.capacity_lines >= result.n_lines
        assert result.stored_writes > 0
        assert result.dead_fraction == (
            result.dead_blocks / result.capacity_lines
        )
        assert result.compressed_write_fraction == (
            result.compressed_writes / result.stored_writes
        )
