"""Unit tests for the lifetime simulator."""

import pytest

from repro.core import baseline, comp_wf
from repro.lifetime import (
    DEAD_CAPACITY_THRESHOLD,
    LifetimeSimulator,
    build_simulator,
    lifetime_months,
    normalized_against_baseline,
    normalized_lifetime,
    run_system_comparison,
    scaled_intra_counter_limit,
)
from repro.traces import SyntheticWorkload, Trace, WriteBack, get_profile


def tiny_simulator(system="baseline", workload="milc", **kwargs):
    defaults = dict(n_lines=32, endurance_mean=20.0, seed=0)
    defaults.update(kwargs)
    return build_simulator(system, workload, **defaults)


def test_runs_to_failure():
    result = tiny_simulator().run(max_writes=300_000)
    assert result.failed
    assert result.dead_fraction >= DEAD_CAPACITY_THRESHOLD
    assert result.writes_to_failure == result.writes_issued
    assert result.total_flips > 0


def test_write_budget_respected():
    result = tiny_simulator().run(max_writes=500)
    assert not result.failed
    assert result.writes_issued == 500
    assert result.writes_to_failure is None


def test_deterministic_given_seed():
    a = tiny_simulator(seed=3).run(max_writes=300_000)
    b = tiny_simulator(seed=3).run(max_writes=300_000)
    assert a.writes_issued == b.writes_issued
    assert a.total_flips == b.total_flips


def test_trace_replay_source():
    generator = SyntheticWorkload(get_profile("milc"), n_lines=16, seed=1)
    trace = generator.generate_trace(200)
    simulator = LifetimeSimulator(
        config=baseline(),
        source=trace,
        n_lines=16,
        endurance_mean=15.0,
        seed=2,
    )
    result = simulator.run(max_writes=200_000)
    assert result.failed
    assert result.workload == "milc"


def test_trace_larger_than_memory_rejected():
    trace = Trace(workload="x", n_lines=64)
    trace.append(WriteBack(line=0, data=bytes(64)))
    with pytest.raises(ValueError, match="addresses 64 lines"):
        LifetimeSimulator(
            config=baseline(), source=trace, n_lines=16, endurance_mean=10
        ).run(max_writes=10)


def test_empty_trace_rejected():
    trace = Trace(workload="x", n_lines=4)
    simulator = LifetimeSimulator(
        config=baseline(), source=trace, n_lines=4, endurance_mean=10
    )
    with pytest.raises(ValueError, match="empty trace"):
        simulator.run(max_writes=10)


def test_rng_with_seed_rejected():
    """An explicit rng= would silently ignore a non-default seed=."""
    import numpy as np

    generator = SyntheticWorkload(get_profile("milc"), n_lines=4, seed=0)
    with pytest.raises(ValueError, match="rng"):
        LifetimeSimulator(
            config=baseline(), source=generator, n_lines=4,
            endurance_mean=10, seed=3, rng=np.random.default_rng(3),
        )
    # rng with the default seed is fine: nothing is being ignored.
    LifetimeSimulator(
        config=baseline(), source=generator, n_lines=4,
        endurance_mean=10, rng=np.random.default_rng(3),
    )


def test_bad_source_type_rejected():
    with pytest.raises(TypeError):
        LifetimeSimulator(
            config=baseline(), source=None, n_lines=4, endurance_mean=10
        )


def test_threshold_validation():
    generator = SyntheticWorkload(get_profile("milc"), n_lines=4, seed=0)
    with pytest.raises(ValueError):
        LifetimeSimulator(
            config=baseline(), source=generator, n_lines=4,
            endurance_mean=10, dead_threshold=0.0,
        )


def test_comparison_and_normalization():
    results = run_system_comparison(
        "milc", systems=("baseline", "comp_wf"), n_lines=32,
        endurance_mean=20, max_writes=500_000,
    )
    norm = normalized_against_baseline(results)
    assert norm["baseline"] == pytest.approx(1.0)
    assert norm["comp_wf"] > 1.0  # compression helps milc


def test_normalization_requires_baseline():
    results = run_system_comparison(
        "milc", systems=("comp_wf",), n_lines=16, endurance_mean=10,
        max_writes=200_000,
    )
    with pytest.raises(ValueError, match="baseline"):
        normalized_against_baseline(results)


def test_normalize_requires_finished_runs():
    finished = tiny_simulator().run(max_writes=300_000)
    unfinished = tiny_simulator().run(max_writes=10)
    with pytest.raises(ValueError):
        normalized_lifetime(unfinished, finished)


def test_lifetime_months_extrapolation():
    result = tiny_simulator().run(max_writes=300_000)
    months = lifetime_months(result, wpki=3.4)
    assert months > 0
    # Halving WPKI doubles the lifetime.
    assert lifetime_months(result, wpki=1.7) == pytest.approx(2 * months)
    with pytest.raises(ValueError):
        lifetime_months(result, wpki=0)


def test_scaled_intra_counter_limit():
    assert scaled_intra_counter_limit(10, lines_per_bank=4) == 16  # floor
    big = scaled_intra_counter_limit(10_000, lines_per_bank=64)
    assert big > 16
    # Linear in endurance.
    assert scaled_intra_counter_limit(20_000, lines_per_bank=64) == pytest.approx(
        2 * big, rel=0.01
    )
