"""Checkpoint/resume durability: the load-bearing property is that a
run interrupted at an *arbitrary* write count and resumed from its
latest checkpoint produces a bit-identical
:class:`~repro.lifetime.results.LifetimeResult` to a never-interrupted
run -- same writes_issued, dead_fraction, flip counters, everything.
The runs here are tiny (they die within a few thousand writes) so the
equivalence checks stay fast.
"""

from __future__ import annotations

import itertools
import json
import types

import pytest

from repro.lifetime import (
    Checkpoint,
    LifetimeSimulator,
    RunObserver,
    build_simulator,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    write_checkpoint,
)
from repro.lifetime.telemetry import JsonlObserver
from repro.traces import SyntheticWorkload, Trace, get_profile

SMALL = dict(n_lines=24, endurance_mean=12.0, seed=3)
BUDGET = 600_000


def small_simulator(system="comp_wf", workload="milc"):
    return build_simulator(system, workload, **SMALL)


# An awkward interruption point: not a multiple of the checkpoint
# interval, the heartbeat interval, or the failure-check interval.
INTERRUPT_AT = 1_337
CHECKPOINT_EVERY = 500


class TestResumeEquivalence:
    @pytest.fixture(scope="class")
    def golden(self):
        return small_simulator().run(max_writes=BUDGET)

    def test_run_actually_dies(self, golden):
        assert golden.failed and golden.writes_issued < BUDGET

    def test_interrupted_and_resumed_run_is_bit_identical(self, golden, tmp_path):
        interrupted = small_simulator()
        interrupted.run(
            max_writes=INTERRUPT_AT,
            checkpoint_dir=tmp_path,
            checkpoint_interval=CHECKPOINT_EVERY,
        )
        resume_point = latest_checkpoint(tmp_path)
        assert resume_point is not None
        # A *fresh* simulator restores the checkpoint, discarding the
        # interrupted run's post-checkpoint progress, and continues.
        resumed = small_simulator().run(
            max_writes=BUDGET, resume_from=resume_point
        )
        assert resumed == golden  # full LifetimeResult equality

    def test_resume_restores_the_write_counter(self, tmp_path):
        interrupted = small_simulator()
        interrupted.run(
            max_writes=INTERRUPT_AT,
            checkpoint_dir=tmp_path,
            checkpoint_interval=CHECKPOINT_EVERY,
        )
        checkpoint = read_checkpoint(latest_checkpoint(tmp_path))
        assert checkpoint.writes_issued == (
            INTERRUPT_AT // CHECKPOINT_EVERY
        ) * CHECKPOINT_EVERY

    def test_double_interruption_still_bit_identical(self, golden, tmp_path):
        """Kill, resume, kill again, resume again -- still identical."""
        first = small_simulator()
        first.run(max_writes=INTERRUPT_AT, checkpoint_dir=tmp_path,
                  checkpoint_interval=CHECKPOINT_EVERY)
        second = small_simulator()
        second.run(max_writes=INTERRUPT_AT + 997, checkpoint_dir=tmp_path,
                   checkpoint_interval=CHECKPOINT_EVERY,
                   resume_from=latest_checkpoint(tmp_path))
        final = small_simulator().run(
            max_writes=BUDGET, resume_from=latest_checkpoint(tmp_path)
        )
        assert final == golden

    def test_trace_replay_resumes_from_the_cursor(self, tmp_path):
        """Trace sources must not restart at write 0 after a resume."""
        source = SyntheticWorkload(get_profile("milc"), n_lines=16, seed=7)
        trace = source.generate_trace(2_000)

        from repro.core import comp_wf

        def trace_sim():
            return LifetimeSimulator(
                config=comp_wf(),
                source=Trace(trace.workload, trace.n_lines, list(trace.writes)),
                n_lines=16, endurance_mean=10.0, seed=4,
            )

        golden = trace_sim().run(max_writes=200_000)
        assert golden.failed
        interrupted = trace_sim()
        interrupted.run(max_writes=777, checkpoint_dir=tmp_path,
                        checkpoint_interval=250)
        resumed = trace_sim().run(
            max_writes=200_000, resume_from=latest_checkpoint(tmp_path)
        )
        assert resumed == golden


class TestBatchedResume:
    """Scheduler observability counters must survive checkpoint/resume.

    ``LifetimeResult`` equality covers ``batch_waves``,
    ``batch_wave_ops`` and ``batch_wave_width_max``, so comparing a
    resumed batched run against an uninterrupted one asserts counter
    continuity, not just simulation-state continuity.  Both runs use
    the same checkpoint cadence: with ``batch > 1`` epochs are capped
    at cadence boundaries, so the cadence is part of the wave
    structure.
    """

    BATCH = 8

    def _run_batched(self, tmp_path, name, max_writes, resume_from=None):
        simulator = small_simulator()
        result = simulator.run(
            max_writes=max_writes, batch=self.BATCH,
            checkpoint_dir=tmp_path / name,
            checkpoint_interval=CHECKPOINT_EVERY,
            resume_from=resume_from,
        )
        return simulator, result

    def test_batched_resume_preserves_wave_counters(self, tmp_path):
        _, golden = self._run_batched(tmp_path, "golden", BUDGET)
        assert golden.failed and golden.batch_waves > 0
        self._run_batched(tmp_path, "interrupted", INTERRUPT_AT)
        resume_point = latest_checkpoint(tmp_path / "interrupted")
        checkpoint = read_checkpoint(resume_point)
        # The checkpointed controller already carries wave telemetry.
        assert checkpoint.controller.stats.batch_waves > 0
        _, resumed = self._run_batched(
            tmp_path, "interrupted", BUDGET, resume_from=resume_point
        )
        assert resumed == golden  # includes batch_wave_* continuity


class TestVersionCompatibility:
    def _checkpoint_from_run(self, tmp_path):
        simulator = small_simulator()
        simulator.run(max_writes=600, checkpoint_dir=tmp_path,
                      checkpoint_interval=500)
        return read_checkpoint(latest_checkpoint(tmp_path))

    def test_current_checkpoints_carry_the_tier_capacity(self, tmp_path):
        from repro.lifetime.checkpoint import CHECKPOINT_VERSION

        checkpoint = self._checkpoint_from_run(tmp_path)
        assert checkpoint.version == CHECKPOINT_VERSION
        assert checkpoint.tier_lines == 0

    def test_version1_checkpoint_without_tier_field_still_resumes(
        self, tmp_path
    ):
        """Pre-tier snapshots (version 1, no ``tier_lines`` attribute)
        must keep loading and resuming as the tier-less runs they were."""
        checkpoint = self._checkpoint_from_run(tmp_path)
        stale = Checkpoint(**{**checkpoint.__dict__, "version": 1})
        del stale.__dict__["tier_lines"]  # the attribute predates v2
        path = write_checkpoint(stale, tmp_path / "v1")
        reloaded = read_checkpoint(path)
        assert reloaded.version == 1
        golden = small_simulator().run(max_writes=BUDGET)
        resumed = small_simulator().run(max_writes=BUDGET, resume_from=path)
        assert resumed == golden
        assert reloaded.writes_issued == 500


class TestTieredCheckpoints:
    def tiered_simulator(self, tier_lines=4):
        return build_simulator(
            "comp_wf", "milc", tier_lines=tier_lines, **SMALL
        )

    def test_tiered_run_resumes_bit_identically(self, tmp_path):
        """The DRAM tier's residents/refcounts/LRU order ride the
        pickled controller, so a resumed tiered run is bit-identical."""
        golden = self.tiered_simulator().run(max_writes=3_000)
        interrupted = self.tiered_simulator()
        interrupted.run(max_writes=INTERRUPT_AT, checkpoint_dir=tmp_path,
                        checkpoint_interval=CHECKPOINT_EVERY)
        resume_point = latest_checkpoint(tmp_path)
        checkpoint = read_checkpoint(resume_point)
        assert checkpoint.tier_lines == 4
        assert len(checkpoint.controller.tier) >= 0  # tier state pickled
        resumed = self.tiered_simulator().run(
            max_writes=3_000, resume_from=resume_point
        )
        assert resumed == golden

    def test_restore_refuses_a_checkpoint_with_a_different_tier(
        self, tmp_path
    ):
        bare = small_simulator()
        bare.run(max_writes=600, checkpoint_dir=tmp_path,
                 checkpoint_interval=500)
        with pytest.raises(ValueError, match="different run"):
            self.tiered_simulator().restore(latest_checkpoint(tmp_path))


class TestCheckpointStore:
    def test_atomic_write_leaves_no_temporaries(self, tmp_path):
        simulator = small_simulator()
        simulator.run(max_writes=1_000, checkpoint_dir=tmp_path,
                      checkpoint_interval=300)
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp")]
        assert leftovers == []

    def test_prune_keeps_the_newest_checkpoints(self, tmp_path):
        simulator = small_simulator()
        simulator.run(max_writes=2_000, checkpoint_dir=tmp_path,
                      checkpoint_interval=300)
        kept = list_checkpoints(tmp_path)
        assert len(kept) == 2  # default keep=2
        assert kept[-1] == latest_checkpoint(tmp_path)
        assert kept[0].name < kept[-1].name

    def test_latest_checkpoint_of_missing_dir_is_none(self, tmp_path):
        assert latest_checkpoint(tmp_path / "never-created") is None

    def test_version_mismatch_rejected(self, tmp_path):
        simulator = small_simulator()
        simulator.run(max_writes=600, checkpoint_dir=tmp_path,
                      checkpoint_interval=500)
        checkpoint = read_checkpoint(latest_checkpoint(tmp_path))
        stale = Checkpoint(**{**checkpoint.__dict__, "version": 999})
        path = write_checkpoint(stale, tmp_path / "stale")
        with pytest.raises(ValueError, match="version"):
            read_checkpoint(path)

    def test_restore_rejects_a_foreign_checkpoint(self, tmp_path):
        simulator = small_simulator()
        simulator.run(max_writes=600, checkpoint_dir=tmp_path,
                      checkpoint_interval=500)
        other = build_simulator("baseline", "milc", **SMALL)
        with pytest.raises(ValueError, match="different run"):
            other.restore(latest_checkpoint(tmp_path))

    def test_checkpoint_interval_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            small_simulator().run(
                max_writes=100, checkpoint_dir=tmp_path, checkpoint_interval=0
            )


class TestTelemetry:
    def test_observers_never_change_the_result(self, tmp_path):
        silent = small_simulator().run(max_writes=BUDGET)

        class Counting(RunObserver):
            events: list = []

            def on_heartbeat(self, event):
                self.events.append(event)

        observed = small_simulator().run(
            max_writes=BUDGET, observers=(Counting(),), heartbeat_interval=256
        )
        assert observed == silent
        assert Counting.events, "heartbeats should have fired"
        last = Counting.events[-1]
        assert last.writes_issued % 256 == 0
        assert 0.0 <= last.dead_fraction <= 1.0

    def test_resumed_stream_elapsed_seconds_is_monotone(
        self, tmp_path, monkeypatch
    ):
        """A resumed run's heartbeats continue the cumulative clock.

        ``elapsed_seconds`` used to restart at zero on every ``run()``
        call while ``writes_issued`` kept counting, so the JSONL stream
        of a resumed run was non-monotone in it and any whole-run rate
        derived from the stream was garbage.  The fake clock advances
        one second per reading, making the regression deterministic.
        """
        from repro.lifetime import simulator as simulator_module

        ticks = itertools.count(1)
        monkeypatch.setattr(
            simulator_module, "time",
            types.SimpleNamespace(monotonic=lambda: float(next(ticks))),
        )
        path = tmp_path / "events.jsonl"
        telemetry = dict(
            checkpoint_dir=tmp_path, checkpoint_interval=500,
            heartbeat_interval=500,
        )
        first = small_simulator()
        first.run(max_writes=1_500, observers=(JsonlObserver(path),),
                  **telemetry)
        resumed = small_simulator()
        resumed.run(max_writes=3_000, observers=(JsonlObserver(path),),
                    resume_from=latest_checkpoint(tmp_path), **telemetry)

        events = [json.loads(line) for line in path.read_text().splitlines()]
        starts = [e for e in events if e["event"] == "start"]
        assert [s["resumed"] for s in starts] == [False, True]
        heartbeats = [e for e in events if e["event"] == "heartbeat"]
        assert [e["writes_issued"] for e in heartbeats] == [
            500, 1_000, 1_500, 2_000, 2_500, 3_000
        ]
        elapsed = [e["elapsed_seconds"] for e in heartbeats]
        assert all(b > a for a, b in zip(elapsed, elapsed[1:])), elapsed
        # The rate anchor resets at the resume point, never at write 0:
        # every heartbeat covers exactly 500 writes over >= 1 fake
        # second, so a rate above 500 w/s means a mis-anchored window.
        for event in heartbeats:
            assert 0 < event["writes_per_second"] <= 500
        # The cumulative clock is carried by the checkpoints themselves.
        checkpoint = read_checkpoint(latest_checkpoint(tmp_path))
        assert checkpoint.elapsed_seconds > 0
        assert resumed.elapsed_seconds >= checkpoint.elapsed_seconds

    def test_jsonl_stream_is_well_formed(self, tmp_path):
        path = tmp_path / "events.jsonl"
        result = small_simulator().run(
            max_writes=BUDGET,
            checkpoint_dir=tmp_path,
            checkpoint_interval=500,
            observers=(JsonlObserver(path),),
            heartbeat_interval=500,
        )
        events = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start" and kinds[-1] == "end"
        assert "heartbeat" in kinds and "checkpoint" in kinds
        end = events[-1]
        assert end["writes_issued"] == result.writes_issued
        assert end["failed"] is result.failed
        heartbeat = next(e for e in events if e["event"] == "heartbeat")
        for key in ("writes_issued", "dead_fraction", "writes_per_second",
                    "compression_cache_hit_rate"):
            assert key in heartbeat
