"""Scaled simulations must preserve *normalized* lifetimes.

DESIGN.md's substitution table claims normalized lifetime (Figure 10's
metric) is invariant to uniform endurance scaling, which is what makes
the scaled-down runs meaningful.  This test runs the same
(system, workload) pair at two endurance scales and checks that the
comp_wf/baseline ratio agrees within Monte Carlo noise.
"""

import pytest

from repro.lifetime import normalized_against_baseline, run_system_comparison


@pytest.mark.slow
def test_normalized_lifetime_stable_across_endurance_scales():
    ratios = []
    for endurance in (20.0, 60.0):
        results = run_system_comparison(
            "milc",
            systems=("baseline", "comp_wf"),
            n_lines=64,
            endurance_mean=endurance,
            seed=1,
            max_writes=2_000_000,
        )
        assert all(result.failed for result in results.values())
        ratios.append(normalized_against_baseline(results)["comp_wf"])

    small, large = ratios
    assert small > 1.5 and large > 1.5  # compression clearly wins at both
    assert small == pytest.approx(large, rel=0.45)


def test_absolute_writes_scale_with_endurance():
    writes = []
    for endurance in (10.0, 40.0):
        results = run_system_comparison(
            "milc", systems=("baseline",), n_lines=32,
            endurance_mean=endurance, seed=2, max_writes=2_000_000,
        )
        assert results["baseline"].failed
        writes.append(results["baseline"].writes_issued)
    # 4x the endurance -> roughly 4x the writes-to-failure.
    assert writes[1] / writes[0] == pytest.approx(4.0, rel=0.4)
