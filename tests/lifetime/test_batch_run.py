"""The simulator's ``batch=`` knob: bit-identity and cadence alignment.

``LifetimeSimulator.run(batch=K)`` drains the write stream through the
batched line-parallel engine.  The contract is strict: the result, the
final controller state, and every cadence event (failure checks,
checkpoints, heartbeats) must be indistinguishable from ``batch=1`` --
including across a checkpoint/resume cut that lands mid-way through
what a free-running batch epoch would have been.
"""

import dataclasses

import pytest

from repro.lifetime import build_simulator
from repro.lifetime.checkpoint import latest_checkpoint
from repro.lifetime.telemetry import RunObserver

from tests.engine.test_step_batch import assert_same_state, state_fingerprint

SIM_KWARGS = dict(n_lines=48, endurance_mean=30.0, seed=5)

#: LifetimeResult fields describing *how* the stream was executed
#: (scheduler wave telemetry) -- legitimately zero on a serial run and
#: populated on a batched one; every behavioural field must agree.
SCHEDULER_RESULT_FIELDS = {
    "batch_waves", "batch_wave_ops", "batch_wave_width_max",
}


def behavioural_dict(result):
    return {
        name: value
        for name, value in dataclasses.asdict(result).items()
        if name not in SCHEDULER_RESULT_FIELDS
    }


def make_sim(system="comp_wf", workload="gcc"):
    return build_simulator(system, workload, **SIM_KWARGS)


class RecordingObserver(RunObserver):
    """Collects the write counts every cadence event fires at."""

    def __init__(self):
        self.starts = []
        self.heartbeats = []
        self.checkpoints = []
        self.ends = []

    def on_run_start(self, simulator, writes_issued):
        self.starts.append(writes_issued)

    def on_heartbeat(self, event):
        self.heartbeats.append(event.writes_issued)

    def on_checkpoint(self, path, writes_issued):
        self.checkpoints.append((path.name, writes_issued))

    def on_run_end(self, result):
        self.ends.append(result.writes_issued)


@pytest.mark.parametrize("system", ["comp_wf", "comp_wf_safer32"])
@pytest.mark.parametrize("batch", [8, 32])
def test_batched_run_is_bit_identical(system, batch):
    serial_sim = make_sim(system)
    serial = serial_sim.run(max_writes=20_000, check_interval=64)
    batched_sim = make_sim(system)
    batched = batched_sim.run(max_writes=20_000, check_interval=64, batch=batch)

    assert behavioural_dict(batched) == behavioural_dict(serial)
    assert batched.batch_waves > 0  # the scheduler actually ran
    assert batched.batch_wave_ops >= batched.batch_waves
    assert serial.batch_waves == 0
    assert batched_sim.writes_issued == serial_sim.writes_issued
    assert batched_sim.trace_cursor == serial_sim.trace_cursor
    assert_same_state(
        state_fingerprint(batched_sim.controller),
        state_fingerprint(serial_sim.controller),
        f"{system} batch={batch}",
    )
    assert serial.failed, "stream too gentle: the run never hit the criterion"


def test_batched_cadence_events_land_on_serial_write_counts(tmp_path):
    streams = {}
    for label, batch in (("serial", 1), ("batched", 10)):
        observer = RecordingObserver()
        sim = make_sim()
        sim.run(
            max_writes=5_000,
            check_interval=64,
            batch=batch,
            checkpoint_dir=tmp_path / label,
            checkpoint_interval=1_000,
            observers=[observer],
            heartbeat_interval=500,
        )
        streams[label] = observer
    serial, batched = streams["serial"], streams["batched"]
    assert batched.starts == serial.starts
    assert batched.heartbeats == serial.heartbeats
    assert batched.checkpoints == serial.checkpoints  # same files, same counts
    assert batched.ends == serial.ends


def test_batched_resume_cut_mid_epoch_is_bit_identical(tmp_path):
    """Interrupt a batched run at a checkpoint that splits an epoch.

    ``checkpoint_interval=700`` is not a multiple of ``batch=32``, so
    the cadence capping truncates the epoch in flight at the cut; the
    resumed continuation (also batched) must still land exactly on the
    uninterrupted serial run.
    """
    serial_sim = make_sim()
    serial = serial_sim.run(max_writes=6_000, check_interval=64)

    interrupted = make_sim()
    interrupted.run(
        max_writes=3_000, check_interval=64, batch=32,
        checkpoint_dir=tmp_path, checkpoint_interval=700,
    )
    resumed_sim = make_sim()
    resumed = resumed_sim.run(
        max_writes=6_000, check_interval=64, batch=32,
        resume_from=latest_checkpoint(tmp_path),
    )

    assert behavioural_dict(resumed) == behavioural_dict(serial)
    assert_same_state(
        state_fingerprint(resumed_sim.controller),
        state_fingerprint(serial_sim.controller),
        "resumed-batched vs serial",
    )


def test_batch_must_be_positive():
    with pytest.raises(ValueError, match="batch"):
        make_sim().run(max_writes=100, batch=0)
