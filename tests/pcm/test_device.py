"""Unit tests for device timing/energy parameters."""

import pytest

from repro.pcm import PCMEnergy, PCMTimings


def test_table2_defaults():
    timings = PCMTimings()
    assert timings.read_ns == 48.0
    assert timings.reset_ns == 40.0
    assert timings.set_ns == 150.0
    assert timings.bus_mhz == 400.0
    assert timings.burst_length == 8
    assert timings.t_rcd == 60
    assert timings.t_cl == 5


def test_cycle_time():
    assert PCMTimings().cycle_ns == pytest.approx(2.5)


def test_write_latency_dominated_by_set():
    assert PCMTimings().write_ns == 150.0


def test_latency_cycles():
    timings = PCMTimings()
    assert timings.read_latency_cycles() == 60 + 5 + 8
    assert timings.write_latency_cycles() == 60 + 4 + 8


def test_validation():
    with pytest.raises(ValueError):
        PCMTimings(bus_mhz=0)
    with pytest.raises(ValueError):
        PCMTimings(burst_length=0)


def test_energy_accounting():
    energy = PCMEnergy()
    assert energy.write_energy_pj(0, 0) == 0
    assert energy.write_energy_pj(2, 3) == pytest.approx(
        2 * energy.set_pj_per_bit + 3 * energy.reset_pj_per_bit
    )
