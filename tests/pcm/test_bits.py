"""Unit tests for bit-level helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm import bits_to_bytes, bytes_to_bits, flip_mask, popcount


def test_bit_order_is_little_endian_within_bytes():
    bits = bytes_to_bits(b"\x01" + bytes(63))
    assert bits[0] == 1
    assert popcount(bits) == 1

    bits = bytes_to_bits(b"\x80" + bytes(63))
    assert bits[7] == 1


def test_byte_offset_maps_to_bit_offset():
    # Byte k occupies bits [8k, 8k+8): the property the byte-granular
    # compression window relies on.
    data = bytearray(64)
    data[5] = 0xFF
    bits = bytes_to_bits(bytes(data))
    assert popcount(bits[40:48]) == 8
    assert popcount(bits) == 8


def test_roundtrip_fixed():
    data = bytes(range(64))
    assert bits_to_bytes(bytes_to_bits(data)) == data


def test_bits_to_bytes_rejects_ragged_lengths():
    with pytest.raises(ValueError):
        bits_to_bytes(np.ones(13, dtype=np.uint8))


def test_flip_mask_counts_differences():
    old = bytes_to_bits(bytes(64))
    new = bytes_to_bits(b"\x03" + bytes(63))
    mask = flip_mask(old, new)
    assert popcount(mask.astype(np.uint8)) == 2
    assert mask[0] and mask[1]


def test_flip_mask_shape_mismatch():
    with pytest.raises(ValueError):
        flip_mask(np.zeros(8, dtype=np.uint8), np.zeros(16, dtype=np.uint8))


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=1, max_size=128))
def test_roundtrip_random(data):
    assert bits_to_bytes(bytes_to_bits(data)) == data


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=64, max_size=64), st.binary(min_size=64, max_size=64))
def test_flip_count_matches_xor_popcount(a, b):
    mask = flip_mask(bytes_to_bits(a), bytes_to_bits(b))
    expected = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
    assert int(np.count_nonzero(mask)) == expected
