"""Unit tests for the vectorized bank array."""

import numpy as np
import pytest

from repro.pcm import (
    BLOCK_BITS,
    EnduranceModel,
    FaultMode,
    PCMBankArray,
    bytes_to_bits,
)


@pytest.fixture()
def bank():
    rng = np.random.default_rng(42)
    model = EnduranceModel(mean=100, cov=0.0)
    return PCMBankArray(n_blocks=8, endurance_model=model, rng=rng)


def test_blocks_are_independent(bank):
    data = bytes(range(64))
    bank.write_bytes(3, data)
    assert bank.read_bytes(3) == data
    assert bank.read_bytes(2) == bytes(64)
    assert bank.fault_count(3) == 0


def test_wear_accumulates_per_block(bank):
    one = b"\x01" + bytes(63)
    zero = bytes(64)
    for _ in range(50):
        bank.write_bytes(0, one)
        bank.write_bytes(0, zero)
    # 100 flips at endurance 100: bit 0 is now faulty.
    assert bank.fault_count(0) == 1
    assert bank.fault_positions(0).tolist() == [0]
    assert bank.fault_count(1) == 0


def test_fault_counts_all(bank):
    one = b"\x03" + bytes(63)
    zero = bytes(64)
    for _ in range(50):
        bank.write_bytes(5, one)
        bank.write_bytes(5, zero)
    counts = bank.fault_counts_all()
    assert counts.shape == (8,)
    assert counts[5] == 2
    assert counts.sum() == 2


def test_total_programmed_flips(bank):
    bank.write_bytes(0, b"\xff" + bytes(63))
    assert bank.total_programmed_flips() == 8


def test_update_mask(bank):
    mask = np.zeros(BLOCK_BITS, dtype=bool)
    mask[8:16] = True
    bank.write(1, bytes_to_bits(b"\xff\xff" + bytes(62)), update_mask=mask)
    assert bank.read_bytes(1) == b"\x00\xff" + bytes(62)


def test_index_bounds(bank):
    with pytest.raises(IndexError):
        bank.read_bytes(8)
    with pytest.raises(IndexError):
        bank.write_bytes(-1, bytes(64))


def test_needs_positive_block_count():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        PCMBankArray(0, EnduranceModel(mean=10), rng)


def test_stuck_at_modes_apply():
    rng = np.random.default_rng(0)
    model = EnduranceModel(mean=1, cov=0.0, floor_fraction=1.0)
    bank = PCMBankArray(2, model, rng, fault_mode=FaultMode.STUCK_AT_RESET)
    outcome = bank.write_bytes(0, b"\xff" * 64)
    # All 512 cells wear out on their first flip and stick at 0.
    assert outcome.new_fault_positions.size == BLOCK_BITS
    assert bank.read_bytes(0) == bytes(64)
