"""Unit tests for the reference single-cell model."""

import pytest

from repro.pcm import CellState, FaultMode, PCMCell


def test_fresh_cell_reads_reset():
    cell = PCMCell(endurance=10)
    assert cell.read() is CellState.RESET
    assert not cell.is_faulty


def test_same_value_write_costs_nothing():
    cell = PCMCell(endurance=2)
    assert cell.write(CellState.RESET)
    assert cell.writes_used == 0


def test_flips_consume_endurance():
    cell = PCMCell(endurance=3)
    cell.write(CellState.SET)
    cell.write(CellState.RESET)
    assert cell.writes_used == 2
    assert not cell.is_faulty


def test_stuck_at_last_holds_final_value():
    cell = PCMCell(endurance=2)
    cell.write(CellState.SET)
    cell.write(CellState.RESET)  # second flip exhausts endurance
    assert cell.is_faulty
    assert cell.read() is CellState.RESET
    assert not cell.write(CellState.SET)  # ineffective
    assert cell.read() is CellState.RESET


def test_stuck_at_set_forces_level():
    cell = PCMCell(endurance=1, fault_mode=FaultMode.STUCK_AT_SET)
    cell.write(CellState.SET)
    assert cell.is_faulty
    assert cell.read() is CellState.SET
    assert not cell.write(CellState.RESET)


def test_stuck_at_reset_forces_level():
    cell = PCMCell(endurance=1, fault_mode=FaultMode.STUCK_AT_RESET)
    assert not cell.write(CellState.SET)  # terminal write lands stuck at 0
    assert cell.read() is CellState.RESET


def test_stuck_write_matching_value_reports_success():
    cell = PCMCell(endurance=1)
    cell.write(CellState.SET)
    assert cell.is_faulty
    assert cell.write(CellState.SET)  # already holds the value


def test_stuck_value_none_while_healthy():
    assert PCMCell(endurance=5).stuck_value is None


def test_nonpositive_endurance_rejected():
    with pytest.raises(ValueError):
        PCMCell(endurance=0)
