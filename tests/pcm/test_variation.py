"""Unit tests for the endurance process-variation model."""

import numpy as np
import pytest

from repro.pcm import (
    HIGH_VARIATION_COV,
    PAPER_ENDURANCE_COV,
    PAPER_ENDURANCE_MEAN,
    EnduranceModel,
)


def test_paper_constants():
    assert PAPER_ENDURANCE_MEAN == 10**7
    assert PAPER_ENDURANCE_COV == 0.15
    assert HIGH_VARIATION_COV == 0.25


def test_sample_statistics():
    rng = np.random.default_rng(0)
    model = EnduranceModel(mean=10_000, cov=0.15)
    samples = model.sample(200_000, rng).astype(float)
    assert samples.mean() == pytest.approx(10_000, rel=0.01)
    assert samples.std() == pytest.approx(1_500, rel=0.05)


def test_zero_cov_is_deterministic():
    rng = np.random.default_rng(0)
    model = EnduranceModel(mean=500, cov=0.0)
    samples = model.sample((4, 8), rng)
    assert np.all(samples == 500)
    assert samples.shape == (4, 8)


def test_floor_clamps_tail():
    rng = np.random.default_rng(0)
    model = EnduranceModel(mean=100, cov=5.0, floor_fraction=0.5)
    samples = model.sample(10_000, rng)
    assert samples.min() >= 50


def test_scaled_keeps_cov():
    model = EnduranceModel(mean=1000, cov=0.15)
    scaled = model.scaled(0.01)
    assert scaled.mean == 10
    assert scaled.cov == 0.15


def test_validation():
    with pytest.raises(ValueError):
        EnduranceModel(mean=0)
    with pytest.raises(ValueError):
        EnduranceModel(mean=10, cov=-0.1)
    with pytest.raises(ValueError):
        EnduranceModel(mean=10, floor_fraction=0)
    with pytest.raises(ValueError):
        EnduranceModel(mean=10).scaled(0)
