"""Unit tests for the DIMM organization model."""

import pytest

from repro.pcm import (
    CHIPS_PER_RANK,
    DATA_CHIPS_PER_RANK,
    ECC_BITS_PER_LINE,
    MemoryOrganization,
)


def test_table2_defaults_give_4gb():
    org = MemoryOrganization()
    assert org.capacity_bytes == 4 * 2**30
    assert org.total_banks == 8
    assert org.lines_per_page == 64


def test_rank_constants_match_ecc_dimm():
    assert DATA_CHIPS_PER_RANK == 8
    assert CHIPS_PER_RANK == 9
    assert ECC_BITS_PER_LINE == 64


def test_locate_line_roundtrip():
    org = MemoryOrganization(rows_per_bank=16)
    seen = set()
    for line in range(org.total_lines):
        location = org.locate(line)
        assert 0 <= location.channel < org.channels
        assert 0 <= location.bank < org.banks_per_rank
        assert 0 <= location.row < org.rows_per_bank
        assert org.line_of(location) == line
        seen.add((location.channel, location.rank, location.bank, location.row))
    assert len(seen) == org.total_lines


def test_consecutive_lines_interleave_channels():
    org = MemoryOrganization(rows_per_bank=16)
    assert org.locate(0).channel != org.locate(1).channel


def test_locate_bounds():
    org = MemoryOrganization(rows_per_bank=4)
    with pytest.raises(IndexError):
        org.locate(org.total_lines)
    with pytest.raises(IndexError):
        org.locate(-1)


def test_scaled_preserves_shape():
    org = MemoryOrganization()
    small = org.scaled(1024)
    assert small.total_lines == 1024
    assert small.total_banks == org.total_banks
    assert small.channels == org.channels


def test_scaled_requires_bank_multiple():
    org = MemoryOrganization()
    with pytest.raises(ValueError):
        org.scaled(1001)


def test_validation():
    with pytest.raises(ValueError):
        MemoryOrganization(channels=0)
    with pytest.raises(ValueError):
        MemoryOrganization(page_bytes=100)
