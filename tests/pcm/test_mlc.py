"""Unit tests for the MLC wear model."""

import numpy as np
import pytest

from repro.pcm import (
    BLOCK_BITS,
    MLC_CELLS_PER_BLOCK,
    EnduranceModel,
    FaultMode,
    MLCBankArray,
    PCMBankArray,
    bytes_to_bits,
)


def make_bank(endurance=100, cov=0.0, n_blocks=4, **kwargs):
    rng = np.random.default_rng(0)
    model = EnduranceModel(mean=endurance, cov=cov)
    return MLCBankArray(n_blocks, model, rng, **kwargs)


def test_geometry():
    bank = make_bank()
    assert bank.counts.shape == (4, MLC_CELLS_PER_BLOCK)
    assert bank.stored.shape == (4, BLOCK_BITS)
    assert MLC_CELLS_PER_BLOCK == 256


def test_write_read_roundtrip():
    bank = make_bank()
    data = bytes(range(64))
    outcome = bank.write_bytes(0, data)
    assert outcome.clean
    assert bank.read_bytes(0) == data


def test_pair_flip_costs_one_cell_program():
    bank = make_bank()
    # Bits 0 and 1 share cell 0: flipping both programs one cell.
    bank.write_bytes(0, b"\x03" + bytes(63))
    assert bank.counts[0][0] == 1
    assert bank.counts[0][1:].sum() == 0
    assert bank.total_programmed_flips() == 1


def test_single_bit_flip_still_programs_the_cell():
    bank = make_bank()
    outcome = bank.write_bytes(1, b"\x01" + bytes(63))
    assert outcome.programmed_cells == 1
    assert outcome.programmed_flips == 1  # one bit changed


def test_cell_death_pins_both_bits():
    bank = make_bank(endurance=2)
    one = b"\x01" + bytes(63)
    three = b"\x03" + bytes(63)
    bank.write_bytes(0, one)  # program 1: cell level 01
    bank.write_bytes(0, three)  # program 2: cell dies at level 11
    assert bank.fault_count(0) == 2  # both bits reported faulty
    assert set(bank.fault_positions(0)) == {0, 1}
    # Writing anything else leaves the stuck level in place.
    outcome = bank.write_bytes(0, bytes(64))
    assert set(outcome.error_positions) == {0, 1}
    assert bank.read_bytes(0) == three


def test_forced_stuck_levels():
    bank = make_bank(endurance=1, fault_mode=FaultMode.STUCK_AT_RESET)
    bank.write_bytes(0, b"\xff" * 64)
    assert bank.read_bytes(0) == bytes(64)  # everything pinned to 0


def test_update_mask_respected():
    bank = make_bank()
    mask = np.zeros(BLOCK_BITS, dtype=bool)
    mask[:16] = True  # bytes 0-1 only
    bank.write(0, bytes_to_bits(b"\xff" * 64), update_mask=mask)
    assert bank.read_bytes(0) == b"\xff\xff" + bytes(62)


def test_mlc_wears_twice_as_fast_as_slc_per_capacity():
    """Same write stream: MLC consumes cell programs at least as fast as
    SLC consumes bit programs halved (two bits share one cell's budget)."""
    rng = np.random.default_rng(3)
    stream = [rng.bytes(64) for _ in range(50)]
    slc = PCMBankArray(1, EnduranceModel(mean=10**6, cov=0.0), np.random.default_rng(1))
    mlc = make_bank(endurance=10**6, n_blocks=1)
    for data in stream:
        slc.write_bytes(0, data)
        mlc.write_bytes(0, data)
    slc_bits = slc.total_programmed_flips()
    mlc_cells = mlc.total_programmed_flips()
    assert mlc_cells > 0.5 * slc_bits  # pair coupling wastes endurance


def test_fault_counts_all_reports_bits():
    bank = make_bank(endurance=1, n_blocks=2)
    bank.write_bytes(1, b"\xff" * 64)
    counts = bank.fault_counts_all()
    assert counts[0] == 0
    assert counts[1] == BLOCK_BITS


def test_validation():
    with pytest.raises(ValueError):
        make_bank(n_blocks=0)
    bank = make_bank()
    with pytest.raises(IndexError):
        bank.read_bytes(4)
