"""Unit tests for the Flip-N-Write encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm import FlipNWrite, bytes_to_bits, naive_flip_count


def zeros(n=512):
    return np.zeros(n, dtype=np.uint8)


def test_decode_inverts_encode():
    fnw = FlipNWrite(word_bits=32)
    old = zeros()
    flags = np.zeros(16, dtype=np.uint8)
    new = bytes_to_bits(bytes(range(64)))
    result = fnw.encode(old, flags, new)
    assert np.array_equal(fnw.decode(result.stored_bits, result.flags), new)


def test_mostly_ones_word_is_inverted():
    fnw = FlipNWrite(word_bits=8)
    old = zeros(8)
    flags = np.zeros(1, dtype=np.uint8)
    new = np.array([1, 1, 1, 1, 1, 1, 1, 0], dtype=np.uint8)
    result = fnw.encode(old, flags, new)
    assert result.flags[0] == 1
    # Inverted word has a single 1 -> one data flip + one flag flip.
    assert result.flip_count == 2
    assert np.array_equal(fnw.decode(result.stored_bits, result.flags), new)


def test_never_worse_than_differential_write():
    rng = np.random.default_rng(3)
    fnw = FlipNWrite(word_bits=32)
    old = rng.integers(0, 2, 512).astype(np.uint8)
    flags = np.zeros(16, dtype=np.uint8)
    new = rng.integers(0, 2, 512).astype(np.uint8)
    result = fnw.encode(old, flags, new)
    assert result.flip_count <= naive_flip_count(old, new) + 0  # flags start aligned


def test_upper_bound_holds():
    fnw = FlipNWrite(word_bits=32)
    old = zeros()
    flags = np.zeros(16, dtype=np.uint8)
    new = np.ones(512, dtype=np.uint8)
    result = fnw.encode(old, flags, new)
    assert result.flip_count <= fnw.upper_bound_flips(512)


def test_shape_validation():
    fnw = FlipNWrite(word_bits=32)
    with pytest.raises(ValueError):
        fnw.encode(zeros(100), np.zeros(3, dtype=np.uint8), zeros(100))
    with pytest.raises(ValueError):
        fnw.encode(zeros(), np.zeros(3, dtype=np.uint8), zeros())
    with pytest.raises(ValueError):
        FlipNWrite(word_bits=0)


@settings(max_examples=100, deadline=None)
@given(
    st.binary(min_size=64, max_size=64),
    st.binary(min_size=64, max_size=64),
    st.sampled_from([8, 16, 32, 64]),
)
def test_roundtrip_and_bound_random(old_bytes, new_bytes, word_bits):
    fnw = FlipNWrite(word_bits=word_bits)
    old = bytes_to_bits(old_bytes)
    new = bytes_to_bits(new_bytes)
    flags = np.zeros(512 // word_bits, dtype=np.uint8)
    result = fnw.encode(old, flags, new)
    assert np.array_equal(fnw.decode(result.stored_bits, result.flags), new)
    assert result.flip_count <= fnw.upper_bound_flips(512)
    # At most half of each word's data bits are programmed.
    data_flips = int(np.count_nonzero(result.stored_bits != old))
    assert data_flips <= (512 // word_bits) * (word_bits // 2)
