"""Unit tests for differential-write planning."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm import bit_flips, bytes_to_bits, flip_positions, plan_write


def test_identical_data_needs_no_programming():
    data = bytes(range(64))
    assert bit_flips(data, data) == 0


def test_flip_counts_and_directions():
    old = bytes(64)
    new = b"\x0f" + bytes(63)
    plan = plan_write(bytes_to_bits(old), bytes_to_bits(new))
    assert plan.flip_count == 4
    assert plan.set_count == 4
    assert plan.reset_count == 0

    back = plan_write(bytes_to_bits(new), bytes_to_bits(old))
    assert back.set_count == 0
    assert back.reset_count == 4


def test_flip_positions_sorted():
    old = bytes(64)
    new = bytearray(64)
    new[10] = 0x01  # bit 80
    new[2] = 0x80  # bit 23
    positions = flip_positions(old, bytes(new))
    assert positions.tolist() == [23, 80]


def test_full_inversion_programs_everything():
    assert bit_flips(bytes(64), b"\xff" * 64) == 512


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=64, max_size=64), st.binary(min_size=64, max_size=64))
def test_flips_symmetric_and_bounded(a, b):
    forward = bit_flips(a, b)
    assert forward == bit_flips(b, a)
    assert 0 <= forward <= 512
    plan = plan_write(bytes_to_bits(a), bytes_to_bits(b))
    assert plan.set_count + plan.reset_count == forward
    assert int(np.count_nonzero(plan.flips)) == forward
