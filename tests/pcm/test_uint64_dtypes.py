"""uint64 wear-count arithmetic must never promote to float64.

NEP 50 (numpy >= 2) keeps ``uint64_array + python_int`` in uint64, but
``uint64 <op> int64`` silently promotes *both* sides to float64, whose
53-bit mantissa cannot represent endurance-scale counts exactly.  These
tests pin the dtypes of every wear array and exercise the arithmetic at
magnitudes where a float64 round-trip would visibly mis-count.
"""

import numpy as np

from repro.pcm import EnduranceModel, FaultMode
from repro.pcm.bank import PCMBankArray
from repro.pcm.block import BLOCK_BITS, MemoryBlock, apply_write
from repro.pcm.mlc import MLC_CELLS_PER_BLOCK, MLCBankArray

#: Above float64's exact-integer range (2**53); float64 spacing at this
#: magnitude is 512, so any promotion loses single increments.
HUGE = np.uint64(1) << np.uint64(62)


def _model():
    return EnduranceModel(mean=100.0, cov=0.1)


def _preset(bank, row, counts_value, endurance_value):
    """Force one row's wear state and rebuild the maintained masks."""
    bank.counts[row][:] = counts_value
    bank.endurance[row][:] = endurance_value
    if hasattr(bank, "faulty_cells"):  # MLC keeps cell-granular masks
        bank.faulty_cells = bank.counts >= bank.endurance
        bank.fault_counts = np.count_nonzero(bank.faulty_cells, axis=1) * 2
    else:
        bank.faulty = bank.counts >= bank.endurance
        bank.fault_counts = np.count_nonzero(bank.faulty, axis=1)


class TestDtypes:
    def test_bank_array_dtypes(self):
        bank = PCMBankArray(4, _model(), np.random.default_rng(0))
        assert bank.counts.dtype == np.uint64
        assert bank.endurance.dtype == np.uint64
        bank.write_bytes(0, b"\xFF" * 64)
        assert bank.counts.dtype == np.uint64

    def test_mlc_array_dtypes(self):
        bank = MLCBankArray(4, _model(), np.random.default_rng(0))
        assert bank.counts.dtype == np.uint64
        assert bank.endurance.dtype == np.uint64
        bank.write_bytes(0, b"\xFF" * 64)
        assert bank.counts.dtype == np.uint64

    def test_memory_block_coerces_signed_counts(self):
        # Regression: __post_init__ used to keep a caller-supplied
        # signed counts array, making every fault comparison float64.
        block = MemoryBlock(
            endurance=np.full(BLOCK_BITS, 100, dtype=np.uint64),
            counts=np.zeros(BLOCK_BITS, dtype=np.int64),
            stored=np.zeros(BLOCK_BITS, dtype=np.int64),
        )
        assert block.counts.dtype == np.uint64
        assert block.stored.dtype == np.uint8
        assert block.faulty.dtype == np.bool_

    def test_endurance_model_samples_uint64(self):
        sample = _model().sample((2, BLOCK_BITS), np.random.default_rng(1))
        assert sample.dtype == np.uint64


class TestExactArithmeticAtScale:
    def test_increment_is_exact_above_float53(self):
        bank = PCMBankArray(2, _model(), np.random.default_rng(0))
        _preset(bank, 0, HUGE + np.uint64(3), HUGE << np.uint64(1))
        new_bits = np.zeros(BLOCK_BITS, dtype=np.uint8)
        new_bits[:8] = 1
        outcome = bank.write(0, new_bits)
        assert outcome.programmed_flips == 8
        # float64 spacing at 2**62 is 512: a promoted increment would
        # leave the count unchanged.  uint64 must land exactly on +1.
        assert bank.counts[0, 0] == HUGE + np.uint64(4)
        assert bank.counts[0, 8] == HUGE + np.uint64(3)

    def test_fault_boundary_is_exact_above_float53(self):
        bank = PCMBankArray(2, _model(), np.random.default_rng(0))
        limit = HUGE + np.uint64(256)  # rounds to HUGE in float64
        _preset(bank, 0, HUGE, limit)
        assert not bank.faulty[0].any()

        new_bits = np.zeros(BLOCK_BITS, dtype=np.uint8)
        new_bits[0] = 1
        outcome = bank.write(0, new_bits)
        # counts hit HUGE+1 < HUGE+256: a float64 comparison would see
        # HUGE+1 >= HUGE (the rounded limit) and declare a false fault.
        assert outcome.new_fault_positions.size == 0
        assert not bank.faulty[0, 0]

        _preset(bank, 1, limit - np.uint64(1), limit)
        outcome = bank.write(1, new_bits)
        assert outcome.new_fault_positions.tolist() == [0]
        assert bank.faulty[1, 0]

    def test_mlc_fault_boundary_is_exact(self):
        bank = MLCBankArray(1, _model(), np.random.default_rng(0))
        limit = HUGE + np.uint64(256)
        _preset(bank, 0, limit - np.uint64(1), limit)
        new_bits = np.zeros(BLOCK_BITS, dtype=np.uint8)
        new_bits[0] = 1
        outcome = bank.write(0, new_bits)
        # Exactly the written cell wears out, both of its bits stuck.
        assert outcome.new_fault_positions.tolist() == [0, 1]
        assert bank.fault_count(0) == 2
        assert bank.counts.dtype == np.uint64

    def test_apply_write_keeps_uint64_through_fault_path(self):
        stored = np.zeros(BLOCK_BITS, dtype=np.uint8)
        counts = np.full(BLOCK_BITS, HUGE, dtype=np.uint64)
        endurance = np.full(BLOCK_BITS, HUGE + np.uint64(2), dtype=np.uint64)
        new_bits = np.ones(BLOCK_BITS, dtype=np.uint8)
        apply_write(stored, counts, endurance, new_bits, FaultMode.STUCK_AT_LAST)
        assert counts.dtype == np.uint64
        assert (counts == HUGE + np.uint64(1)).all()
        outcome = apply_write(
            stored, counts, endurance, np.zeros(BLOCK_BITS, dtype=np.uint8),
            FaultMode.STUCK_AT_LAST,
        )
        assert counts.dtype == np.uint64
        assert outcome.new_fault_positions.size == BLOCK_BITS
