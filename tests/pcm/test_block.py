"""Unit tests for the wear-aware line model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm import (
    BLOCK_BITS,
    EnduranceModel,
    FaultMode,
    MemoryBlock,
    PCMCell,
    bytes_to_bits,
)


def uniform_block(endurance=1000, fault_mode=FaultMode.STUCK_AT_LAST):
    return MemoryBlock(
        endurance=np.full(BLOCK_BITS, endurance, dtype=np.uint64),
        fault_mode=fault_mode,
    )


def test_fresh_block_reads_zero():
    block = uniform_block()
    assert block.read_bytes() == bytes(64)
    assert block.fault_count == 0


def test_write_and_read_back():
    block = uniform_block()
    data = bytes(range(64))
    outcome = block.write_bytes(data)
    assert outcome.clean
    assert block.read_bytes() == data


def test_differential_write_counts_only_changes():
    block = uniform_block()
    block.write_bytes(b"\xff" * 64)
    outcome = block.write_bytes(b"\xff" * 63 + b"\xfe")
    assert outcome.attempted_flips == 1
    assert outcome.programmed_flips == 1


def test_rewriting_same_data_costs_nothing():
    block = uniform_block()
    data = bytes(range(64))
    block.write_bytes(data)
    counts_before = block.counts.copy()
    outcome = block.write_bytes(data)
    assert outcome.programmed_flips == 0
    assert np.array_equal(block.counts, counts_before)


def test_cells_wear_out_and_stick():
    block = uniform_block(endurance=2)
    # Flip bit 0 back and forth: each toggle programs it once.
    one = b"\x01" + bytes(63)
    zero = bytes(64)
    block.write_bytes(one)
    outcome = block.write_bytes(zero)  # second flip exhausts endurance
    assert list(outcome.new_fault_positions) == [0]
    assert block.fault_count == 1
    # Stuck at last value (0): writing 1 now fails.
    outcome = block.write_bytes(one)
    assert list(outcome.error_positions) == [0]
    assert block.read_bytes() == zero


def test_stuck_at_set_forces_one():
    block = uniform_block(endurance=1, fault_mode=FaultMode.STUCK_AT_SET)
    outcome = block.write_bytes(b"\x01" + bytes(63))
    assert list(outcome.new_fault_positions) == [0]
    assert outcome.clean  # stuck at 1, and we wrote 1
    outcome = block.write_bytes(bytes(64))
    assert list(outcome.error_positions) == [0]


def test_stuck_at_reset_forces_zero():
    block = uniform_block(endurance=1, fault_mode=FaultMode.STUCK_AT_RESET)
    outcome = block.write_bytes(b"\x01" + bytes(63))
    # The terminal write itself lands at the stuck level 0.
    assert list(outcome.error_positions) == [0]
    assert block.read_bytes() == bytes(64)


def test_update_mask_limits_programming():
    block = uniform_block()
    block.write_bytes(bytes(64))
    mask = np.zeros(BLOCK_BITS, dtype=bool)
    mask[:8] = True  # only byte 0 may change
    outcome = block.write_bits(bytes_to_bits(b"\xff" * 64), update_mask=mask)
    assert outcome.programmed_flips == 8
    assert block.read_bytes() == b"\xff" + bytes(63)


def test_update_mask_suppresses_outside_errors():
    block = uniform_block(endurance=1)
    block.write_bytes(b"\xff" * 64)  # wears out all 512 cells, stuck at 1
    assert block.fault_count == BLOCK_BITS
    mask = np.zeros(BLOCK_BITS, dtype=bool)
    mask[:8] = True
    # 0x55 wants bits 1,3,5,7 at 0; those cells are stuck at 1.  Errors
    # outside the masked byte are not reported.
    outcome = block.write_bits(bytes_to_bits(b"\x55" * 64), update_mask=mask)
    assert set(outcome.error_positions) == {1, 3, 5, 7}


def test_fresh_samples_from_model():
    rng = np.random.default_rng(1)
    model = EnduranceModel(mean=1000, cov=0.15)
    block = MemoryBlock.fresh(model, rng)
    assert block.endurance.shape == (BLOCK_BITS,)
    assert 700 < block.endurance.mean() < 1300


def test_bad_endurance_shape_rejected():
    with pytest.raises(ValueError):
        MemoryBlock(endurance=np.ones(8, dtype=np.uint64))


def test_bad_write_shape_rejected():
    block = uniform_block()
    with pytest.raises(ValueError):
        block.write_bits(np.zeros(8, dtype=np.uint8))


@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(min_size=64, max_size=64), min_size=1, max_size=8))
def test_block_agrees_with_reference_cell_model(lines):
    """The vectorized write semantics match 512 independent PCMCells."""
    endurance = 3
    block = uniform_block(endurance=endurance)
    cells = [PCMCell(endurance=endurance) for _ in range(BLOCK_BITS)]
    for line in lines:
        bits = bytes_to_bits(line)
        block.write_bits(bits)
        for cell, bit in zip(cells, bits):
            cell.write(int(bit))
    expected = np.array([cell.read().value for cell in cells], dtype=np.uint8)
    assert np.array_equal(block.stored, expected)
    assert block.fault_count == sum(cell.is_faulty for cell in cells)
