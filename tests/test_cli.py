"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.traces import load_trace


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compress", "--workloads", "perlbench"])


def test_compress_command(capsys):
    assert main(["compress", "--workloads", "milc", "--writes", "300"]) == 0
    out = capsys.readouterr().out
    assert "milc" in out
    assert "BEST" in out


def test_flips_command(capsys):
    assert main(["flips", "--workloads", "zeusmp", "--writes", "400"]) == 0
    out = capsys.readouterr().out
    assert "zeusmp" in out


def test_perf_command(capsys):
    assert main(["perf", "--workloads", "milc", "--samples", "100"]) == 0
    assert "%" in capsys.readouterr().out


def test_montecarlo_command(capsys):
    assert main(["montecarlo", "--sizes", "32", "--trials", "10",
                 "--schemes", "ecp6"]) == 0
    assert "ecp6" in capsys.readouterr().out


def test_trace_command(tmp_path, capsys):
    path = tmp_path / "out.trace"
    assert main(["trace", "milc", str(path), "--lines", "16",
                 "--writes", "50"]) == 0
    trace = load_trace(path)
    assert len(trace) == 50
    assert trace.workload == "milc"


def test_workload_command_saves_a_trace(tmp_path, capsys):
    path = tmp_path / "fleet.trace"
    assert main(["workload", "memcached", "--lines", "32",
                 "--requests", "80", "--out", str(path)]) == 0
    assert "80 memcached requests" in capsys.readouterr().out
    trace = load_trace(path)
    assert len(trace) == 80
    assert trace.workload == "memcached"
    assert trace.n_lines == 32


def test_workload_command_runs_in_process(capsys):
    assert main(["workload", "nginx", "--lines", "32", "--requests", "150",
                 "--shards", "2", "--endurance", "40"]) == 0
    out = capsys.readouterr().out
    assert "fleet: 2 shard(s), 32 lines" in out
    assert "shard 1:" in out


def test_serve_command_inline_json(capsys):
    import json

    assert main(["serve", "--inline", "--json", "--shards", "2",
                 "--lines", "32", "--requests", "200",
                 "--workload", "memcached", "--endurance", "40",
                 "--banks", "4"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["shards"] == 2
    assert payload["requests_routed"] == 200
    assert payload["recoveries"] == 0
    assert len(payload["shard_stats"]) == 2
    assert payload["stats"]["demand_writes"] == 200


def test_serve_command_multiprocess_with_telemetry(tmp_path, capsys):
    telemetry = tmp_path / "svc"
    assert main(["serve", "--shards", "2", "--lines", "32",
                 "--requests", "200", "--workload", "high-reuse",
                 "--endurance", "40", "--banks", "4",
                 "--heartbeat-interval", "50", "--fleet-interval", "50",
                 "--telemetry-dir", str(telemetry)]) == 0
    out = capsys.readouterr().out
    assert "fleet: 2 shard(s)" in out
    assert "telemetry:" in out
    assert (telemetry / "fleet.jsonl").exists()
    assert (telemetry / "shard-0" / "events.jsonl").exists()
    assert (telemetry / "shard-1" / "events.jsonl").exists()


def test_serve_inline_matches_multiprocess(capsys):
    import json

    flags = ["--shards", "2", "--lines", "32", "--requests", "150",
             "--workload", "memcached", "--endurance", "40",
             "--banks", "4", "--seed", "3", "--json"]
    assert main(["serve", "--inline", *flags]) == 0
    inline = json.loads(capsys.readouterr().out)
    assert main(["serve", *flags]) == 0
    service = json.loads(capsys.readouterr().out)
    assert inline["stats"] == service["stats"]
    assert inline["shard_stats"] == service["shard_stats"]
    assert inline["dead_fraction"] == service["dead_fraction"]


def test_lifetime_command(capsys):
    assert main([
        "lifetime", "--workloads", "milc", "--lines", "32",
        "--endurance", "15", "--systems", "baseline", "comp_wf",
    ]) == 0
    out = capsys.readouterr().out
    assert "milc" in out
    assert "months" in out


def test_lifetime_command_with_workers(capsys):
    assert main([
        "lifetime", "--workloads", "milc", "--lines", "24",
        "--endurance", "12", "--systems", "baseline", "comp_wf",
        "--workers", "2",
    ]) == 0
    assert "milc" in capsys.readouterr().out


def test_systems_command(capsys):
    assert main(["systems"]) == 0
    out = capsys.readouterr().out
    for name in ("baseline", "comp", "comp_w", "comp_wf"):
        assert name in out
    assert "[paper]" in out


def test_systems_command_with_stages(capsys):
    assert main(["systems", "--tag", "paper", "--stages"]) == 0
    out = capsys.readouterr().out
    assert "compress:" in out
    assert "placement:" in out
    assert "ablation" not in out


def test_systems_command_tag_filter(capsys):
    assert main(["systems", "--tag", "ablation"]) == 0
    out = capsys.readouterr().out
    assert "comp_wf_no_heuristic" in out
    assert "baseline" not in out


def test_lifetime_rejects_unregistered_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["lifetime", "--systems", "comp_xyz"])


def test_lifetime_rejects_nonpositive_workers():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["lifetime", "--workers", "0"])


@pytest.mark.parametrize("argv", [
    ["lifetime", "--lines", "0"],
    ["lifetime", "--lines", "-8"],
    ["compress", "--writes", "0"],
    ["compress", "--writes", "-1"],
    ["flips", "--writes", "-200"],
    ["perf", "--samples", "0"],
    ["montecarlo", "--trials", "-5"],
    ["trace", "milc", "out.trace", "--lines", "0"],
    ["trace", "milc", "out.trace", "--writes", "-1"],
    ["lifetime", "--checkpoint-interval", "0"],
])
def test_nonpositive_counts_rejected(argv, capsys):
    """Zero/negative counts must die in argparse, not deep in numpy."""
    with pytest.raises(SystemExit) as excinfo:
        build_parser().parse_args(argv)
    assert excinfo.value.code == 2  # clean usage error, not a traceback
    assert "must be >= 1" in capsys.readouterr().err


def test_resume_requires_checkpoint_dir(capsys):
    with pytest.raises(SystemExit):
        main(["lifetime", "--workloads", "milc", "--resume"])
    assert "--resume requires --checkpoint-dir" in capsys.readouterr().err


def test_checkpoint_interval_requires_checkpoint_dir(capsys):
    with pytest.raises(SystemExit):
        main(["lifetime", "--workloads", "milc",
              "--checkpoint-interval", "500"])
    err = capsys.readouterr().err
    assert "--checkpoint-interval requires --checkpoint-dir" in err


def test_lifetime_checkpoint_resume_round_trip(tmp_path, capsys):
    """The CLI writes checkpoints + telemetry and --resume reuses them."""
    base = [
        "lifetime", "--workloads", "milc", "--lines", "24",
        "--endurance", "12", "--systems", "comp_wf",
        "--checkpoint-dir", str(tmp_path), "--checkpoint-interval", "2000",
    ]
    assert main(base) == 0
    first = capsys.readouterr().out
    run_dir = tmp_path / "milc-comp_wf"
    assert (run_dir / "events.jsonl").exists()
    assert any(run_dir.glob("checkpoint-*.pkl"))
    assert main(base + ["--resume"]) == 0
    assert capsys.readouterr().out == first


def test_report_command(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "demo.txt").write_text("hello world\n")
    assert main(["report", "--results-dir", str(results)]) == 0
    out = capsys.readouterr().out
    assert "demo" in out and "hello world" in out


def test_report_command_missing_dir(tmp_path, capsys):
    assert main(["report", "--results-dir", str(tmp_path / "nope")]) == 0
    assert "no results" in capsys.readouterr().out
