"""Table III: workload characteristics (WPKI, CR, class), measured."""

import numpy as np

from repro.compression import BestOfCompressor
from repro.traces import PROFILES, WORKLOAD_ORDER, SyntheticWorkload


def test_table3_workload_characteristics(benchmark, report, bench_scale):
    compressor = BestOfCompressor()
    writes = bench_scale["writes"]

    def measure():
        rows = []
        for name in WORKLOAD_ORDER:
            profile = PROFILES[name]
            generator = SyntheticWorkload(profile, n_lines=128, seed=1)
            sizes = [
                compressor.compress(write.data).size_bytes
                for write in generator.iter_writes(writes)
            ]
            rows.append((profile, float(np.mean(sizes)) / 64))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'workload':12}{'WPKI':>7}{'CR (paper)':>12}{'CR (measured)':>15}{'class':>7}"]
    for profile, measured in rows:
        lines.append(
            f"{profile.name:12}{profile.wpki:7.2f}{profile.cr:12.2f}"
            f"{measured:15.2f}{profile.comp_class.value:>7}"
        )
    report("table3_workload_characteristics", "\n".join(lines))

    for profile, measured in rows:
        assert abs(measured - profile.cr) < 0.1, profile.name
