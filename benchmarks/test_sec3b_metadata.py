"""Section III-B: metadata update rates.

The paper's metadata-wear argument: the start pointer changes only when
intra-line wear-leveling rotates or the window slides past faults, and
the encoding/SC fields change only when the compressed size does (every
~4-5 writes, per Figure 6).  This bench measures all three rates under
the full system and confirms they sit well below one update per stored
write -- so the 13 metadata bits are never the wear bottleneck.
"""

from repro.lifetime import build_simulator


def test_sec3b_metadata_update_rates(benchmark, report, bench_scale):
    workloads = ("hmmer", "bzip2", "milc")

    def measure():
        rows = {}
        for name in workloads:
            simulator = build_simulator(
                "comp_wf",
                name,
                n_lines=bench_scale["n_lines"] // 2,
                endurance_mean=10**6,  # wear-free steady state
                seed=0,
            )
            simulator.run(max_writes=25_000)
            rows[name] = simulator.controller.stats
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"{'workload':10}{'ptr upd/write':>15}{'enc upd/write':>15}"
        f"{'SC upd/write':>14}"
    ]
    for name, stats in rows.items():
        stored = max(1, stats.stored_writes)
        lines.append(
            f"{name:10}{stats.start_pointer_updates / stored:15.3f}"
            f"{stats.encoding_updates / stored:15.3f}"
            f"{stats.sc_updates / stored:14.3f}"
        )
    lines.append("paper: coding/SC fields change every ~4-5 writes; the")
    lines.append("start pointer far less often than the data itself")
    report("sec3b_metadata_update_rates", "\n".join(lines))

    for name, stats in rows.items():
        stored = max(1, stats.stored_writes)
        # Every metadata field updates strictly less often than the
        # data is written -- the Section III-B wear argument.
        assert stats.encoding_updates / stored < 1.0, name
        assert stats.sc_updates / stored < 1.0, name
    # Volatile bzip2 updates encodings far more often than stable hmmer.
    hmmer_rate = rows["hmmer"].encoding_updates / max(1, rows["hmmer"].stored_writes)
    bzip2_rate = rows["bzip2"].encoding_updates / max(1, rows["bzip2"].stored_writes)
    assert bzip2_rate > hmmer_rate
