"""Figure 13: Comp+WF lifetime normalized to baseline under higher
process variation (endurance CoV raised from 0.15 to 0.25)."""

import numpy as np

from repro.analysis import high_variation_study
from repro.traces import WORKLOAD_ORDER


def test_fig13_high_process_variation(benchmark, report, bench_scale, shared_cache):
    def measure():
        return high_variation_study(
            workloads=WORKLOAD_ORDER,
            n_lines=bench_scale["n_lines"],
            endurance_mean=bench_scale["endurance_mean"],
            seed=0,
            workers=bench_scale["workers"],
        )

    studies = benchmark.pedantic(measure, rounds=1, iterations=1)
    shared_cache["fig13_studies"] = studies

    lines = [f"{'workload':12}{'Comp+WF (CoV=0.25)':>20}"]
    for name in WORKLOAD_ORDER:
        lines.append(f"{name:12}{studies[name].normalized['comp_wf']:20.2f}")
    average = np.mean([studies[name].normalized["comp_wf"] for name in WORKLOAD_ORDER])
    lines.append(f"{'Average':12}{average:20.2f}")
    lines.append("paper: gains persist (and often grow) at CoV=0.25")
    report("fig13_high_process_variation", "\n".join(lines))

    # Comp+WF still wins clearly at high variation.
    assert average > 1.8
    values = [studies[name].normalized["comp_wf"] for name in WORKLOAD_ORDER]
    assert min(values) > 0.8
