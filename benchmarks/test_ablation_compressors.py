"""Ablation: which compressors back the best-of policy?

The paper picks BDI+FPC "without loss of generality"; this ablation
quantifies what each member (and a third, FVC) contributes to the mean
compressed size that drives all the lifetime gains.
"""

import numpy as np

from repro.compression import (
    BDICompressor,
    BestOfCompressor,
    CPackCompressor,
    FPCCompressor,
    FVCCompressor,
)
from repro.traces import PROFILES, SyntheticWorkload

MEMBER_SETS = {
    "bdi": (BDICompressor,),
    "fpc": (FPCCompressor,),
    "fvc": (FVCCompressor,),
    "cpack": (CPackCompressor,),
    "bdi+fpc": (BDICompressor, FPCCompressor),
    "bdi+fpc+fvc": (BDICompressor, FPCCompressor, FVCCompressor),
    "bdi+fpc+cpack": (BDICompressor, FPCCompressor, CPackCompressor),
}


def test_ablation_compressor_member_sets(benchmark, report, bench_scale):
    workloads = ("milc", "gcc", "lbm", "zeusmp")
    writes = bench_scale["writes"] // 2

    def measure():
        streams = {
            name: [
                write.data
                for write in SyntheticWorkload(
                    PROFILES[name], n_lines=64, seed=1
                ).iter_writes(writes)
            ]
            for name in workloads
        }
        table = {}
        for set_name, members in MEMBER_SETS.items():
            best = BestOfCompressor(tuple(cls() for cls in members))
            table[set_name] = {
                name: float(
                    np.mean(
                        [min(64, best.compress(line).size_bytes) for line in lines]
                    )
                )
                for name, lines in streams.items()
            }
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'member set':14}" + "".join(f"{name:>9}" for name in workloads)]
    for set_name, row in table.items():
        lines.append(
            f"{set_name:14}" + "".join(f"{row[name]:9.1f}" for name in workloads)
        )
    lines.append("best-of never loses from adding a member; BDI+FPC captures")
    lines.append("nearly all of the three-way policy's benefit")
    report("ablation_compressor_member_sets", "\n".join(lines))

    for name in workloads:
        pair = table["bdi+fpc"][name]
        # The pair beats each single member...
        assert pair <= table["bdi"][name] + 1e-9
        assert pair <= table["fpc"][name] + 1e-9
        # ...and a third member can only help (monotonicity of best-of).
        assert table["bdi+fpc+fvc"][name] <= pair + 1e-9
        assert table["bdi+fpc+cpack"][name] <= pair + 1e-9
