"""Extension: the proposed design on MLC PCM (paper footnote 1).

MLC PCM doubles density but cuts endurance to ~1e5-1e6 and couples bit
pairs into shared cells, making lifetime pressure far worse -- the
regime the paper says motivates multi-level (circuit + architecture)
collaboration most.  This bench runs Baseline vs Comp+WF on both cell
types and checks that the compression architecture's relative gain
survives (and the MLC memory indeed dies sooner in absolute terms).
"""

from repro.lifetime import build_simulator


def run(system, cell_type, scale, seed=0):
    simulator = build_simulator(
        system,
        "milc",
        n_lines=scale["n_lines"] // 2,
        endurance_mean=scale["endurance_mean"],
        seed=seed,
        cell_type=cell_type,
    )
    return simulator.run(max_writes=4_000_000)


def test_extension_mlc_lifetime(benchmark, report, bench_scale):
    def measure():
        return {
            cell_type: {
                system: run(system, cell_type, bench_scale)
                for system in ("baseline", "comp_wf")
            }
            for cell_type in ("slc", "mlc")
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'cell type':10}{'base writes':>13}{'WF writes':>11}{'WF gain':>9}"]
    for cell_type, row in results.items():
        gain = row["comp_wf"].writes_issued / row["baseline"].writes_issued
        lines.append(
            f"{cell_type:10}{row['baseline'].writes_issued:13d}"
            f"{row['comp_wf'].writes_issued:11d}{gain:9.2f}"
        )
    lines.append("equal per-cell endurance: MLC pairs bits into cells, so it")
    lines.append("wears faster; the compression window's gain carries over")
    report("extension_mlc_lifetime", "\n".join(lines))

    for cell_type, row in results.items():
        assert row["baseline"].failed and row["comp_wf"].failed, cell_type
        gain = row["comp_wf"].writes_issued / row["baseline"].writes_issued
        assert gain > 1.5, cell_type
    # At equal per-cell endurance MLC dies sooner than SLC (pair
    # coupling wastes endurance); allow a small noise band.
    assert (
        results["mlc"]["baseline"].writes_issued
        <= 1.1 * results["slc"]["baseline"].writes_issued
    )
