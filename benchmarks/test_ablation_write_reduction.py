"""Ablation: differential writes vs Flip-N-Write as the chip-level
write-reduction layer (Section II-C background)."""

import numpy as np

from repro.pcm import FlipNWrite, bytes_to_bits, naive_flip_count
from repro.traces import SyntheticWorkload, get_profile


def test_ablation_dw_vs_flip_n_write(benchmark, report, bench_scale):
    workloads = ("gobmk", "milc", "lbm")
    writes = bench_scale["writes"]

    def measure():
        rows = {}
        fnw = FlipNWrite(word_bits=32)
        for name in workloads:
            generator = SyntheticWorkload(get_profile(name), n_lines=64, seed=0)
            state_dw: dict[int, np.ndarray] = {}
            state_fnw: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            dw_total = fnw_total = samples = 0
            for write in generator.iter_writes(writes):
                bits = bytes_to_bits(write.data)
                old = state_dw.get(write.line)
                if old is not None:
                    dw_total += naive_flip_count(old, bits)
                    stored, flags = state_fnw[write.line]
                    encoded = fnw.encode(stored, flags, bits)
                    fnw_total += encoded.flip_count
                    state_fnw[write.line] = (encoded.stored_bits, encoded.flags)
                    samples += 1
                else:
                    state_fnw[write.line] = (
                        bits.copy(), np.zeros(16, dtype=np.uint8)
                    )
                state_dw[write.line] = bits
            rows[name] = (dw_total / samples, fnw_total / samples)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'workload':10}{'DW flips/wr':>13}{'FNW flips/wr':>14}{'FNW saving':>12}"]
    for name, (dw, fnw_flips) in rows.items():
        lines.append(
            f"{name:10}{dw:13.1f}{fnw_flips:14.1f}{1 - fnw_flips / dw:12.1%}"
        )
    lines.append("Flip-N-Write never programs more than half a word (+flag)")
    report("ablation_dw_vs_flip_n_write", "\n".join(lines))

    for name, (dw, fnw_flips) in rows.items():
        # FNW is at worst a flag-bit per word above DW, and usually below.
        assert fnw_flips <= dw + 16, name
        # The structural guarantee: never above half the cells + flags.
        assert fnw_flips <= 16 * 17
