"""Ablation: the Figure 8 heuristic on vs off.

The heuristic exists to stop compression from *increasing* bit flips on
size-volatile blocks (bzip2, gcc).  Disabling it should increase the
flips-per-write of those workloads under the full system.
"""

from repro.lifetime import build_simulator


def run(workload, use_heuristic, scale, max_writes=60_000):
    simulator = build_simulator(
        "comp_wf",
        workload,
        n_lines=scale["n_lines"],
        endurance_mean=10**6,  # wear-free: isolate the flip behaviour
        seed=0,
        use_heuristic=use_heuristic,
    )
    return simulator.run(max_writes=max_writes)


def test_ablation_heuristic_flip_control(benchmark, report, bench_scale):
    workloads = ("bzip2", "gcc", "milc")

    def measure():
        return {
            name: (
                run(name, False, bench_scale),
                run(name, True, bench_scale),
            )
            for name in workloads
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'workload':10}{'flips/write off':>17}{'flips/write on':>16}{'saved':>8}"]
    for name in workloads:
        off, on = results[name]
        saved = 1 - on.flips_per_write / off.flips_per_write
        lines.append(
            f"{name:10}{off.flips_per_write:17.1f}{on.flips_per_write:16.1f}"
            f"{saved:8.1%}"
        )
    report("ablation_heuristic_flip_control", "\n".join(lines))

    # The measured effect is workload- and scale-sensitive, so the
    # assertions pin the robust structure: the heuristic never makes
    # flips materially worse anywhere (its occasional format switches
    # cost stable, low-flip workloads like milc up to ~10% relative --
    # a small absolute number against its double-digit savings on
    # volatile apps), and on the volatile workloads it diverts writes
    # to uncompressed storage, its entire mechanism.
    for name, (off, on) in results.items():
        assert on.flips_per_write < 1.15 * off.flips_per_write, name

    def uncompressed_fraction(result):
        return 1.0 - result.compressed_write_fraction

    _, bzip2_on = results["bzip2"]
    _, milc_on = results["milc"]
    assert uncompressed_fraction(bzip2_on) > 2 * uncompressed_fraction(milc_on)
