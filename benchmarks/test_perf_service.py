"""Fleet throughput benchmark: writes/sec vs shard count.

Measures the memory service's scaling shape on the line-parallel
scenario (round-robin addresses drained through the batched write
engine -- the same drain order ``test_perf_hotpath.py`` pins for the
single-space engine): fleet writes/sec at 1, 2, 4, and 8 shards for
both front ends, the in-process :class:`ShardedController` and the
multi-process :class:`MemoryService`.  Results land in
``benchmarks/results/BENCH_service.json``.

Timing numbers are informational (shared runners drift by tens of
percent) -- the *blocking* assertion is behavioural: at every shard
count, both front ends must finish the identical stream with identical
fleet statistics, and the fleet totals must be invariant in the shard
count (sharding is routing, not simulation).

Scale knobs for smoke runs:

========================== ======= ==================================
variable                   default meaning
========================== ======= ==================================
``REPRO_SERVICE_REQUESTS``    4000 requests per measured replay
``REPRO_SERVICE_REPS``           3 in-process reps (best-of is kept)
========================== ======= ==================================

Methodology note: worker processes only pay off with real parallelism;
on a single-core container (like the one the recorded numbers come
from) the multi-process service adds IPC overhead and *loses* to the
in-process fleet at every shard count.  The recorded JSON says so
explicitly (``cpu_count``) rather than pretending a scaling curve.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.config import comp_wf
from repro.service import MemoryService, ShardedController
from repro.traces import SyntheticWorkload, get_profile

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_service.json"

# -- pinned scenario (comparability anchor) -----------------------------
LINES = 128
SHARD_COUNTS = (1, 2, 4, 8)
BATCH = 32
SEED = 7
ENDURANCE_MEAN = 1000.0  # wear-free steady state: the hot path
VALUE_WORKLOAD = "gcc"

REQUESTS = int(os.environ.get("REPRO_SERVICE_REQUESTS", 4000))
REPS = int(os.environ.get("REPRO_SERVICE_REPS", 3))


def _line_parallel_stream():
    """Round-robin addresses with the pinned payload stream.

    The drain order a controller sees when write-backs spread across
    banks -- every size-``BATCH`` window touches ``BATCH`` distinct
    lines, so per-shard sub-batches stay line-parallel at every shard
    count.
    """
    values = SyntheticWorkload(get_profile(VALUE_WORKLOAD), LINES, seed=SEED)
    return [
        (line % LINES, values.write_to(line % LINES).data)
        for line in range(REQUESTS)
    ]


def _fleet(shards):
    return ShardedController(
        comp_wf(), LINES, shards=shards,
        endurance_mean=ENDURANCE_MEAN, seed=SEED, n_banks=8,
    )


def _drive(front_end, stream) -> float:
    submit = getattr(front_end, "submit", None) or front_end.write_batch
    started = time.perf_counter()
    for start in range(0, len(stream), BATCH):
        submit(stream[start:start + BATCH])
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def report():
    payload = {
        "scenario": {
            "lines": LINES,
            "requests": REQUESTS,
            "batch": BATCH,
            "seed": SEED,
            "endurance_mean": ENDURANCE_MEAN,
            "value_workload": VALUE_WORKLOAD,
            "address_pattern": "round-robin (line-parallel)",
            "system": "comp_wf",
            "reps": REPS,
        },
        "cpu_count": os.cpu_count(),
        "note": (
            "writes/sec, best of REPS replays. Recorded on a 1-core "
            "container: worker processes cannot run in parallel here, so "
            "the multi-process service pays IPC overhead with no "
            "parallel speedup; treat the in-process column as the "
            "sharding-overhead baseline and rerun on a multi-core host "
            "for a real scaling curve."
        ),
        "in_process": {},
        "service": {},
    }
    yield payload
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_fleet_writes_per_sec(report, shards):
    stream = _line_parallel_stream()

    # Drive the reference with the same BATCH chunking the measured
    # front ends see: the scheduler's wave telemetry depends on segment
    # boundaries, and the bit-equality gate below includes it.
    reference = _fleet(shards)
    _drive(reference, stream)

    best_inproc = min(_drive(_fleet(shards), stream) for _ in range(REPS))
    report["in_process"][str(shards)] = round(len(stream) / best_inproc, 1)

    best_service = None
    for _ in range(REPS):
        with MemoryService(
            comp_wf(), LINES, shards=shards,
            endurance_mean=ENDURANCE_MEAN, seed=SEED, n_banks=8,
        ) as service:
            elapsed = _drive(service, stream)
            result = service.stop()
        # Behavioural gate: the multi-process fleet must equal the
        # in-process reference bit for bit, every rep, every width.
        assert result.stats == reference.stats
        assert result.requests_routed == len(stream)
        assert result.recoveries == 0
        best_service = elapsed if best_service is None else min(best_service, elapsed)
    report["service"][str(shards)] = round(len(stream) / best_service, 1)


def test_fleet_totals_are_shard_invariant(report):
    """Fleet demand/stored totals cannot depend on the shard count."""
    stream = _line_parallel_stream()
    totals = set()
    for shards in SHARD_COUNTS:
        fleet = _fleet(shards)
        fleet.write_batch(stream)
        totals.add((fleet.stats.demand_writes, fleet.stats.lost_writes))
    assert totals == {(len(stream), 0)}
