"""Table I: characteristics of the BDI and FPC compressors."""

from repro.compression import BDICompressor, BestOfCompressor, FPCCompressor
from repro.traces import PayloadModel

import numpy as np


def test_table1_compressor_specs(benchmark, report):
    def build():
        bdi = BDICompressor()
        fpc = FPCCompressor()
        model = PayloadModel(np.random.default_rng(0))
        best = BestOfCompressor()
        # Exercise the documented size ranges.
        bdi_sizes = {best.members[0].compress(model.make_bdi(v)).size_bytes
                     for v in ("zeros", "rep8", "b8d1", "b8d2", "b8d4")}
        fpc_bits = [fpc.compress(model.make_fpc(r)).size_bits for r in range(17)]
        return bdi, fpc, bdi_sizes, fpc_bits

    bdi, fpc, bdi_sizes, fpc_bits = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        f"{'':28}{'FPC':>12}{'BDI':>12}",
        f"{'Target values':28}{'patterns':>12}{'narrow vals':>12}",
        f"{'Input chunk size':28}{'4 bytes':>12}{'64 bytes':>12}",
        f"{'Compression size':28}{'3-8 bits':>12}{'1-40 bytes':>12}",
        f"{'Decompression latency':28}"
        f"{fpc.decompression_latency_cycles:>9} cyc"
        f"{bdi.decompression_latency_cycles:>9} cyc",
        "",
        f"measured BDI sizes (bytes): {sorted(bdi_sizes)}",
        f"measured FPC zero-word cost: {min(fpc_bits)} bits/line (3-bit prefixed runs)",
    ]
    report("table1_compressor_specs", "\n".join(lines))

    # Paper's Table I values.
    assert bdi.decompression_latency_cycles == 1
    assert fpc.decompression_latency_cycles == 5
    assert min(bdi_sizes) == 1 and max(bdi_sizes) == 40
