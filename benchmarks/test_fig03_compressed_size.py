"""Figure 3: average compressed size per application (BDI, FPC, BEST)."""

import numpy as np

from repro.analysis import fig3_compressed_sizes
from repro.traces import PROFILES, WORKLOAD_ORDER


def test_fig03_average_compressed_size(benchmark, report, bench_scale):
    def measure():
        return [
            fig3_compressed_sizes(
                PROFILES[name], n_lines=128, writes=bench_scale["writes"], seed=1
            )
            for name in WORKLOAD_ORDER
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'workload':12}{'BDI':>8}{'FPC':>8}{'BEST':>8}{'paper CR':>10}{'meas CR':>9}"]
    for row in rows:
        paper_cr = PROFILES[row.workload].cr
        lines.append(
            f"{row.workload:12}{row.bdi:8.1f}{row.fpc:8.1f}{row.best:8.1f}"
            f"{paper_cr:10.2f}{row.best_ratio:9.2f}"
        )
    average_ratio = float(np.mean([row.best_ratio for row in rows]))
    lines.append(
        f"{'Average':12}{np.mean([r.bdi for r in rows]):8.1f}"
        f"{np.mean([r.fpc for r in rows]):8.1f}"
        f"{np.mean([r.best for r in rows]):8.1f}"
        f"{'0.43':>10}{average_ratio:9.2f}"
    )
    report("fig03_average_compressed_size", "\n".join(lines))

    # Paper: BEST averages a 0.43 compression ratio across workloads.
    assert abs(average_ratio - 0.43) < 0.07
    # BEST never exceeds either member.
    for row in rows:
        assert row.best <= min(row.bdi, row.fpc) + 1e-9
