"""Extension: consolidated (multiprogrammed) workload mixes.

The compression architecture's gain on a shared memory sits between
the tenants' standalone gains: the compressible tenant's small writes
keep revived blocks useful, the incompressible tenant's writes limit
the ceiling.
"""

from repro.core import baseline, comp_wf
from repro.lifetime import LifetimeSimulator, build_simulator
from repro.traces import MixMember, MixedWorkload, get_profile


def run_mix(config, scale, seed=0):
    mix = MixedWorkload(
        [MixMember(get_profile("milc")), MixMember(get_profile("lbm"))],
        n_lines=scale["n_lines"] // 2,
        seed=seed,
    )
    simulator = LifetimeSimulator(
        config=config,
        source=mix,
        n_lines=scale["n_lines"] // 2,
        endurance_mean=scale["endurance_mean"],
        seed=seed + 1,
    )
    return simulator.run(max_writes=4_000_000)


def run_solo(system, workload, scale, seed=0):
    return build_simulator(
        system, workload,
        n_lines=scale["n_lines"] // 2,
        endurance_mean=scale["endurance_mean"],
        seed=seed,
    ).run(max_writes=4_000_000)


def test_extension_consolidated_mixes(benchmark, report, bench_scale):
    def measure():
        mix_gain = (
            run_mix(comp_wf(), bench_scale).writes_issued
            / run_mix(baseline(), bench_scale).writes_issued
        )
        solo = {}
        for workload in ("milc", "lbm"):
            solo[workload] = (
                run_solo("comp_wf", workload, bench_scale).writes_issued
                / run_solo("baseline", workload, bench_scale).writes_issued
            )
        return mix_gain, solo

    mix_gain, solo = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"Comp+WF lifetime gain, standalone vs consolidated:",
        f"  milc alone      : {solo['milc']:.2f}x",
        f"  lbm alone       : {solo['lbm']:.2f}x",
        f"  milc+lbm shared : {mix_gain:.2f}x",
        "the shared device lands between its tenants' standalone gains",
    ]
    report("extension_consolidated_mixes", "\n".join(lines))

    assert mix_gain > 1.0
    low, high = sorted([solo["milc"], solo["lbm"]])
    assert 0.7 * low <= mix_gain <= 1.3 * high
