"""Figure 7: compressed-size trajectories of three representative
blocks, bzip2 (volatile) vs hmmer (stable)."""

import numpy as np

from repro.analysis import fig7_size_trajectories
from repro.traces import get_profile


def _robust_spread(series):
    """p95 - p5 spread: the band the size lives in write to write,
    insensitive to a handful of rare jumps over a long horizon."""
    return float(np.percentile(series, 95) - np.percentile(series, 5))


def _summarize(name, trajectories):
    lines = [f"{name}: three hottest blocks, compressed size per write"]
    for index, (block, series) in enumerate(trajectories.items(), start=1):
        lines.append(
            f"  block{index} (line {block:3d}): writes={len(series):4d} "
            f"min={min(series):2d}B max={max(series):2d}B "
            f"p5-p95 band={_robust_spread(series):4.1f}B "
            f"mean={np.mean(series):5.1f}B"
        )
    return lines


def test_fig07_size_trajectories(benchmark, report, bench_scale):
    def measure():
        return {
            name: fig7_size_trajectories(
                get_profile(name),
                n_blocks=3,
                n_lines=64,
                writes=2 * bench_scale["writes"],
                seed=0,
            )
            for name in ("bzip2", "hmmer")
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = []
    for name in ("bzip2", "hmmer"):
        lines.extend(_summarize(name, results[name]))
    lines.append("paper: bzip2 block sizes swing across the whole range;")
    lines.append("       hmmer block sizes stay within a narrow band")
    report("fig07_size_trajectories", "\n".join(lines))

    bzip2_spreads = [_robust_spread(s) for s in results["bzip2"].values()]
    hmmer_spreads = [_robust_spread(s) for s in results["hmmer"].values()]
    assert max(bzip2_spreads) > 24  # wide swings
    assert np.median(bzip2_spreads) > np.median(hmmer_spreads)
