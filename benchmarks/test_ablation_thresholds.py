"""Ablation: sensitivity of the Figure 8 heuristic to its thresholds
(Threshold1: always-compress size; Threshold2: minor-size-change band)."""

from repro.lifetime import build_simulator


def run(t1, t2, scale):
    simulator = build_simulator(
        "comp_wf",
        "bzip2",
        n_lines=scale["n_lines"] // 2,
        endurance_mean=10**6,  # wear-free: compare flip behaviour only
        seed=0,
        threshold1=t1,
        threshold2=t2,
    )
    return simulator.run(max_writes=40_000)


def test_ablation_heuristic_thresholds(benchmark, report, bench_scale):
    grid = [(8, 8), (16, 4), (16, 8), (16, 16), (32, 8)]

    def measure():
        return {(t1, t2): run(t1, t2, bench_scale) for t1, t2 in grid}

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'T1':>4}{'T2':>4}{'flips/write':>13}{'compressed frac':>17}"]
    for (t1, t2), result in results.items():
        lines.append(
            f"{t1:>4}{t2:>4}{result.flips_per_write:13.1f}"
            f"{result.compressed_write_fraction:17.2f}"
        )
    lines.append("default (16, 8) balances flips against compressed coverage")
    report("ablation_heuristic_thresholds", "\n".join(lines))

    # Compressed coverage grows monotonically with the always-compress
    # threshold T1 (at fixed T2).
    assert (
        results[(8, 8)].compressed_write_fraction
        <= results[(16, 8)].compressed_write_fraction
        <= results[(32, 8)].compressed_write_fraction
    )
    # A wider "minor change" band (T2) keeps SC lower, so more writes
    # stay compressed.
    assert (
        results[(16, 4)].compressed_write_fraction
        <= results[(16, 16)].compressed_write_fraction
    )
    for result in results.values():
        assert 0.0 < result.compressed_write_fraction <= 1.0
        assert result.flips_per_write > 0
