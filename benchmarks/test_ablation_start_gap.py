"""Ablation: Start-Gap's psi period and region count.

Smaller psi levels wear faster (hot lines escape sooner) but costs an
extra write per psi demand writes; regions localize movement.  The
paper fixes psi=100, single region -- this bench shows the neighborhood
of that choice.
"""

from repro.lifetime import build_simulator


def run(scale, seed=0, **overrides):
    simulator = build_simulator(
        "comp_wf",
        "mcf",
        n_lines=scale["n_lines"] // 2,
        endurance_mean=scale["endurance_mean"],
        seed=seed,
        **overrides,
    )
    return simulator.run(max_writes=4_000_000)


def test_ablation_start_gap(benchmark, report, bench_scale):
    def measure():
        psi_sweep = {
            psi: run(bench_scale, start_gap_psi=psi) for psi in (25, 100, 400)
        }
        region_sweep = {
            regions: run(bench_scale, start_gap_regions=regions)
            for regions in (1, 4)
        }
        return psi_sweep, region_sweep

    psi_sweep, region_sweep = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'psi':>6}{'writes to fail':>16}{'flips/write':>13}"]
    for psi, result in psi_sweep.items():
        lines.append(
            f"{psi:>6}{result.writes_issued:>16d}{result.flips_per_write:>13.1f}"
        )
    lines.append("")
    lines.append(f"{'regions':>8}{'writes to fail':>16}")
    for regions, result in region_sweep.items():
        lines.append(f"{regions:>8}{result.writes_issued:>16d}")
    lines.append("paper setting: psi=100, one region")
    report("ablation_start_gap", "\n".join(lines))

    for result in list(psi_sweep.values()) + list(region_sweep.values()):
        assert result.failed
    # Aggressive movement (psi=25) costs extra writes per demand write,
    # visible as a higher flip rate.
    assert psi_sweep[25].flips_per_write >= psi_sweep[400].flips_per_write * 0.95
    # Region count is roughly lifetime-neutral at this scale.
    base = region_sweep[1].writes_issued
    assert 0.6 * base <= region_sweep[4].writes_issued <= 1.6 * base
