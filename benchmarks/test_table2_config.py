"""Table II: the simulated system configuration."""

from repro.core import comp_wf
from repro.pcm import (
    CHIPS_PER_RANK,
    PAPER_ENDURANCE_COV,
    PAPER_ENDURANCE_MEAN,
    MemoryOrganization,
    PCMTimings,
)


def test_table2_system_configuration(benchmark, report):
    def build():
        return MemoryOrganization(), PCMTimings(), comp_wf()

    organization, timings, config = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "PCM main memory (Table II)",
        f"  capacity            : {organization.capacity_bytes / 2**30:.0f} GB "
        f"({organization.total_lines} x {organization.line_bytes}B lines)",
        f"  channels            : {organization.channels}, "
        f"{organization.dimms_per_channel} DIMM/channel, "
        f"{organization.ranks_per_dimm} rank/DIMM, "
        f"{CHIPS_PER_RANK} chips/rank (8 data + 1 ECC)",
        f"  banks               : {organization.banks_per_rank} per rank",
        f"  array timing        : read {timings.read_ns}ns, "
        f"RESET {timings.reset_ns}ns, SET {timings.set_ns}ns",
        f"  interface           : {timings.bus_mhz:.0f} MHz, "
        f"tRCD={timings.t_rcd}, tCL={timings.t_cl}, tWL={timings.t_wl}, "
        f"burst={timings.burst_length}",
        f"  endurance           : mean {PAPER_ENDURANCE_MEAN:.0e}, "
        f"CoV {PAPER_ENDURANCE_COV}",
        "Controller (proposed design)",
        f"  correction scheme   : {config.correction_scheme}",
        f"  Start-Gap psi       : {config.start_gap_psi}",
        f"  heuristic thresholds: T1={config.threshold1}B, T2={config.threshold2}B",
    ]
    report("table2_system_configuration", "\n".join(lines))

    assert organization.capacity_bytes == 4 * 2**30
    assert timings.read_ns == 48.0
    assert config.correction_scheme == "ecp6"
