"""Figure 6: probability that two consecutive writes to the same block
have different sizes after compression."""

from repro.analysis import fig6_size_change_probability
from repro.traces import PROFILES, WORKLOAD_ORDER


def test_fig06_size_change_probability(benchmark, report, bench_scale):
    def measure():
        return {
            name: fig6_size_change_probability(
                PROFILES[name], n_lines=64, writes=bench_scale["writes"], seed=2
            )
            for name in WORKLOAD_ORDER
        }

    probabilities = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'workload':12}{'P(size change)':>16}{'profile target':>16}"]
    for name in WORKLOAD_ORDER:
        lines.append(
            f"{name:12}{probabilities[name]:16.2f}"
            f"{PROFILES[name].size_change_prob:16.2f}"
        )
    report("fig06_size_change_probability", "\n".join(lines))

    # Paper's structure: bzip2 and gcc are the volatile outliers;
    # hmmer and the highly compressible apps are stable.
    assert probabilities["bzip2"] > 0.45
    assert probabilities["gcc"] > 0.45
    for stable in ("hmmer", "sjeng", "zeusmp", "milc", "cactusADM"):
        assert probabilities[stable] < 0.25, stable
    assert probabilities["bzip2"] > 2.5 * probabilities["hmmer"]
