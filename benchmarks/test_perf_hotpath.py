"""Hot-path performance benchmarks (compression cache + fault tracking).

Unlike the figure/table benchmarks, this file measures the *simulator*
rather than the simulated memory: end-to-end writes/sec per system on a
cycled trace, plus microbenchmarks of the two dominant per-write costs
(the content-addressed compression cache and ``apply_write``).  Results
land in ``benchmarks/results/BENCH_hotpath.json`` next to recorded
before/after reference numbers so regressions are visible at a glance.

Timing assertions are deliberately loose (shared CI runners drift by
tens of percent); the *blocking* assertions are the behavioural ones --
cache counters, outcome bookkeeping, and cache-on vs cache-off
simulation equivalence.

The end-to-end scenario is pinned (workload, trace seed, line count,
endurance, simulator seed) so numbers stay comparable with the recorded
references; only the replay length and repetition count scale down for
smoke runs:

======================  =======  =========================================
variable                default  meaning
======================  =======  =========================================
``REPRO_HOTPATH_WRITES``   8000  cycled write-backs replayed per system
``REPRO_HOTPATH_REPS``        3  in-process repetitions (best-of is kept)
======================  =======  =========================================

Methodology note: wall-clock on a busy machine varies run to run by
20-40 %, so each measurement is the best of ``REPS`` in-process
repetitions, and the recorded references were taken as best-of across
interleaved before/after process pairs on the same machine.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compression import BestOfCompressor, CachingCompressor
from repro.core import EVALUATED_SYSTEMS, CompressedPCMController, make_config
from repro.lifetime import LifetimeSimulator
from repro.pcm import EnduranceModel, apply_write
from repro.traces import SyntheticWorkload, Trace, get_profile

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_hotpath.json"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))

# -- pinned end-to-end scenario (do not scale: comparability anchor) ----
N_LINES = 96
TRACE_WORKLOAD = "gcc"
TRACE_WRITES = 500
TRACE_SEED = 5
ENDURANCE_MEAN = 1000.0  # wear-free steady state: the hot path
SIM_SEED = 7

REPLAY_WRITES = _env_int("REPRO_HOTPATH_WRITES", 8000)
REPS = _env_int("REPRO_HOTPATH_REPS", 3)

#: Batch width for the batched-engine end-to-end comparison (the
#: acceptance point of the out-of-order scheduler; see
#: ``test_batched_throughput``).
BATCH_SIZE = 128

#: Blocking floor for ``test_batched_throughput``: the scheduler must
#: sustain at least this many times the serial throughput at
#: ``BATCH_SIZE`` on the bank-interleaved scenario.  Measured
#: interleaved best-of-REPS in one process, so machine drift hits both
#: sides; the dev-container headroom is ~4.6-5.0x.
BATCH_SPEEDUP_GATE = 4.0

#: Non-blocking batch-width sweep (see ``test_batch_size_sweep``).
SWEEP_SIZES = (8, 32, 128)

#: Recorded writes/sec on the development machine (best-of interleaved
#: process pairs, full 8000-write replay).  "before" is the commit that
#: landed the engine pipeline (9b5fc1a); "after" is this PR's hot-path
#: overhaul.  Absolute numbers are machine-specific; the *ratios* are
#: the deliverable.
RECORDED_REFERENCE = {
    "machine": "dev container, Linux x86-64",
    "methodology": "best-of-3 in-process reps, interleaved before/after "
    "process pairs (machine drift is 20-40% run to run)",
    "replay_writes": 8000,
    "before": {
        "commit": "9b5fc1a",
        "writes_per_sec": {
            "baseline": 19009.3,
            "comp": 7496.4,
            "comp_w": 7656.7,
            "comp_wf": 7701.9,
        },
    },
    "after": {
        "commit": "this PR",
        "writes_per_sec": {
            "baseline": 63447.7,
            "comp": 39209.3,
            "comp_w": 34398.6,
            "comp_wf": 39451.0,
        },
    },
}


def _merge_json(section: str, payload) -> None:
    """Update one section of BENCH_hotpath.json, keeping the others."""
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if BENCH_JSON.exists():
        data = json.loads(BENCH_JSON.read_text())
    data["recorded_reference"] = RECORDED_REFERENCE
    data[section] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _build_trace():
    workload = SyntheticWorkload(
        get_profile(TRACE_WORKLOAD), n_lines=N_LINES, seed=TRACE_SEED
    )
    return workload.generate_trace(TRACE_WRITES)


def _build_parallel_trace():
    """The pinned payload stream with bank-interleaved addresses.

    Same workload, seed, length, and payloads as :func:`_build_trace`,
    but the address stream visits the lines round-robin -- the
    line-parallel drain order a memory controller sees when write-backs
    spread across banks, and the scenario the batched engine exists
    for.  Serial and batched replays of this trace issue the identical
    write sequence, so the batch=1 vs batch=K comparison is apples to
    apples.
    """
    trace = _build_trace()
    writes = [
        dataclasses.replace(write, line=index % N_LINES)
        for index, write in enumerate(trace.writes)
    ]
    return Trace(trace.workload, trace.n_lines, writes)


def _replay_once(system: str, trace, batch: int = 1) -> float:
    """One timed replay; returns writes/sec.

    Batched replays align the failure-check cadence to the batch width
    (``check_interval=max(64, batch)``) so epochs are not truncated
    below the requested batch size -- the serial runs keep the
    simulator default, which checks more often, not less.
    """
    simulator = LifetimeSimulator(
        config=make_config(system, intra_counter_limit=64),
        source=trace,
        n_lines=N_LINES,
        endurance_mean=ENDURANCE_MEAN,
        seed=SIM_SEED,
    )
    start = time.perf_counter()
    simulator.run(
        max_writes=REPLAY_WRITES, batch=batch,
        check_interval=max(64, batch),
    )
    return REPLAY_WRITES / (time.perf_counter() - start)


def _replay_wave_stats(system: str, trace, batch: int) -> dict:
    """One untimed batched replay; returns the scheduler telemetry."""
    simulator = LifetimeSimulator(
        config=make_config(system, intra_counter_limit=64),
        source=trace,
        n_lines=N_LINES,
        endurance_mean=ENDURANCE_MEAN,
        seed=SIM_SEED,
    )
    result = simulator.run(
        max_writes=REPLAY_WRITES, batch=batch,
        check_interval=max(64, batch),
    )
    stats = simulator.controller.stats
    return {
        "waves": result.batch_waves,
        "wave_ops": result.batch_wave_ops,
        "wave_width_max": result.batch_wave_width_max,
        "wave_width_mean": round(result.batch_wave_width_mean, 2),
        "collision_edges": stats.batch_collision_edges,
        "barrier_gap_move": stats.barrier_gap_move,
        "barrier_collision": stats.barrier_collision,
        "barrier_ineligible_row": stats.barrier_ineligible_row,
    }


# -- end-to-end ---------------------------------------------------------


def test_end_to_end_writes_per_sec(report):
    """Cycled-trace replay speed per system, best-of-REPS."""
    trace = _build_trace()
    measured: dict[str, float] = {}
    for system in EVALUATED_SYSTEMS:
        measured[system] = round(
            max(_replay_once(system, trace) for _ in range(REPS)), 1
        )

    before = RECORDED_REFERENCE["before"]["writes_per_sec"]
    lines = [f"{'system':10}{'writes/s':>12}{'pre-PR ref':>12}{'speedup':>9}"]
    comparable = REPLAY_WRITES == RECORDED_REFERENCE["replay_writes"]
    for system in EVALUATED_SYSTEMS:
        ratio = measured[system] / before[system] if comparable else float("nan")
        lines.append(
            f"{system:10}{measured[system]:12.1f}{before[system]:12.1f}"
            f"{ratio:9.2f}"
        )
    if not comparable:
        lines.append(
            f"(replay scaled to {REPLAY_WRITES} writes: speedups vs the "
            "full-scale reference are not meaningful)"
        )
    report("BENCH_hotpath_end_to_end", "\n".join(lines))
    _merge_json(
        "end_to_end",
        {
            "replay_writes": REPLAY_WRITES,
            "reps": REPS,
            "writes_per_sec": measured,
            "speedup_vs_reference": {
                s: round(measured[s] / before[s], 2) for s in EVALUATED_SYSTEMS
            }
            if comparable
            else None,
        },
    )

    # Non-blocking on timing; blocking only on "the replay actually ran".
    assert all(value > 0 for value in measured.values())


def test_batched_throughput(report):
    """Serial vs out-of-order scheduler on the line-parallel replay.

    BLOCKING: at ``BATCH_SIZE`` (128) the scheduler must sustain at
    least ``BATCH_SPEEDUP_GATE`` (4x) the serial throughput on the
    scenario it exists for (the CI perf-smoke gate).  Serial and
    batched reps are *interleaved* (a serial/batched pair per rep,
    best-of kept per side) so machine drift hits both sides of the
    ratio equally.  The per-system scheduler telemetry of one replay
    rides along into the JSON so wave shapes stay reviewable next to
    the numbers they explain.
    """
    trace = _build_parallel_trace()
    serial: dict[str, float] = {}
    batched: dict[str, float] = {}
    waves: dict[str, dict] = {}
    for system in EVALUATED_SYSTEMS:
        best_serial = 0.0
        best_batched = 0.0
        for _ in range(REPS):
            best_serial = max(best_serial, _replay_once(system, trace))
            best_batched = max(
                best_batched, _replay_once(system, trace, batch=BATCH_SIZE)
            )
        serial[system] = round(best_serial, 1)
        batched[system] = round(best_batched, 1)
        waves[system] = _replay_wave_stats(system, trace, BATCH_SIZE)

    lines = [
        f"{'system':10}{'batch=1 w/s':>14}"
        f"{f'batch={BATCH_SIZE} w/s':>16}{'speedup':>9}"
    ]
    for system in EVALUATED_SYSTEMS:
        lines.append(
            f"{system:10}{serial[system]:14.1f}{batched[system]:16.1f}"
            f"{batched[system] / serial[system]:9.2f}"
        )
    report("BENCH_hotpath_batched", "\n".join(lines))
    _merge_json(
        "batched",
        {
            "batch_size": BATCH_SIZE,
            "replay_writes": REPLAY_WRITES,
            "reps": REPS,
            "methodology": "interleaved serial/batched rep pairs, "
            "best-of per side",
            "scenario": (
                f"{TRACE_WORKLOAD} payload stream, bank-interleaved "
                f"addresses (round-robin over {N_LINES} lines)"
            ),
            "speedup_gate": BATCH_SPEEDUP_GATE,
            "serial_writes_per_sec": serial,
            "batched_writes_per_sec": batched,
            "speedup": {
                s: round(batched[s] / serial[s], 2)
                for s in EVALUATED_SYSTEMS
            },
            "scheduler": waves,
        },
    )

    for system in EVALUATED_SYSTEMS:
        speedup = batched[system] / serial[system]
        assert speedup >= BATCH_SPEEDUP_GATE, (
            f"{system}: batched replay ({batched[system]:.0f} w/s) is only "
            f"{speedup:.2f}x serial ({serial[system]:.0f} w/s); the "
            f"scheduler gate requires {BATCH_SPEEDUP_GATE}x at "
            f"batch={BATCH_SIZE}"
        )


def test_batch_size_sweep(report):
    """Batch-width scaling on the line-parallel replay (non-blocking).

    One batched best-of-REPS measurement per width in ``SWEEP_SIZES``;
    timing only, no assertion beyond "the replay ran" -- the blocking
    comparison lives in :func:`test_batched_throughput`.
    """
    trace = _build_parallel_trace()
    sweep: dict[str, dict[str, float]] = {
        system: {} for system in EVALUATED_SYSTEMS
    }
    for size in SWEEP_SIZES:
        for system in EVALUATED_SYSTEMS:
            sweep[system][str(size)] = round(
                max(
                    _replay_once(system, trace, batch=size)
                    for _ in range(REPS)
                ),
                1,
            )

    header = f"{'system':10}" + "".join(
        f"{f'batch={size}':>14}" for size in SWEEP_SIZES
    )
    lines = [header]
    for system in EVALUATED_SYSTEMS:
        lines.append(
            f"{system:10}" + "".join(
                f"{sweep[system][str(size)]:14.1f}" for size in SWEEP_SIZES
            )
        )
    report("BENCH_hotpath_batch_sweep", "\n".join(lines))
    _merge_json(
        "batch_sweep",
        {
            "sizes": list(SWEEP_SIZES),
            "replay_writes": REPLAY_WRITES,
            "reps": REPS,
            "writes_per_sec": sweep,
        },
    )

    assert all(
        value > 0 for per_system in sweep.values()
        for value in per_system.values()
    )


# -- microbenchmarks ----------------------------------------------------


def test_compression_cache_microbench(report):
    """Per-call cost of a cache miss vs a cache hit, plus counter checks."""
    trace = _build_trace()
    payloads = list(dict.fromkeys(write.data for write in trace))
    cache = CachingCompressor(BestOfCompressor(), capacity=len(payloads))

    start = time.perf_counter()
    cold = [cache.compress(payload) for payload in payloads]
    miss_ns = (time.perf_counter() - start) / len(payloads) * 1e9

    start = time.perf_counter()
    warm = [cache.compress(payload) for payload in payloads]
    hit_ns = (time.perf_counter() - start) / len(payloads) * 1e9

    # Blocking behaviour checks: every first lookup missed, every second
    # hit, and hits return the identical memoized result objects.
    assert cache.misses == len(payloads)
    assert cache.hits == len(payloads)
    assert all(a is b for a, b in zip(cold, warm))

    report(
        "BENCH_hotpath_cache",
        f"distinct payloads: {len(payloads)}\n"
        f"miss (BestOf compress + insert): {miss_ns:10.0f} ns/call\n"
        f"hit  (dict lookup):              {hit_ns:10.0f} ns/call\n"
        f"miss/hit ratio:                  {miss_ns / hit_ns:10.1f}x",
    )
    _merge_json(
        "cache_microbench",
        {
            "distinct_payloads": len(payloads),
            "miss_ns_per_call": round(miss_ns, 1),
            "hit_ns_per_call": round(hit_ns, 1),
        },
    )


def test_apply_write_microbench(report):
    """Per-call cost of apply_write on the three hot shapes."""
    rng = np.random.default_rng(11)
    n = 512
    endurance = np.full(n, 1e9)
    counts = np.zeros(n, dtype=np.int64)
    stored = rng.integers(0, 2, n, dtype=np.uint8)
    same = stored.copy()
    diff = stored.copy()
    diff[rng.choice(n, 60, replace=False)] ^= 1
    faulty = np.zeros(n, dtype=bool)
    faulty[rng.choice(n, 4, replace=False)] = True
    rounds = 2000

    def time_case(new_bits, **kwargs) -> float:
        base = stored.copy()
        start = time.perf_counter()
        for _ in range(rounds):
            apply_write(base, counts, endurance, new_bits, **kwargs)
        return (time.perf_counter() - start) / rounds * 1e9

    noop_ns = time_case(same, faulty=np.zeros(n, dtype=bool), has_faults=False)
    diff_ns = time_case(diff, faulty=np.zeros(n, dtype=bool), has_faults=False)
    faulted_ns = time_case(diff, faulty=faulty, has_faults=True)

    # Blocking behaviour check: the healthy no-op short-circuit reports
    # a clean outcome without touching the arrays.
    outcome = apply_write(
        stored.copy(), counts.copy(), endurance, same,
        faulty=np.zeros(n, dtype=bool), has_faults=False,
    )
    assert outcome.programmed_flips == 0
    assert outcome.error_positions.size == 0

    report(
        "BENCH_hotpath_apply_write",
        f"healthy no-op:      {noop_ns:8.0f} ns/call\n"
        f"healthy 60-bit diff:{diff_ns:8.0f} ns/call\n"
        f"faulty 60-bit diff: {faulted_ns:8.0f} ns/call",
    )
    _merge_json(
        "apply_write_microbench",
        {
            "healthy_noop_ns": round(noop_ns, 1),
            "healthy_diff_ns": round(diff_ns, 1),
            "faulty_diff_ns": round(faulted_ns, 1),
        },
    )


# -- blocking equivalence ----------------------------------------------


def _controller_digest(system: str, cache_lines: int) -> tuple[str, int, int]:
    """Replay a worn seeded trace; digest the WriteResult stream."""
    config = make_config(
        system, intra_counter_limit=64, compression_cache_lines=cache_lines
    )
    workload = SyntheticWorkload(get_profile("gcc"), n_lines=48, seed=3)
    controller = CompressedPCMController(
        config=config,
        n_lines=48,
        endurance_model=EnduranceModel(mean=40.0, cov=0.15),
        rng=np.random.default_rng(4),
    )
    digest = hashlib.sha256()
    for write in workload.iter_writes(3000):
        result = controller.write(write.line, write.data)
        row = [
            result.physical, int(result.compressed), result.size_bytes,
            result.window_start, result.flips, int(result.died),
            int(result.revived), int(result.lost), result.heuristic_step,
        ]
        digest.update(json.dumps(row).encode())
    stats = controller.stats
    return digest.hexdigest(), stats.total_flips, stats.lost_writes


@pytest.mark.parametrize("system", ["comp", "comp_w", "comp_wf"])
def test_cache_on_off_equivalence(system):
    """BLOCKING: the cache is a pure speed knob -- disabling it must not
    change a single externally observable write result, even on a worn
    memory where placement retries and deaths are in play."""
    cached = _controller_digest(system, cache_lines=1024)
    uncached = _controller_digest(system, cache_lines=0)
    assert cached == uncached
