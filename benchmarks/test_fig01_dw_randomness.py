"""Figure 1: bit flips of consecutive writes to one hot block (gobmk).

The paper's motivating observation: with differential writes, per-write
flip counts at one 64-byte block are sizeable and scattered with no
stable pattern -- which is why DW alone cannot be exploited by
wear-leveling or error correction.
"""

import numpy as np

from repro.analysis import hot_block_flip_series
from repro.traces import get_profile


def test_fig01_dw_flip_randomness(benchmark, report, bench_scale):
    def measure():
        return hot_block_flip_series(
            get_profile("gobmk"),
            n_lines=64,
            writes=4 * bench_scale["writes"],
            seed=0,
        )

    series = benchmark.pedantic(measure, rounds=1, iterations=1)
    steady = series[1:]  # drop the cold-start write

    def sparkline(values, width=64):
        ticks = " .:-=+*#%@"
        step = max(1, len(values) // width)
        sampled = values[::step][:width]
        top = max(max(sampled), 1)
        return "".join(ticks[min(9, int(v / top * 9))] for v in sampled)

    lines = [
        "bit flips per write, one hot 64-byte block (gobmk):",
        f"  writes observed : {len(steady)}",
        f"  mean / std      : {np.mean(steady):.1f} / {np.std(steady):.1f}",
        f"  min / max       : {min(steady)} / {max(steady)} (out of 512)",
        f"  profile         : {sparkline(steady)}",
    ]
    report("fig01_dw_flip_randomness", "\n".join(lines))

    # The paper's qualitative claims: flips vary widely write to write.
    assert len(steady) > 50
    assert np.std(steady) > 5
    assert max(steady) > 3 * np.median(steady) or max(steady) > 100
