"""Section V-B: performance overhead of decompression on the read path
(paper: read latency +<=2% on average, end-to-end slowdown < 0.3%)."""

import numpy as np

from repro.perf import (
    LatencyModel,
    PerformanceModel,
    read_latency_overhead_queued,
)
from repro.traces import PROFILES, WORKLOAD_ORDER


def test_sec5b_performance_overhead(benchmark, report, bench_scale):
    model = PerformanceModel()

    def measure():
        analytic = [
            model.report(
                PROFILES[name],
                n_lines=64,
                samples=bench_scale["writes"] // 4,
                seed=1,
            )
            for name in WORKLOAD_ORDER
        ]
        _, _, queued = read_latency_overhead_queued(
            n_requests=10_000, mean_interarrival_ns=80.0, seed=1
        )
        return analytic, queued

    reports, queued_overhead = benchmark.pedantic(measure, rounds=1, iterations=1)

    latency = LatencyModel()
    lines = [
        f"base read latency: {latency.read_latency().total_ns:.1f} ns; "
        f"+BDI {latency.read_latency('bdi').decompression_ns:.1f} ns, "
        f"+FPC {latency.read_latency('fpc').decompression_ns:.1f} ns",
        f"{'workload':12}{'read overhead':>15}{'slowdown':>11}",
    ]
    for item in reports:
        lines.append(
            f"{item.workload:12}{item.read_latency_overhead:15.2%}"
            f"{item.slowdown:11.3%}"
        )
    mean_overhead = float(np.mean([r.read_latency_overhead for r in reports]))
    mean_slowdown = float(np.mean([r.slowdown for r in reports]))
    lines.append(f"{'Average':12}{mean_overhead:15.2%}{mean_slowdown:11.3%}")
    lines.append(
        f"event-driven queueing model (bank contention + write drains): "
        f"{queued_overhead:.2%} read overhead"
    )
    lines.append("paper: read overhead up to ~2% avg; slowdown < 0.3%")
    report("sec5b_performance_overhead", "\n".join(lines))

    assert mean_overhead <= 0.02
    assert mean_slowdown < 0.003
    assert 0.0 <= queued_overhead < 0.02
    for item in reports:
        assert item.read_latency_overhead >= 0.0
