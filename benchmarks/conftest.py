"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
reports the series next to the paper's reference values.  Because
pytest captures stdout, reports are (a) accumulated and printed in the
terminal summary, and (b) written to ``benchmarks/results/<name>.txt``
so the numbers survive the run.

Scale knobs (environment variables):

======================  =======  =========================================
variable                default  meaning
======================  =======  =========================================
``REPRO_BENCH_LINES``   128      memory size (lines) for lifetime studies
``REPRO_BENCH_END``     60       mean cell endurance (writes) for lifetime
``REPRO_BENCH_TRIALS``  150      Monte Carlo trials per Figure 9 point
``REPRO_BENCH_WRITES``  12000    write-back samples for statistics figures
``REPRO_BENCH_WORKERS`` 1        worker processes for the lifetime grids
======================  =======  =========================================

The defaults finish the whole harness in tens of minutes on a laptop;
raise them for tighter confidence intervals.  Figure 10's lifetime study
is the expensive piece and is shared with Figure 12 and Table IV through
the ``shared_cache`` fixture; set ``REPRO_BENCH_WORKERS`` to fan its
(workload x system) grid across processes via
:class:`repro.engine.SweepRunner` -- results are identical to the
serial run (shared-seed mode), only wall-clock changes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_REPORTS: list[tuple[str, str]] = []
_SHARED_CACHE: dict[str, object] = {}


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_scale():
    """Simulation-scale knobs, overridable via environment."""
    return {
        "n_lines": env_int("REPRO_BENCH_LINES", 128),
        "endurance_mean": env_int("REPRO_BENCH_END", 60),
        "trials": env_int("REPRO_BENCH_TRIALS", 150),
        "writes": env_int("REPRO_BENCH_WRITES", 12000),
        "workers": env_int("REPRO_BENCH_WORKERS", 1),
    }


@pytest.fixture()
def report():
    """Record a named report: shown in the summary and saved to disk."""

    def _report(name: str, text: str) -> None:
        _REPORTS.append((name, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture(scope="session")
def shared_cache():
    """Cross-benchmark result cache (Figure 10 feeds 12 and Table IV)."""
    return _SHARED_CACHE


def pytest_terminal_summary(terminalreporter):
    for name, text in _REPORTS:
        terminalreporter.write_sep("=", name)
        terminalreporter.write_line(text)
