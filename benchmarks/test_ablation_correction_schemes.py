"""Ablation: Comp+WF running over ECP-6 vs SAFER-32 vs Aegis 17x31
(Section III-A.4: the window design composes with any of them)."""

from repro.lifetime import build_simulator


def test_ablation_correction_schemes(benchmark, report, bench_scale):
    schemes = ("ecp6", "safer32", "aegis17x31")

    def measure():
        results = {}
        for scheme in schemes:
            baseline = build_simulator(
                "baseline",
                "milc",
                n_lines=bench_scale["n_lines"] // 2,
                endurance_mean=bench_scale["endurance_mean"],
                seed=0,
                correction_scheme=scheme,
            ).run(max_writes=4_000_000)
            comp_wf = build_simulator(
                "comp_wf",
                "milc",
                n_lines=bench_scale["n_lines"] // 2,
                endurance_mean=bench_scale["endurance_mean"],
                seed=0,
                correction_scheme=scheme,
            ).run(max_writes=4_000_000)
            results[scheme] = (baseline, comp_wf)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"{'scheme':12}{'base writes':>13}{'WF writes':>11}{'WF gain':>9}"
        f"{'faults@death':>14}"
    ]
    for scheme, (baseline, comp_wf) in results.items():
        gain = comp_wf.writes_issued / baseline.writes_issued
        lines.append(
            f"{scheme:12}{baseline.writes_issued:13d}{comp_wf.writes_issued:11d}"
            f"{gain:9.2f}{comp_wf.avg_faults_per_dead_block:14.1f}"
        )
    lines.append("the compression window composes with all three schemes;")
    lines.append("stronger schemes tolerate more faults per failed block")
    report("ablation_correction_schemes", "\n".join(lines))

    for scheme, (baseline, comp_wf) in results.items():
        assert baseline.failed and comp_wf.failed, scheme
        assert comp_wf.writes_issued > baseline.writes_issued, scheme
    # Partition-based schemes tolerate more in-window faults than ECP-6.
    ecp_faults = results["ecp6"][1].avg_faults_per_dead_block
    assert results["safer32"][1].avg_faults_per_dead_block > 0.8 * ecp_faults
