"""Figure 5: % of write-backs with increased / untouched / decreased
bit flips when stored compressed instead of uncompressed."""

import numpy as np

from repro.analysis import classify_flip_impact
from repro.traces import PROFILES, WORKLOAD_ORDER


def test_fig05_flip_direction_split(benchmark, report, bench_scale):
    def measure():
        return [
            classify_flip_impact(
                PROFILES[name], n_lines=64, writes=bench_scale["writes"], seed=2
            )
            for name in WORKLOAD_ORDER
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'workload':12}{'increased':>11}{'untouched':>11}{'decreased':>11}"]
    for row in rows:
        lines.append(
            f"{row.workload:12}{row.increased:11.0%}{row.untouched:11.0%}"
            f"{row.decreased:11.0%}"
        )
    mean_increase = float(np.mean([row.increased for row in rows]))
    lines.append(
        f"{'Average':12}{mean_increase:11.0%}"
        f"{np.mean([r.untouched for r in rows]):11.0%}"
        f"{np.mean([r.decreased for r in rows]):11.0%}"
    )
    lines.append("paper: ~20% of write-backs see increased flips on average")
    report("fig05_flip_direction_split", "\n".join(lines))

    by_name = {row.workload: row for row in rows}
    # Paper's qualitative structure: volatile-size apps (bzip2, gcc)
    # see frequent increases; highly compressible apps (sjeng, milc,
    # cactusADM) almost never do.
    assert by_name["bzip2"].increased > 0.25
    assert by_name["gcc"].increased > 0.25
    for name in ("sjeng", "milc", "cactusADM", "zeusmp"):
        assert by_name[name].increased < 0.15, name
    # Average increase lands in the paper's ~20% ballpark.
    assert 0.08 < mean_increase < 0.35
