"""Figure 12: average number of faulty cells in a failed 512-bit block
under Comp+WF (paper: ~3x ECP-6's fixed 6; sjeng/milc/cactusADM reach
~25/32/35)."""

import numpy as np

from repro.analysis import run_full_study
from repro.traces import PROFILES, WORKLOAD_ORDER


def test_fig12_faults_tolerated_per_block(benchmark, report, bench_scale, shared_cache):
    def measure():
        studies = shared_cache.get("fig10_studies")
        if studies is None:  # standalone invocation
            studies = run_full_study(
                workloads=WORKLOAD_ORDER,
                systems=("baseline", "comp_wf"),
                n_lines=bench_scale["n_lines"],
                endurance_mean=bench_scale["endurance_mean"],
                seed=0,
                workers=bench_scale["workers"],
            )
        return {
            name: (
                studies[name].results["baseline"].avg_faults_per_dead_block,
                studies[name].results["comp_wf"].avg_faults_per_dead_block,
            )
            for name in WORKLOAD_ORDER
        }

    faults = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'workload':12}{'baseline':>10}{'Comp+WF':>10}{'ratio':>8}{'class':>7}"]
    for name in WORKLOAD_ORDER:
        base, wf = faults[name]
        ratio = wf / base if base else float("nan")
        lines.append(
            f"{name:12}{base:10.1f}{wf:10.1f}{ratio:8.1f}"
            f"{PROFILES[name].comp_class.value:>7}"
        )
    base_avg = np.mean([faults[name][0] for name in WORKLOAD_ORDER])
    wf_avg = np.mean([faults[name][1] for name in WORKLOAD_ORDER])
    lines.append(f"{'Average':12}{base_avg:10.1f}{wf_avg:10.1f}{wf_avg/base_avg:8.1f}")
    lines.append("paper: Comp+WF tolerates ~3x more faults per failed block")
    report("fig12_faults_tolerated_per_block", "\n".join(lines))

    # Baseline blocks die at ECP-6's limit (~7 faults: six corrected
    # plus the uncorrectable seventh).
    assert 6 <= base_avg <= 9
    # Comp+WF substantially exceeds it on average.
    assert wf_avg > 1.8 * base_avg
    # Highly compressible apps tolerate the most.
    high = np.mean([faults[name][1] for name in ("sjeng", "milc", "cactusADM")])
    low = np.mean([faults[name][1] for name in ("GemsFDTD", "lbm", "leslie3d")])
    assert high > low
