"""Wear-leveling backend comparison (BENCH_wolfram.json).

PR 10's study: Comp+WF on the paper's Start-Gap + FREE-p substrate
versus the same system on the WoLFRaM programmable-address-decoder
backend (``wl_backend="wolfram"``), in the style of the paper's
lifetime and fault-tolerance figures:

* **fig10-style** -- writes-to-failure per workload, with the WoLFRaM
  run normalized to its Start-Gap twin;
* **fig12-style** -- fault tolerance at death: average stuck cells per
  dead block, deaths, revivals, and (with a spare pool) remap counts --
  the PAD remap needs no healthy cells in the dead line, FREE-p does;
* **fig13-style** -- the whole grid repeated at the high process
  variation point (CoV 0.25 next to the nominal 0.15).

Each run also prices the backend's bookkeeping through the energy
model: WoLFRaM pays ``pad_table_writes`` decoder-entry rewrites where
Start-Gap pays none (its registers are two counters).  The full point
set lands in ``benchmarks/results/BENCH_wolfram.json``.
"""

import json
from pathlib import Path

from repro.lifetime import build_simulator

RESULTS_DIR = Path(__file__).parent / "results"

#: (label, system, overrides) -- the spare-pool pair drives the
#: remap-to-spare machinery on both substrates.
VARIANTS = (
    ("comp_wf/startgap", "comp_wf", {}),
    ("comp_wf/wolfram", "comp_wf_wolfram", {}),
    ("comp_wf+spares/startgap", "comp_wf_freep", {}),
    ("comp_wf+spares/wolfram", "comp_wf_freep_wolfram", {}),
)
WORKLOADS = ("mcf", "gcc", "lbm")
COVS = (0.15, 0.25)


def _run(system, workload, scale, cov, **overrides):
    simulator = build_simulator(
        system,
        workload,
        n_lines=scale["n_lines"],
        endurance_mean=scale["endurance_mean"],
        endurance_cov=cov,
        seed=0,
        **overrides,
    )
    return simulator.run(max_writes=4_000_000)


def test_wolfram_backend_lifetime_and_fault_tolerance(
    benchmark, report, bench_scale
):
    def measure():
        points = []
        for cov in COVS:
            for workload in WORKLOADS:
                for label, system, overrides in VARIANTS:
                    result = _run(
                        system, workload, bench_scale, cov, **overrides
                    )
                    breakdown = result.energy_breakdown()
                    points.append({
                        "label": label,
                        "system": system,
                        "backend": (
                            "wolfram" if system.endswith("_wolfram")
                            else "startgap_freep"
                        ),
                        "workload": workload,
                        "endurance_cov": cov,
                        "writes_issued": result.writes_issued,
                        "failed": result.failed,
                        "deaths": result.deaths,
                        "revivals": result.revivals,
                        "avg_faults_per_dead_block":
                            result.avg_faults_per_dead_block,
                        "pad_table_writes": result.pad_table_writes,
                        "energy_per_write_pj": breakdown.per_write_pj,
                        "pad_table_pj": breakdown.pad_table_pj,
                    })
        return points

    points = benchmark.pedantic(measure, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_wolfram.json").write_text(
        json.dumps({"points": points}, indent=2) + "\n"
    )

    by_key = {(p["endurance_cov"], p["workload"], p["label"]): p
              for p in points}

    lines = []
    for cov in COVS:
        lines.append(f"CoV = {cov}  (fig10/fig12-style, WoLFRaM vs Start-Gap)")
        lines.append(
            f"{'workload':9}{'variant':25}{'writes':>9}{'norm':>7}"
            f"{'deaths':>8}{'faults/blk':>11}{'PAD writes':>11}"
        )
        for workload in WORKLOADS:
            base = by_key[(cov, workload, "comp_wf/startgap")]
            for label, _, _ in VARIANTS:
                p = by_key[(cov, workload, label)]
                norm = p["writes_issued"] / base["writes_issued"]
                lines.append(
                    f"{workload:9}{label:25}{p['writes_issued']:>9d}"
                    f"{norm:>7.2f}{p['deaths']:>8d}"
                    f"{p['avg_faults_per_dead_block']:>11.1f}"
                    f"{p['pad_table_writes']:>11d}"
                )
        lines.append("")
    lines.append("norm = writes-to-failure over comp_wf/startgap, same "
                 "workload and CoV")
    report("wolfram_backend", "\n".join(lines))

    for p in points:
        assert p["failed"], f"{p['label']}/{p['workload']} never failed"
        if p["backend"] == "wolfram":
            assert p["pad_table_writes"] > 0
            assert p["pad_table_pj"] > 0
        else:
            assert p["pad_table_writes"] == 0
    for cov in COVS:
        for workload in WORKLOADS:
            base = by_key[(cov, workload, "comp_wf/startgap")]
            pad = by_key[(cov, workload, "comp_wf/wolfram")]
            # The backends implement the same 1-relocation-per-psi
            # overhead budget; lifetimes must land in the same regime
            # (the paper's figures separate *systems* by multiples).
            ratio = pad["writes_issued"] / base["writes_issued"]
            assert 0.5 <= ratio <= 2.0, (
                f"backend lifetime ratio {ratio:.2f} out of band "
                f"({workload}, cov={cov})"
            )
            # Spare pools never materially hurt lifetime on either
            # substrate (a small pool on a small memory can land within
            # run-to-run noise of its plain twin, so the bound carries
            # a 5% tolerance rather than strict monotonicity).
            for backend in ("startgap", "wolfram"):
                plain = by_key[(cov, workload, f"comp_wf/{backend}")]
                spared = by_key[(cov, workload, f"comp_wf+spares/{backend}")]
                assert spared["writes_issued"] >= 0.95 * plain["writes_issued"]
