"""Table IV: absolute lifetime in months, Baseline vs Comp+WF.

Scaled writes-to-failure are extrapolated to the paper's 4 GB / 1e7-
endurance configuration through the linear scale factors (see
repro.lifetime.results.lifetime_months).  Absolute numbers inherit the
synthetic-workload substitution, so the comparison targets order of
magnitude and per-workload ratios rather than exact months.
"""

import numpy as np

from repro.analysis import run_full_study
from repro.traces import WORKLOAD_ORDER

#: Table IV reference values (months).
PAPER_MONTHS = {
    "astar": (52.1, 150.2), "bwaves": (8.6, 23.6), "bzip2": (13.4, 19.8),
    "cactusADM": (9.2, 119.6), "calculix": (51, 159.4), "gcc": (8.7, 36.2),
    "GemsFDTD": (15.6, 19.6), "gobmk": (50.4, 131.7), "hmmer": (32.1, 70.6),
    "leslie3d": (8.3, 13.5), "lbm": (20.7, 28.8), "mcf": (18.7, 48),
    "milc": (16, 184), "sjeng": (13.2, 50.4), "zeusmp": (11.7, 128.7),
}


def test_table4_lifetime_months(benchmark, report, bench_scale, shared_cache):
    def measure():
        studies = shared_cache.get("fig10_studies")
        if studies is None:  # standalone invocation
            studies = run_full_study(
                workloads=WORKLOAD_ORDER,
                systems=("baseline", "comp_wf"),
                n_lines=bench_scale["n_lines"],
                endurance_mean=bench_scale["endurance_mean"],
                seed=0,
                workers=bench_scale["workers"],
            )
        return {
            name: (studies[name].months("baseline"), studies[name].months("comp_wf"))
            for name in WORKLOAD_ORDER
        }

    months = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"{'workload':12}{'base (paper)':>13}{'base (ours)':>13}"
        f"{'WF (paper)':>12}{'WF (ours)':>12}"
    ]
    for name in WORKLOAD_ORDER:
        paper_base, paper_wf = PAPER_MONTHS[name]
        ours_base, ours_wf = months[name]
        lines.append(
            f"{name:12}{paper_base:13.1f}{ours_base:13.1f}"
            f"{paper_wf:12.1f}{ours_wf:12.1f}"
        )
    our_base_avg = np.mean([months[name][0] for name in WORKLOAD_ORDER])
    our_wf_avg = np.mean([months[name][1] for name in WORKLOAD_ORDER])
    lines.append(
        f"{'Average':12}{'22.0':>13}{our_base_avg:13.1f}"
        f"{'79.0':>12}{our_wf_avg:12.1f}"
    )
    report("table4_lifetime_months", "\n".join(lines))

    # Order of magnitude: baseline average within [5, 120] months of the
    # paper's 22; the Comp+WF average improves it by > 2x.
    assert 5 <= our_base_avg <= 120
    assert our_wf_avg > 2 * our_base_avg
    # Low-WPKI workloads live longest in both columns (astar, calculix).
    assert months["astar"][0] > months["lbm"][0]
    assert months["calculix"][0] > months["mcf"][0]
