"""Extension: FREE-p style remap-on-death vs plain dead-marking.

With a spare pool, a worn-out block retires to a spare (its remap
pointer stored in the dead line) instead of shrinking capacity.  At the
paper's 50%-dead failure criterion the gain is modest -- deaths cluster
at end of life and the pool drains quickly -- which is itself a finding
worth recording: remapping shines for *first-error* survival, not for
the bulk-wear-out horizon the paper measures.
"""

from repro.lifetime import build_simulator


def run(spare_fraction, scale, seed):
    simulator = build_simulator(
        "comp_wf",
        "gcc",
        n_lines=scale["n_lines"] // 2,
        endurance_mean=scale["endurance_mean"],
        seed=seed,
        spare_line_fraction=spare_fraction,
    )
    return simulator.run(max_writes=4_000_000)


def test_extension_freep_remapping(benchmark, report, bench_scale):
    def measure():
        rows = {}
        for spare_fraction in (0.0, 0.25):
            results = [run(spare_fraction, bench_scale, seed) for seed in (0, 1)]
            rows[spare_fraction] = results
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'spares':>7}{'writes (mean)':>15}{'remaps':>8}{'deaths':>8}"]
    for spare_fraction, results in rows.items():
        mean_writes = sum(r.writes_issued for r in results) / len(results)
        # remaps surfaced through controller stats are not in the
        # LifetimeResult; report deaths as the observable.
        mean_deaths = sum(r.deaths for r in results) / len(results)
        lines.append(
            f"{spare_fraction:7.0%}{mean_writes:15.0f}{'-':>8}{mean_deaths:8.0f}"
        )
    lines.append("remap-on-death trades spare capacity for end-of-life slack")
    report("extension_freep_remapping", "\n".join(lines))

    base = sum(r.writes_issued for r in rows[0.0]) / 2
    spared = sum(r.writes_issued for r in rows[0.25]) / 2
    for results in rows.values():
        assert all(result.failed for result in results)
    # Remapping never hurts materially at this criterion.
    assert spared >= 0.9 * base
