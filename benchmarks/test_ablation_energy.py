"""Ablation: array write energy per write-back across the systems.

The paper's Section I motivates compression partly by energy: fewer
programmed cells means less SET/RESET energy.  This bench quantifies
per-write array energy under the four systems (wear-free runs so the
comparison is about steady-state flips, not end-of-life behaviour).
"""

from repro.core import EVALUATED_SYSTEMS
from repro.lifetime import build_simulator


def test_ablation_write_energy(benchmark, report, bench_scale):
    workloads = ("milc", "gcc", "lbm")

    def measure():
        table = {}
        for workload in workloads:
            row = {}
            for system in EVALUATED_SYSTEMS:
                simulator = build_simulator(
                    system, workload,
                    n_lines=bench_scale["n_lines"] // 2,
                    endurance_mean=10**6,  # wear-free steady state
                    seed=0,
                )
                result = simulator.run(max_writes=25_000)
                row[system] = result
            table[workload] = row
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [f"{'workload':10}" + "".join(f"{s:>12}" for s in EVALUATED_SYSTEMS)
             + "   (pJ/write)"]
    for workload, row in table.items():
        lines.append(
            f"{workload:10}"
            + "".join(
                f"{row[system].write_energy_per_write_pj():12.0f}"
                for system in EVALUATED_SYSTEMS
            )
        )
    lines.append("compression cuts array energy roughly with the flip count")
    report("ablation_write_energy", "\n".join(lines))

    for workload, row in table.items():
        baseline = row["baseline"].write_energy_per_write_pj()
        assert baseline > 0
        if workload == "milc":  # highly compressible: clear energy win
            assert row["comp_wf"].write_energy_per_write_pj() < 0.8 * baseline
        # No system more than modestly exceeds baseline energy.
        for system in EVALUATED_SYSTEMS:
            assert row[system].write_energy_per_write_pj() < 1.3 * baseline
