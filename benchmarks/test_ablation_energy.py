"""Energy x lifetime x throughput Pareto sweep (BENCH_energy.json).

The paper's Section I motivates compression partly by energy: fewer
programmed cells means less SET/RESET energy.  PR 9 widens that single
ablation into a full sweep: every evaluated system plus the
energy-encoding variants (WIRE, restricted coset) runs to the failure
criterion on the workload trio, each run is priced through the
per-operation :class:`repro.energy.EnergyModel` (array pulses +
encoding flag cells + correction logic), joined with the Section V-B
read-throughput model, and the per-workload Pareto frontier is marked.
The full point set is written to ``benchmarks/results/BENCH_energy.json``
for downstream tooling (same record shape as ``python -m repro energy``).
"""

import json
from pathlib import Path

from repro.core import EVALUATED_SYSTEMS
from repro.energy import run_energy_sweep

RESULTS_DIR = Path(__file__).parent / "results"

#: The energy-encoding variants swept next to the paper's four systems.
ENCODED_SYSTEMS = ("baseline_wire", "comp_wf_wire", "comp_coset", "comp_wf_coset")
SWEPT_SYSTEMS = EVALUATED_SYSTEMS + ENCODED_SYSTEMS

#: Non-encoded reference for each encoded variant (energy-reduction
#: assertions compare these pairs).
BASELINE_OF = {
    "baseline_wire": "baseline",
    "comp_wf_wire": "comp_wf",
    "comp_coset": "comp",
    "comp_wf_coset": "comp_wf",
}


def test_energy_pareto_sweep(benchmark, report, bench_scale):
    def measure():
        return run_energy_sweep(
            systems=SWEPT_SYSTEMS,
            n_lines=bench_scale["n_lines"],
            endurance_mean=float(bench_scale["endurance_mean"]),
            seed=0,
        )

    points = benchmark.pedantic(measure, rounds=1, iterations=1)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_energy.json").write_text(
        json.dumps({"points": points}, indent=2) + "\n"
    )

    by_key = {(p["workload"], p["system"]): p for p in points}
    workloads = sorted({p["workload"] for p in points})

    lines = [
        f"{'workload':9}{'system':16}{'pJ/write':>10}{'writes':>10}"
        f"{'Mreads/s':>10}  frontier"
    ]
    for workload in workloads:
        group = sorted(
            (p for p in points if p["workload"] == workload),
            key=lambda p: p["energy_per_write_pj"],
        )
        for p in group:
            lines.append(
                f"{workload:9}{p['system']:16}"
                f"{p['energy_per_write_pj']:10.1f}{p['writes_issued']:10d}"
                f"{p['throughput_mreads_per_s']:10.1f}"
                f"  {'*' if p['pareto'] else ''}"
            )
    lines.append("* = on the workload's energy/lifetime/throughput frontier")
    report("energy_pareto", "\n".join(lines))

    for workload in workloads:
        # Every run reached the failure criterion (the lifetime axis is
        # comparable) and priced to a positive energy.
        for system in SWEPT_SYSTEMS:
            p = by_key[(workload, system)]
            assert p["failed"], f"{system}/{workload} did not run to failure"
            assert p["energy_per_write_pj"] > 0
        # The encoders exist to cut write energy: each encoded variant
        # must beat its non-encoded reference on pJ/write (flag-cell
        # and correction costs included).  The one sanctioned exception
        # is the *restricted* coset on a barely compressible workload
        # (lbm): with no compression slack the selectors are pinned to
        # identity, so the best it can do is track its reference.
        for encoded, reference in BASELINE_OF.items():
            enc = by_key[(workload, encoded)]
            ref = by_key[(workload, reference)]
            no_slack = enc["encoding"] == "coset" and workload == "lbm"
            bound = 1.02 if no_slack else 1.0
            assert (
                enc["energy_per_write_pj"] < bound * ref["energy_per_write_pj"]
            ), (
                f"{encoded} did not reduce write energy vs {reference} "
                f"on {workload}"
            )
        # Frontier sanity: at least one point is non-dominated, and
        # every frontier member's energy is no worse than the worst.
        frontier = [p for p in points
                    if p["workload"] == workload and p["pareto"]]
        assert frontier
        worst = max(p["energy_per_write_pj"] for p in points
                    if p["workload"] == workload)
        assert all(p["energy_per_write_pj"] <= worst for p in frontier)
