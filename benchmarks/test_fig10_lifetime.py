"""Figure 10: lifetime of Comp / Comp+W / Comp+WF normalized to the
baseline system, per workload.

This is the paper's headline experiment.  The run is shared with
Figure 12 and Table IV through the session cache (they derive different
statistics from the same simulations).
"""

import numpy as np

from repro.analysis import geometric_mean_normalized, run_full_study
from repro.traces import WORKLOAD_ORDER


def test_fig10_normalized_lifetime(benchmark, report, bench_scale, shared_cache):
    def measure():
        return run_full_study(
            workloads=WORKLOAD_ORDER,
            n_lines=bench_scale["n_lines"],
            endurance_mean=bench_scale["endurance_mean"],
            seed=0,
            workers=bench_scale["workers"],
        )

    studies = benchmark.pedantic(measure, rounds=1, iterations=1)
    shared_cache["fig10_studies"] = studies

    lines = [f"{'workload':12}{'Comp':>8}{'Comp+W':>9}{'Comp+WF':>9}"]
    for name in WORKLOAD_ORDER:
        normalized = studies[name].normalized
        lines.append(
            f"{name:12}{normalized['comp']:8.2f}{normalized['comp_w']:9.2f}"
            f"{normalized['comp_wf']:9.2f}"
        )
    averages = {
        system: geometric_mean_normalized(studies, system)
        for system in ("comp", "comp_w", "comp_wf")
    }
    lines.append(
        f"{'Average':12}{averages['comp']:8.2f}{averages['comp_w']:9.2f}"
        f"{averages['comp_wf']:9.2f}"
    )
    lines.append("paper averages: Comp 1.35x, Comp+W 3.2x, Comp+WF 4.3x")
    report("fig10_normalized_lifetime", "\n".join(lines))

    # Shape assertions from Section V-A.  Medians are used where the
    # paper uses the arithmetic mean: the highly compressible apps are
    # extreme outliers at simulation scale (13-20x, matching the paper's
    # annotated tall bars) and would otherwise dominate the average.
    comp_values = {name: studies[name].normalized["comp"] for name in WORKLOAD_ORDER}
    comp_w_values = {name: studies[name].normalized["comp_w"] for name in WORKLOAD_ORDER}
    wf_values = {name: studies[name].normalized["comp_wf"] for name in WORKLOAD_ORDER}

    # 1. Naive Comp hurts at least one workload (size-volatile or
    #    low-CR) while helping highly compressible ones.
    assert min(comp_values.values()) < 1.0
    assert comp_values["milc"] > 1.0

    # 2. Comp+W repairs Comp's failure mode: its worst case is at least
    #    as good as Comp's (up to noise), and the typical workload
    #    improves.
    assert min(comp_w_values.values()) > 0.92 * min(comp_values.values())
    assert np.median(list(comp_w_values.values())) >= 0.95 * np.median(
        list(comp_values.values())
    )

    # 3. Comp+WF is the best system: it wins or ties Comp+W on most
    #    workloads and achieves a clear multi-x typical gain.
    wins = sum(
        wf_values[name] >= 0.95 * comp_w_values[name] for name in WORKLOAD_ORDER
    )
    assert wins >= 11  # >= ~75% of the 15 workloads
    assert averages["comp_wf"] > 2.0
    assert np.median(list(wf_values.values())) > 1.05

    # 4. High-compressibility workloads gain the most under Comp+WF.
    high = np.mean([wf_values[name] for name in ("sjeng", "zeusmp", "milc", "cactusADM")])
    low = np.mean([wf_values[name] for name in ("GemsFDTD", "lbm", "leslie3d")])
    assert high > low
