"""Figure 9: Monte Carlo failure probability of a single block vs the
number of injected faults, for ECP-6 / SAFER-32 / Aegis 17x31 and a
range of compressed data sizes."""

import numpy as np

from repro.correction import aegis17x31, ecp6, safer32
from repro.faultinjection import failure_probability, tolerable_faults


def test_fig09_failure_probability_surfaces(benchmark, report, bench_scale):
    trials = bench_scale["trials"]
    schemes = (ecp6(), safer32(), aegis17x31())
    sizes = (1, 16, 32, 40, 64)
    fault_counts = tuple(range(0, 129, 16))

    def measure():
        rng = np.random.default_rng(0)
        surfaces = {}
        for scheme in schemes:
            grid = {}
            for size in sizes:
                grid[size] = [
                    failure_probability(
                        scheme, size, count, trials, rng
                    ).failure_probability
                    for count in fault_counts
                ]
            surfaces[scheme.name] = grid
        crossings = {
            scheme.name: tolerable_faults(
                scheme, 32, trials=max(60, trials // 2), seed=3
            )
            for scheme in schemes
        }
        return surfaces, crossings

    surfaces, crossings = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = []
    header = "faults:    " + "".join(f"{count:>6}" for count in fault_counts)
    for scheme_name, grid in surfaces.items():
        lines.append(f"--- {scheme_name} (P[block failure]) ---")
        lines.append(header)
        for size in sizes:
            row = "".join(f"{p:6.2f}" for p in grid[size])
            lines.append(f"  {size:3d}B   {row}")
    lines.append("")
    lines.append("tolerable faults at 32B data, P(fail)=0.5 "
                 "(paper: ECP-6 ~18, SAFER-32 ~38, Aegis ~41):")
    for name, value in crossings.items():
        lines.append(f"  {name:12}: {value:.1f}")
    report("fig09_montecarlo_failure_probability", "\n".join(lines))

    # Shape checks: smaller data tolerates more faults; advanced schemes
    # beat ECP; the 32-byte crossings keep the paper's ordering.
    for grid in surfaces.values():
        assert grid[64][-1] == 1.0  # 128 faults kill full-line storage
        assert grid[1][2] <= grid[64][2]  # 1B vs 64B at 32 faults
    assert 12 <= crossings["ecp6"] <= 28
    assert crossings["safer32"] > 1.4 * crossings["ecp6"]
    assert crossings["aegis17x31"] > 1.4 * crossings["ecp6"]
