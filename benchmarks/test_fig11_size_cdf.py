"""Figure 11: CDF of each address's largest compressed write, for gcc
(spread out) vs milc (bottom-heavy)."""

from repro.analysis import cdf_fraction_below, fig11_max_size_cdf
from repro.traces import get_profile


def test_fig11_max_compressed_size_cdf(benchmark, report, bench_scale):
    def measure():
        return {
            name: fig11_max_size_cdf(
                get_profile(name),
                n_lines=128,
                writes=2 * bench_scale["writes"],
                seed=0,
            )
            for name in ("gcc", "milc")
        }

    cdfs = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = []
    for name, (values, cumulative) in cdfs.items():
        lines.append(f"--- {name}: CDF of per-address max compressed size ---")
        for threshold in (8, 16, 25, 32, 40, 48, 56, 64):
            fraction = cdf_fraction_below(values, cumulative, threshold + 0.5)
            lines.append(f"  <= {threshold:2d}B : {fraction:6.1%}")
    lines.append("paper: ~80% of milc addresses < 25B; only ~10% for gcc")
    report("fig11_max_size_cdf", "\n".join(lines))

    milc_below = cdf_fraction_below(*cdfs["milc"], 25)
    gcc_below = cdf_fraction_below(*cdfs["gcc"], 25)
    assert milc_below > 0.5
    assert gcc_below < 0.35
    assert milc_below > 2 * gcc_below
