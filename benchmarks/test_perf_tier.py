"""Hybrid DRAM-tier benchmark: PCM write traffic and lifetime (CARAM).

Quantifies what the content-aware DRAM front tier (:mod:`repro.tier`)
buys on datacenter-shaped request streams: PCM writes/sec through the
sharded fleet and -- the number the tier exists for -- the *write
traffic reduction*, the fraction of demand writes that never reach the
PCM medium, at two DRAM capacities on the ``memcached`` and ``nginx``
service workloads.  A Figure-10-style companion records the lifetime
effect: ``comp`` and ``comp_wf`` with and without the tier at the same
two capacities.  Results land in ``benchmarks/results/BENCH_caram.json``.

Timing numbers are informational (shared runners drift); the blocking
assertions are behavioural:

* capacity 0 is bit-identical to a bare fleet (stats equality);
* the tier's accounting balances before any flush:
  ``pcm_demand_writes + absorbed - evictions == requests``;
* the post-flush write-traffic reduction is never negative, and the
  deeper tier never reduces *less* than the shallower one.

Scale knobs for smoke runs:

=========================== ======== ================================
variable                    default  meaning
=========================== ======== ================================
``REPRO_CARAM_REQUESTS``        4000 requests per workload replay
``REPRO_CARAM_MAX_WRITES``    400000 lifetime-run write budget
=========================== ======== ================================
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.config import comp_wf
from repro.lifetime import run_system_comparison
from repro.service import ShardedController, make_stream

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_caram.json"

# -- pinned scenario (comparability anchor) -----------------------------
LINES = 96
SHARDS = 2
BATCH = 32
SEED = 11
ENDURANCE_MEAN = 2000.0  # wear-free steady state: traffic, not death
TIER_CAPACITIES = (8, 24)  # DRAM lines per shard
WORKLOADS = ("memcached", "nginx")

# -- lifetime companion (Figure-10-style, scaled) -----------------------
LIFETIME_WORKLOAD = "mcf"
LIFETIME_SYSTEMS = ("comp", "comp_wf")
LIFETIME_LINES = 48
LIFETIME_ENDURANCE = 30.0

REQUESTS = int(os.environ.get("REPRO_CARAM_REQUESTS", 4000))
MAX_WRITES = int(os.environ.get("REPRO_CARAM_MAX_WRITES", 400_000))


def _stream(workload):
    stream = make_stream(workload, LINES, SEED)
    return [(r.line, r.data) for r in stream.iter_requests(REQUESTS)]


def _fleet(tier_lines):
    return ShardedController(
        comp_wf(), LINES, shards=SHARDS, endurance_mean=ENDURANCE_MEAN,
        seed=SEED, n_banks=8, tier_lines=tier_lines,
    )


def _drive(fleet, stream) -> float:
    started = time.perf_counter()
    for start in range(0, len(stream), BATCH):
        fleet.write_batch(stream[start:start + BATCH])
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def report():
    payload = {
        "scenario": {
            "lines": LINES,
            "shards": SHARDS,
            "requests": REQUESTS,
            "batch": BATCH,
            "seed": SEED,
            "endurance_mean": ENDURANCE_MEAN,
            "system": "comp_wf",
            "tier_capacities_per_shard": list(TIER_CAPACITIES),
        },
        "cpu_count": os.cpu_count(),
        "note": (
            "write_traffic_reduction = 1 - hybrid PCM writes / bare PCM "
            "writes, measured after a full tier flush so every request "
            "is durably on the medium in both columns. writes/sec is "
            "informational (single-run, drifts with the host); recorded "
            "on a small container, rerun at scale for stable timing."
        ),
        "workloads": {},
        "lifetime": {
            "scenario": {
                "workload": LIFETIME_WORKLOAD,
                "systems": list(LIFETIME_SYSTEMS),
                "n_lines": LIFETIME_LINES,
                "endurance_mean": LIFETIME_ENDURANCE,
                "max_writes": MAX_WRITES,
                "tier_capacities": [0, *TIER_CAPACITIES],
            },
            "writes_to_failure": {},
        },
    }
    yield payload
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("workload", WORKLOADS)
def test_write_traffic_reduction(report, workload):
    stream = _stream(workload)

    bare = _fleet(0)
    bare_elapsed = _drive(bare, stream)
    bare_pcm_writes = bare.stats.demand_writes
    assert bare_pcm_writes == len(stream)

    entry = {
        "bare": {
            "writes_per_sec": round(len(stream) / bare_elapsed, 1),
            "pcm_writes": bare_pcm_writes,
        },
        "tiers": {},
    }
    previous_reduction = -1.0
    for capacity in TIER_CAPACITIES:
        hybrid = _fleet(capacity)
        elapsed = _drive(hybrid, stream)
        stats = hybrid.stats
        # Blocking: demand-stream conservation before any flush.
        assert (
            stats.demand_writes
            + stats.tier_pcm_writes_avoided
            - stats.tier_evictions
            == len(stream)
        )
        flushed = hybrid.flush_tiers()
        pcm_writes = hybrid.stats.demand_writes  # now includes the flush
        reduction = 1.0 - pcm_writes / bare_pcm_writes
        # Blocking: the tier must never *add* PCM traffic, and capacity
        # must be monotone -- more DRAM, no less coalescing.
        assert reduction >= 0.0
        assert reduction >= previous_reduction
        previous_reduction = reduction
        entry["tiers"][str(capacity)] = {
            "writes_per_sec": round(len(stream) / elapsed, 1),
            "pcm_writes": pcm_writes,
            "flushed_on_drain": flushed,
            "coalesced_writes": stats.tier_coalesced_writes,
            "dedup_hits": stats.tier_dedup_hits,
            "write_traffic_reduction": round(reduction, 4),
        }
    report["workloads"][workload] = entry


def test_capacity_zero_is_bit_identical_to_bare(report):
    """The safety rail the whole subsystem hangs on, at fleet scale."""
    stream = _stream("memcached")
    bare, zero = _fleet(0), ShardedController(
        comp_wf(), LINES, shards=SHARDS, endurance_mean=ENDURANCE_MEAN,
        seed=SEED, n_banks=8,
    )
    _drive(bare, stream)
    _drive(zero, stream)
    assert bare.stats == zero.stats
    for line in range(LINES):
        assert bare.read(line) == zero.read(line)


def test_lifetime_with_and_without_tier(report):
    """Figure-10-style companion: writes-to-failure for comp/comp_wf
    bare and behind the tier at both capacities."""
    for capacity in (0, *TIER_CAPACITIES):
        results = run_system_comparison(
            LIFETIME_WORKLOAD, systems=LIFETIME_SYSTEMS,
            n_lines=LIFETIME_LINES, endurance_mean=LIFETIME_ENDURANCE,
            seed=3, max_writes=MAX_WRITES, tier_lines=capacity,
        )
        for system, result in results.items():
            report["lifetime"]["writes_to_failure"].setdefault(
                system, {}
            )[str(capacity)] = {
                "writes_issued": result.writes_issued,
                "failed": result.failed,
                "pcm_stored_writes": result.stored_writes,
            }
            if capacity:
                bare = report["lifetime"]["writes_to_failure"][system]["0"]
                # The tier absorbs demand writes, so the hybrid always
                # survives at least as many as the bare system.
                assert result.writes_issued >= bare["writes_issued"]
