#!/usr/bin/env python3
"""Consolidation study: mixed workloads sharing one PCM memory.

The paper evaluates homogeneous (rate-mode) workloads; consolidated
systems interleave different programs over the same physical memory.
This example partitions the memory between two programs and asks how
the compression architecture behaves when a highly compressible tenant
(milc) shares the device with a poorly compressible one (lbm):

* overall lifetime under Baseline vs Comp+WF;
* whether the compressible tenant's small writes keep the shared
  device alive longer than lbm alone would.

Examples:
  python examples/consolidation_study.py
  python examples/consolidation_study.py --tenants milc lbm --shares 3 1
"""

import argparse

from repro.core import comp_wf, baseline
from repro.lifetime import LifetimeSimulator
from repro.traces import MixMember, MixedWorkload, WORKLOAD_ORDER, get_profile


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tenants", nargs=2, default=["milc", "lbm"],
                        choices=sorted(WORKLOAD_ORDER))
    parser.add_argument("--shares", nargs=2, type=float, default=[1.0, 1.0])
    parser.add_argument("--lines", type=int, default=64)
    parser.add_argument("--endurance", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def run(config, source, args):
    simulator = LifetimeSimulator(
        config=config,
        source=source,
        n_lines=args.lines,
        endurance_mean=args.endurance,
        seed=args.seed + 1,
    )
    return simulator.run(max_writes=3_000_000)


def main() -> None:
    args = parse_args()
    mix = MixedWorkload(
        [
            MixMember(get_profile(args.tenants[0]), share=args.shares[0]),
            MixMember(get_profile(args.tenants[1]), share=args.shares[1]),
        ],
        n_lines=args.lines,
        seed=args.seed,
    )
    print(f"tenants: {mix.name}, shares {args.shares[0]:.0f}:{args.shares[1]:.0f}, "
          f"{args.lines} lines, endurance {args.endurance:.0f}\n")

    results = {}
    for config in (baseline(), comp_wf()):
        mix_fresh = MixedWorkload(
            [
                MixMember(get_profile(args.tenants[0]), share=args.shares[0]),
                MixMember(get_profile(args.tenants[1]), share=args.shares[1]),
            ],
            n_lines=args.lines,
            seed=args.seed,
        )
        results[config.name] = run(config, mix_fresh, args)

    print(f"{'system':10}{'writes to 50% dead':>20}{'flips/write':>13}"
          f"{'revivals':>10}")
    for name, result in results.items():
        print(f"{name:10}{result.writes_issued:>20d}"
              f"{result.flips_per_write:>13.1f}{result.revivals:>10d}")
    gain = results["comp_wf"].writes_issued / results["baseline"].writes_issued
    print(f"\nComp+WF extends the consolidated memory's lifetime {gain:.2f}x")


if __name__ == "__main__":
    main()
