#!/usr/bin/env python3
"""Design-space sweep: tuning the proposed architecture's knobs.

Sweeps one configuration knob of the Comp+WF system at a time and
reports lifetime (writes to 50%-capacity failure) plus flips per write:

* the Figure 8 thresholds (Threshold1 / Threshold2);
* the Start-Gap period psi;
* the correction scheme (ECP-6 / SAFER-32 / Aegis 17x31);
* the registered comp_wf ablation/extension variants
  (``python -m repro systems`` lists them).

Examples:
  python examples/design_space_sweep.py --workload bzip2
  python examples/design_space_sweep.py --workload milc --lines 64 --endurance 40
"""

import argparse

from repro.engine import get_system, system_names
from repro.lifetime import build_simulator
from repro.traces import WORKLOAD_ORDER


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="bzip2", choices=sorted(WORKLOAD_ORDER))
    parser.add_argument("--lines", type=int, default=48)
    parser.add_argument("--endurance", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def run(args, system="comp_wf", **overrides):
    simulator = build_simulator(
        system,
        args.workload,
        n_lines=args.lines,
        endurance_mean=args.endurance,
        seed=args.seed,
        **overrides,
    )
    return simulator.run(max_writes=3_000_000)


def main() -> None:
    args = parse_args()
    print(f"workload={args.workload}, lines={args.lines}, "
          f"endurance={args.endurance:.0f}\n")

    print("Figure 8 thresholds (T1 always-compress, T2 minor-change band):")
    for t1, t2 in ((8, 8), (16, 8), (32, 8), (16, 4), (16, 16)):
        result = run(args, threshold1=t1, threshold2=t2)
        print(f"  T1={t1:2d} T2={t2:2d}: writes={result.writes_issued:8d}  "
              f"flips/wr={result.flips_per_write:6.1f}  "
              f"compressed={result.compressed_write_fraction:5.1%}")

    print("\nStart-Gap psi (writes per gap move):")
    for psi in (25, 100, 400):
        result = run(args, start_gap_psi=psi)
        print(f"  psi={psi:4d}: writes={result.writes_issued:8d}  "
              f"flips/wr={result.flips_per_write:6.1f}")

    print("\ncorrection scheme:")
    for scheme in ("ecp6", "safer32", "aegis17x31"):
        result = run(args, correction_scheme=scheme)
        print(f"  {scheme:12}: writes={result.writes_issued:8d}  "
              f"faults/dead block={result.avg_faults_per_dead_block:5.1f}")

    print("\nregistered comp_wf variants (see `python -m repro systems`):")
    variants = [n for n in system_names() if n.startswith("comp_wf")]
    for name in variants:
        result = run(args, system=name)
        print(f"  {name:20}: writes={result.writes_issued:8d}  "
              f"({get_system(name).description})")


if __name__ == "__main__":
    main()
