#!/usr/bin/env python3
"""Compression explorer: per-workload compressibility statistics.

Prints, for each requested workload, the Figure 3 / Figure 6 /
Figure 11 statistics of its synthetic write-back stream: mean
compressed size under BDI, FPC and best-of-both; the probability that
consecutive writes change size; and the per-address max-size CDF.

Examples:
  python examples/compression_explorer.py --workloads milc gcc bzip2
"""

import argparse

from repro.analysis import (
    cdf_fraction_below,
    fig3_compressed_sizes,
    fig6_size_change_probability,
    fig11_max_size_cdf,
)
from repro.traces import WORKLOAD_ORDER, get_profile


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", nargs="+", default=["milc", "gcc", "bzip2"],
                        choices=sorted(WORKLOAD_ORDER))
    parser.add_argument("--writes", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    for name in args.workloads:
        profile = get_profile(name)
        row = fig3_compressed_sizes(profile, writes=args.writes, seed=args.seed)
        change = fig6_size_change_probability(
            profile, writes=args.writes, seed=args.seed
        )
        values, cumulative = fig11_max_size_cdf(
            profile, writes=args.writes, seed=args.seed
        )

        print(f"== {name} (Table III: WPKI={profile.wpki}, CR={profile.cr}, "
              f"class={profile.comp_class.value}) ==")
        print(f"   mean compressed size: BDI {row.bdi:5.1f}B | "
              f"FPC {row.fpc:5.1f}B | BEST {row.best:5.1f}B "
              f"(CR {row.best_ratio:.2f})")
        print(f"   P(consecutive writes change size): {change:.2f}")
        ladder = "   max-size CDF: " + "  ".join(
            f"<= {threshold}B:{cdf_fraction_below(values, cumulative, threshold + 0.5):5.0%}"
            for threshold in (8, 16, 25, 40, 64)
        )
        print(ladder)
        print()


if __name__ == "__main__":
    main()
