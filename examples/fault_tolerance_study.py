#!/usr/bin/env python3
"""Fault-tolerance study: how many stuck-at faults can a block absorb?

Reproduces Figure 9's analysis interactively: for each correction
scheme (ECP-6, SAFER-32, Aegis 17x31) and a range of compressed data
sizes, Monte Carlo fault injection estimates the fault count at which a
block's failure probability crosses 50%.

Examples:
  python examples/fault_tolerance_study.py
  python examples/fault_tolerance_study.py --sizes 8 32 64 --trials 400
"""

import argparse

from repro.correction import PAPER_SCHEMES, make_scheme
from repro.faultinjection import tolerable_faults


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", nargs="+", type=int, default=[8, 16, 32, 48, 64],
                        help="compressed data sizes (bytes)")
    parser.add_argument("--trials", type=int, default=150,
                        help="Monte Carlo trials per point")
    parser.add_argument("--target", type=float, default=0.5,
                        help="failure-probability threshold")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    schemes = [make_scheme(name) for name in PAPER_SCHEMES]

    header = f"{'data size':>10}" + "".join(f"{s.name:>14}" for s in schemes)
    print(f"tolerable faults per 512-bit block at P(fail)={args.target}")
    print(header)
    print("-" * len(header))
    for size in args.sizes:
        row = f"{size:>9}B"
        for scheme in schemes:
            value = tolerable_faults(
                scheme, size, target_probability=args.target,
                trials=args.trials, seed=args.seed,
            )
            row += f"{value:14.1f}"
        print(row)
    print("\npaper (32B row): ECP-6 ~18, SAFER-32 ~38, Aegis ~41")
    print("smaller windows -> more usable cells to slide into -> more faults")


if __name__ == "__main__":
    main()
