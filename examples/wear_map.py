#!/usr/bin/env python3
"""Wear map: where do the bit flips land inside a line?

Runs the same write stream through Comp (windows pinned at the least
significant bytes) and Comp+W (intra-line rotation) and renders the
per-cell program counts as ASCII heatmaps.  This is Section V-A's
non-uniformity argument made visible: naive compression hammers the
LSB cells, rotation spreads the same work across the whole line.

Examples:
  python examples/wear_map.py
  python examples/wear_map.py --workload zeusmp --writes 30000
"""

import argparse

import numpy as np

from repro.analysis import wear_imbalance, wear_map
from repro.core import CompressedPCMController, comp, comp_w
from repro.pcm import EnduranceModel
from repro.traces import SyntheticWorkload, WORKLOAD_ORDER, get_profile


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="milc", choices=sorted(WORKLOAD_ORDER))
    parser.add_argument("--lines", type=int, default=16)
    parser.add_argument("--writes", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def wear_under(config, args):
    controller = CompressedPCMController(
        config=config,
        n_lines=args.lines,
        endurance_model=EnduranceModel(mean=10**9, cov=0.0),  # wear-free
        rng=np.random.default_rng(args.seed),
        # Rotate briskly so the map shows the mechanism at this scale.
    )
    generator = SyntheticWorkload(
        get_profile(args.workload), n_lines=args.lines, seed=args.seed + 1
    )
    for write in generator.iter_writes(args.writes):
        controller.write(write.line, write.data)
    return controller.memory.counts


def main() -> None:
    args = parse_args()
    naive = wear_under(comp(), args)
    rotated = wear_under(comp_w(intra_counter_limit=64), args)

    print(wear_map(naive, label=f"Comp ({args.workload}): windows pinned at LSB"))
    print()
    print(wear_map(rotated, label=f"Comp+W ({args.workload}): rotated windows"))
    print()
    print(f"wear imbalance (std/mean per cell): "
          f"Comp {wear_imbalance(naive):.2f} vs "
          f"Comp+W {wear_imbalance(rotated):.2f}")
    print("lower is more even; Comp+W should be clearly lower")


if __name__ == "__main__":
    main()
