#!/usr/bin/env python3
"""Quickstart: the collaborative compression architecture in five minutes.

Walks the paper's core mechanism end to end on a tiny PCM region:

1. compress a cache line with the controller's best-of-BDI/FPC policy;
2. write it through the compression-aware controller and read it back;
3. hammer one line until cells wear out and watch the compression
   window slide past the faults -- the block keeps working far beyond
   ECP-6's nominal 6-fault limit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.compression import BestOfCompressor
from repro.core import CompressedPCMController, comp_wf
from repro.pcm import EnduranceModel


def main() -> None:
    # -- 1. Compression --------------------------------------------------
    best = BestOfCompressor()
    line = np.arange(16, dtype=np.uint32).tobytes()  # small integers
    result = best.compress(line)
    print("1) compression")
    print(f"   64-byte line of small integers -> {result.size_bytes} bytes "
          f"via {result.algorithm} (encoding {result.encoding})")
    assert best.decompress(result) == line

    # -- 2. The controller ------------------------------------------------
    controller = CompressedPCMController(
        config=comp_wf(),
        n_lines=16,
        endurance_model=EnduranceModel(mean=2000, cov=0.15),
        rng=np.random.default_rng(7),
    )
    outcome = controller.write(3, line)
    print("2) controller write")
    print(f"   stored compressed={outcome.compressed}, "
          f"window=[{outcome.window_start}, "
          f"{outcome.window_start + outcome.size_bytes})B, "
          f"{outcome.flips} cells programmed")
    assert controller.read(3) == line

    # -- 3. Surviving wear-out ---------------------------------------------
    print("3) wear-out under a write-hot line")
    hammer = CompressedPCMController(
        config=comp_wf(start_gap_psi=10**9),  # pin the mapping for the demo
        n_lines=4,
        endurance_model=EnduranceModel(mean=60, cov=0.15),
        rng=np.random.default_rng(1),
    )
    rng = np.random.default_rng(2)
    worst_faults = 0
    for step in range(20_000):
        payload = (np.arange(16) + int(rng.integers(1 << 20))).astype(
            np.uint32
        ).tobytes()
        result = hammer.write(0, payload)
        if result.died:
            print(f"   block died after {step + 1} writes "
                  f"with {hammer.memory.fault_count(result.physical)} faulty "
                  f"cells (ECP-6 alone dies at 7)")
            break
        worst_faults = max(
            worst_faults, hammer.memory.fault_count(hammer.start_gap.map(0))
        )
    print(f"   max faults while still serving writes: {worst_faults}")
    assert worst_faults > 6, "compression should outlive ECP-6's limit"
    print("done: see examples/lifetime_study.py for the full Figure 10 run")


if __name__ == "__main__":
    main()
