#!/usr/bin/env python3
"""Memory-service demo: a sharded PCM fleet surviving a worker crash.

Walks the service mode end to end on a tiny fleet:

1. partition a global address space with a `ShardMap` and show that a
   sharded fleet is bit-identical to independent per-shard controllers;
2. boot the multi-process `MemoryService`, drive a memcached-shaped
   workload through it, and read the JSONL fleet telemetry back;
3. SIGTERM-kill a shard worker mid-run and watch quarantine-and-replay
   recovery reconstruct the exact state -- the final fleet view matches
   the in-process golden bit for bit.

Run:  python examples/service_demo.py [--shards 4] [--requests 2000]
"""

import argparse
import json
import os
import signal
import tempfile
import time
from pathlib import Path

from repro.core.config import comp_wf
from repro.engine import ShardMap
from repro.service import MemoryService, ShardedController, make_stream

LINES = 64
RUN = dict(endurance_mean=40.0, endurance_cov=0.2, seed=11, n_banks=4)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--requests", type=int, default=2000)
    args = parser.parse_args()

    # -- 1. The shard map ------------------------------------------------
    shard_map = ShardMap(LINES, args.shards)
    print("1) shard map")
    print(f"   {LINES} lines -> {args.shards} contiguous slices: "
          + ", ".join(f"[{r.start},{r.stop})" for r in shard_map.ranges))
    stream = [
        (r.line, r.data)
        for r in make_stream("memcached", LINES, RUN["seed"])
        .iter_requests(args.requests)
    ]
    # Chunk the reference replay exactly like the service submissions
    # below: the batch scheduler's wave telemetry depends on segment
    # boundaries, and the recovery check compares every stats field.
    fleet = ShardedController(comp_wf(), LINES, shards=args.shards, **RUN)
    for start in range(0, len(stream), 64):
        fleet.write_batch(stream[start:start + 64])
    solos = [
        ShardedController(
            comp_wf(), shard_map.lines_of(shard), shards=1,
            endurance_mean=RUN["endurance_mean"],
            endurance_cov=RUN["endurance_cov"], seed=seed,
            n_banks=RUN["n_banks"],
        )
        for shard, seed in enumerate(shard_map.shard_seeds(RUN["seed"]))
    ]
    for start in range(0, len(stream), 64):
        for shard, bucket in enumerate(
            shard_map.partition(stream[start:start + 64])
        ):
            if bucket:
                solos[shard].write_batch(bucket)
    solo_stats = [solo.stats for solo in solos]
    assert solo_stats == fleet.shard_stats(), "sharding must be pure routing"
    print(f"   fleet == {args.shards} independent controllers: "
          f"{fleet.stats.stored_writes} stored, "
          f"{fleet.stats.lost_writes} lost, "
          f"dead fraction {fleet.dead_fraction:.4f}")

    # -- 2 & 3. The service, plus a mid-run worker kill -------------------
    print("2) multi-process service with a mid-run SIGTERM")
    victim = args.shards - 1
    with tempfile.TemporaryDirectory(prefix="service-demo-") as tmp:
        telemetry = Path(tmp)
        with MemoryService(
            comp_wf(), LINES, shards=args.shards,
            telemetry_dir=str(telemetry),
            heartbeat_interval=max(1, args.requests // 8),
            fleet_interval=max(1, args.requests // 8), **RUN,
        ) as service:
            half = len(stream) // 2
            killed = False
            for start in range(0, len(stream), 64):
                if not killed and start >= half:
                    pid = service.worker_pid(victim)
                    os.kill(pid, signal.SIGTERM)
                    while service._workers[victim].is_alive():
                        time.sleep(0.01)
                    killed = True
                    print(f"   killed shard {victim} worker (pid {pid}) "
                          f"after {service.requests_routed} routed requests")
                service.submit(stream[start:start + 64])
            result = service.stop()

        assert result.recoveries == 1
        assert result.stats == fleet.stats, "recovery must be exact"
        print(f"   recovered exactly: fleet stats identical after replaying "
              f"the shard's history ({result.recoveries} recovery)")

        print("3) telemetry")
        events = [
            json.loads(line)
            for line in (telemetry / "fleet.jsonl").read_text().splitlines()
        ]
        for event in events:
            if event["event"] == "shard_recovered":
                print(f"   shard_recovered: shard={event['shard']} "
                      f"attempt={event['attempt']} "
                      f"replayed_batches={event['replayed_batches']}")
        quarantined = telemetry / f"shard-{victim}" / "attempt-1"
        print(f"   dead worker's stream quarantined under "
              f"{quarantined.relative_to(telemetry)}/")
        beats = [e for e in events if e["event"] == "fleet_heartbeat"]
        print(f"   {len(beats)} fleet heartbeats; final: "
              f"{beats[-1]['requests_routed']} routed, "
              f"dead fraction {beats[-1]['dead_fraction']:.4f}")


if __name__ == "__main__":
    main()
