#!/usr/bin/env python3
"""Cache-pressure study: how LLC size shapes PCM write traffic and wear.

The paper's WPKI values are measured behind a 4 MB LLC (Table II/III).
This example uses the access-stream front-end to make WPKI an *output*:
a load/store stream with locality runs through write-back caches of
different sizes, and the resulting write-back streams drive the PCM
lifetime simulator.  Bigger caches filter more traffic, so the PCM
lives longer in wall-clock terms even though each write-back behaves
the same.

Examples:
  python examples/cache_pressure_study.py
  python examples/cache_pressure_study.py --workload gcc --lines 128
"""

import argparse

from repro.core import comp_wf
from repro.lifetime import LifetimeSimulator
from repro.traces import CachedWorkload, WORKLOAD_ORDER, get_profile


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="mcf", choices=sorted(WORKLOAD_ORDER))
    parser.add_argument("--lines", type=int, default=64)
    parser.add_argument("--endurance", type=float, default=30.0)
    parser.add_argument("--caches", nargs="+", type=int, default=[1, 2, 4],
                        help="cache sizes in KiB")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    profile = get_profile(args.workload)
    print(f"workload={args.workload}, {args.lines} lines, "
          f"endurance {args.endurance:.0f}\n")
    print(f"{'LLC':>6}{'hit rate':>10}{'WPKI':>8}{'writes to fail':>16}"
          f"{'accesses served':>17}")

    for kib in args.caches:
        workload = CachedWorkload(
            profile,
            n_lines=args.lines,
            cache_capacity_bytes=kib * 1024,
            cache_ways=4,
            seed=args.seed,
        )
        simulator = LifetimeSimulator(
            config=comp_wf(),
            source=workload,
            n_lines=args.lines,
            endurance_mean=args.endurance,
            seed=args.seed + 1,
        )
        result = simulator.run(max_writes=2_000_000)
        print(f"{kib:>4}KB{workload.cache.stats.hit_rate:>10.2f}"
              f"{workload.measured_wpki():>8.1f}{result.writes_issued:>16d}"
              f"{workload.accesses_issued:>17d}")

    print("\nsame PCM write budget either way; a bigger LLC simply takes")
    print("more CPU accesses (more wall-clock time) to spend it")


if __name__ == "__main__":
    main()
