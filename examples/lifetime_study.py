#!/usr/bin/env python3
"""Lifetime study: Figure 10 for any subset of workloads.

Replays a synthetic SPEC-like write-back stream through the four
evaluated systems (Baseline, Comp, Comp+W, Comp+WF) until half the
memory capacity is worn out, then reports lifetimes normalized to the
baseline plus Table IV-style absolute months (extrapolated to the
paper's 4 GB / 1e7-endurance scale).

Examples:
  python examples/lifetime_study.py --workloads milc gcc
  python examples/lifetime_study.py --workloads bzip2 --lines 128 --endurance 100
"""

import argparse

from repro.analysis import run_workload_study
from repro.traces import WORKLOAD_ORDER


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workloads", nargs="+", default=["milc", "gcc"],
        choices=sorted(WORKLOAD_ORDER), help="workloads to simulate",
    )
    parser.add_argument("--lines", type=int, default=96,
                        help="memory size in 64-byte lines (scaled)")
    parser.add_argument("--endurance", type=float, default=60.0,
                        help="mean cell endurance in writes (scaled)")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    header = (f"{'workload':12}{'Comp':>8}{'Comp+W':>9}{'Comp+WF':>9}"
              f"{'base (months)':>15}{'WF (months)':>13}")
    print(header)
    print("-" * len(header))
    for workload in args.workloads:
        study = run_workload_study(
            workload,
            n_lines=args.lines,
            endurance_mean=args.endurance,
            seed=args.seed,
        )
        normalized = study.normalized
        print(
            f"{workload:12}{normalized['comp']:8.2f}{normalized['comp_w']:9.2f}"
            f"{normalized['comp_wf']:9.2f}{study.months('baseline'):15.1f}"
            f"{study.months('comp_wf'):13.1f}"
        )
    print("\npaper averages: Comp 1.35x, Comp+W 3.2x, Comp+WF 4.3x; "
          "months 22 -> 79")


if __name__ == "__main__":
    main()
