"""Content-aware DRAM front tier over a PCM controller (CARAM-style).

A production deployment fronts PCM with DRAM.  CARAM's observation is
that the two media want *different* lines: compressible data is cheap
for PCM (small windows, few programmed cells, easy correction), while
incompressible data -- which is also statistically the hot, frequently
rewritten data -- wears PCM hardest and gains nothing from the
compression window.  The tier therefore routes by content:

* **Write-through** -- a line whose compressibility probe (the same
  best-of-FPC/BDI kernels the controller itself uses) lands at or
  under the admission threshold goes straight to PCM.
* **Admission** -- an incompressible line becomes DRAM-resident; the
  PCM write is deferred until eviction, so re-writes of hot lines are
  coalesced into (at most) one PCM write.
* **Dedup** -- residents are reference-counted by content, and
  capacity is charged per *unique* content, so identical lines extend
  the tier's effective reach (each logical line still keeps its own
  entry -- dedup can never alias two lines that later diverge).
* **Eviction** -- when unique contents exceed capacity, least recently
  used lines are flushed to PCM.  Flushes travel through the inner
  controller's batched ``write_batch`` path together with the same
  batch's write-throughs, so they ride the out-of-order wave scheduler.

:class:`HybridController` is the facade: it exposes the
``CompressedPCMController`` surface (``write``/``write_batch``/``read``
plus the stats and death telemetry the simulator reads) and owns one
:class:`DramTier`.  **Capacity 0 disables the tier entirely**: every
call forwards verbatim to the inner controller, which keeps golden
traces, fuzz corpora, and checkpoint digests bit-identical -- the
safety rail the hybrid work hangs on.  Both classes pickle cleanly, so
lifetime checkpoints carry the tier's residents, refcounts, and
counters and resume bit-identically.
"""

from __future__ import annotations

from collections import OrderedDict

from ..compression import BestOfCompressor
from ..core.window import LINE_BYTES
from ..engine.context import ControllerStats, WriteResult

__all__ = ["DEFAULT_ADMIT_THRESHOLD", "DramTier", "HybridController"]

#: A line whose best-of-FPC/BDI probe compresses to at most this many
#: bytes is "compressible": cheap to store in PCM, so it writes
#: through.  Larger probe results mark the line incompressible/hot and
#: it stays DRAM-resident, per CARAM's placement rule.
DEFAULT_ADMIT_THRESHOLD = LINE_BYTES // 2

#: Synthetic result for a write the DRAM tier absorbed: no PCM line was
#: touched, so there is no physical target (-1) and no programmed cell.
ABSORBED = WriteResult(
    physical=-1, compressed=False, size_bytes=LINE_BYTES,
    window_start=0, flips=0,
)


class DramTier:
    """A bounded, deduplicating, content-aware DRAM line store.

    Pure routing state -- the tier never touches PCM itself.  Its write
    path classifies one request and either appends the PCM operations
    it implies (the write-through, or any eviction flushes) to the
    caller's op list, or absorbs the write entirely.  Capacity is
    charged per unique resident content (dedup makes identical lines
    free); eviction order is least-recently-used over lines, where
    reads and coalesced writes both refresh recency.

    Counters live on a :class:`ControllerStats` overlay that uses only
    the ``tier_*`` fields, so a facade can merge it with the inner
    controller's stats through the ordinary monoid.
    """

    def __init__(
        self,
        capacity_lines: int,
        admit_threshold: int = DEFAULT_ADMIT_THRESHOLD,
    ) -> None:
        if capacity_lines < 0:
            raise ValueError("tier capacity must be >= 0 lines")
        if not 0 < admit_threshold <= LINE_BYTES:
            raise ValueError(
                f"admission threshold must be in (0, {LINE_BYTES}] bytes"
            )
        self.capacity_lines = capacity_lines
        self.admit_threshold = admit_threshold
        self._probe = BestOfCompressor()
        #: line -> content, in LRU order (oldest first).
        self._resident: OrderedDict[int, bytes] = OrderedDict()
        #: content -> number of resident lines holding it.
        self._refs: dict[bytes, int] = {}
        self.stats = ControllerStats()

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def unique_contents(self) -> int:
        """Distinct resident contents -- what capacity is charged for."""
        return len(self._refs)

    def resident(self, line: int) -> bool:
        return line in self._resident

    # -- read path -------------------------------------------------------

    def lookup(self, line: int) -> bytes | None:
        """The resident content of a line (refreshing recency), or None."""
        data = self._resident.get(line)
        if data is not None:
            self._resident.move_to_end(line)
            self.stats.tier_hits += 1
        return data

    # -- write path ------------------------------------------------------

    def write(
        self,
        line: int,
        data: bytes,
        pcm_ops: list[tuple[int, bytes]],
    ) -> WriteResult | None:
        """Route one write-back; absorbed or appended to ``pcm_ops``.

        Returns :data:`ABSORBED` when the tier kept the write (the
        caller owes PCM nothing for it now), or ``None`` after
        appending exactly one write-through op for it to ``pcm_ops``.
        Either way any eviction flushes the write forced are appended
        too, in eviction order, so one inner ``write_batch`` call over
        ``pcm_ops`` preserves the stream's PCM-visible ordering.
        """
        if self.capacity_lines == 0:
            pcm_ops.append((line, data))
            return None
        data = bytes(data)
        held = self._resident.get(line)
        if held is not None:
            # Coalesce: the pending PCM write this line owed is folded
            # into the new content; only the eventual eviction pays.
            self._release(held)
            self._charge(data)
            self._resident[line] = data
            self._resident.move_to_end(line)
            self.stats.tier_hits += 1
            self.stats.tier_coalesced_writes += 1
            self.stats.tier_pcm_writes_avoided += 1
            self._evict_over_capacity(pcm_ops)
            return ABSORBED
        if self._probe.compress(data).size_bytes <= self.admit_threshold:
            pcm_ops.append((line, data))
            return None
        if data in self._refs:
            self.stats.tier_dedup_hits += 1
        self._charge(data)
        self._resident[line] = data
        self.stats.tier_pcm_writes_avoided += 1
        self._evict_over_capacity(pcm_ops)
        return ABSORBED

    def drain(self) -> list[tuple[int, bytes]]:
        """Flush everything: all residents, oldest first, tier emptied."""
        ops = list(self._resident.items())
        self._resident.clear()
        self._refs.clear()
        return ops

    # -- internals -------------------------------------------------------

    def _charge(self, data: bytes) -> None:
        self._refs[data] = self._refs.get(data, 0) + 1

    def _release(self, data: bytes) -> None:
        remaining = self._refs[data] - 1
        if remaining:
            self._refs[data] = remaining
        else:
            del self._refs[data]

    def _evict_over_capacity(
        self, pcm_ops: list[tuple[int, bytes]]
    ) -> None:
        while len(self._refs) > self.capacity_lines:
            victim, data = self._resident.popitem(last=False)
            self._release(data)
            self.stats.tier_evictions += 1
            pcm_ops.append((victim, data))


class HybridController:
    """A DRAM front tier in front of a PCM controller, one write surface.

    Drop-in for :class:`~repro.core.CompressedPCMController` wherever
    the simulator, the sharded service, or the differential-fuzz
    harness drive one: writes route through the tier (which may absorb
    them, write them through, or force eviction flushes), reads hit
    DRAM first and fall through to PCM, and every PCM operation --
    write-throughs and flushes alike -- flows through the inner
    controller's ``write_batch`` so batched streams keep their wave
    scheduling.  The oracle therefore validates the *post-tier* PCM
    write stream: wrap a ``ValidatingController`` and the lockstep
    comparison covers exactly what the tier lets reach the medium.

    ``tier_lines=0`` forwards everything verbatim (bit-identical to the
    bare inner controller).  Delegation is explicit -- no
    ``__getattr__`` magic -- so pickling (checkpoints carry the whole
    facade) and attribute errors stay predictable.
    """

    def __init__(
        self,
        inner,
        tier_lines: int,
        admit_threshold: int = DEFAULT_ADMIT_THRESHOLD,
    ) -> None:
        self.inner = inner
        self.tier = DramTier(tier_lines, admit_threshold)

    @property
    def tier_lines(self) -> int:
        return self.tier.capacity_lines

    # -- write path ------------------------------------------------------

    def write(self, logical: int, data: bytes) -> WriteResult:
        """One demand write-back, routed through the tier."""
        if self.tier.capacity_lines == 0:
            return self.inner.write(logical, data)
        if len(data) != LINE_BYTES:
            raise ValueError(f"write data must be {LINE_BYTES} bytes")
        pcm_ops: list[tuple[int, bytes]] = []
        result = self.tier.write(logical, data, pcm_ops)
        flushed = self.inner.write_batch(pcm_ops) if pcm_ops else []
        if result is not None:
            return result
        # Write-through: the demand op is the first one appended (any
        # eviction flushes would only follow an admission).
        return flushed[0]

    def write_batch(
        self, requests: list[tuple[int, bytes]]
    ) -> list[WriteResult]:
        """A batch of write-backs; PCM ops ride one inner batch call.

        The tier routes every request in stream order first, then the
        surviving PCM operations (write-throughs interleaved with the
        eviction flushes they forced) go to the inner controller as a
        single ``write_batch`` -- so coalesced streams still reach the
        out-of-order wave scheduler as one batch.  The result list is
        aligned with ``requests``: absorbed writes report the
        synthetic :data:`ABSORBED` outcome.
        """
        requests = list(requests)
        if self.tier.capacity_lines == 0:
            return self.inner.write_batch(requests)
        for _, data in requests:
            if len(data) != LINE_BYTES:
                raise ValueError(f"write data must be {LINE_BYTES} bytes")
        pcm_ops: list[tuple[int, bytes]] = []
        routed: list[WriteResult | int] = []
        for line, data in requests:
            slot = len(pcm_ops)
            result = self.tier.write(line, data, pcm_ops)
            # A routed-to-PCM request's op sits at the pre-call length;
            # absorbed requests carry their result directly.
            routed.append(slot if result is None else result)
        flushed = self.inner.write_batch(pcm_ops) if pcm_ops else []
        return [
            entry if isinstance(entry, WriteResult) else flushed[entry]
            for entry in routed
        ]

    def flush(self) -> int:
        """Flush every DRAM-resident line to PCM; returns lines flushed.

        Used before state verification (the oracle compares PCM state,
        so pending residents must land first) and by callers that want
        PCM to hold the complete image, e.g. before decommissioning
        the tier.
        """
        ops = self.tier.drain()
        if ops:
            self.inner.write_batch(ops)
        return len(ops)

    # -- read path -------------------------------------------------------

    def read(self, logical: int) -> bytes | None:
        """DRAM hit, else PCM read-through."""
        data = self.tier.lookup(logical)
        if data is not None:
            return data
        return self.inner.read(logical)

    # -- passthroughs the simulator / service / fuzzer consume -----------

    @property
    def config(self):
        return self.inner.config

    @property
    def n_lines(self) -> int:
        return self.inner.n_lines

    @property
    def engine(self):
        return self.inner.engine

    @property
    def memory(self):
        return self.inner.memory

    @property
    def dead(self):
        return self.inner.dead

    @property
    def death_fault_counts(self) -> dict[int, int]:
        return self.inner.death_fault_counts

    @property
    def dead_fraction(self) -> float:
        return self.inner.dead_fraction

    def average_faults_per_dead_block(self) -> float:
        return self.inner.average_faults_per_dead_block()

    @property
    def stats(self) -> ControllerStats:
        """Inner PCM counters plus the tier overlay, one merged view."""
        return self.inner.stats.merge(self.tier.stats)

    def enable_bank_parallel(self, workers: int | None = None):
        return self.inner.enable_bank_parallel(workers)

    def disable_bank_parallel(self) -> None:
        self.inner.disable_bank_parallel()

    def verify_state(self) -> None:
        """Lockstep hook: flush pending residents, then verify PCM.

        Only meaningful when the inner controller is a
        ``ValidatingController``; the flush itself runs through the
        validated write path, so eviction flushes are diffed too.
        """
        self.flush()
        self.inner.verify_state()
