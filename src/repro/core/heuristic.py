"""The bit-flip control heuristic (Figure 8).

Compression *increases* bit flips for ~20 % of write-backs, mostly when
consecutive writes to a block keep changing compressed size (Figures 5
and 6).  The controller cannot observe actual flip counts -- those are
determined by the chips' differential-write logic -- so the paper
predicts them from two cheap signals: the new compressed size and a
2-bit per-line saturating counter (SC) tracking size volatility.

The decision flow, verbatim from Figure 8:

1. ``new_size < Threshold1``  ->  write compressed (tiny writes always
   win; SC is left untouched).
2. else if SC is saturated    ->  write uncompressed (the block has a
   history of size swings; avoid the extra flips).
3. else                       ->  write compressed, and update SC:
   ``|old_size - new_size| < Threshold2`` decrements it (stable sizes),
   otherwise increments it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import DEFAULT_THRESHOLD1, DEFAULT_THRESHOLD2
from .metadata import LineMetadata


@dataclass(frozen=True)
class HeuristicDecision:
    """Outcome of one Figure 8 evaluation."""

    compress: bool
    #: Which Figure 8 step fired (1, 2 or 3), for analysis/ablations.
    step: int


#: The three possible decisions, pre-built: one is returned per write
#: on the simulator's hot path, so construction cost matters.
_STEP1 = HeuristicDecision(compress=True, step=1)
_STEP2 = HeuristicDecision(compress=False, step=2)
_STEP3 = HeuristicDecision(compress=True, step=3)


class BitFlipHeuristic:
    """Figure 8 decision logic with configurable thresholds."""

    def __init__(
        self,
        threshold1: int = DEFAULT_THRESHOLD1,
        threshold2: int = DEFAULT_THRESHOLD2,
    ) -> None:
        if threshold1 < 1:
            raise ValueError("threshold1 must be positive")
        if threshold2 < 0:
            raise ValueError("threshold2 cannot be negative")
        self.threshold1 = threshold1
        self.threshold2 = threshold2

    def decide(self, metadata: LineMetadata, new_size: int) -> HeuristicDecision:
        """Evaluate Figure 8 and update ``metadata.sc`` in place.

        Args:
            metadata: The line's metadata; ``stored_size`` supplies
                ``Old_S`` and ``sc`` is updated per step 3.
            new_size: Byte size of the new data after compression.
        """
        if not 1 <= new_size <= 64:
            raise ValueError(f"compressed size {new_size} out of range")

        if new_size < self.threshold1:
            return _STEP1

        if metadata.sc_saturated:
            return _STEP2

        if abs(metadata.stored_size - new_size) < self.threshold2:
            metadata.decrement_sc()
        else:
            metadata.increment_sc()
        return _STEP3
