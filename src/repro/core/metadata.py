"""Per-line metadata (Section III-B).

Each line carries 13 bits of compression metadata plus a 1-bit
compressed flag:

* 6-bit **start pointer** -- byte offset of the compression window;
* 5-bit **encoding information** -- which compressor/variant to use on
  decompression (see :meth:`repro.compression.BestOfCompressor.encode_metadata`);
* 2-bit **saturating counter (SC)** -- the Figure 8 heuristic state;
* 1-bit **compressed flag** -- stored in one of ECP-6's 3 spare bits in
  the ECC-chip slice.

The paper stores the 13 bits at the head of the line and shows their
update rate is far below the data's (start pointer: once per 2^16 bank
writes; coding/SC: once per 4-5 writes), so metadata wear is not the
lifetime limiter.  We model metadata as wear-exempt state and account
its sizes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

START_POINTER_BITS = 6
ENCODING_BITS = 5
SC_BITS = 2
#: Total per-line metadata stored in the data chips.
METADATA_BITS = START_POINTER_BITS + ENCODING_BITS + SC_BITS

SC_MAX = (1 << SC_BITS) - 1


@dataclass(slots=True)
class LineMetadata:
    """Mutable per-line metadata record."""

    start_pointer: int = 0  # window start, in bytes
    encoding: int = 0
    sc: int = 0
    compressed: bool = False
    #: Byte size of the data currently stored (compressed or 64).  The
    #: paper forwards this with each read so the controller knows
    #: ``Old_S`` at write time without extra memory traffic.
    stored_size: int = 64

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ValueError on out-of-range fields."""
        if not 0 <= self.start_pointer < (1 << START_POINTER_BITS):
            raise ValueError(f"start pointer {self.start_pointer} out of range")
        if not 0 <= self.encoding < (1 << ENCODING_BITS):
            raise ValueError(f"encoding {self.encoding} out of range")
        if not 0 <= self.sc <= SC_MAX:
            raise ValueError(f"saturating counter {self.sc} out of range")
        if not 1 <= self.stored_size <= 64:
            raise ValueError(f"stored size {self.stored_size} out of range")

    @property
    def sc_saturated(self) -> bool:
        """Whether the saturating counter is at its maximum."""
        return self.sc == SC_MAX

    def increment_sc(self) -> None:
        """Saturating increment of SC."""
        self.sc = min(self.sc + 1, SC_MAX)

    def decrement_sc(self) -> None:
        """Saturating decrement of SC."""
        self.sc = max(self.sc - 1, 0)

    def pack(self) -> int:
        """Pack the 13 in-line metadata bits (excludes the flag bit)."""
        self.validate()
        return (
            self.start_pointer
            | (self.encoding << START_POINTER_BITS)
            | (self.sc << (START_POINTER_BITS + ENCODING_BITS))
        )

    @classmethod
    def unpack(cls, packed: int, compressed: bool, stored_size: int) -> "LineMetadata":
        """Inverse of :meth:`pack`."""
        if not 0 <= packed < (1 << METADATA_BITS):
            raise ValueError(f"packed metadata {packed} out of range")
        return cls(
            start_pointer=packed & ((1 << START_POINTER_BITS) - 1),
            encoding=(packed >> START_POINTER_BITS) & ((1 << ENCODING_BITS) - 1),
            sc=packed >> (START_POINTER_BITS + ENCODING_BITS),
            compressed=compressed,
            stored_size=stored_size,
        )
