"""The paper's core contribution: the compression-aware PCM controller."""

from .config import (
    DEFAULT_THRESHOLD1,
    DEFAULT_THRESHOLD2,
    EVALUATED_SYSTEMS,
    SystemConfig,
    baseline,
    comp,
    comp_w,
    comp_wf,
    make_config,
)
from .controller import CompressedPCMController, ControllerStats, WriteResult
from .heuristic import BitFlipHeuristic, HeuristicDecision
from .metadata import METADATA_BITS, SC_MAX, LineMetadata
from .window import (
    LINE_BYTES,
    clear_window_caches,
    extract_bytes,
    faults_in_window,
    find_window,
    place_bytes,
    window_mask,
)

__all__ = [
    "DEFAULT_THRESHOLD1",
    "DEFAULT_THRESHOLD2",
    "EVALUATED_SYSTEMS",
    "LINE_BYTES",
    "METADATA_BITS",
    "SC_MAX",
    "BitFlipHeuristic",
    "CompressedPCMController",
    "ControllerStats",
    "HeuristicDecision",
    "LineMetadata",
    "SystemConfig",
    "WriteResult",
    "baseline",
    "clear_window_caches",
    "comp",
    "comp_w",
    "comp_wf",
    "extract_bytes",
    "faults_in_window",
    "find_window",
    "make_config",
    "place_bytes",
    "window_mask",
]
