"""System configurations: Baseline, Comp, Comp+W, Comp+WF (Section IV).

All four evaluated systems share the substrate -- chip-level
differential writes, Start-Gap inter-line wear-leveling, and ECP-6 --
and differ only in the compression-architecture features they enable:

============ =========== ============ ==================== ===========
system       compression intra-line WL dead-block revival  heuristic
============ =========== ============ ==================== ===========
``baseline``     no          no             no                 no
``comp``         yes         no             no                 yes
``comp_w``       yes         yes            no                 yes
``comp_wf``      yes         yes            yes                yes
============ =========== ============ ==================== ===========
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Default Figure 8 thresholds: always compress below Threshold1 bytes;
#: a size swing below Threshold2 bytes counts as "minor".
DEFAULT_THRESHOLD1 = 16
DEFAULT_THRESHOLD2 = 8


@dataclass(frozen=True)
class SystemConfig:
    """Feature selection and tuning knobs for one evaluated system."""

    name: str
    use_compression: bool = True
    use_intra_wear_leveling: bool = True
    use_dead_block_revival: bool = True
    use_heuristic: bool = True
    threshold1: int = DEFAULT_THRESHOLD1
    threshold2: int = DEFAULT_THRESHOLD2
    correction_scheme: str = "ecp6"
    start_gap_psi: int = 100
    #: Writes per bank between intra-line rotations.  The paper uses
    #: 16-bit counters (65536) against a 1e7-write endurance; scaled
    #: simulations scale this proportionally (see
    #: :func:`repro.lifetime.systems.scaled_intra_counter_limit`).
    intra_counter_limit: int = 2**16
    #: FREE-p extension: fraction of extra physical lines reserved as
    #: remap spares (0 disables remap-on-death, the paper's setting).
    spare_line_fraction: float = 0.0
    #: Start-Gap regions (the original paper's scalable configuration;
    #: 1 = the single-region scheme the DSN'17 baseline assumes).
    start_gap_regions: int = 1
    #: Content-addressed compression-cache entries (distinct 64-byte
    #: lines whose CompressionResult is memoized).  Purely a simulator
    #: speed knob -- results are bit-for-bit identical either way.
    #: 0 disables the cache.
    compression_cache_lines: int = 1024
    #: Hybrid extension: capacity of the content-aware DRAM front tier
    #: (:mod:`repro.tier`) in 64-byte lines, charged per unique resident
    #: content.  0 (the paper's setting) disables the tier entirely --
    #: runs are then bit-identical to a bare controller.
    tier_lines: int = 0
    #: Energy extension: write-energy-reducing line encoding
    #: (:mod:`repro.energy.encoders`).  ``"none"`` (the paper's setting)
    #: runs the plain differential write, bit-identical to every
    #: pre-encoding run; ``"wire"`` adds WIRE-style energy-weighted
    #: inversion; ``"coset"`` adds restricted coset coding through the
    #: compression slack (requires compression).
    encoding: str = "none"
    #: Inter-line wear-leveling / fault-remap backend.
    #: ``"startgap_freep"`` (the paper's substrate) rotates a gap line
    #: through the array and retires dead lines through FREE-p pointer
    #: chains; ``"wolfram"`` replaces both with a WoLFRaM-style
    #: programmable address decoder (:mod:`repro.wearleveling.wolfram`)
    #: that swaps a written line's physical slot with a rotating partner
    #: every ``start_gap_psi`` writes and remaps dead lines to spares by
    #: rewriting the decoder table (no in-line pointer storage needed).
    #: Every other stage (compress / encoding / program / correction)
    #: is backend-agnostic and unchanged.
    wl_backend: str = "startgap_freep"

    def __post_init__(self) -> None:
        if self.threshold1 < 1 or self.threshold1 > 64:
            raise ValueError("threshold1 must be in [1, 64] bytes")
        if self.threshold2 < 0 or self.threshold2 > 64:
            raise ValueError("threshold2 must be in [0, 64] bytes")
        if self.start_gap_psi < 1:
            raise ValueError("start_gap_psi must be positive")
        if self.intra_counter_limit < 1:
            raise ValueError("intra_counter_limit must be positive")
        if not 0 <= self.spare_line_fraction < 1:
            raise ValueError("spare_line_fraction must be in [0, 1)")
        if self.start_gap_regions < 1:
            raise ValueError("start_gap_regions must be positive")
        if self.compression_cache_lines < 0:
            raise ValueError("compression_cache_lines must be >= 0")
        if self.tier_lines < 0:
            raise ValueError("tier_lines must be >= 0")
        if self.encoding not in ("none", "wire", "coset"):
            raise ValueError(
                f"encoding must be 'none', 'wire' or 'coset', "
                f"got {self.encoding!r}"
            )
        if self.wl_backend not in ("startgap_freep", "wolfram"):
            raise ValueError(
                f"wl_backend must be 'startgap_freep' or 'wolfram', "
                f"got {self.wl_backend!r}"
            )
        if self.wl_backend == "wolfram" and self.start_gap_regions > 1:
            raise ValueError(
                "start_gap_regions is a Start-Gap scaling mechanism; the "
                "WoLFRaM PAD table is already region-free -- use "
                "start_gap_regions=1 with wl_backend='wolfram'"
            )
        if self.encoding == "coset" and not self.use_compression:
            raise ValueError(
                "restricted coset coding stores its selectors in "
                "compression slack; enable compression first"
            )
        if not self.use_compression and (
            self.use_intra_wear_leveling or self.use_dead_block_revival
        ):
            raise ValueError(
                "intra-line wear-leveling and dead-block revival are "
                "compression-window features; enable compression first"
            )

    def with_overrides(self, **changes) -> "SystemConfig":
        """A copy with some knobs replaced (for sensitivity sweeps)."""
        return replace(self, **changes)


def baseline(**overrides) -> SystemConfig:
    """DW + Start-Gap + ECP-6, no compression (Table II baseline)."""
    return SystemConfig(
        name="baseline",
        use_compression=False,
        use_intra_wear_leveling=False,
        use_dead_block_revival=False,
        use_heuristic=False,
    ).with_overrides(**overrides)


def comp(**overrides) -> SystemConfig:
    """Naive compression: window sliding only (Section V-A.1)."""
    return SystemConfig(
        name="comp",
        use_intra_wear_leveling=False,
        use_dead_block_revival=False,
    ).with_overrides(**overrides)


def comp_w(**overrides) -> SystemConfig:
    """Compression + intra-line wear-leveling (Section V-A.2)."""
    return SystemConfig(
        name="comp_w",
        use_dead_block_revival=False,
    ).with_overrides(**overrides)


def comp_wf(**overrides) -> SystemConfig:
    """The full design: + dead-block revival (Section V-A.3)."""
    return SystemConfig(name="comp_wf").with_overrides(**overrides)


#: The four evaluated systems in the paper's presentation order.
EVALUATED_SYSTEMS = ("baseline", "comp", "comp_w", "comp_wf")


def make_config(name: str, **overrides) -> SystemConfig:
    """Build an evaluated system configuration by name."""
    factories = {
        "baseline": baseline,
        "comp": comp,
        "comp_w": comp_w,
        "comp_wf": comp_wf,
    }
    try:
        return factories[name](**overrides)
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; choose from {sorted(factories)}"
        ) from None
