"""The compression-aware PCM memory controller (Section III).

This is the paper's core contribution wired together: on every
write-back the controller

1. compresses the data (best of BDI and FPC) and runs the Figure 8
   heuristic to decide compressed vs uncompressed storage;
2. finds a feasible compression window -- starting from the bank's
   intra-line rotation offset (Comp+W) or the line's current pointer --
   sliding it away from cell regions the correction scheme cannot
   cover (Figure 4);
3. issues a differential write restricted to the window, absorbs any
   cells that wore out during the write by re-checking feasibility (and
   re-placing if needed), and updates the 13-bit line metadata;
4. marks the block dead when no feasible placement exists; under
   Comp+WF a dead block is re-examined whenever inter-line wear-leveling
   (Start-Gap) moves a line into it, and revived if the incoming data
   fits (Section III-A.3).

Reads are modelled end-to-end as well: stuck cells inside the window
are repaired from the scheme's correction state (ECP replacement bits /
SAFER-Aegis inversion groups store exactly the written value), then the
payload is decompressed per the line's encoding metadata.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..compression import BestOfCompressor, CompressionResult
from ..correction import make_scheme
from ..correction.freep import FreePRemapper
from ..pcm import PCMBankArray, EnduranceModel, FaultMode
from ..pcm.mlc import MLCBankArray
from ..wearleveling import IntraLineWearLeveler, RegionStartGap, StartGap
from .config import SystemConfig
from .heuristic import BitFlipHeuristic
from .metadata import LineMetadata
from .window import (
    LINE_BYTES,
    extract_bytes,
    faults_in_window,
    find_window,
    place_bytes,
    window_mask,
)


@dataclass(frozen=True)
class WriteResult:
    """Outcome of one controller write."""

    physical: int
    compressed: bool
    size_bytes: int
    window_start: int
    flips: int
    died: bool = False
    revived: bool = False
    lost: bool = False
    heuristic_step: int = 0


@dataclass
class ControllerStats:
    """Aggregate controller counters."""

    demand_writes: int = 0
    gap_move_writes: int = 0
    compressed_writes: int = 0
    uncompressed_writes: int = 0
    lost_writes: int = 0
    total_flips: int = 0
    set_flips: int = 0
    reset_flips: int = 0
    window_slides: int = 0
    deaths: int = 0
    revivals: int = 0
    heuristic_steps: dict[int, int] = field(default_factory=dict)
    # Metadata update rates (Section III-B's wear argument): how often
    # each per-line metadata field actually changes on a commit.
    start_pointer_updates: int = 0
    encoding_updates: int = 0
    sc_updates: int = 0
    remaps: int = 0  # FREE-p extension: blocks retired to spares

    def count_step(self, step: int) -> None:
        """Tally one Figure 8 step for the statistics."""
        self.heuristic_steps[step] = self.heuristic_steps.get(step, 0) + 1

    @property
    def stored_writes(self) -> int:
        """Writes that landed (compressed or raw)."""
        return self.compressed_writes + self.uncompressed_writes


class CompressedPCMController:
    """Memory controller for one PCM region of ``n_lines`` logical lines."""

    def __init__(
        self,
        config: SystemConfig,
        n_lines: int,
        endurance_model: EnduranceModel,
        rng: np.random.Generator,
        n_banks: int = 8,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        compressor: BestOfCompressor | None = None,
        cell_type: str = "slc",
    ) -> None:
        if n_lines < 1:
            raise ValueError("need at least one logical line")
        if cell_type not in ("slc", "mlc"):
            raise ValueError(f"cell type must be 'slc' or 'mlc', got {cell_type!r}")
        self.config = config
        self.n_lines = n_lines
        self.compressor = compressor or BestOfCompressor()
        self.scheme = make_scheme(config.correction_scheme)
        if config.start_gap_regions > 1:
            self.start_gap = RegionStartGap(
                n_lines, psi=config.start_gap_psi,
                regions=config.start_gap_regions,
            )
        else:
            self.start_gap = StartGap(n_lines, psi=config.start_gap_psi)
        self.n_banks = n_banks

        base_physical = self.start_gap.physical_lines
        spare_count = int(base_physical * config.spare_line_fraction)
        physical = base_physical + spare_count
        self._capacity_lines = base_physical
        self.remapper = (
            FreePRemapper(
                spare_lines=list(range(base_physical, physical)),
                pointer_bits=max(1, (physical - 1).bit_length()),
            )
            if spare_count
            else None
        )
        array_cls = PCMBankArray if cell_type == "slc" else MLCBankArray
        self.cell_type = cell_type
        self.memory = array_cls(physical, endurance_model, rng, fault_mode)
        self.metadata = [LineMetadata() for _ in range(physical)]
        self.dead = np.zeros(physical, dtype=bool)
        self.death_fault_counts: dict[int, int] = {}
        self._repairs: list[dict[int, int]] = [{} for _ in range(physical)]
        self._shadow: dict[int, bytes] = {}

        self.intra_wl = (
            IntraLineWearLeveler(
                n_banks=n_banks, counter_limit=config.intra_counter_limit
            )
            if config.use_intra_wear_leveling
            else None
        )
        self.heuristic = (
            BitFlipHeuristic(config.threshold1, config.threshold2)
            if config.use_heuristic
            else None
        )
        self.stats = ControllerStats()

    # -- public API ------------------------------------------------------

    def write(self, logical: int, data: bytes) -> WriteResult:
        """Handle one demand write-back from the LLC."""
        if len(data) != LINE_BYTES:
            raise ValueError(f"write data must be {LINE_BYTES} bytes")
        movement = self.start_gap.on_write(logical)
        if movement is not None:
            self._handle_gap_move(movement)

        self._shadow[logical] = data
        physical = self._resolve(self.start_gap.map(logical))
        self.stats.demand_writes += 1
        return self._write_physical(physical, data, revival_allowed=False)

    def _resolve(self, physical: int) -> int:
        """Follow FREE-p remap pointers when the extension is enabled."""
        if self.remapper is None:
            return physical
        return self.remapper.resolve(physical)

    def read(self, logical: int) -> bytes | None:
        """Read one line back; None when the data was lost to a death."""
        physical = self._resolve(self.start_gap.map(logical))
        if self.dead[physical]:
            return None
        if logical not in self._shadow:
            return None
        meta = self.metadata[physical]
        bits = self.memory.read_bits(physical).copy()
        for position, value in self._repairs[physical].items():
            bits[position] = value
        if not meta.compressed:
            return extract_bytes(bits, 0, LINE_BYTES)
        payload = extract_bytes(bits, meta.start_pointer, meta.stored_size)
        member, encoding = self.compressor.decode_metadata(meta.encoding)
        result = CompressionResult(
            algorithm=member.name,
            encoding=encoding,
            size_bits=meta.stored_size * 8,
            payload=payload,
        )
        return member.decompress(result)

    @property
    def dead_fraction(self) -> float:
        """Dead blocks as a fraction of the nominal (non-spare) capacity.

        A successfully remapped block is not dead -- its logical
        capacity lives on in the spare -- so with the FREE-p extension
        this only rises once remapping fails.
        """
        return float(self.dead.sum()) / self._capacity_lines

    def average_faults_per_dead_block(self) -> float:
        """Mean stuck-cell count over blocks at their (last) death.

        This is the Figure 12 metric: how many faulty cells a failed
        512-bit block had accumulated before becoming unusable.
        """
        if not self.death_fault_counts:
            return 0.0
        return float(np.mean(list(self.death_fault_counts.values())))

    # -- write path --------------------------------------------------------

    def _write_physical(
        self, physical: int, data: bytes, revival_allowed: bool
    ) -> WriteResult:
        if self.dead[physical] and not (
            revival_allowed and self.config.use_dead_block_revival
        ):
            self.stats.lost_writes += 1
            return WriteResult(
                physical=physical, compressed=False, size_bytes=LINE_BYTES,
                window_start=0, flips=0, lost=True,
            )

        was_dead = bool(self.dead[physical])
        meta = self.metadata[physical]
        compressed, result, step = self._choose_format(meta, data)

        if compressed:
            payload = result.payload
            size = result.size_bytes
            hint = (
                self.intra_wl.offset(self._bank_of(physical))
                if self.intra_wl is not None
                else meta.start_pointer
            )
        else:
            payload = data
            size = LINE_BYTES
            hint = 0

        write_result = self._place_and_write(
            physical, payload, size, hint, compressed, result, step
        )

        if write_result.died:
            return write_result
        if was_dead:
            self.dead[physical] = False
            self.stats.revivals += 1
            write_result = dataclasses.replace(write_result, revived=True)
        if self.intra_wl is not None:
            self.intra_wl.record_write(self._bank_of(physical))
        return write_result

    def _choose_format(
        self, meta: LineMetadata, data: bytes
    ) -> tuple[bool, CompressionResult | None, int]:
        """Compression decision: (store compressed?, result, Fig-8 step)."""
        if not self.config.use_compression:
            return False, None, 0
        result = self.compressor.compress(data)
        if result.size_bytes >= LINE_BYTES:
            return False, result, 0
        if self.heuristic is None:
            return True, result, 0
        sc_before = meta.sc
        decision = self.heuristic.decide(meta, result.size_bytes)
        self.stats.sc_updates += meta.sc != sc_before
        self.stats.count_step(decision.step)
        return decision.compress, result, decision.step

    def _place_and_write(
        self,
        physical: int,
        payload: bytes,
        size: int,
        hint: int,
        compressed: bool,
        result: CompressionResult | None,
        step: int,
    ) -> WriteResult:
        """Find a window, write, and absorb any new faults (Figure 4)."""
        meta = self.metadata[physical]
        total_flips = 0

        for _attempt in range(LINE_BYTES):
            faults = self.memory.fault_positions(physical)
            start = find_window(faults, size, self.scheme, start_hint=hint)
            if start is None:
                break
            if compressed and start != meta.start_pointer:
                self.stats.window_slides += 1

            target = place_bytes(self.memory.read_bits(physical), payload, start)
            mask = window_mask(start, size)
            outcome = self.memory.write(physical, target, update_mask=mask)
            total_flips += outcome.programmed_flips
            self.stats.total_flips += outcome.programmed_flips
            self.stats.set_flips += outcome.set_flips
            self.stats.reset_flips += outcome.reset_flips

            faults_after = self.memory.fault_positions(physical)
            inside = faults_in_window(faults_after, start, size)
            if inside.size <= self.scheme.deterministic_capability or (
                self.scheme.can_correct(inside)
            ):
                self._commit(physical, target, start, size, compressed, result)
                if compressed:
                    self.stats.compressed_writes += 1
                else:
                    self.stats.uncompressed_writes += 1
                return WriteResult(
                    physical=physical, compressed=compressed, size_bytes=size,
                    window_start=start, flips=total_flips, heuristic_step=step,
                )
            # New faults broke this placement; slide past it and retry.
            hint = (start + 1) % LINE_BYTES

        # No feasible placement for this payload.  Under the advanced
        # hard-error definition (the "F" in Comp+WF, Section III-A.3/4)
        # a block is not given up while the *compressed* form still
        # fits, even when the heuristic asked for uncompressed storage.
        # Comp and Comp+W lack this rescue: a write that cannot be
        # stored in its chosen format kills the block, which is exactly
        # why they lose lifetime on less-compressible/volatile data
        # (Figure 10's bzip2/gcc columns).
        if (
            self.config.use_dead_block_revival
            and not compressed
            and result is not None
            and result.size_bytes < LINE_BYTES
        ):
            # The recursive call marks the block dead itself on failure.
            return self._place_and_write(
                physical, result.payload, result.size_bytes,
                hint, True, result, step,
            )

        # FREE-p extension: retire the block to a spare instead of
        # losing it, as long as spares remain and the dead line can
        # still hold the replicated remap pointer.
        if self.remapper is not None:
            spare = self.remapper.remap(
                physical, self.memory.faulty_mask(physical)
            )
            if spare is not None:
                self.stats.remaps += 1
                self.death_fault_counts[physical] = self.memory.fault_count(
                    physical
                )
                return self._place_and_write(
                    spare, payload, size, hint, compressed, result, step
                )

        self.dead[physical] = True
        self.stats.deaths += 1
        self.death_fault_counts[physical] = self.memory.fault_count(physical)
        self.stats.lost_writes += 1
        return WriteResult(
            physical=physical, compressed=compressed, size_bytes=size,
            window_start=0, flips=total_flips, died=True, lost=True,
            heuristic_step=step,
        )

    def _commit(
        self,
        physical: int,
        target: np.ndarray,
        start: int,
        size: int,
        compressed: bool,
        result: CompressionResult | None,
    ) -> None:
        meta = self.metadata[physical]
        new_pointer = start if compressed else 0
        new_encoding = (
            self.compressor.encode_metadata(result)
            if compressed and result is not None
            else meta.encoding
        )
        self.stats.start_pointer_updates += new_pointer != meta.start_pointer
        self.stats.encoding_updates += (
            new_encoding != meta.encoding or size != meta.stored_size
        )
        meta.start_pointer = new_pointer
        meta.compressed = compressed
        meta.stored_size = size
        meta.encoding = new_encoding
        # Refresh correction state: the scheme remembers the written
        # value of every stuck cell inside the window.
        mask = window_mask(start, size)
        faulty = self.memory.faulty_mask(physical) & mask
        positions = np.flatnonzero(faulty)
        self._repairs[physical] = {
            int(position): int(target[position]) for position in positions
        }

    def _handle_gap_move(self, movement) -> None:
        """Relocate the line Start-Gap moved; revival checkpoint (WF)."""
        logical = self.start_gap.logical_of(movement.destination)
        if logical is None:
            return
        data = self._shadow.get(logical)
        if data is None:
            return  # the line was never written; nothing to relocate
        self.stats.gap_move_writes += 1
        self._write_physical(
            self._resolve(movement.destination), data, revival_allowed=True
        )

    def _bank_of(self, physical: int) -> int:
        return physical % self.n_banks
