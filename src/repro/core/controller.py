"""The compression-aware PCM memory controller (Section III).

This is the paper's core contribution wired together: on every
write-back the controller

1. compresses the data (best of BDI and FPC) and runs the Figure 8
   heuristic to decide compressed vs uncompressed storage;
2. finds a feasible compression window -- starting from the bank's
   intra-line rotation offset (Comp+W) or the line's current pointer --
   sliding it away from cell regions the correction scheme cannot
   cover (Figure 4);
3. issues a differential write restricted to the window, absorbs any
   cells that wore out during the write by re-checking feasibility (and
   re-placing if needed), and updates the 13-bit line metadata;
4. marks the block dead when no feasible placement exists; under
   Comp+WF a dead block is re-examined whenever inter-line wear-leveling
   (Start-Gap) moves a line into it, and revived if the incoming data
   fits (Section III-A.3).

Since the ``repro.engine`` refactor the mechanisms live in the
composable stage pipeline (:mod:`repro.engine.stages`,
:mod:`repro.engine.pipeline`); this class is a thin facade that builds
the :class:`~repro.engine.context.EngineState`, owns the logical-line
shadow store, and drives the pipeline -- its public API and semantics
are unchanged (pinned bit-for-bit by ``tests/golden/``).

Reads are modelled end-to-end as well: stuck cells inside the window
are repaired from the scheme's correction state (ECP replacement bits /
SAFER-Aegis inversion groups store exactly the written value), then the
payload is decompressed per the line's encoding metadata.
"""

from __future__ import annotations

import numpy as np

from ..compression import BestOfCompressor, CachingCompressor, CompressionResult
from ..correction import make_scheme
from ..correction.freep import FreePRemapper
from ..engine.address_space import AddressRange
from ..engine.context import ControllerStats, EngineState, WriteResult
from ..engine.pipeline import WritePipeline
from ..engine.scheduler import BatchScheduler
from ..engine.stages import WolframPlacementStage, WolframRemapStage
from ..pcm import PCMBankArray, EnduranceModel, FaultMode
from ..pcm.mlc import MLCBankArray
from ..wearleveling import (
    IntraLineWearLeveler,
    PadSpareRemapper,
    RegionStartGap,
    StartGap,
    WolframPAD,
)
from .config import SystemConfig
from .heuristic import BitFlipHeuristic
from .metadata import LineMetadata
from .window import LINE_BYTES, extract_bytes

__all__ = ["CompressedPCMController", "ControllerStats", "WriteResult"]


class CompressedPCMController:
    """Memory controller for one PCM region of ``n_lines`` logical lines."""

    def __init__(
        self,
        config: SystemConfig,
        n_lines: int,
        endurance_model: EnduranceModel,
        rng: np.random.Generator,
        n_banks: int = 8,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        compressor: BestOfCompressor | None = None,
        cell_type: str = "slc",
        invariants: tuple = (),
        address_range: AddressRange | None = None,
    ) -> None:
        if n_lines < 1:
            raise ValueError("need at least one logical line")
        if cell_type not in ("slc", "mlc"):
            raise ValueError(f"cell type must be 'slc' or 'mlc', got {cell_type!r}")
        if address_range is not None and len(address_range) != n_lines:
            raise ValueError(
                f"address range of {len(address_range)} lines does not match "
                f"n_lines={n_lines}"
            )
        self.config = config
        self.n_lines = n_lines
        self.n_banks = n_banks
        self.cell_type = cell_type
        #: The global slice of a sharded address space this controller
        #: owns; ``None`` (the default) means it owns the whole space.
        #: When set, the public API (:meth:`write`, :meth:`write_batch`,
        #: :meth:`read`) accepts *global* line numbers and translates
        #: them here -- the pipeline below runs entirely in local
        #: coordinates, unchanged, which is what keeps a shard
        #: bit-identical to an independent controller of the same size.
        self.address_range = address_range

        # The wear-leveling / fault-remap backend (``wl_backend``):
        # Start-Gap + FREE-p (the paper's substrate, default) or the
        # WoLFRaM programmable address decoder.  ``getattr`` keeps
        # configs pickled before the knob existed loading cleanly.
        wl_backend = getattr(config, "wl_backend", "startgap_freep")
        if wl_backend == "wolfram":
            start_gap = WolframPAD(n_lines, period=config.start_gap_psi)
        elif config.start_gap_regions > 1:
            start_gap = RegionStartGap(
                n_lines, psi=config.start_gap_psi,
                regions=config.start_gap_regions,
            )
        else:
            start_gap = StartGap(n_lines, psi=config.start_gap_psi)

        base_physical = start_gap.physical_lines
        spare_count = int(base_physical * config.spare_line_fraction)
        physical = base_physical + spare_count
        if not spare_count:
            remapper = None
        elif wl_backend == "wolfram":
            # PAD remap-to-spare: the redirect lives in the decoder
            # table, so no pointer capacity in the dead line is needed.
            remapper = PadSpareRemapper(
                spare_lines=list(range(base_physical, physical))
            )
        else:
            remapper = FreePRemapper(
                spare_lines=list(range(base_physical, physical)),
                pointer_bits=max(1, (physical - 1).bit_length()),
            )
        array_cls = PCMBankArray if cell_type == "slc" else MLCBankArray
        engine_compressor = compressor or BestOfCompressor()
        if config.use_compression and config.compression_cache_lines:
            # Content-addressed memoization; transparent (the cached
            # results are the same frozen CompressionResult objects).
            engine_compressor = CachingCompressor(
                engine_compressor, capacity=config.compression_cache_lines
            )
        self.engine = EngineState(
            config=config,
            scheme=make_scheme(config.correction_scheme),
            compressor=engine_compressor,
            memory=array_cls(
                physical,
                endurance_model,
                rng,
                fault_mode,
                base_line=address_range.start if address_range else 0,
            ),
            start_gap=start_gap,
            metadata=[LineMetadata() for _ in range(physical)],
            dead=np.zeros(physical, dtype=bool),
            repairs=[{} for _ in range(physical)],
            death_fault_counts={},
            stats=ControllerStats(),
            n_banks=n_banks,
            capacity_lines=base_physical,
            heuristic=(
                BitFlipHeuristic(config.threshold1, config.threshold2)
                if config.use_heuristic
                else None
            ),
            intra_wl=(
                IntraLineWearLeveler(
                    n_banks=n_banks, counter_limit=config.intra_counter_limit
                )
                if config.use_intra_wear_leveling
                else None
            ),
            remapper=remapper,
            address_range=address_range,
        )
        if config.encoding != "none":
            # Deferred import: repro.energy depends on repro.core for
            # line geometry, so importing it at module scope would cycle.
            from ..energy.encoders import make_encoder

            self.engine.encoder = make_encoder(config.encoding, physical)
        # PAD components mirror their table rewrites into the priced
        # ``pad_table_writes`` counter (shared object: pickle keeps the
        # reference identity, so checkpoints stay consistent).
        if wl_backend == "wolfram":
            start_gap.bind_stats(self.engine.stats)
            if remapper is not None:
                remapper.bind_stats(self.engine.stats)
        # Debug-mode invariant checkers (repro.validate.invariants),
        # run by the pipeline after every write; empty by default.
        self.pipeline = WritePipeline(
            self.engine,
            placement=(
                WolframPlacementStage(self.engine)
                if wl_backend == "wolfram" else None
            ),
            remap=(
                WolframRemapStage(self.engine)
                if wl_backend == "wolfram" else None
            ),
            invariants=invariants,
        )
        self._shadow: dict[int, bytes] = {}
        # Out-of-order batch scheduler (stateless between calls; shares
        # the pipeline and the shadow store).
        self.scheduler = BatchScheduler(self.pipeline, self._shadow)

    # -- engine state passthrough (historical public attributes) ---------

    @property
    def compressor(self) -> BestOfCompressor:
        return self.engine.compressor

    @property
    def scheme(self):
        return self.engine.scheme

    @property
    def start_gap(self):
        return self.engine.start_gap

    @property
    def remapper(self) -> FreePRemapper | PadSpareRemapper | None:
        return self.engine.remapper

    @property
    def memory(self):
        return self.engine.memory

    @property
    def metadata(self) -> list[LineMetadata]:
        return self.engine.metadata

    @property
    def dead(self) -> np.ndarray:
        return self.engine.dead

    @property
    def death_fault_counts(self) -> dict[int, int]:
        return self.engine.death_fault_counts

    @property
    def intra_wl(self) -> IntraLineWearLeveler | None:
        return self.engine.intra_wl

    @property
    def heuristic(self) -> BitFlipHeuristic | None:
        return self.engine.heuristic

    @property
    def stats(self) -> ControllerStats:
        return self.engine.stats

    @property
    def _repairs(self) -> list[dict[int, int]]:
        return self.engine.repairs

    # -- public API ------------------------------------------------------

    def write(self, logical: int, data: bytes) -> WriteResult:
        """Handle one demand write-back from the LLC.

        ``logical`` is a *global* line number when an address range is
        set, a plain local one otherwise.
        """
        if len(data) != LINE_BYTES:
            raise ValueError(f"write data must be {LINE_BYTES} bytes")
        logical = self.engine.local_of(logical)
        remap = self.pipeline.remap
        movement = remap.on_demand_write(logical)
        if movement is not None:
            self._handle_gap_move(movement)

        self._shadow[logical] = data
        physical = remap.map_logical(logical)
        self.engine.stats.demand_writes += 1
        return self.pipeline.write_line(physical, data, revival_allowed=False)

    def write_batch(
        self, requests: list[tuple[int, bytes]]
    ) -> list[WriteResult]:
        """Handle a batch of demand write-backs from the LLC.

        ``requests`` is a sequence of ``(logical, data)`` pairs, and the
        result list is bit-identical to issuing the same :meth:`write`
        calls in order.  The stream flows through the out-of-order
        :class:`~repro.engine.scheduler.BatchScheduler`, which
        partitions it into maximal independent waves (same-row
        collisions and Start-Gap relocations become per-row dependency
        edges, not global flushes) and executes each wave through the
        vectorized row kernel, committing results back in program
        order.  Engine compositions the scheduler cannot prove
        equivalent for (invariant checkers, MLC cells, probabilistic
        fault modes) fall back to the serial :meth:`write` loop.
        Unlike :meth:`write`, all request payloads are validated up
        front, before any side effects.
        """
        requests = list(requests)
        for _, data in requests:
            if len(data) != LINE_BYTES:
                raise ValueError(f"write data must be {LINE_BYTES} bytes")
        if len(requests) < 2 or not self.scheduler.supported():
            return [self.write(logical, data) for logical, data in requests]
        return self.scheduler.run(requests)

    def enable_bank_parallel(self, workers: int | None = None):
        """Fan each scheduled wave's programming across a process pool.

        Moves the bank arrays into shared memory and forks ``workers``
        processes (default: one per bank, capped at cores minus one)
        that program disjoint per-bank row sets concurrently; see
        :mod:`repro.engine.bank_parallel`.  Opt-in: the dispatch only
        pays off for wide waves on multi-core hosts.  Requires an
        engine composition the scheduler supports.  Returns the
        executor; idempotent while one is active.
        """
        if self.scheduler.bank_parallel is not None:
            return self.scheduler.bank_parallel
        if not self.scheduler.supported():
            raise ValueError(
                "bank-parallel execution requires a schedulable engine "
                "(SLC array, stuck-at faults, no invariant checkers)"
            )
        from ..engine.bank_parallel import BankParallelExecutor

        executor = BankParallelExecutor(
            self.engine.memory, self.n_banks, workers
        )
        self.scheduler.bank_parallel = executor
        return executor

    def disable_bank_parallel(self) -> None:
        """Tear the process pool down and privatize the bank state."""
        executor = self.scheduler.bank_parallel
        if executor is not None:
            self.scheduler.bank_parallel = None
            executor.close()

    def _resolve(self, physical: int) -> int:
        """Follow FREE-p remap pointers when the extension is enabled."""
        return self.engine.resolve(physical)

    def read(self, logical: int) -> bytes | None:
        """Read one line back; None when the data was lost to a death.

        Accepts a global line number when an address range is set.
        """
        engine = self.engine
        logical = engine.local_of(logical)
        physical = self.pipeline.remap.map_logical(logical)
        if engine.dead[physical]:
            return None
        if logical not in self._shadow:
            return None
        meta = engine.metadata[physical]
        bits = engine.memory.read_bits(physical).copy()
        for position, value in engine.repairs[physical].items():
            bits[position] = value
        # Undo the write-energy line encoding (repairs patch *cell*
        # values, so they apply before decoding); identity when off.
        bits = self.pipeline.encoding.decode_read(physical, bits)
        if not meta.compressed:
            return extract_bytes(bits, 0, LINE_BYTES)
        payload = extract_bytes(bits, meta.start_pointer, meta.stored_size)
        member, encoding = engine.compressor.decode_metadata(meta.encoding)
        result = CompressionResult(
            algorithm=member.name,
            encoding=encoding,
            size_bits=meta.stored_size * 8,
            payload=payload,
        )
        return member.decompress(result)

    @property
    def dead_fraction(self) -> float:
        """Dead blocks as a fraction of the nominal (non-spare) capacity.

        A successfully remapped block is not dead -- its logical
        capacity lives on in the spare -- so with the FREE-p extension
        this only rises once remapping fails.
        """
        return self.engine.dead_fraction

    def average_faults_per_dead_block(self) -> float:
        """Mean stuck-cell count over blocks at their (last) death.

        This is the Figure 12 metric: how many faulty cells a failed
        512-bit block had accumulated before becoming unusable.
        """
        counts = self.engine.death_fault_counts
        if not counts:
            return 0.0
        return float(np.mean(list(counts.values())))

    # -- write path ------------------------------------------------------

    def _write_physical(
        self, physical: int, data: bytes, revival_allowed: bool
    ) -> WriteResult:
        """Historical entry point; delegates to the stage pipeline."""
        return self.pipeline.write_line(physical, data, revival_allowed)

    def _handle_gap_move(self, movement) -> None:
        """Relocate the lines a placement perturbation displaced.

        Backend-agnostic: ``movement.destinations`` lists every physical
        slot whose logical owner changed -- one for a Start-Gap move,
        two for a WoLFRaM PAD swap -- and each receives its *new*
        owner's data.  These relocation writes are the revival
        checkpoints of the Comp+WF design (``revival_allowed=True``).
        """
        engine = self.engine
        for destination in movement.destinations:
            logical = engine.start_gap.logical_of(destination)
            if logical is None:
                continue  # the Start-Gap spare slot holds no line
            data = self._shadow.get(logical)
            if data is None:
                continue  # the line was never written; nothing to relocate
            engine.stats.gap_move_writes += 1
            self.pipeline.write_line(
                engine.resolve(destination), data, revival_allowed=True
            )

    def _bank_of(self, physical: int) -> int:
        return self.engine.bank_of(physical)
