"""Compression-window placement and sliding (Section III-A, Figure 4).

Compressed data occupies a contiguous *compression window* inside the
64-byte line.  Windows are byte-granular and wrap around the end of the
line (so intra-line rotation offsets work uniformly).  A window
placement is *feasible* when the correction scheme can handle the
stuck-at faults that fall inside it -- faults outside the window sit
under unused cells and cost nothing.

``find_window`` implements the controller's search: start at a hint
(the line's current pointer, or the bank's rotation offset) and slide
byte-by-byte until a feasible placement appears.  Because most blocks
have fewer faults than the scheme's guaranteed capability, the common
case returns the hint immediately.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..correction import CorrectionScheme
from ..pcm.bits import bits_to_bytes, bytes_to_bits

LINE_BYTES = 64
LINE_BITS = 512


# Module-level placement caches.  They are process-global (shared by
# every simulator in the process) and bounded:
#
# * ``_MASK_CACHE`` / ``_INDEX_CACHE`` / ``_BIT_INDEX_CACHE`` are keyed
#   by ``(start_byte, size_bytes, line_bytes)``, so each holds at most
#   ``line_bytes**2`` entries per line geometry in use (4096 for the
#   standard 64-byte line);
# * ``_PAYLOAD_BITS_CACHE`` is an LRU capped at
#   ``_PAYLOAD_BITS_CACHE_CAPACITY`` payloads.
#
# Bounded is not free: a long-lived process that runs many sweeps keeps
# all four populated for its lifetime.  :func:`clear_window_caches` is
# the lifecycle hook that releases them; the sweep runner calls it on
# teardown (``SweepRunner.run_report``).
_MASK_CACHE: dict[tuple[int, int, int], np.ndarray] = {}
#: Content-addressed LRU of unpacked payload bit arrays (read-only);
#: write streams repeat payloads heavily, so placement skips the
#: bytes->bits unpack on a hit.
_PAYLOAD_BITS_CACHE: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
_PAYLOAD_BITS_CACHE_CAPACITY = 4096


def clear_window_caches() -> None:
    """Release the module-level placement caches.

    Purely a memory-lifecycle hook: the caches are transparent
    memoization, so clearing them never changes behaviour -- entries
    are rebuilt on demand.  Called from sweep-worker teardown so
    long-lived processes do not retain cache memory across sweeps.
    """
    _MASK_CACHE.clear()
    _INDEX_CACHE.clear()
    _BIT_INDEX_CACHE.clear()
    _PAYLOAD_BITS_CACHE.clear()


def _payload_bits(payload: bytes) -> np.ndarray:
    """Cached ``bytes_to_bits(payload)``, read-only."""
    cached = _PAYLOAD_BITS_CACHE.get(payload)
    if cached is not None:
        _PAYLOAD_BITS_CACHE.move_to_end(payload)
        return cached
    bits = bytes_to_bits(payload)
    bits.setflags(write=False)
    _PAYLOAD_BITS_CACHE[payload] = bits
    if len(_PAYLOAD_BITS_CACHE) > _PAYLOAD_BITS_CACHE_CAPACITY:
        _PAYLOAD_BITS_CACHE.popitem(last=False)
    return bits
_INDEX_CACHE: dict[tuple[int, int, int], np.ndarray] = {}
_BIT_INDEX_CACHE: dict[tuple[int, int, int], np.ndarray] = {}


def _window_byte_indices(
    start_byte: int, size_bytes: int, line_bytes: int
) -> np.ndarray:
    """Cached (start + arange(size)) % line byte-index vector, read-only."""
    key = (start_byte, size_bytes, line_bytes)
    indices = _INDEX_CACHE.get(key)
    if indices is None:
        indices = (start_byte + np.arange(size_bytes)) % line_bytes
        indices.setflags(write=False)
        _INDEX_CACHE[key] = indices
    return indices


def _window_bit_indices(
    start_byte: int, size_bytes: int, line_bytes: int
) -> np.ndarray:
    """Cached flat bit-index vector of a byte window, read-only."""
    key = (start_byte, size_bytes, line_bytes)
    indices = _BIT_INDEX_CACHE.get(key)
    if indices is None:
        byte_indices = _window_byte_indices(start_byte, size_bytes, line_bytes)
        indices = (byte_indices[:, None] * 8 + np.arange(8)).ravel()
        indices.setflags(write=False)
        _BIT_INDEX_CACHE[key] = indices
    return indices


def window_mask(start_byte: int, size_bytes: int, line_bytes: int = LINE_BYTES) -> np.ndarray:
    """Boolean cell mask of a (possibly wrapping) byte window.

    Masks are cached (there are only ``line_bytes**2`` of them) and
    returned read-only; copy before mutating.
    """
    if not 0 <= start_byte < line_bytes:
        raise ValueError(f"window start {start_byte} out of range")
    if not 1 <= size_bytes <= line_bytes:
        raise ValueError(f"window size {size_bytes} out of range")
    key = (start_byte, size_bytes, line_bytes)
    mask = _MASK_CACHE.get(key)
    if mask is None:
        byte_indices = _window_byte_indices(start_byte, size_bytes, line_bytes)
        mask = np.zeros((line_bytes, 8), dtype=bool)
        mask[byte_indices] = True
        mask = mask.reshape(-1)
        mask.setflags(write=False)
        _MASK_CACHE[key] = mask
    return mask


def place_bytes(
    base: np.ndarray, payload: bytes, start_byte: int, line_bytes: int = LINE_BYTES
) -> np.ndarray:
    """Lay ``payload`` into a copy of ``base`` bits at a byte window."""
    if len(payload) > line_bytes:
        raise ValueError("payload longer than the line")
    target = base.copy()
    bit_indices = _window_bit_indices(start_byte, len(payload), line_bytes)
    target[bit_indices] = _payload_bits(payload)
    return target


def extract_bytes(
    bits: np.ndarray, start_byte: int, size_bytes: int, line_bytes: int = LINE_BYTES
) -> bytes:
    """Read ``size_bytes`` from a (possibly wrapping) byte window."""
    if size_bytes == 0:
        return b""
    bit_indices = _window_bit_indices(start_byte, size_bytes, line_bytes)
    return bits_to_bytes(bits[bit_indices])


def faults_in_window(
    fault_positions: np.ndarray,
    start_byte: int,
    size_bytes: int,
    line_bytes: int = LINE_BYTES,
) -> np.ndarray:
    """Fault positions falling inside a byte window, window-relative.

    Positions are re-based to the window start so correction schemes
    see a stable coordinate system regardless of where the window sits
    (the scheme's partitioning hardware operates on the windowed data
    as it would on a line).
    """
    if fault_positions.size == 0:
        return fault_positions
    start_bit = start_byte * 8
    size_bits = size_bytes * 8
    relative = (fault_positions - start_bit) % (line_bytes * 8)
    return np.sort(relative[relative < size_bits])


def find_window(
    fault_positions: np.ndarray,
    size_bytes: int,
    scheme: CorrectionScheme,
    start_hint: int = 0,
    line_bytes: int = LINE_BYTES,
) -> int | None:
    """First feasible window start at/after ``start_hint``, or None.

    Feasibility means the correction scheme can mask every fault inside
    the window.  The search wraps over all ``line_bytes`` candidate
    starts, beginning at the hint so stable lines keep their pointer.
    """
    if fault_positions.size <= scheme.deterministic_capability:
        # Any placement works: the scheme guarantees this many faults
        # no matter where they land.
        return start_hint % line_bytes

    if size_bytes == line_bytes:
        # A full-line window sees every fault regardless of start.
        inside = faults_in_window(fault_positions, 0, size_bytes, line_bytes)
        return 0 if scheme.can_correct(inside) else None

    for step in range(line_bytes):
        start = (start_hint + step) % line_bytes
        inside = faults_in_window(fault_positions, start, size_bytes, line_bytes)
        if inside.size <= scheme.deterministic_capability or scheme.can_correct(
            inside
        ):
            return start
    return None
