"""Content-addressed compression cache.

PCM write streams are heavily content-redundant: traces are replayed
with ``itertools.cycle`` and the synthetic workloads draw lines from
finite content pools, so the same 64-byte payloads recur constantly
(CARAM, arXiv:2007.13661, builds a whole RRAM cache design on this
observation).  :class:`CachingCompressor` exploits that redundancy by
memoizing ``compress`` results in a bounded LRU map keyed on the raw
line content, turning the dominant per-write cost into a dict lookup.

The wrapper is transparent: it returns the *same* frozen
:class:`~repro.compression.base.CompressionResult` objects the inner
compressor produced (results are immutable, so sharing is safe), and
it delegates every other attribute -- ``members``, ``compress_all``,
``decompress``, metadata codecs -- to the wrapped compressor, so it
can stand in for :class:`~repro.compression.best.BestOfCompressor`
anywhere in the engine.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import CompressionResult, Compressor

#: Placeholder cache value for a batch entry whose compression result is
#: still outstanding (see :meth:`CachingCompressor.compress_batch`).  It
#: only ever lives inside ``_entries`` during a single batch call.
_PENDING = object()


class CachingCompressor:
    """Bounded content-addressed LRU cache around any :class:`Compressor`.

    Parameters
    ----------
    inner:
        The compressor whose ``compress`` results are memoized.
    capacity:
        Maximum number of distinct line contents retained.  Must be
        positive -- a zero capacity should be expressed by not
        wrapping the compressor at all.
    """

    def __init__(self, inner: Compressor, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.inner = inner
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[bytes, CompressionResult] = OrderedDict()
        # Mirror the identity attributes so the wrapper is a drop-in,
        # and bind the hot metadata codecs directly (the __getattr__
        # fallback is an order of magnitude slower per access).
        self.name = inner.name
        self.decompression_latency_cycles = inner.decompression_latency_cycles
        self.encoding_space = inner.encoding_space
        for codec in ("encode_metadata", "decode_metadata"):
            bound = getattr(inner, codec, None)
            if bound is not None:
                setattr(self, codec, bound)

    def compress(self, data: bytes) -> CompressionResult:
        """Return the memoized result for ``data``, compressing on miss."""
        # Real bytes keys are used as-is (the overwhelmingly common
        # case); anything buffer-like is snapshotted so a caller
        # mutating it later cannot corrupt the cache.
        key = data if type(data) is bytes else bytes(data)
        entries = self._entries
        result = entries.get(key)
        if result is not None:
            self.hits += 1
            entries.move_to_end(key)
            return result
        self.misses += 1
        result = self.inner.compress(key)
        entries[key] = result
        if len(entries) > self.capacity:
            entries.popitem(last=False)
        return result

    def compress_batch(self, lines) -> list[CompressionResult]:
        """Batched :meth:`compress` with exact serial cache semantics.

        The probe/insert/evict/move-to-end bookkeeping is replayed key
        by key in batch order -- placeholders stand in for results not
        yet computed -- so the hit/miss counters and the LRU order end
        up exactly as the per-line loop would leave them (a key evicted
        mid-batch re-misses when it recurs, just like serial).  All
        missing contents are then compressed in one
        ``inner.compress_batch`` call and the placeholders are
        resolved; repeated misses of one content share a single frozen
        result, which is indistinguishable from serial's equal-valued
        recomputes.
        """
        if not lines:
            return []
        entries = self._entries
        capacity = self.capacity
        keys = [data if type(data) is bytes else bytes(data) for data in lines]
        slots: list = [None] * len(keys)
        to_compute: dict[bytes, None] = {}
        pending_in_cache: set[bytes] = set()
        for index, key in enumerate(keys):
            result = entries.get(key)
            if result is not None:
                self.hits += 1
                entries.move_to_end(key)
                slots[index] = key if result is _PENDING else result
                continue
            self.misses += 1
            to_compute.setdefault(key)
            entries[key] = _PENDING
            pending_in_cache.add(key)
            slots[index] = key
            if len(entries) > capacity:
                evicted_key, evicted_value = entries.popitem(last=False)
                if evicted_value is _PENDING:
                    pending_in_cache.discard(evicted_key)
        try:
            computed = dict(
                zip(to_compute, self.inner.compress_batch(list(to_compute)))
            )
        except BaseException:
            # A placeholder must never outlive the batch call: a later
            # compress() would hand the sentinel out as a result.
            for key in pending_in_cache:
                entries.pop(key, None)
            raise
        for key in pending_in_cache:
            entries[key] = computed[key]
        return [
            slot if isinstance(slot, CompressionResult) else computed[slot]
            for slot in slots
        ]

    def clear(self) -> None:
        """Drop all cached entries (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __getattr__(self, attribute: str):
        # Everything not defined here (decompress, compress_all,
        # members, encode_metadata, decode_metadata, ...) is the inner
        # compressor's business.  Two lookups must fail instead of
        # delegating: ``inner`` itself (pickle/copy build an empty
        # instance and probe attributes *before* restoring __dict__, so
        # delegating would recurse forever) and dunders (protocol
        # probes like __getstate__/__reduce_ex__/__deepcopy__ must see
        # this object's own protocol surface, not the inner one's).
        if attribute == "inner" or (
            attribute.startswith("__") and attribute.endswith("__")
        ):
            raise AttributeError(
                f"{type(self).__name__!s} object has no attribute {attribute!r}"
            )
        return getattr(self.inner, attribute)
