"""Aggregate compression statistics over streams of memory lines.

These helpers back Figure 3 (average compressed size per compressor),
Figure 6 (probability of consecutive-write size change), Figure 7
(per-block size trajectories) and Figure 11 (compressed-size CDFs).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from .base import LINE_SIZE_BYTES, Compressor
from .best import BestOfCompressor


@dataclass(frozen=True)
class CompressionSummary:
    """Aggregate statistics for one compressor over a line stream."""

    compressor: str
    line_count: int
    mean_size_bytes: float
    compression_ratio: float

    @classmethod
    def from_sizes(cls, compressor: str, sizes: Sequence[int]) -> "CompressionSummary":
        """Build a summary from raw per-line sizes."""
        if not sizes:
            raise ValueError("cannot summarize an empty size list")
        mean = float(np.mean(sizes))
        return cls(
            compressor=compressor,
            line_count=len(sizes),
            mean_size_bytes=mean,
            compression_ratio=mean / LINE_SIZE_BYTES,
        )


def compressed_sizes(compressor: Compressor, lines: Iterable[bytes]) -> list[int]:
    """Byte-rounded compressed size of every line in the stream."""
    return [compressor.compress(line).size_bytes for line in lines]


def summarize(compressor: Compressor, lines: Sequence[bytes]) -> CompressionSummary:
    """One-shot summary of a compressor over a line stream."""
    return CompressionSummary.from_sizes(
        compressor.name, compressed_sizes(compressor, lines)
    )


def summarize_members(
    best: BestOfCompressor, lines: Sequence[bytes]
) -> dict[str, CompressionSummary]:
    """Summaries for every member compressor plus the best-of selection.

    This is the Figure 3 computation: per-application average compressed
    size under BDI, FPC, and BEST.
    """
    sizes: dict[str, list[int]] = {member.name: [] for member in best.members}
    sizes[best.name] = []
    for line in lines:
        results = best.compress_all(line)
        for name, result in results.items():
            sizes[name].append(result.size_bytes)
        sizes[best.name].append(
            min(result.size_bytes for result in results.values())
        )
    return {
        name: CompressionSummary.from_sizes(name, size_list)
        for name, size_list in sizes.items()
    }


def size_change_probability(sizes: Sequence[int], tolerance: int = 0) -> float:
    """Probability that consecutive sizes differ by more than ``tolerance``.

    Figure 6 reports this per application: two consecutive writes to the
    same block counting as "changed" when their compressed sizes differ.
    """
    if len(sizes) < 2:
        return 0.0
    pairs = len(sizes) - 1
    changes = sum(
        1
        for previous, current in zip(sizes, sizes[1:])
        if abs(current - previous) > tolerance
    )
    return changes / pairs


def size_cdf(sizes: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of compressed sizes (Figure 11).

    Returns:
        A pair ``(size_bytes, cumulative_fraction)`` where
        ``cumulative_fraction[i]`` is the fraction of samples with size
        less than or equal to ``size_bytes[i]``.
    """
    if not sizes:
        raise ValueError("cannot build a CDF from an empty size list")
    values, counts = np.unique(np.asarray(sizes), return_counts=True)
    cumulative = np.cumsum(counts) / len(sizes)
    return values, cumulative
