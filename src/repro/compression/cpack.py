"""C-Pack: Cache Packer compression (Chen et al., IEEE TVLSI 2010).

C-Pack combines static pattern coding with a small dynamically built
dictionary: each 4-byte word is matched against fixed zero patterns
and against the dictionary of recently seen unmatched words.

======= ========================================== ===========
code    pattern                                     output bits
======= ========================================== ===========
``00``  zzzz - all-zero word                        2
``01``  xxxx - no match (verbatim word)             2 + 32
``10``  mmmm - full dictionary match                2 + 4
``1100`` mmxx - dictionary match on upper 2 bytes   4 + 4 + 16
``1101`` zzzx - zero word except low byte           4 + 8
``1110`` mmmx - dictionary match on upper 3 bytes   4 + 4 + 8
======= ========================================== ===========

The 16-entry FIFO dictionary starts empty for every line and is pushed
with each word that fails a full match (xxxx, mmxx, mmmx), exactly as
in the hardware design, so decompression can rebuild it in lockstep.

Provided as an optional best-of member (the DSN'17 design is
compressor-agnostic); see ``benchmarks/test_ablation_compressors.py``.
"""

from __future__ import annotations

from .base import (
    LINE_SIZE_BYTES,
    CompressionError,
    CompressionResult,
    Compressor,
)

_WORD_BYTES = 4
_WORDS_PER_LINE = LINE_SIZE_BYTES // _WORD_BYTES
_BYTE_ORDER = "little"
_DICT_SIZE = 16
_INDEX_BITS = 4

#: The single encoding id C-Pack reports (the bitstream is self-describing).
ENC_CPACK = 0


class _Dictionary:
    """16-entry FIFO dictionary, identical on both sides."""

    def __init__(self) -> None:
        self._entries: list[int] = []

    def lookup_full(self, word: int) -> int | None:
        for index, entry in enumerate(self._entries):
            if entry == word:
                return index
        return None

    def lookup_prefix(self, word: int, prefix_bytes: int) -> int | None:
        shift = 8 * (_WORD_BYTES - prefix_bytes)
        target = word >> shift
        for index, entry in enumerate(self._entries):
            if entry >> shift == target:
                return index
        return None

    def push(self, word: int) -> None:
        if len(self._entries) >= _DICT_SIZE:
            self._entries.pop(0)
        self._entries.append(word)

    def get(self, index: int) -> int:
        if not 0 <= index < len(self._entries):
            raise CompressionError(f"cpack: dictionary index {index} invalid")
        return self._entries[index]


class CPackCompressor(Compressor):
    """C-Pack line compressor with a per-line FIFO dictionary."""

    name = "cpack"
    decompression_latency_cycles = 8  # serial dictionary replay
    encoding_space = 1

    def compress(self, data: bytes) -> CompressionResult:
        """Compress one 64-byte line (see :class:`Compressor`)."""
        self._check_input(data)
        dictionary = _Dictionary()
        bits = 0
        bit_count = 0

        def emit(value: int, width: int) -> None:
            nonlocal bits, bit_count
            bits = (bits << width) | (value & ((1 << width) - 1))
            bit_count += width

        for offset in range(0, LINE_SIZE_BYTES, _WORD_BYTES):
            word = int.from_bytes(data[offset : offset + _WORD_BYTES], _BYTE_ORDER)
            if word == 0:
                emit(0b00, 2)
                continue
            full = dictionary.lookup_full(word)
            if full is not None:
                emit(0b10, 2)
                emit(full, _INDEX_BITS)
                continue
            if word & 0xFFFFFF00 == 0:
                emit(0b1101, 4)
                emit(word, 8)
                continue
            three = dictionary.lookup_prefix(word, 3)
            if three is not None:
                emit(0b1110, 4)
                emit(three, _INDEX_BITS)
                emit(word & 0xFF, 8)
                dictionary.push(word)
                continue
            two = dictionary.lookup_prefix(word, 2)
            if two is not None:
                emit(0b1100, 4)
                emit(two, _INDEX_BITS)
                emit(word & 0xFFFF, 16)
                dictionary.push(word)
                continue
            emit(0b01, 2)
            emit(word, 32)
            dictionary.push(word)

        padding = (-bit_count) % 8
        payload = (bits << padding).to_bytes((bit_count + padding) // 8, "big")
        return CompressionResult(self.name, ENC_CPACK, bit_count, payload)

    def decompress(self, result: CompressionResult) -> bytes:
        """Reconstruct the 64-byte line (see :class:`Compressor`)."""
        self._check_result(result)
        total_bits = len(result.payload) * 8
        value = int.from_bytes(result.payload, "big")
        position = 0

        def read(width: int) -> int:
            nonlocal position
            if position + width > result.size_bits or position + width > total_bits:
                raise CompressionError("cpack: truncated bitstream")
            shift = total_bits - position - width
            position += width
            return (value >> shift) & ((1 << width) - 1)

        dictionary = _Dictionary()
        words: list[int] = []
        while len(words) < _WORDS_PER_LINE:
            code = read(2)
            if code == 0b00:
                words.append(0)
            elif code == 0b01:
                word = read(32)
                words.append(word)
                dictionary.push(word)
            elif code == 0b10:
                words.append(dictionary.get(read(_INDEX_BITS)))
            else:  # 0b11xx family
                sub = read(2)
                if sub == 0b00:  # mmxx
                    entry = dictionary.get(read(_INDEX_BITS))
                    word = (entry & 0xFFFF0000) | read(16)
                    words.append(word)
                    dictionary.push(word)
                elif sub == 0b01:  # zzzx
                    words.append(read(8))
                elif sub == 0b10:  # mmmx
                    entry = dictionary.get(read(_INDEX_BITS))
                    word = (entry & 0xFFFFFF00) | read(8)
                    words.append(word)
                    dictionary.push(word)
                else:
                    raise CompressionError(f"cpack: invalid code 11{sub:02b}")
        return b"".join(word.to_bytes(_WORD_BYTES, _BYTE_ORDER) for word in words)
