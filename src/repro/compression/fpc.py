"""Frequent Pattern Compression (FPC).

FPC (Alameldeen and Wood, ISCA 2004 -- the paper's reference [15])
compresses a line word-by-word: each 4-byte word is matched against a
small set of frequently occurring patterns and replaced by a 3-bit
prefix plus the minimal payload needed to reconstruct it.

========= ======================================== =============
prefix    pattern                                   payload bits
========= ======================================== =============
``000``   run of 1..8 zero words                    3 (run length)
``001``   4-bit sign-extended word                  4
``010``   one-byte sign-extended word               8
``011``   halfword sign-extended word               16
``100``   halfword padded with a zero halfword      16
``101``   two halfwords, each a sign-extended byte  16
``110``   word of four repeated bytes               8
``111``   uncompressed word                         32
========= ======================================== =============

This matches Table I of the PCM paper: a 4-byte chunk compresses to as
few as 3 bits (a zero word absorbed into a run) and decompression takes
5 cycles.
"""

from __future__ import annotations

from .base import (
    LINE_SIZE_BYTES,
    CompressionError,
    CompressionResult,
    Compressor,
)

_WORD_BYTES = 4
_WORDS_PER_LINE = LINE_SIZE_BYTES // _WORD_BYTES
_BYTE_ORDER = "little"

_PREFIX_BITS = 3
_PREFIX_ZERO_RUN = 0b000
_PREFIX_SE4 = 0b001
_PREFIX_SE8 = 0b010
_PREFIX_SE16 = 0b011
_PREFIX_HI_HALF = 0b100
_PREFIX_TWO_BYTES = 0b101
_PREFIX_REPEATED = 0b110
_PREFIX_UNCOMPRESSED = 0b111

_MAX_ZERO_RUN = 8

#: The single encoding id FPC reports (the bitstream is self-describing).
ENC_FPC = 0


class _BitWriter:
    """Append-only MSB-first bit buffer."""

    def __init__(self) -> None:
        self._value = 0
        self.bit_count = 0

    def write(self, value: int, width: int) -> None:
        self._value = (self._value << width) | (value & ((1 << width) - 1))
        self.bit_count += width

    def to_bytes(self) -> bytes:
        pad = (-self.bit_count) % 8
        return ((self._value << pad)).to_bytes((self.bit_count + pad) // 8, "big")


class _BitReader:
    """MSB-first bit reader over a packed payload."""

    def __init__(self, payload: bytes, bit_count: int) -> None:
        self._value = int.from_bytes(payload, "big")
        self._total = len(payload) * 8
        # A payload shorter than the advertised bit count is corrupt;
        # clamping makes every subsequent read fail loudly.
        self._limit = min(bit_count, self._total)
        self._position = 0

    def read(self, width: int) -> int:
        if self._position + width > self._limit:
            raise CompressionError("fpc: truncated bitstream")
        shift = self._total - self._position - width
        self._position += width
        return (self._value >> shift) & ((1 << width) - 1)


def _sign_extends(value: int, bits: int) -> bool:
    """Whether the signed 32-bit ``value`` fits in ``bits`` signed bits."""
    limit = 1 << (bits - 1)
    return -limit <= value < limit


def _to_signed32(word: int) -> int:
    return word - (1 << 32) if word >= (1 << 31) else word


class FPCCompressor(Compressor):
    """Frequent Pattern Compression line compressor."""

    name = "fpc"
    decompression_latency_cycles = 5
    encoding_space = 1  # the bitstream is self-describing

    def compress(self, data: bytes) -> CompressionResult:
        """Compress one 64-byte line (see :class:`Compressor`)."""
        self._check_input(data)
        words = [
            int.from_bytes(data[offset : offset + _WORD_BYTES], _BYTE_ORDER)
            for offset in range(0, LINE_SIZE_BYTES, _WORD_BYTES)
        ]

        writer = _BitWriter()
        index = 0
        while index < _WORDS_PER_LINE:
            word = words[index]
            if word == 0:
                run = 1
                while (
                    index + run < _WORDS_PER_LINE
                    and words[index + run] == 0
                    and run < _MAX_ZERO_RUN
                ):
                    run += 1
                writer.write(_PREFIX_ZERO_RUN, _PREFIX_BITS)
                writer.write(run - 1, 3)
                index += run
                continue
            self._encode_word(writer, word)
            index += 1

        return CompressionResult(self.name, ENC_FPC, writer.bit_count, writer.to_bytes())

    def decompress(self, result: CompressionResult) -> bytes:
        """Reconstruct the 64-byte line (see :class:`Compressor`)."""
        self._check_result(result)
        reader = _BitReader(result.payload, result.size_bits)
        words: list[int] = []
        while len(words) < _WORDS_PER_LINE:
            prefix = reader.read(_PREFIX_BITS)
            words.extend(self._decode_word(reader, prefix))
        if len(words) != _WORDS_PER_LINE:
            raise CompressionError("fpc: bitstream decodes to a wrong word count")
        return b"".join(word.to_bytes(_WORD_BYTES, _BYTE_ORDER) for word in words)

    def _encode_word(self, writer: _BitWriter, word: int) -> None:
        signed = _to_signed32(word)
        if _sign_extends(signed, 4):
            writer.write(_PREFIX_SE4, _PREFIX_BITS)
            writer.write(signed, 4)
        elif _sign_extends(signed, 8):
            writer.write(_PREFIX_SE8, _PREFIX_BITS)
            writer.write(signed, 8)
        elif _sign_extends(signed, 16):
            writer.write(_PREFIX_SE16, _PREFIX_BITS)
            writer.write(signed, 16)
        elif word & 0xFFFF == 0:
            writer.write(_PREFIX_HI_HALF, _PREFIX_BITS)
            writer.write(word >> 16, 16)
        elif self._both_halves_byte_extend(word):
            writer.write(_PREFIX_TWO_BYTES, _PREFIX_BITS)
            writer.write((word >> 16) & 0xFF, 8)
            writer.write(word & 0xFF, 8)
        elif self._repeated_bytes(word):
            writer.write(_PREFIX_REPEATED, _PREFIX_BITS)
            writer.write(word & 0xFF, 8)
        else:
            writer.write(_PREFIX_UNCOMPRESSED, _PREFIX_BITS)
            writer.write(word, 32)

    def _decode_word(self, reader: _BitReader, prefix: int) -> list[int]:
        if prefix == _PREFIX_ZERO_RUN:
            run = reader.read(3) + 1
            return [0] * run
        if prefix == _PREFIX_SE4:
            return [self._sign_extend(reader.read(4), 4)]
        if prefix == _PREFIX_SE8:
            return [self._sign_extend(reader.read(8), 8)]
        if prefix == _PREFIX_SE16:
            return [self._sign_extend(reader.read(16), 16)]
        if prefix == _PREFIX_HI_HALF:
            return [reader.read(16) << 16]
        if prefix == _PREFIX_TWO_BYTES:
            high = self._sign_extend_16(reader.read(8))
            low = self._sign_extend_16(reader.read(8))
            return [((high & 0xFFFF) << 16) | (low & 0xFFFF)]
        if prefix == _PREFIX_REPEATED:
            byte = reader.read(8)
            return [byte * 0x01010101]
        if prefix == _PREFIX_UNCOMPRESSED:
            return [reader.read(32)]
        raise CompressionError(f"fpc: invalid prefix {prefix:03b}")

    @staticmethod
    def _both_halves_byte_extend(word: int) -> bool:
        for half in ((word >> 16) & 0xFFFF, word & 0xFFFF):
            signed = half - (1 << 16) if half >= (1 << 15) else half
            if not _sign_extends(signed, 8):
                return False
        return True

    @staticmethod
    def _repeated_bytes(word: int) -> bool:
        byte = word & 0xFF
        return word == byte * 0x01010101

    @staticmethod
    def _sign_extend(value: int, bits: int) -> int:
        if value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value & 0xFFFFFFFF

    @staticmethod
    def _sign_extend_16(value: int) -> int:
        if value >= 0x80:
            value -= 0x100
        return value & 0xFFFF
