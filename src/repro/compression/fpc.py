"""Frequent Pattern Compression (FPC).

FPC (Alameldeen and Wood, ISCA 2004 -- the paper's reference [15])
compresses a line word-by-word: each 4-byte word is matched against a
small set of frequently occurring patterns and replaced by a 3-bit
prefix plus the minimal payload needed to reconstruct it.

========= ======================================== =============
prefix    pattern                                   payload bits
========= ======================================== =============
``000``   run of 1..8 zero words                    3 (run length)
``001``   4-bit sign-extended word                  4
``010``   one-byte sign-extended word               8
``011``   halfword sign-extended word               16
``100``   halfword padded with a zero halfword      16
``101``   two halfwords, each a sign-extended byte  16
``110``   word of four repeated bytes               8
``111``   uncompressed word                         32
========= ======================================== =============

This matches Table I of the PCM paper: a 4-byte chunk compresses to as
few as 3 bits (a zero word absorbed into a run) and decompression takes
5 cycles.
"""

from __future__ import annotations

import numpy as np

from .base import (
    LINE_SIZE_BYTES,
    CompressionError,
    CompressionResult,
    Compressor,
)

_WORD_BYTES = 4
_WORDS_PER_LINE = LINE_SIZE_BYTES // _WORD_BYTES
_BYTE_ORDER = "little"

_PREFIX_BITS = 3
_PREFIX_ZERO_RUN = 0b000
_PREFIX_SE4 = 0b001
_PREFIX_SE8 = 0b010
_PREFIX_SE16 = 0b011
_PREFIX_HI_HALF = 0b100
_PREFIX_TWO_BYTES = 0b101
_PREFIX_REPEATED = 0b110
_PREFIX_UNCOMPRESSED = 0b111

_MAX_ZERO_RUN = 8

#: Payload width in bits for every non-zero-run prefix, indexed by prefix.
_PAYLOAD_WIDTH = (0, 4, 8, 16, 16, 16, 8, 32)

#: The single encoding id FPC reports (the bitstream is self-describing).
ENC_FPC = 0


def _classify(word_arr: np.ndarray) -> np.ndarray:
    """FPC pattern-class predicate matrix for a word array.

    Works on a ``(16,)`` line or a ``(K, 16)`` batch alike: rows are
    ordered by prefix (SE4 .. UNCOMPRESSED), so ``argmax(axis=0)`` picks
    the first matching class per word; the all-True tail row is the
    uncompressed default.
    """
    signed_arr = word_arr.view("<i4")
    low_half = word_arr & 0xFFFF
    high_half = word_arr >> 16
    return np.array((
        (signed_arr >= -8) & (signed_arr < 8),
        (signed_arr >= -128) & (signed_arr < 128),
        (signed_arr >= -32768) & (signed_arr < 32768),
        low_half == 0,
        (((high_half + 128) & 0xFFFF) < 256)
        & (((low_half + 128) & 0xFFFF) < 256),
        word_arr == (word_arr & 0xFF) * 0x01010101,
        np.ones(word_arr.shape, dtype=bool),
    ))


class _BitReader:
    """MSB-first bit reader over a packed payload."""

    def __init__(self, payload: bytes, bit_count: int) -> None:
        self._value = int.from_bytes(payload, "big")
        self._total = len(payload) * 8
        # A payload shorter than the advertised bit count is corrupt;
        # clamping makes every subsequent read fail loudly.
        self._limit = min(bit_count, self._total)
        self._position = 0

    def read(self, width: int) -> int:
        if self._position + width > self._limit:
            raise CompressionError("fpc: truncated bitstream")
        shift = self._total - self._position - width
        self._position += width
        return (self._value >> shift) & ((1 << width) - 1)


class FPCCompressor(Compressor):
    """Frequent Pattern Compression line compressor."""

    name = "fpc"
    decompression_latency_cycles = 5
    encoding_space = 1  # the bitstream is self-describing

    def compress(self, data: bytes) -> CompressionResult:
        """Compress one 64-byte line (see :class:`Compressor`).

        All 16 words are classified at once with numpy array
        predicates (one boolean vector per pattern class; the first
        matching row of the predicate matrix is the word's prefix).
        Only the final variable-width bit packing walks the 16
        precomputed prefixes sequentially.
        """
        self._check_input(data)
        word_arr = np.frombuffer(data, dtype="<u4")
        prefixes = (_classify(word_arr).argmax(axis=0) + _PREFIX_SE4).tolist()
        return self._pack_line(
            word_arr.tolist(), word_arr.view("<i4").tolist(), prefixes
        )

    def compress_batch(self, lines) -> list[CompressionResult]:
        """Batched :meth:`compress`: one 2-D classification for all lines.

        The predicate matrix is evaluated over a ``(K, 16)`` word matrix
        in one shot; only the variable-width bit packing remains
        per-line, and it consumes exactly the prefixes the serial path
        would compute -- the results are value-identical by construction.
        """
        if not lines:
            return []
        for data in lines:
            self._check_input(data)
        word_matrix = np.frombuffer(b"".join(lines), dtype="<u4").reshape(
            len(lines), _WORDS_PER_LINE
        )
        prefix_matrix = (_classify(word_matrix).argmax(axis=0) + _PREFIX_SE4).tolist()
        words_rows = word_matrix.tolist()
        signed_rows = word_matrix.view("<i4").tolist()
        return [
            self._pack_line(words, signed, prefixes)
            for words, signed, prefixes in zip(
                words_rows, signed_rows, prefix_matrix
            )
        ]

    def _pack_line(
        self, words: list, signed: list, prefixes: list
    ) -> CompressionResult:
        """Variable-width bit packing of one classified line."""
        value = 0
        bit_count = 0
        index = 0
        while index < _WORDS_PER_LINE:
            word = words[index]
            if word == 0:
                run = 1
                while (
                    index + run < _WORDS_PER_LINE
                    and words[index + run] == 0
                    and run < _MAX_ZERO_RUN
                ):
                    run += 1
                # Prefix 000 followed by the 3-bit run length.
                value = (value << 6) | (run - 1)
                bit_count += 6
                index += run
                continue
            prefix = prefixes[index]
            if prefix == _PREFIX_SE4:
                payload = signed[index] & 0xF
            elif prefix == _PREFIX_SE8:
                payload = signed[index] & 0xFF
            elif prefix == _PREFIX_SE16:
                payload = signed[index] & 0xFFFF
            elif prefix == _PREFIX_HI_HALF:
                payload = word >> 16
            elif prefix == _PREFIX_TWO_BYTES:
                payload = ((word >> 16) & 0xFF) << 8 | (word & 0xFF)
            elif prefix == _PREFIX_REPEATED:
                payload = word & 0xFF
            else:
                payload = word
            width = _PAYLOAD_WIDTH[prefix]
            value = (value << (_PREFIX_BITS + width)) | (prefix << width) | payload
            bit_count += _PREFIX_BITS + width
            index += 1

        pad = (-bit_count) % 8
        payload = (value << pad).to_bytes((bit_count + pad) // 8, "big")
        return CompressionResult(self.name, ENC_FPC, bit_count, payload)

    def decompress(self, result: CompressionResult) -> bytes:
        """Reconstruct the 64-byte line (see :class:`Compressor`)."""
        self._check_result(result)
        reader = _BitReader(result.payload, result.size_bits)
        words: list[int] = []
        while len(words) < _WORDS_PER_LINE:
            prefix = reader.read(_PREFIX_BITS)
            words.extend(self._decode_word(reader, prefix))
        if len(words) != _WORDS_PER_LINE:
            raise CompressionError("fpc: bitstream decodes to a wrong word count")
        return b"".join(word.to_bytes(_WORD_BYTES, _BYTE_ORDER) for word in words)

    def _decode_word(self, reader: _BitReader, prefix: int) -> list[int]:
        if prefix == _PREFIX_ZERO_RUN:
            run = reader.read(3) + 1
            return [0] * run
        if prefix == _PREFIX_SE4:
            return [self._sign_extend(reader.read(4), 4)]
        if prefix == _PREFIX_SE8:
            return [self._sign_extend(reader.read(8), 8)]
        if prefix == _PREFIX_SE16:
            return [self._sign_extend(reader.read(16), 16)]
        if prefix == _PREFIX_HI_HALF:
            return [reader.read(16) << 16]
        if prefix == _PREFIX_TWO_BYTES:
            high = self._sign_extend_16(reader.read(8))
            low = self._sign_extend_16(reader.read(8))
            return [((high & 0xFFFF) << 16) | (low & 0xFFFF)]
        if prefix == _PREFIX_REPEATED:
            byte = reader.read(8)
            return [byte * 0x01010101]
        if prefix == _PREFIX_UNCOMPRESSED:
            return [reader.read(32)]
        raise CompressionError(f"fpc: invalid prefix {prefix:03b}")

    @staticmethod
    def _sign_extend(value: int, bits: int) -> int:
        if value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value & 0xFFFFFFFF

    @staticmethod
    def _sign_extend_16(value: int) -> int:
        if value >= 0x80:
            value -= 0x100
        return value & 0xFFFF
