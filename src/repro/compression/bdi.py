"""Base-Delta-Immediate (BDI) compression.

BDI (Pekhimenko et al., PACT 2012 -- the paper's reference [16]) exploits
the low dynamic range of the words in a memory line: it stores one word
as the *base* and the remaining words as narrow *deltas* from that base.
Two special encodings handle all-zero lines and lines made of a single
repeated 8-byte value.

For a 64-byte line the encodings and their sizes are:

======== ================================ ==========
encoding layout                            size
======== ================================ ==========
ZEROS    (nothing; the line is zero)       1 byte
REP8     one 8-byte value                  8 bytes
B8D1     8-byte base + 8 x 1-byte deltas   16 bytes
B4D1     4-byte base + 16 x 1-byte deltas  20 bytes
B8D2     8-byte base + 8 x 2-byte deltas   24 bytes
B2D1     2-byte base + 32 x 1-byte deltas  34 bytes
B4D2     4-byte base + 16 x 2-byte deltas  36 bytes
B8D4     8-byte base + 8 x 4-byte deltas   40 bytes
UNCOMP   raw line                          64 bytes
======== ================================ ==========

This matches Table I of the PCM paper ("compression size: 1..40 bytes",
decompression latency 1 cycle).  The first word of the line is used as
the base; deltas are signed and must fit the delta width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import (
    LINE_SIZE_BYTES,
    CompressionError,
    CompressionResult,
    Compressor,
)

_BYTE_ORDER = "little"
_UNSIGNED_DTYPE = {8: "<u8", 4: "<u4", 2: "<u2"}
_SIGNED_DTYPE = {8: "<i8", 4: "<i4", 2: "<i2"}
#: Little-endian signed dtype used to pack a delta array of each width.
_DELTA_DTYPE = {1: "<i1", 2: "<i2", 4: "<i4"}


@dataclass(frozen=True)
class _Variant:
    """One base+delta geometry."""

    encoding: int
    name: str
    base_bytes: int
    delta_bytes: int

    @property
    def word_count(self) -> int:
        return LINE_SIZE_BYTES // self.base_bytes

    @property
    def compressed_bytes(self) -> int:
        # Base word plus one delta per word.  The base word's own delta
        # is always zero but is still stored: this keeps the delta array
        # position-regular, matching the BDI hardware layout and the
        # canonical sizes (16/20/24/34/36/40 bytes for a 64-byte line).
        return self.base_bytes + self.word_count * self.delta_bytes


#: Encoding identifiers.  They fit the paper's 5-bit metadata field.
ENC_UNCOMPRESSED = 0
ENC_ZEROS = 1
ENC_REP8 = 2

_VARIANTS = (
    _Variant(3, "b8d1", base_bytes=8, delta_bytes=1),
    _Variant(4, "b4d1", base_bytes=4, delta_bytes=1),
    _Variant(5, "b8d2", base_bytes=8, delta_bytes=2),
    _Variant(6, "b2d1", base_bytes=2, delta_bytes=1),
    _Variant(7, "b4d2", base_bytes=4, delta_bytes=2),
    _Variant(8, "b8d4", base_bytes=8, delta_bytes=4),
)
_VARIANT_BY_ENCODING = {variant.encoding: variant for variant in _VARIANTS}
#: Variants ordered by compressed size, smallest first.
_VARIANTS_BY_SIZE = tuple(sorted(_VARIANTS, key=lambda v: v.compressed_bytes))


class BDICompressor(Compressor):
    """Base-Delta-Immediate line compressor."""

    name = "bdi"
    decompression_latency_cycles = 1
    encoding_space = 9  # uncompressed, zeros, rep8, six base+delta variants

    def compress(self, data: bytes) -> CompressionResult:
        """Compress one 64-byte line (see :class:`Compressor`).

        The wrapped delta array for each base width is computed once
        (numpy, whole-line); every variant's delta-fit check then
        reduces to two scalar bound comparisons, and the winning
        payload is packed with ``ndarray.astype(...).tobytes()``
        instead of per-delta ``int.to_bytes`` calls.
        """
        self._check_input(data)

        if data == bytes(LINE_SIZE_BYTES):
            return CompressionResult(self.name, ENC_ZEROS, 8, b"\x00")

        if data[:8] * (LINE_SIZE_BYTES // 8) == data:
            return CompressionResult(self.name, ENC_REP8, 64, data[:8])

        # width -> (wrapped deltas, min, max); filled lazily since the
        # smallest variants usually decide the outcome.
        bounds: dict[int, tuple[np.ndarray, int, int]] = {}
        for variant in _VARIANTS_BY_SIZE:
            width = variant.base_bytes
            entry = bounds.get(width)
            if entry is None:
                # Deltas wrap modulo the word width: the hardware adds
                # them back with wraparound arithmetic on decompression,
                # so the modular value only has to fit the delta field.
                words = np.frombuffer(data, dtype=_UNSIGNED_DTYPE[width])
                deltas = (words - words[0]).view(_SIGNED_DTYPE[width])
                entry = bounds[width] = (
                    deltas, int(deltas.min()), int(deltas.max())
                )
            deltas, lowest, highest = entry
            limit = 1 << (8 * variant.delta_bytes - 1)
            if lowest >= -limit and highest < limit:
                # In-range astype narrowing is exact two's complement,
                # identical to int.to_bytes(..., signed=True) per delta.
                payload = (
                    data[:width]
                    + deltas.astype(_DELTA_DTYPE[variant.delta_bytes]).tobytes()
                )
                return CompressionResult(
                    self.name,
                    variant.encoding,
                    variant.compressed_bytes * 8,
                    payload,
                )

        return CompressionResult(
            self.name, ENC_UNCOMPRESSED, LINE_SIZE_BYTES * 8, bytes(data)
        )

    def compress_batch(self, lines) -> list[CompressionResult]:
        """Batched :meth:`compress`: delta-fit checks over ``(K, n)`` matrices.

        The zero/rep8 screens and every variant's wrapped-delta bounds
        are computed for the whole batch at once; rows fall through the
        variants in the same smallest-first order as the serial path,
        so each row's winner (and payload bytes) is value-identical to
        ``compress`` on that line alone.
        """
        if not lines:
            return []
        for data in lines:
            self._check_input(data)
        raw = [data if type(data) is bytes else bytes(data) for data in lines]
        blob = b"".join(raw)
        n_rows = len(raw)
        byte_matrix = np.frombuffer(blob, dtype=np.uint8).reshape(
            n_rows, LINE_SIZE_BYTES
        )
        results: list[CompressionResult | None] = [None] * n_rows

        zero_rows = ~byte_matrix.any(axis=1)
        words8 = np.frombuffer(blob, dtype="<u8").reshape(n_rows, -1)
        rep8_rows = (words8 == words8[:, :1]).all(axis=1) & ~zero_rows
        pending = ~(zero_rows | rep8_rows)

        # width -> (wrapped deltas (K, n), per-row min, per-row max);
        # filled lazily exactly like the serial path.
        bounds: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for variant in _VARIANTS_BY_SIZE:
            if not pending.any():
                break
            width = variant.base_bytes
            entry = bounds.get(width)
            if entry is None:
                words = np.frombuffer(blob, dtype=_UNSIGNED_DTYPE[width]).reshape(
                    n_rows, -1
                )
                deltas = (words - words[:, :1]).view(_SIGNED_DTYPE[width])
                entry = bounds[width] = (
                    deltas, deltas.min(axis=1), deltas.max(axis=1)
                )
            deltas, lowest, highest = entry
            limit = 1 << (8 * variant.delta_bytes - 1)
            fits = pending & (lowest >= -limit) & (highest < limit)
            dtype = _DELTA_DTYPE[variant.delta_bytes]
            for row in np.flatnonzero(fits):
                payload = raw[row][:width] + deltas[row].astype(dtype).tobytes()
                results[row] = CompressionResult(
                    self.name,
                    variant.encoding,
                    variant.compressed_bytes * 8,
                    payload,
                )
            pending &= ~fits

        for row in np.flatnonzero(zero_rows):
            results[row] = CompressionResult(self.name, ENC_ZEROS, 8, b"\x00")
        for row in np.flatnonzero(rep8_rows):
            results[row] = CompressionResult(self.name, ENC_REP8, 64, raw[row][:8])
        for row in np.flatnonzero(pending):
            results[row] = CompressionResult(
                self.name, ENC_UNCOMPRESSED, LINE_SIZE_BYTES * 8, raw[row]
            )
        return results

    def decompress(self, result: CompressionResult) -> bytes:
        """Reconstruct the 64-byte line (see :class:`Compressor`)."""
        self._check_result(result)
        encoding = result.encoding

        if encoding == ENC_UNCOMPRESSED:
            if len(result.payload) != LINE_SIZE_BYTES:
                raise CompressionError("bdi: bad uncompressed payload size")
            return bytes(result.payload)
        if encoding == ENC_ZEROS:
            return bytes(LINE_SIZE_BYTES)
        if encoding == ENC_REP8:
            if len(result.payload) != 8:
                raise CompressionError("bdi: bad rep8 payload size")
            return bytes(result.payload) * (LINE_SIZE_BYTES // 8)

        variant = _VARIANT_BY_ENCODING.get(encoding)
        if variant is None:
            raise CompressionError(f"bdi: unknown encoding {encoding}")
        return self._decode_variant(result.payload, variant)

    @staticmethod
    def variant_sizes() -> dict[str, int]:
        """Compressed size in bytes for every base+delta geometry."""
        return {v.name: v.compressed_bytes for v in _VARIANTS_BY_SIZE}

    def _decode_variant(self, payload: bytes, variant: _Variant) -> bytes:
        expected = variant.compressed_bytes
        if len(payload) != expected:
            raise CompressionError(
                f"bdi: {variant.name} payload must be {expected} bytes, "
                f"got {len(payload)}"
            )
        base = int.from_bytes(payload[: variant.base_bytes], _BYTE_ORDER)
        words = []
        offset = variant.base_bytes
        for _ in range(variant.word_count):
            delta = int.from_bytes(
                payload[offset : offset + variant.delta_bytes],
                _BYTE_ORDER,
                signed=True,
            )
            # Reconstruct modulo the word width: compression guarantees
            # the delta fits, so this is exact for valid payloads.
            words.append((base + delta) % (1 << (8 * variant.base_bytes)))
            offset += variant.delta_bytes
        return b"".join(
            word.to_bytes(variant.base_bytes, _BYTE_ORDER) for word in words
        )
