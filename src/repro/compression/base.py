"""Common interfaces for line compressors.

The paper compresses every 64-byte write-back with two hardware
compressors (BDI and FPC) running in parallel and keeps the smaller
output (Section III, Figure 3).  All compressors in this package share
the :class:`Compressor` interface so the memory controller, the traces
package, and the analysis harnesses can treat them uniformly.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence  # noqa: TC003 -- used in signatures
from dataclasses import dataclass, field

#: Size of a memory line (and therefore of every compressor input), in bytes.
LINE_SIZE_BYTES = 64
#: Size of a memory line in bits.
LINE_SIZE_BITS = LINE_SIZE_BYTES * 8


class CompressionError(ValueError):
    """Raised for malformed compressor inputs or undecodable payloads."""


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one memory line.

    Attributes:
        algorithm: Name of the compressor that produced the payload.
        encoding: Compressor-specific encoding identifier.  Together with
            ``algorithm`` this is what the paper stores in the 5-bit
            per-line "encoding information" metadata field.
        size_bits: Exact size of the compressed representation in bits.
        payload: The compressed representation, packed into bytes
            (the final byte is zero-padded when ``size_bits`` is not a
            multiple of eight).
    """

    algorithm: str
    encoding: int
    size_bits: int
    payload: bytes = field(repr=False)

    @property
    def size_bytes(self) -> int:
        """Compressed size rounded up to whole bytes.

        The compression window is byte-granular in our design (it slides
        in 1-byte steps, Section III-A.2), so byte-rounded sizes are what
        the window manager consumes.
        """
        return (self.size_bits + 7) // 8

    @property
    def is_compressed(self) -> bool:
        """Whether the payload is smaller than an uncompressed line."""
        return self.size_bytes < LINE_SIZE_BYTES


class Compressor(abc.ABC):
    """A block compressor operating on whole 64-byte memory lines."""

    #: Human-readable, unique compressor name.
    name: str = "abstract"
    #: Decompression latency in CPU cycles (Table I).
    decompression_latency_cycles: int = 0
    #: Number of distinct ``encoding`` values the compressor emits.
    #: Best-of packs (member, encoding) into the 5-bit metadata field
    #: by summing the members' encoding spaces, so keep this tight.
    encoding_space: int = 1

    @abc.abstractmethod
    def compress(self, data: bytes) -> CompressionResult:
        """Compress one line; always succeeds.

        Implementations must fall back to an "uncompressed" encoding when
        no pattern applies, so ``compress`` never raises for well-sized
        input.

        Raises:
            CompressionError: If ``data`` is not exactly one line.
        """

    @abc.abstractmethod
    def decompress(self, result: CompressionResult) -> bytes:
        """Reconstruct the original 64-byte line from ``result``.

        Raises:
            CompressionError: If the payload is inconsistent with the
                encoding, or the result belongs to another compressor.
        """

    def compress_batch(self, lines: "Sequence[bytes]") -> list[CompressionResult]:
        """Compress a batch of lines; element ``i`` equals ``compress(lines[i])``.

        The base implementation is the per-line loop; vectorized
        compressors override it with a 2-D kernel over the batch axis.
        Overrides must stay *value-identical* to the loop (pinned by
        ``tests/compression/test_batch_equivalence.py``) -- the batched
        write engine relies on it for bit-exact batched/serial parity.
        """
        return [self.compress(data) for data in lines]

    def compressed_size_bytes(self, data: bytes) -> int:
        """Convenience wrapper returning only the byte-rounded size."""
        return self.compress(data).size_bytes

    def _check_input(self, data: bytes) -> None:
        if len(data) != LINE_SIZE_BYTES:
            raise CompressionError(
                f"{self.name}: expected a {LINE_SIZE_BYTES}-byte line, "
                f"got {len(data)} bytes"
            )

    def _check_result(self, result: CompressionResult) -> None:
        if result.algorithm != self.name:
            raise CompressionError(
                f"{self.name}: cannot decompress a payload produced by "
                f"{result.algorithm!r}"
            )
