"""Line compressors: BDI, FPC and the best-of-both controller policy."""

from .base import (
    LINE_SIZE_BITS,
    LINE_SIZE_BYTES,
    CompressionError,
    CompressionResult,
    Compressor,
)
from .bdi import BDICompressor
from .best import ENCODING_METADATA_BITS, BestOfCompressor
from .cache import CachingCompressor
from .fpc import FPCCompressor
from .fvc import DEFAULT_DICTIONARY, FVCCompressor
from .stats import (
    CompressionSummary,
    compressed_sizes,
    size_cdf,
    size_change_probability,
    summarize,
    summarize_members,
)

__all__ = [
    "LINE_SIZE_BITS",
    "LINE_SIZE_BYTES",
    "CompressionError",
    "CompressionResult",
    "Compressor",
    "BDICompressor",
    "DEFAULT_DICTIONARY",
    "FPCCompressor",
    "FVCCompressor",
    "BestOfCompressor",
    "CachingCompressor",
    "ENCODING_METADATA_BITS",
    "CompressionSummary",
    "compressed_sizes",
    "size_cdf",
    "size_change_probability",
    "summarize",
    "summarize_members",
]

from .cpack import CPackCompressor  # noqa: E402

__all__ += ["CPackCompressor"]
