"""Best-of-N compression, as used by the paper's memory controller.

The controller runs BDI and FPC in parallel on every write-back and
keeps whichever output is smaller (Section III, Figure 3).  The 5-bit
per-line "encoding information" metadata field records both which
compressor won and its internal encoding, so a read can route the
payload to the right decompressor.
"""

from __future__ import annotations

from collections.abc import Sequence

from .base import CompressionError, CompressionResult, Compressor
from .bdi import BDICompressor
from .fpc import FPCCompressor

#: Width of the per-line encoding metadata field (Section III-B).
ENCODING_METADATA_BITS = 5


class BestOfCompressor(Compressor):
    """Runs several compressors and keeps the smallest output.

    Ties are broken in member order, so put the compressor with the
    cheaper decompression first (BDI: 1 cycle vs FPC: 5 cycles).

    The 5-bit per-line metadata field is partitioned among the members
    by their declared ``encoding_space``: member ``i`` owns the value
    range ``[base_i, base_i + space_i)``.  The default BDI+FPC pair uses
    10 of the 32 values, leaving room for extra members such as FVC.
    """

    name = "best"
    decompression_latency_cycles = 0  # depends on the winning member

    def __init__(self, compressors: Sequence[Compressor] | None = None) -> None:
        if compressors is None:
            compressors = (BDICompressor(), FPCCompressor())
        if not compressors:
            raise ValueError("BestOfCompressor needs at least one member")
        self._compressors = tuple(compressors)
        self._by_name = {c.name: c for c in self._compressors}
        if len(self._by_name) != len(self._compressors):
            raise ValueError("member compressor names must be unique")
        self._encoding_bases = []
        base = 0
        for compressor in self._compressors:
            self._encoding_bases.append(base)
            base += compressor.encoding_space
        if base > (1 << ENCODING_METADATA_BITS):
            raise ValueError(
                f"member encoding spaces need {base} values, more than the "
                f"{ENCODING_METADATA_BITS}-bit metadata field holds"
            )

    @property
    def members(self) -> tuple[Compressor, ...]:
        """The member compressors, in tie-break order."""
        return self._compressors

    def compress(self, data: bytes) -> CompressionResult:
        """Compress one 64-byte line (see :class:`Compressor`)."""
        results = [compressor.compress(data) for compressor in self._compressors]
        return min(results, key=lambda result: result.size_bits)

    def compress_batch(self, lines) -> list[CompressionResult]:
        """Batched :meth:`compress`: one member batch call each, then
        a per-row minimum with the same first-member tie-break."""
        if not lines:
            return []
        per_member = [
            compressor.compress_batch(lines) for compressor in self._compressors
        ]
        return [
            min(row, key=lambda result: result.size_bits)
            for row in zip(*per_member)
        ]

    def compress_all(self, data: bytes) -> dict[str, CompressionResult]:
        """Results from every member, keyed by compressor name."""
        return {c.name: c.compress(data) for c in self._compressors}

    def decompress(self, result: CompressionResult) -> bytes:
        """Reconstruct the 64-byte line (see :class:`Compressor`)."""
        member = self._by_name.get(result.algorithm)
        if member is None:
            raise CompressionError(
                f"best: no member compressor named {result.algorithm!r}"
            )
        return member.decompress(result)

    def decompression_latency(self, result: CompressionResult) -> int:
        """Decompression latency in cycles for a specific result."""
        member = self._by_name.get(result.algorithm)
        if member is None:
            raise CompressionError(
                f"best: no member compressor named {result.algorithm!r}"
            )
        return member.decompression_latency_cycles

    def encode_metadata(self, result: CompressionResult) -> int:
        """Pack a result into the 5-bit encoding metadata value."""
        for index, member in enumerate(self._compressors):
            if member.name == result.algorithm:
                if result.encoding >= member.encoding_space:
                    raise CompressionError(
                        f"best: encoding {result.encoding} of "
                        f"{result.algorithm!r} exceeds its declared space "
                        f"of {member.encoding_space}"
                    )
                return self._encoding_bases[index] + result.encoding
        raise CompressionError(
            f"best: no member compressor named {result.algorithm!r}"
        )

    def decode_metadata(self, metadata: int) -> tuple[Compressor, int]:
        """Unpack a metadata value into (member compressor, encoding)."""
        if not 0 <= metadata < (1 << ENCODING_METADATA_BITS):
            raise CompressionError(f"best: metadata {metadata} out of range")
        for index in reversed(range(len(self._compressors))):
            base = self._encoding_bases[index]
            if metadata >= base:
                member = self._compressors[index]
                encoding = metadata - base
                if encoding >= member.encoding_space:
                    raise CompressionError(
                        f"best: metadata {metadata} names no member encoding"
                    )
                return member, encoding
        raise CompressionError(f"best: metadata {metadata} names no member")
