"""Frequent Value Compression (FVC).

FVC (Yang, Zhang, Gupta, MICRO 2000 -- the paper's reference [14])
exploits the observation that a small number of distinct 32-bit values
(zero, small constants, common pointers) account for a large share of
memory contents.  A small dictionary of frequent values is maintained;
each word is stored either as a short dictionary index or verbatim.

Encoding per 4-byte word: a 1-bit flag plus either ``log2(dict size)``
index bits (hit) or 32 bits (miss).  With the default 8-entry
dictionary a fully frequent line costs 16 x (1 + 3) = 64 bits = 8
bytes, and a fully infrequent line costs 16 x 33 bits = 66 bytes --
which the best-of policy simply never picks.

The DSN'17 paper's design is compressor-agnostic ("our proposed design
assumes that any prior compression algorithm ... can be used"); FVC is
provided as a third member for the best-of policy and for the member-set
ablation (``benchmarks/test_ablation_compressors.py``).

The dictionary must be identical at compression and decompression time.
We use the static profile common in hardware proposals: zero, the
all-ones word, small integers, and sign-extension patterns.  A custom
dictionary can be supplied for workload-tuned variants.
"""

from __future__ import annotations

from collections.abc import Sequence

from .base import (
    LINE_SIZE_BYTES,
    CompressionError,
    CompressionResult,
    Compressor,
)

_WORD_BYTES = 4
_WORDS_PER_LINE = LINE_SIZE_BYTES // _WORD_BYTES
_BYTE_ORDER = "little"

#: Default 8-entry frequent-value dictionary (static profile).
DEFAULT_DICTIONARY = (
    0x00000000,
    0xFFFFFFFF,
    0x00000001,
    0x00000002,
    0x00000004,
    0x00000008,
    0x0000FFFF,
    0x80000000,
)

#: The single encoding id FVC reports (the bitstream is self-describing).
ENC_FVC = 0


class FVCCompressor(Compressor):
    """Frequent Value Compression with a static dictionary."""

    name = "fvc"
    decompression_latency_cycles = 1  # a dictionary lookup per word
    encoding_space = 1  # the bitstream is self-describing

    def __init__(self, dictionary: Sequence[int] = DEFAULT_DICTIONARY) -> None:
        if not dictionary:
            raise ValueError("the dictionary needs at least one entry")
        if len(dictionary) & (len(dictionary) - 1):
            raise ValueError("dictionary size must be a power of two")
        if len(set(dictionary)) != len(dictionary):
            raise ValueError("dictionary entries must be unique")
        for value in dictionary:
            if not 0 <= value < (1 << 32):
                raise ValueError(f"dictionary value {value:#x} is not a 32-bit word")
        self.dictionary = tuple(dictionary)
        self._index = {value: i for i, value in enumerate(self.dictionary)}
        self.index_bits = max(1, (len(dictionary) - 1).bit_length())

    def compress(self, data: bytes) -> CompressionResult:
        """Compress one 64-byte line (see :class:`Compressor`)."""
        self._check_input(data)
        bits = 0
        bit_count = 0
        for offset in range(0, LINE_SIZE_BYTES, _WORD_BYTES):
            word = int.from_bytes(data[offset : offset + _WORD_BYTES], _BYTE_ORDER)
            index = self._index.get(word)
            if index is None:
                bits = (bits << 33) | (1 << 32) | word  # miss flag + verbatim
                bit_count += 33
            else:
                bits = (bits << (1 + self.index_bits)) | index  # hit flag 0
                bit_count += 1 + self.index_bits
        padding = (-bit_count) % 8
        payload = (bits << padding).to_bytes((bit_count + padding) // 8, "big")
        return CompressionResult(self.name, ENC_FVC, bit_count, payload)

    def decompress(self, result: CompressionResult) -> bytes:
        """Reconstruct the 64-byte line (see :class:`Compressor`)."""
        self._check_result(result)
        total_bits = len(result.payload) * 8
        value = int.from_bytes(result.payload, "big")
        position = 0

        def read(width: int) -> int:
            nonlocal position
            if position + width > result.size_bits or position + width > total_bits:
                raise CompressionError("fvc: truncated bitstream")
            shift = total_bits - position - width
            position += width
            return (value >> shift) & ((1 << width) - 1)

        words = []
        for _ in range(_WORDS_PER_LINE):
            if read(1):
                words.append(read(32))
            else:
                index = read(self.index_bits)
                if index >= len(self.dictionary):
                    raise CompressionError(f"fvc: dictionary index {index} out of range")
                words.append(self.dictionary[index])
        return b"".join(word.to_bytes(_WORD_BYTES, _BYTE_ORDER) for word in words)

    def hit_rate(self, data: bytes) -> float:
        """Fraction of the line's words found in the dictionary."""
        self._check_input(data)
        hits = sum(
            1
            for offset in range(0, LINE_SIZE_BYTES, _WORD_BYTES)
            if int.from_bytes(data[offset : offset + _WORD_BYTES], _BYTE_ORDER)
            in self._index
        )
        return hits / _WORDS_PER_LINE
