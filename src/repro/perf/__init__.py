"""Latency and performance-overhead models (Section V-B)."""

from .overhead import OverheadReport, PerformanceModel, ReadMix, measure_read_mix
from .timing import DEFAULT_CPU_GHZ, AccessLatency, LatencyModel

__all__ = [
    "DEFAULT_CPU_GHZ",
    "AccessLatency",
    "LatencyModel",
    "OverheadReport",
    "PerformanceModel",
    "ReadMix",
    "measure_read_mix",
]

from .queueing import (  # noqa: E402
    MemoryControllerSim,
    QueueingStats,
    Request,
    read_latency_overhead_queued,
    synthesize_requests,
)

__all__ += [
    "MemoryControllerSim",
    "QueueingStats",
    "Request",
    "read_latency_overhead_queued",
    "synthesize_requests",
]
