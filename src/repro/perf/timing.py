"""Read/write latency accounting for the PCM memory path (Table II).

Converts the DDR-style interface parameters and the PCM array timings
into end-to-end access latencies, and adds the decompression penalty
that Section V-B charges to reads of compressed lines (BDI: 1 cycle,
FPC: 5 cycles, on the memory controller's clock).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pcm import PCMTimings

#: Table II CPU clock (the controller runs on the CPU die).
DEFAULT_CPU_GHZ = 2.5


@dataclass(frozen=True)
class AccessLatency:
    """One access type's latency decomposition, in nanoseconds."""

    interface_ns: float
    array_ns: float
    decompression_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        """End-to-end latency in nanoseconds."""
        return self.interface_ns + self.array_ns + self.decompression_ns


class LatencyModel:
    """Latency calculator for reads/writes with optional compression."""

    def __init__(
        self,
        timings: PCMTimings | None = None,
        cpu_ghz: float = DEFAULT_CPU_GHZ,
        bdi_cycles: int = 1,
        fpc_cycles: int = 5,
    ) -> None:
        if cpu_ghz <= 0:
            raise ValueError("CPU clock must be positive")
        self.timings = timings or PCMTimings()
        self.cpu_ghz = cpu_ghz
        self.bdi_cycles = bdi_cycles
        self.fpc_cycles = fpc_cycles

    @property
    def cpu_cycle_ns(self) -> float:
        """One CPU clock period in nanoseconds."""
        return 1.0 / self.cpu_ghz

    def read_latency(self, decompressor: str | None = None) -> AccessLatency:
        """Read latency; ``decompressor`` is None, "bdi" or "fpc"."""
        interface = self.timings.read_latency_cycles() * self.timings.cycle_ns
        decompression = 0.0
        if decompressor == "bdi":
            decompression = self.bdi_cycles * self.cpu_cycle_ns
        elif decompressor == "fpc":
            decompression = self.fpc_cycles * self.cpu_cycle_ns
        elif decompressor is not None:
            raise ValueError(f"unknown decompressor {decompressor!r}")
        return AccessLatency(
            interface_ns=interface,
            array_ns=self.timings.read_ns,
            decompression_ns=decompression,
        )

    def write_latency(self) -> AccessLatency:
        """Write latency (compression is off the critical path: writes
        sit in the controller's 32-entry queue while compressing)."""
        interface = self.timings.write_latency_cycles() * self.timings.cycle_ns
        return AccessLatency(interface_ns=interface, array_ns=self.timings.write_ns)
