"""Event-driven memory-controller queueing model (Section V-B).

The analytic model in :mod:`repro.perf.overhead` charges decompression
latency directly to reads.  This discrete-event simulator captures the
second-order effects Table II implies: per-bank service, read-over-
write priority with a bounded write queue (32 entries per bank -- when
it fills, writes drain and block reads), and PCM's asymmetric
read/write service times.  Decompression adds to a read's completion
time; compression happens while writes sit in the queue and is free
unless the queue overflows.

This is deliberately a controller-level model, not a full DDR protocol
simulator: requests are (time, bank, kind) triples and banks are
independent single servers, which is the level of detail the paper's
<0.3 % slowdown claim depends on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..pcm import PCMTimings
from .timing import LatencyModel

#: Samples kept for percentile estimation (per simulation).  4096
#: uniform samples put the p99 estimate within a fraction of a percent
#: of the exact value while keeping memory constant in stream length.
RESERVOIR_CAPACITY = 4096


class LatencyReservoir:
    """Bounded uniform sample of a latency stream (Vitter's Algorithm R).

    Replaces the old unbounded per-read latency list: the first
    ``capacity`` observations are kept verbatim (so short runs still
    get exact percentiles), after which each new observation replaces a
    random slot with probability ``capacity / n``.  Replacement draws
    come from a private seeded PRNG, keeping simulations deterministic
    and independent of global ``random`` state.
    """

    __slots__ = ("_samples", "_capacity", "_rng", "count")

    def __init__(self, capacity: int = RESERVOIR_CAPACITY, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self._samples: list[float] = []
        self._capacity = capacity
        self._rng = random.Random(seed)
        #: Total observations offered (not just those retained).
        self.count = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def append(self, value: float) -> None:
        """Offer one observation (list-compatible method name)."""
        self.count += 1
        if len(self._samples) < self._capacity:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self._capacity:
            self._samples[slot] = value

    def percentile(self, percentile: float) -> float:
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, percentile))

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)


@dataclass(frozen=True)
class Request:
    """One memory request entering the controller."""

    arrival_ns: float
    bank: int
    is_write: bool
    decompressor: str | None = None  # for reads of compressed lines


@dataclass
class QueueingStats:
    """Aggregate results of one simulation."""

    reads: int = 0
    writes: int = 0
    total_read_latency_ns: float = 0.0
    total_write_queue_ns: float = 0.0
    read_stall_events: int = 0
    read_latencies: LatencyReservoir = field(
        default_factory=LatencyReservoir, repr=False
    )

    @property
    def mean_read_latency_ns(self) -> float:
        """Average end-to-end read latency."""
        return self.total_read_latency_ns / self.reads if self.reads else 0.0

    def read_latency_percentile(self, percentile: float) -> float:
        """Latency at the given percentile (reservoir estimate)."""
        if not self.read_latencies:
            return 0.0
        return self.read_latencies.percentile(percentile)


class MemoryControllerSim:
    """Per-bank single-server queues with read priority."""

    def __init__(
        self,
        n_banks: int = 8,
        timings: PCMTimings | None = None,
        latency_model: LatencyModel | None = None,
        write_queue_depth: int = 32,
    ) -> None:
        if n_banks < 1:
            raise ValueError("need at least one bank")
        if write_queue_depth < 1:
            raise ValueError("write queue needs at least one entry")
        self.timings = timings or PCMTimings()
        self.latency = latency_model or LatencyModel(self.timings)
        self.n_banks = n_banks
        self.write_queue_depth = write_queue_depth
        self._read_service_ns = self.latency.read_latency(None).total_ns
        self._write_service_ns = self.latency.write_latency().total_ns

    def run(self, requests: list[Request]) -> QueueingStats:
        """Simulate a request stream (must be sorted by arrival time)."""
        stats = QueueingStats()
        bank_free_at = [0.0] * self.n_banks
        write_queues: list[list[float]] = [[] for _ in range(self.n_banks)]

        for request in sorted(requests, key=lambda r: r.arrival_ns):
            bank = request.bank % self.n_banks
            now = request.arrival_ns

            if request.is_write:
                stats.writes += 1
                queue = write_queues[bank]
                queue.append(now)
                if len(queue) >= self.write_queue_depth:
                    # Forced drain: the bank services the whole queue,
                    # blocking subsequent reads (the stall reads see).
                    start = max(now, bank_free_at[bank])
                    for enqueued_at in queue:
                        start += self._write_service_ns
                        stats.total_write_queue_ns += start - enqueued_at
                    bank_free_at[bank] = start
                    queue.clear()
                continue

            stats.reads += 1
            start = max(now, bank_free_at[bank])
            if start > now:
                stats.read_stall_events += 1
            decompression = 0.0
            if request.decompressor is not None:
                decompression = self.latency.read_latency(
                    request.decompressor
                ).decompression_ns
            finish = start + self._read_service_ns + decompression
            bank_free_at[bank] = finish
            latency = finish - now
            stats.total_read_latency_ns += latency
            stats.read_latencies.append(latency)

        # Drain leftover writes (no read is waiting; latency accounting
        # only needs their queueing time).
        for bank, queue in enumerate(write_queues):
            start = bank_free_at[bank]
            for enqueued_at in queue:
                start += self._write_service_ns
                stats.total_write_queue_ns += start - enqueued_at
            queue.clear()
        return stats


def synthesize_requests(
    n_requests: int,
    read_fraction: float = 0.7,
    compressed_read_fraction: float = 0.6,
    bdi_share: float = 0.6,
    mean_interarrival_ns: float = 100.0,
    n_banks: int = 8,
    seed: int = 0,
) -> list[Request]:
    """A Poisson request stream with a given compressed-read mix."""
    if not 0 <= read_fraction <= 1:
        raise ValueError("read fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(mean_interarrival_ns, size=n_requests))
    requests = []
    for arrival in arrivals:
        bank = int(rng.integers(0, n_banks))
        if rng.random() < read_fraction:
            decompressor = None
            if rng.random() < compressed_read_fraction:
                decompressor = "bdi" if rng.random() < bdi_share else "fpc"
            requests.append(Request(float(arrival), bank, False, decompressor))
        else:
            requests.append(Request(float(arrival), bank, True))
    return requests


def read_latency_overhead_queued(
    n_requests: int = 20_000,
    seed: int = 0,
    **stream_kwargs,
) -> tuple[QueueingStats, QueueingStats, float]:
    """Mean read latency with vs without decompression, under queueing.

    Returns (baseline stats, compressed stats, fractional overhead).
    The same arrival sequence is used for both runs; the baseline simply
    strips the decompressor tags.
    """
    compressed = synthesize_requests(n_requests, seed=seed, **stream_kwargs)
    plain = [
        Request(r.arrival_ns, r.bank, r.is_write, None) for r in compressed
    ]
    simulator = MemoryControllerSim()
    base_stats = simulator.run(plain)
    comp_stats = simulator.run(compressed)
    overhead = (
        comp_stats.mean_read_latency_ns / base_stats.mean_read_latency_ns - 1.0
    )
    return base_stats, comp_stats, overhead
