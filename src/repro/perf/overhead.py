"""Section V-B: performance overhead of the compression architecture.

The design adds latency only on the read path (decompression; writes
compress in the background of the 32-entry write queue).  Given a
workload's compressed-read mix, this module computes:

* the average read-latency increase (paper: up to ~2 %);
* the end-to-end slowdown via a memory-latency CPI decomposition
  (paper: < 0.3 % on average).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compression import BestOfCompressor
from ..traces import SyntheticWorkload, WorkloadProfile
from .timing import LatencyModel


@dataclass(frozen=True)
class ReadMix:
    """How a workload's memory reads decompose by stored format."""

    uncompressed: float
    bdi: float
    fpc: float
    #: Reads stored by a compressor the latency model has no dedicated
    #: timing for (e.g. CPack/FVC members of a custom BestOfCompressor);
    #: charged conservatively at the slowest modelled decompressor.
    other: float = 0.0

    def __post_init__(self) -> None:
        fractions = (self.uncompressed, self.bdi, self.fpc, self.other)
        # Sign check first: negative fractions can still sum to 1.0, and
        # even when they don't, the sum message would mask the real defect.
        if min(fractions) < 0:
            raise ValueError("read mix fractions cannot be negative")
        total = sum(fractions)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"read mix must sum to 1, got {total}")


def measure_read_mix(
    profile: WorkloadProfile,
    n_lines: int = 128,
    samples: int = 2000,
    seed: int = 0,
    compressor: BestOfCompressor | None = None,
) -> ReadMix:
    """Estimate a workload's stored-format mix from its write stream.

    Reads hit whatever format the last write stored, so sampling the
    write stream's winning compressor approximates the read mix.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    compressor = compressor or BestOfCompressor()
    generator = SyntheticWorkload(profile, n_lines=n_lines, seed=seed)
    counts = {"uncompressed": 0, "bdi": 0, "fpc": 0, "other": 0}
    for write in generator.iter_writes(samples):
        result = compressor.compress(write.data)
        if result.size_bytes >= 64:
            counts["uncompressed"] += 1
        elif result.algorithm in counts:
            counts[result.algorithm] += 1
        else:
            counts["other"] += 1
    return ReadMix(
        uncompressed=counts["uncompressed"] / samples,
        bdi=counts["bdi"] / samples,
        fpc=counts["fpc"] / samples,
        other=counts["other"] / samples,
    )


@dataclass(frozen=True)
class OverheadReport:
    """Section V-B's two headline numbers for one workload."""

    workload: str
    read_latency_overhead: float  # fractional increase in mean read latency
    slowdown: float  # fractional end-to-end performance loss


class PerformanceModel:
    """Analytic CPI-decomposition performance model."""

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self.latency = latency or LatencyModel()

    def average_read_latency_ns(self, mix: ReadMix) -> float:
        """Mean read latency under a stored-format mix."""
        plain = self.latency.read_latency(None).total_ns
        bdi = self.latency.read_latency("bdi").total_ns
        fpc = self.latency.read_latency("fpc").total_ns
        # Formats without dedicated timing are priced at the slowest
        # modelled decompressor: an upper bound, never an undercharge.
        other = max(bdi, fpc)
        return (
            mix.uncompressed * plain
            + mix.bdi * bdi
            + mix.fpc * fpc
            + mix.other * other
        )

    def read_latency_overhead(self, mix: ReadMix) -> float:
        """Fractional mean-read-latency increase over no compression."""
        base = self.latency.read_latency(None).total_ns
        return self.average_read_latency_ns(mix) / base - 1.0

    def slowdown(
        self,
        mix: ReadMix,
        memory_read_cpi_fraction: float = 0.15,
    ) -> float:
        """End-to-end slowdown via CPI decomposition.

        ``memory_read_cpi_fraction`` is the share of execution time
        spent stalled on PCM reads (memory-intensive SPEC averages
        ~10-20 % behind a 4 MB LLC).  Only that share dilates with read
        latency.
        """
        if not 0 <= memory_read_cpi_fraction <= 1:
            raise ValueError("CPI fraction must be in [0, 1]")
        return self.read_latency_overhead(mix) * memory_read_cpi_fraction

    def report(
        self, profile: WorkloadProfile, mix: ReadMix | None = None, **mix_kwargs
    ) -> OverheadReport:
        """Both Section V-B numbers for one workload."""
        if mix is None:
            mix = measure_read_mix(profile, **mix_kwargs)
        return OverheadReport(
            workload=profile.name,
            read_latency_overhead=self.read_latency_overhead(mix),
            slowdown=self.slowdown(mix),
        )
