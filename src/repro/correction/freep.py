"""FREE-p style fine-grained remapping (Yoon et al., HPCA 2011, [10]).

FREE-p takes the opposite route from ECP/SAFER/Aegis: instead of
masking faults in place, a worn-out line is *remapped* to a spare line,
and the remap pointer is stored -- heavily replicated -- in the dead
line's own surviving cells, so no separate remap table is needed.

We model the two architecturally relevant properties:

* a dead line can host a pointer only if enough healthy cells remain to
  store it with the required replication (:meth:`can_store_pointer`);
* spares are a finite pool; remap chains are collapsed (the pointer is
  rewritten to the final destination) as in the original design.

The lifetime-side integration lives in
:class:`repro.core.controller.CompressedPCMController` behind the
``spare_line_fraction`` configuration knob, and the comparison against
plain dead-marking is ``benchmarks/test_extension_freep.py``.
"""

from __future__ import annotations

import math

import numpy as np


class FreePRemapper:
    """Spare-pool bookkeeping for remap-on-death.

    Args:
        spare_lines: Physical line indices reserved as spares.
        pointer_bits: Bits needed to name any physical line.
        replication: How many copies of the pointer the dead line must
            hold (FREE-p replicates to tolerate further cell failures).
    """

    def __init__(
        self,
        spare_lines: list[int],
        pointer_bits: int,
        replication: int = 7,
    ) -> None:
        if pointer_bits < 1:
            raise ValueError("pointer width must be positive")
        if replication < 1:
            raise ValueError("replication factor must be positive")
        self._free_spares = list(dict.fromkeys(spare_lines))
        self.pointer_bits = pointer_bits
        self.replication = replication
        self._remap: dict[int, int] = {}
        self.remaps_performed = 0

    @classmethod
    def for_memory(
        cls, physical_lines: int, spare_fraction: float, replication: int = 7
    ) -> "FreePRemapper":
        """Reserve the top ``spare_fraction`` of the memory as spares."""
        if not 0 <= spare_fraction < 1:
            raise ValueError("spare fraction must be in [0, 1)")
        spare_count = int(physical_lines * spare_fraction)
        spares = list(range(physical_lines - spare_count, physical_lines))
        pointer_bits = max(1, math.ceil(math.log2(max(2, physical_lines))))
        return cls(spares, pointer_bits, replication)

    @property
    def spares_available(self) -> int:
        """Unconsumed spare lines remaining."""
        return len(self._free_spares)

    @property
    def pointer_cells_needed(self) -> int:
        """Healthy cells a dead line must retain to host the pointer."""
        return self.pointer_bits * self.replication

    def is_spare(self, physical: int) -> bool:
        """Whether a physical index is an unconsumed spare."""
        return physical in self._free_spares

    def resolve(self, physical: int) -> int:
        """Follow (collapsed) remap pointers to the live location."""
        seen = set()
        while physical in self._remap:
            if physical in seen:
                raise RuntimeError("remap cycle detected")
            seen.add(physical)
            physical = self._remap[physical]
        return physical

    def can_store_pointer(self, faulty_mask: np.ndarray) -> bool:
        """Whether a dead line retains room for the replicated pointer."""
        healthy = faulty_mask.size - int(np.count_nonzero(faulty_mask))
        return healthy >= self.pointer_cells_needed

    def remap(self, dead_physical: int, faulty_mask: np.ndarray) -> int | None:
        """Redirect a dead line to a fresh spare, or None if impossible.

        Chains are collapsed: if ``dead_physical`` is itself the target
        of earlier remaps, those pointers are rewritten to the new spare
        (the paper's pointer-update-on-chase optimization).
        """
        if not self._free_spares:
            return None
        if not self.can_store_pointer(faulty_mask):
            return None
        spare = self._free_spares.pop(0)
        self._remap[dead_physical] = spare
        for source, target in list(self._remap.items()):
            if target == dead_physical:
                self._remap[source] = spare
        self.remaps_performed += 1
        return spare
