"""SECDED (72,64): the conventional DRAM-style ECC reference.

The paper argues (Section II-C) that SECDED is a poor fit for PCM: it
corrects a single error per 64-bit word, its code bits are
write-intensive, and PCM accumulates stuck-at faults over time.  We
include it as the comparison point -- one (72,64) Hamming+parity code
per 8-byte word, eight words per line, using the full 64-bit ECC-chip
slice.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .base import DEFAULT_BLOCK_BITS, CorrectionScheme, normalize_faults


class SECDED(CorrectionScheme):
    """Per-64-bit-word single-error-correcting, double-error-detecting code."""

    name = "secded"

    def __init__(
        self, word_bits: int = 64, block_bits: int = DEFAULT_BLOCK_BITS
    ) -> None:
        super().__init__(block_bits)
        if word_bits <= 0 or block_bits % word_bits != 0:
            raise ValueError("block size must divide evenly into code words")
        self.word_bits = word_bits
        self.words = block_bits // word_bits
        # (72,64): 8 check bits per 64-bit word.
        self.metadata_bits = self.words * 8
        self.deterministic_capability = 1

    def can_correct(self, fault_positions: Iterable[int]) -> bool:
        """Correctable iff every code word holds at most one fault."""
        faults = normalize_faults(fault_positions, self.block_bits)
        if faults.size == 0:
            return True
        words = faults // self.word_bits
        _, counts = np.unique(words, return_counts=True)
        return bool(counts.max() <= 1)


class HammingSECDED:
    """Bit-exact (72,64) Hamming + overall-parity codec.

    The feasibility view in :class:`SECDED` is what the lifetime
    simulator needs; this codec implements the actual encode / decode /
    correct path so the reference scheme is complete end to end:

    * 64 data bits are spread over positions 1..71 (1-indexed), with
      check bits at the power-of-two positions and an overall parity
      bit at position 0;
    * decode recomputes the syndrome: a nonzero syndrome with bad
      overall parity is a correctable single-bit error; a nonzero
      syndrome with good parity is a detected-but-uncorrectable double
      error.
    """

    DATA_BITS = 64
    CHECK_BITS = 7  # positions 1,2,4,...,64
    TOTAL_BITS = 72  # data + checks + overall parity

    def __init__(self) -> None:
        # Map data-bit index -> codeword position (skipping powers of 2).
        self._data_positions = [
            position
            for position in range(1, 72)
            if position & (position - 1) != 0
        ]
        assert len(self._data_positions) == self.DATA_BITS

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Produce the 72-bit codeword for 64 data bits."""
        if data_bits.shape != (self.DATA_BITS,):
            raise ValueError(f"expected {self.DATA_BITS} data bits")
        code = np.zeros(self.TOTAL_BITS, dtype=np.uint8)
        for index, position in enumerate(self._data_positions):
            code[position] = data_bits[index]
        for check in range(self.CHECK_BITS):
            mask = 1 << check
            covered = [p for p in range(1, 72) if p & mask]
            code[mask] = np.bitwise_xor.reduce(code[covered]) ^ code[mask]
        code[0] = np.bitwise_xor.reduce(code[1:])
        return code

    def decode(self, codeword: np.ndarray) -> tuple[np.ndarray, str]:
        """Recover the data bits; returns (data, status).

        Status is ``"ok"``, ``"corrected"`` (single error fixed) or
        ``"detected"`` (double error: data returned as-is, unreliable).
        """
        if codeword.shape != (self.TOTAL_BITS,):
            raise ValueError(f"expected {self.TOTAL_BITS} codeword bits")
        code = codeword.astype(np.uint8).copy()
        syndrome = 0
        for check in range(self.CHECK_BITS):
            mask = 1 << check
            covered = [p for p in range(1, 72) if p & mask]
            if np.bitwise_xor.reduce(code[covered]):
                syndrome |= mask
        parity_ok = np.bitwise_xor.reduce(code) == 0

        status = "ok"
        if syndrome and not parity_ok:
            code[syndrome] ^= 1  # single-bit error at the syndrome position
            status = "corrected"
        elif syndrome and parity_ok:
            status = "detected"
        elif not syndrome and not parity_ok:
            code[0] ^= 1  # the parity bit itself flipped
            status = "corrected"
        data = np.array(
            [code[position] for position in self._data_positions], dtype=np.uint8
        )
        return data, status
