"""ECP: Error-Correcting Pointers (Schechter et al., ISCA 2010, ref [8]).

ECP-n keeps ``n`` (pointer, replacement-cell) pairs per line: a pointer
names a faulty cell and the replacement cell supplies its value on
reads.  For 512-bit lines a pointer is 9 bits, so ECP-6 costs
``1 + 6 x (9 + 1) = 61`` bits -- it fits the 64-bit ECC-chip slice with
3 bits to spare (one of which the paper reuses as the compressed flag).

ECP corrects any ``n`` faults regardless of position, and nothing
beyond that: the feasibility rule is simply ``len(faults) <= n``.
Besides the feasibility predicate this module implements the actual
pointer table so reads can be repaired end-to-end in tests/examples.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from .base import DEFAULT_BLOCK_BITS, CorrectionScheme, normalize_faults


class ECP(CorrectionScheme):
    """Error-correcting pointers with ``entries`` replacement cells."""

    def __init__(self, entries: int = 6, block_bits: int = DEFAULT_BLOCK_BITS) -> None:
        super().__init__(block_bits)
        if entries < 0:
            raise ValueError("entry count cannot be negative")
        self.entries = entries
        self.name = f"ecp{entries}"
        pointer_bits = max(1, math.ceil(math.log2(block_bits)))
        # One "full" bit plus (pointer + replacement cell) per entry.
        self.metadata_bits = 1 + entries * (pointer_bits + 1)
        self.deterministic_capability = entries
        self.pointer_bits = pointer_bits

    def can_correct(self, fault_positions: Iterable[int]) -> bool:
        """Whether the fault set is tolerable (see :class:`CorrectionScheme`)."""
        faults = normalize_faults(fault_positions, self.block_bits)
        return faults.size <= self.entries

    def repair(
        self, stored_bits: np.ndarray, fault_positions: Iterable[int], true_bits: np.ndarray
    ) -> np.ndarray:
        """Repair a read using pointer entries.

        Models the full read path: each pointer entry overrides the
        stuck cell's stored value with the replacement cell's (correct)
        value.  Raises if there are more faults than entries.

        Args:
            stored_bits: What the array returned (stuck cells wrong).
            fault_positions: Known faulty cell positions.
            true_bits: The data the line is supposed to hold; the
                replacement cells were programmed from it on the last
                write, so the repair sources their values here.
        """
        faults = normalize_faults(fault_positions, self.block_bits)
        if faults.size > self.entries:
            raise ValueError(
                f"{self.name} cannot repair {faults.size} faults "
                f"(capacity {self.entries})"
            )
        repaired = stored_bits.copy()
        repaired[faults] = true_bits[faults]
        return repaired


def ecp6(block_bits: int = DEFAULT_BLOCK_BITS) -> ECP:
    """The paper's default scheme: ECP-6 (61 metadata bits)."""
    return ECP(entries=6, block_bits=block_bits)
