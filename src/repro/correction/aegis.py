"""Aegis: lattice-based partitioning (Fan et al., MICRO 2013, ref [11]).

Aegis maps the cells of a line onto a k x n grid (the paper evaluates
Aegis 17x31: 17 rows of 31 columns cover 512 data bits plus metadata)
and partitions the grid with families of parallel lines in the affine
plane over Z_n (n prime): under slope ``s`` a cell at (x, y) belongs to
group ``(x + s*y) mod n``.  Every family yields ``n`` groups of at most
``k`` cells, and -- the key property -- two distinct cells share a
group in **at most one** family.  A fault set is correctable iff some
family separates all faults into distinct groups (each group then masks
its single fault by inversion, as in SAFER).

The at-most-one-collision property gives a much better guarantee than
SAFER for the same metadata budget: with ``f`` faults there are at most
``C(f, 2)`` colliding families, so any ``f`` with ``C(f, 2) < n + 1``
is always correctable (f = 8 for n = 31: C(8,2) = 28 <= 31 families).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from .base import DEFAULT_BLOCK_BITS, CorrectionScheme, normalize_faults


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    for d in range(2, int(math.isqrt(n)) + 1):
        if n % d == 0:
            return False
    return True


class Aegis(CorrectionScheme):
    """Aegis with a ``rows x columns`` grid (columns must be prime)."""

    def __init__(
        self,
        rows: int = 17,
        columns: int = 31,
        block_bits: int = DEFAULT_BLOCK_BITS,
    ) -> None:
        super().__init__(block_bits)
        if not _is_prime(columns):
            raise ValueError("Aegis needs a prime column count")
        if rows < 1 or rows > columns:
            raise ValueError("row count must be in [1, columns]")
        if rows * columns < block_bits:
            raise ValueError(
                f"a {rows}x{columns} grid holds {rows * columns} cells, "
                f"fewer than the block's {block_bits}"
            )
        self.rows = rows
        self.columns = columns
        self.name = f"aegis{rows}x{columns}"
        # One slope choice (log2(n+1) bits) + one inversion flag per group.
        self.metadata_bits = math.ceil(math.log2(columns + 1)) + columns
        # Largest f with C(f, 2) < number of families (n slopes + the
        # vertical family): every pair of cells collides in exactly one
        # family, so with fewer pairs than families some family must be
        # collision-free.  (The vertical family holds at most ``rows``
        # faults, amply above this bound for the paper's 17x31 grid.)
        families = columns + 1
        capability = 1
        while math.comb(capability + 1, 2) < families and capability < rows:
            capability += 1
        self.deterministic_capability = capability

    def can_correct(self, fault_positions: Iterable[int]) -> bool:
        """Whether the fault set is tolerable (see :class:`CorrectionScheme`)."""
        return self.find_slope(fault_positions) is not None

    def find_slope(self, fault_positions: Iterable[int]) -> int | None:
        """A slope whose line family separates all faults, or None.

        Slopes ``0..columns-1`` select group ``(x + s*y) mod n``; the
        sentinel slope ``columns`` is the vertical family (group = y),
        usable when the grid's rows are distinct for all faults.
        """
        faults = normalize_faults(fault_positions, self.block_bits)
        if faults.size <= 1:
            return 0
        if faults.size > self.columns:
            return None
        x = faults % self.columns
        y = faults // self.columns
        for slope in range(self.columns):
            groups = (x + slope * y) % self.columns
            if np.unique(groups).size == faults.size:
                return slope
        if np.unique(y).size == faults.size and faults.size <= self.rows:
            return self.columns  # vertical family
        return None

    def group_ids(self, slope: int, positions: np.ndarray) -> np.ndarray:
        """Group id of each cell position under a slope family."""
        x = positions % self.columns
        y = positions // self.columns
        if slope == self.columns:
            return y
        return (x + slope * y) % self.columns


def aegis17x31(block_bits: int = DEFAULT_BLOCK_BITS) -> Aegis:
    """The paper's evaluated configuration: Aegis 17x31."""
    return Aegis(rows=17, columns=31, block_bits=block_bits)
