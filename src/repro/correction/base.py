"""Common interface for hard-error correction schemes.

PCM stuck-at faults are *detectable* on write-verify (the paper,
Section II-C), so correction schemes only need to tolerate known-bad
cell positions.  What the rest of the system asks a scheme is therefore
a feasibility question: *given this set of faulty cell positions, can
the line still be stored correctly?*  ECP answers by spare capacity,
SAFER and Aegis by finding a partition with at most one fault per
group.

The compression architecture extends every scheme the same way: only
faults *inside the compression window* matter (Section III-A.4), so the
controller calls :meth:`CorrectionScheme.can_correct` on the restricted
fault set.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable

import numpy as np

#: Cells in a 64-byte memory line.
DEFAULT_BLOCK_BITS = 512


def normalize_faults(fault_positions: Iterable[int], block_bits: int) -> np.ndarray:
    """Validate and deduplicate fault positions into a sorted array."""
    if isinstance(fault_positions, np.ndarray):
        faults = np.unique(fault_positions.astype(np.int64, copy=False))
    else:
        faults = np.unique(np.asarray(list(fault_positions), dtype=np.int64))
    if faults.size and (faults[0] < 0 or faults[-1] >= block_bits):
        raise ValueError(
            f"fault positions must lie in [0, {block_bits}), got "
            f"[{faults[0]}, {faults[-1]}]"
        )
    return faults


class CorrectionScheme(abc.ABC):
    """A hard-error tolerance scheme for one memory line."""

    #: Human-readable scheme name (e.g. ``"ecp6"``).
    name: str = "abstract"
    #: Bits of the per-line ECC-chip slice the scheme consumes.
    metadata_bits: int = 0
    #: Number of faults the scheme corrects regardless of placement.
    deterministic_capability: int = 0

    def __init__(self, block_bits: int = DEFAULT_BLOCK_BITS) -> None:
        if block_bits <= 0:
            raise ValueError("block size must be positive")
        self.block_bits = block_bits

    @abc.abstractmethod
    def can_correct(self, fault_positions: Iterable[int]) -> bool:
        """Whether a line with these stuck-at faults is still usable."""

    def spare_metadata_bits(self, available_bits: int = 64) -> int:
        """Unused bits in the ECC-chip slice (ECP-6 leaves 3 of 64).

        The paper stores the per-line "compressed?" flag in one of
        these spare bits (Section III-B).
        """
        if self.metadata_bits > available_bits:
            raise ValueError(
                f"{self.name} needs {self.metadata_bits} metadata bits but "
                f"only {available_bits} are available"
            )
        return available_bits - self.metadata_bits
