"""Hard-error tolerance schemes: ECP, SAFER, Aegis, SECDED."""

from .aegis import Aegis, aegis17x31
from .base import DEFAULT_BLOCK_BITS, CorrectionScheme, normalize_faults
from .ecp import ECP, ecp6
from .safer import SAFER, safer32
from .secded import SECDED

#: The three schemes evaluated in Figure 9, by name.
PAPER_SCHEMES = ("ecp6", "safer32", "aegis17x31")


def make_scheme(name: str, block_bits: int = DEFAULT_BLOCK_BITS) -> CorrectionScheme:
    """Build one of the paper's correction schemes by name."""
    factories = {
        "ecp6": lambda: ecp6(block_bits),
        "safer32": lambda: safer32(block_bits),
        "aegis17x31": lambda: aegis17x31(block_bits),
        "secded": lambda: SECDED(block_bits=block_bits),
    }
    try:
        return factories[name]()
    except KeyError:
        raise ValueError(
            f"unknown correction scheme {name!r}; choose from "
            f"{sorted(factories)}"
        ) from None


__all__ = [
    "DEFAULT_BLOCK_BITS",
    "PAPER_SCHEMES",
    "Aegis",
    "CorrectionScheme",
    "ECP",
    "SAFER",
    "SECDED",
    "aegis17x31",
    "ecp6",
    "make_scheme",
    "normalize_faults",
    "safer32",
]

from .freep import FreePRemapper  # noqa: E402

__all__ += ["FreePRemapper"]

from .secded import HammingSECDED  # noqa: E402

__all__ += ["HammingSECDED"]
