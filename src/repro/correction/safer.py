"""SAFER: Stuck-At-Fault Error Recovery (Seong et al., MICRO 2010, [9]).

SAFER dynamically partitions the line so that every partition contains
at most one faulty cell, then stores each partition either directly or
complemented so the stuck cell's value matches the data (stuck-at
faults are maskable by inversion because their values are readable).

The partition function is a bit-position projection: with ``2**k``
partitions, SAFER picks ``k`` of the ``log2(block_bits)`` cell-index
bits, and a cell's partition id is its index projected onto those
positions.  A fault set is correctable iff *some* choice of ``k`` index
bits gives every fault a distinct partition id.

SAFER-32 on 512-bit lines (the paper's configuration) deterministically
corrects ``k + 1 = 6`` faults and probabilistically up to 32; the
chance of fixing more than ~8 is small -- exactly the behaviour the
Monte Carlo study (Figure 9b) shows.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from itertools import combinations

import numpy as np

from .base import DEFAULT_BLOCK_BITS, CorrectionScheme, normalize_faults


class SAFER(CorrectionScheme):
    """SAFER with ``partitions`` (a power of two) groups."""

    def __init__(
        self, partitions: int = 32, block_bits: int = DEFAULT_BLOCK_BITS
    ) -> None:
        super().__init__(block_bits)
        if partitions < 2 or partitions & (partitions - 1):
            raise ValueError("partition count must be a power of two >= 2")
        if block_bits & (block_bits - 1):
            raise ValueError("SAFER requires a power-of-two block size")
        self.partitions = partitions
        self.name = f"safer{partitions}"
        self.index_bits = int(math.log2(block_bits))
        self.select_bits = int(math.log2(partitions))
        if self.select_bits > self.index_bits:
            raise ValueError("more partitions than cells")
        # Field-selection metadata + one inversion flag per partition.
        selection_bits = math.ceil(
            math.log2(math.comb(self.index_bits, self.select_bits))
        )
        self.metadata_bits = selection_bits + partitions
        # SAFER guarantees log2(n)+1 faults (one per partition plus the
        # pigeonhole argument of the original paper).
        self.deterministic_capability = self.select_bits + 1
        self._selections = tuple(
            combinations(range(self.index_bits), self.select_bits)
        )
        # Weight matrix turning a fault's index bits into its partition
        # id under every candidate selection at once (vectorized path).
        weights = np.zeros((len(self._selections), self.index_bits), dtype=np.int64)
        for row, selection in enumerate(self._selections):
            for order, bit in enumerate(selection):
                weights[row, bit] = 1 << order
        self._selection_weights = weights

    def can_correct(self, fault_positions: Iterable[int]) -> bool:
        """Whether the fault set is tolerable (see :class:`CorrectionScheme`)."""
        faults = normalize_faults(fault_positions, self.block_bits)
        if faults.size <= 1:
            return True
        if faults.size > self.partitions:
            return False
        index_bits = ((faults[:, None] >> np.arange(self.index_bits)) & 1)
        ids = index_bits @ self._selection_weights.T  # (faults, selections)
        ids.sort(axis=0)
        collisions = (np.diff(ids, axis=0) == 0).any(axis=0)
        return bool((~collisions).any())

    def find_partition(
        self, fault_positions: Iterable[int]
    ) -> tuple[int, ...] | None:
        """Index-bit positions separating all faults, or None.

        Returns the first (lexicographically) choice of ``select_bits``
        index-bit positions under which every fault lands in a distinct
        partition -- i.e. the field selection SAFER's hardware would
        latch.
        """
        faults = normalize_faults(fault_positions, self.block_bits)
        if faults.size <= 1:
            return tuple(range(self.select_bits))
        if faults.size > self.partitions:
            return None
        for selection in self._selections:
            ids = np.zeros(faults.size, dtype=np.int64)
            for order, bit in enumerate(selection):
                ids |= ((faults >> bit) & 1) << order
            if np.unique(ids).size == faults.size:
                return selection
        return None

    def partition_ids(self, selection: tuple[int, ...], positions: np.ndarray) -> np.ndarray:
        """Partition id of each cell position under a field selection."""
        ids = np.zeros(positions.size, dtype=np.int64)
        for order, bit in enumerate(selection):
            ids |= ((positions >> bit) & 1) << order
        return ids


def safer32(block_bits: int = DEFAULT_BLOCK_BITS) -> SAFER:
    """The paper's evaluated configuration: SAFER-32."""
    return SAFER(partitions=32, block_bits=block_bits)
