"""Differential validation: oracle model, lockstep diffing, invariants, fuzz.

The hot path earned several layers of optimization (vectorized
compression kernels, content-addressed caching, incrementally maintained
fault state); this package is the correctness tooling that keeps those
layers honest:

* :mod:`~repro.validate.refcompress` -- frozen loop-based FPC/BDI
  codecs (the pre-vectorization encoders) plus matching decoders;
* :mod:`~repro.validate.reference` -- :class:`ReferenceModel`, a slow,
  loop-based re-implementation of the full write path, independent of
  :mod:`repro.engine`;
* :mod:`~repro.validate.lockstep` -- :class:`ValidatingController`
  runs the fast pipeline and the oracle in lockstep and raises
  :class:`DivergenceError` with a self-contained repro recipe;
* :mod:`~repro.validate.invariants` -- cross-stage checkers pluggable
  into the engine pipeline's debug mode;
* :mod:`~repro.validate.fuzz` -- randomized differential campaigns
  (``python -m repro fuzz``) with case shrinking and a repro corpus.
"""

from .invariants import (
    DeadCountConsistent,
    DeadSetMonotone,
    FaultMaskConsistent,
    FlipWearConservation,
    InvariantViolation,
    StatsConservation,
    WindowWithinLine,
    check_checkpoint_roundtrip,
    controller_state_snapshot,
    default_invariants,
)
from .lockstep import (
    DivergenceError,
    ValidatingController,
    controller_from_recipe,
    replay_recipe,
)
from .reference import ReferenceModel
from .fuzz import FuzzReport, run_fuzz, shrink_recipe

__all__ = [
    "DeadCountConsistent",
    "DeadSetMonotone",
    "DivergenceError",
    "FaultMaskConsistent",
    "FlipWearConservation",
    "FuzzReport",
    "InvariantViolation",
    "ReferenceModel",
    "StatsConservation",
    "ValidatingController",
    "WindowWithinLine",
    "check_checkpoint_roundtrip",
    "controller_from_recipe",
    "controller_state_snapshot",
    "default_invariants",
    "replay_recipe",
    "run_fuzz",
    "shrink_recipe",
]
