"""A deliberately slow, loop-based oracle of the full write path.

:class:`ReferenceModel` re-implements the paper's controller --
compress -> window placement -> differential write -> correction ->
wear-leveling -- from the text of Section III, independently of
:mod:`repro.engine`: no stage objects, no numpy arrays, no maintained
fault masks or caches.  Every quantity the fast pipeline keeps
incrementally (fault counts, fault positions, dead totals) is recomputed
here from first principles with explicit Python loops, so the two
implementations share no failure modes short of a misreading of the
paper itself.

Two pieces are deliberately shared and documented as such:

* the **correction schemes** (:mod:`repro.correction`): ECP/SAFER/Aegis
  feasibility is spec-level combinatorial logic with its own exhaustive
  unit tests, and duplicating it would test our transcription of a
  truth table, not the write path;
* the **reference compressors** (:mod:`repro.validate.refcompress`):
  frozen pre-vectorization encoders, pinned byte-identical to the
  production kernels by ``tests/compression/test_vectorized_equivalence.py``.

Everything else -- Start-Gap, the WoLFRaM programmable address decoder
(``config.wl_backend == "wolfram"``), intra-line rotation, FREE-p / PAD
spares, Figure 8, the window search, the cell wear model -- is
re-derived.

Scope: SLC banks only.  :meth:`ReferenceModel.from_controller` raises
``NotImplementedError`` for MLC arrays (the oracle's cell loop models
single-bit cells).
"""

from __future__ import annotations

from ..pcm.cell import FaultMode
from .refcompress import reference_best_compress, reference_encode_metadata

LINE_BYTES = 64
LINE_BITS = 512


def _bytes_to_bits(data: bytes) -> list[int]:
    """Little-endian bit order: cell ``i`` is bit ``i % 8`` of byte ``i // 8``."""
    bits = []
    for byte in data:
        for bit in range(8):
            bits.append((byte >> bit) & 1)
    return bits


def _bits_to_bytes(bits: list[int]) -> bytes:
    out = bytearray(len(bits) // 8)
    for index, bit in enumerate(bits):
        if bit:
            out[index // 8] |= 1 << (index % 8)
    return bytes(out)


def _window_positions(start_byte: int, size_bytes: int) -> list[int]:
    """Cell positions of a (possibly wrapping) byte window, in layout order."""
    positions = []
    for step in range(size_bytes):
        byte = (start_byte + step) % LINE_BYTES
        for bit in range(8):
            positions.append(byte * 8 + bit)
    return positions


class _RefMeta:
    """Per-line metadata: 6-bit pointer, 5-bit encoding, 2-bit SC, flag."""

    __slots__ = ("start_pointer", "encoding", "sc", "compressed", "stored_size")

    def __init__(self) -> None:
        self.start_pointer = 0
        self.encoding = 0
        self.sc = 0
        self.compressed = False
        self.stored_size = LINE_BYTES

    def as_tuple(self) -> tuple:
        return (
            self.start_pointer,
            self.encoding,
            self.sc,
            self.compressed,
            self.stored_size,
        )


class _RefLine:
    """One 512-cell line: stored values, program counts, endurance."""

    __slots__ = ("stored", "counts", "endurance")

    def __init__(self, endurance: list[int]) -> None:
        if len(endurance) != LINE_BITS:
            raise ValueError(f"endurance must have {LINE_BITS} entries")
        self.stored = [0] * LINE_BITS
        self.counts = [0] * LINE_BITS
        self.endurance = [int(limit) for limit in endurance]

    def is_faulty(self, position: int) -> bool:
        return self.counts[position] >= self.endurance[position]

    def fault_positions(self) -> list[int]:
        return [pos for pos in range(LINE_BITS) if self.is_faulty(pos)]

    def fault_count(self) -> int:
        return sum(
            1 for pos in range(LINE_BITS) if self.counts[pos] >= self.endurance[pos]
        )


class _RefStartGap:
    """Start-Gap registers re-derived from the MICRO 2009 formulation."""

    def __init__(self, n_lines: int, psi: int) -> None:
        self.n_lines = n_lines
        self.psi = psi
        self.start = 0
        self.gap = n_lines
        self.write_count = 0
        self.gap_moves = 0

    @property
    def physical_lines(self) -> int:
        return self.n_lines + 1

    def map(self, logical: int) -> int:
        physical = (logical + self.start) % self.n_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def logical_of(self, physical: int) -> int | None:
        if physical == self.gap:
            return None
        adjusted = physical - 1 if physical > self.gap else physical
        return (adjusted - self.start) % self.n_lines

    def on_write(self, logical: int | None = None) -> tuple[int, int] | None:
        """Returns (source, destination) every psi-th write, else None."""
        del logical
        self.write_count += 1
        if self.write_count % self.psi != 0:
            return None
        self.gap_moves += 1
        if self.gap == 0:
            movement = (self.n_lines, 0)
            self.gap = self.n_lines
            self.start = (self.start + 1) % self.n_lines
            return movement
        movement = (self.gap - 1, self.gap)
        self.gap -= 1
        return movement

    def registers(self) -> tuple[int, int, int, int]:
        return (self.start, self.gap, self.write_count, self.gap_moves)


class _RefRegionStartGap:
    """Per-region Start-Gap instances over contiguous line ranges."""

    def __init__(self, n_lines: int, psi: int, regions: int) -> None:
        self.n_lines = n_lines
        self.regions = regions
        base = n_lines // regions
        remainder = n_lines % regions
        self._sizes = [base + (1 if index < remainder else 0) for index in range(regions)]
        self._gaps = [_RefStartGap(size, psi) for size in self._sizes]
        self._logical_bases = []
        self._physical_bases = []
        logical = physical = 0
        for size in self._sizes:
            self._logical_bases.append(logical)
            self._physical_bases.append(physical)
            logical += size
            physical += size + 1

    @property
    def physical_lines(self) -> int:
        return self.n_lines + self.regions

    def _region_of_logical(self, logical: int) -> int:
        for index in range(self.regions):
            if logical < self._logical_bases[index] + self._sizes[index]:
                return index
        raise IndexError(f"logical line {logical} out of range")

    def _region_of_physical(self, physical: int) -> int:
        for index in range(self.regions):
            if physical < self._physical_bases[index] + self._sizes[index] + 1:
                return index
        raise IndexError(f"physical slot {physical} out of range")

    def map(self, logical: int) -> int:
        region = self._region_of_logical(logical)
        inner = logical - self._logical_bases[region]
        return self._physical_bases[region] + self._gaps[region].map(inner)

    def logical_of(self, physical: int) -> int | None:
        region = self._region_of_physical(physical)
        inner = physical - self._physical_bases[region]
        result = self._gaps[region].logical_of(inner)
        if result is None:
            return None
        return self._logical_bases[region] + result

    def on_write(self, logical: int) -> tuple[int, int] | None:
        region = self._region_of_logical(logical)
        movement = self._gaps[region].on_write()
        if movement is None:
            return None
        base = self._physical_bases[region]
        return (base + movement[0], base + movement[1])

    def registers(self) -> tuple:
        return tuple(gap.registers() for gap in self._gaps)


class _RefIntraWL:
    """Per-bank saturating write counters driving rotation offsets."""

    def __init__(self, n_banks: int, counter_limit: int) -> None:
        self.counter_limit = counter_limit
        self.counters = [0] * n_banks
        self.offsets = [0] * n_banks
        self.rotations = 0

    def offset(self, bank: int) -> int:
        return self.offsets[bank]

    def record_write(self, bank: int) -> bool:
        self.counters[bank] += 1
        if self.counters[bank] < self.counter_limit:
            return False
        self.counters[bank] = 0
        self.offsets[bank] = (self.offsets[bank] + 1) % LINE_BYTES
        self.rotations += 1
        return True

    def registers(self) -> tuple:
        return (tuple(self.counters), tuple(self.offsets), self.rotations)


class _RefWolframPAD:
    """WoLFRaM programmable address decoder, re-derived from the paper.

    Deliberately different bookkeeping from the production
    :class:`~repro.wearleveling.wolfram.WolframPAD`: only the forward
    table (logical -> slot) is kept, as a dict, and the inverse mapping
    is recovered by scanning it -- no paired inverse list to drift out
    of sync.  A swap movement is reported as ``("pad", slot_a, slot_b)``
    so the model's gap-move handler can tell it from a Start-Gap
    ``(source, destination)`` tuple.
    """

    def __init__(self, n_lines: int, period: int) -> None:
        self.n_lines = n_lines
        self.period = period
        self.slot_of = {logical: logical for logical in range(n_lines)}
        self.partner = 0
        self.write_count = 0
        self.swaps = 0

    @property
    def physical_lines(self) -> int:
        return self.n_lines

    def map(self, logical: int) -> int:
        return self.slot_of[logical]

    def logical_of(self, physical: int) -> int:
        for logical, slot in self.slot_of.items():
            if slot == physical:
                return logical
        raise IndexError(f"physical slot {physical} has no owner")

    def on_write(self, logical: int) -> tuple | None:
        self.write_count += 1
        if self.write_count % self.period != 0 or self.n_lines < 2:
            return None
        slot_a = self.slot_of[logical]
        slot_b = self.partner
        self.partner = (self.partner + 1) % self.n_lines
        if slot_b == slot_a:
            slot_b = self.partner
            self.partner = (self.partner + 1) % self.n_lines
        owner_a = self.logical_of(slot_a)
        owner_b = self.logical_of(slot_b)
        self.slot_of[owner_a] = slot_b
        self.slot_of[owner_b] = slot_a
        self.swaps += 1
        return ("pad", slot_a, slot_b)

    def registers(self) -> tuple:
        forward = tuple(self.slot_of[logical] for logical in range(self.n_lines))
        return ("pad", forward, self.partner, self.write_count, self.swaps)


class _RefPadRemapper:
    """Decoder-table spare pool: the remap ignores the dead line's health.

    The PAD redirect lives in the decoder table, not in the dead line's
    surviving cells, so -- unlike :class:`_RefFreeP` -- there is no
    pointer-capacity precondition.  ``remap`` returns ``(spare,
    rewrites)`` so the model can charge the table-write energy counter
    (one entry plus one per collapsed chain link).
    """

    def __init__(self, spare_lines: list[int]) -> None:
        self.free_spares = list(spare_lines)
        self.remap_table: dict[int, int] = {}
        self.remaps_performed = 0

    def resolve(self, physical: int) -> int:
        seen = set()
        while physical in self.remap_table:
            if physical in seen:
                raise RuntimeError("remap cycle detected")
            seen.add(physical)
            physical = self.remap_table[physical]
        return physical

    def remap(self, dead_physical: int) -> tuple[int, int] | None:
        if not self.free_spares:
            return None
        spare = self.free_spares.pop(0)
        self.remap_table[dead_physical] = spare
        rewrites = 1
        for source, target in list(self.remap_table.items()):
            if target == dead_physical:
                self.remap_table[source] = spare
                rewrites += 1
        self.remaps_performed += 1
        return spare, rewrites


class _RefFreeP:
    """FREE-p spare pool with chain-collapsing remap pointers."""

    def __init__(self, spare_lines: list[int], pointer_bits: int, replication: int = 7) -> None:
        self.free_spares = list(spare_lines)
        self.pointer_cells_needed = pointer_bits * replication
        self.remap_table: dict[int, int] = {}
        self.remaps_performed = 0

    def resolve(self, physical: int) -> int:
        seen = set()
        while physical in self.remap_table:
            if physical in seen:
                raise RuntimeError("remap cycle detected")
            seen.add(physical)
            physical = self.remap_table[physical]
        return physical

    def remap(self, dead_physical: int, healthy_cells: int) -> int | None:
        if not self.free_spares:
            return None
        if healthy_cells < self.pointer_cells_needed:
            return None
        spare = self.free_spares.pop(0)
        self.remap_table[dead_physical] = spare
        for source, target in list(self.remap_table.items()):
            if target == dead_physical:
                self.remap_table[source] = spare
        self.remaps_performed += 1
        return spare


#: ControllerStats counters the oracle tracks (the compression-cache
#: mirror counters are fast-path implementation detail, not semantics).
STAT_FIELDS = (
    "demand_writes",
    "gap_move_writes",
    "lost_writes",
    "sc_updates",
    "window_slides",
    "total_flips",
    "set_flips",
    "reset_flips",
    "compressed_writes",
    "uncompressed_writes",
    "start_pointer_updates",
    "encoding_updates",
    "remaps",
    "deaths",
    "revivals",
    "pad_table_writes",
)


class ReferenceModel:
    """Loop-based oracle controller over one PCM region.

    Mirrors :class:`repro.core.controller.CompressedPCMController`'s
    public write/read surface; every :meth:`write` returns a plain dict
    of the stage-boundary record the lockstep harness diffs against the
    fast pipeline's :class:`~repro.engine.context.WriteResult`.
    """

    def __init__(
        self,
        config,
        n_lines: int,
        endurance: list[list[int]],
        scheme,
        n_banks: int = 8,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
    ) -> None:
        self.config = config
        self.n_lines = n_lines
        self.n_banks = n_banks
        self.fault_mode = fault_mode
        self.scheme = scheme

        self.wl_backend = getattr(config, "wl_backend", "startgap_freep")
        if self.wl_backend == "wolfram":
            self.start_gap: (
                _RefStartGap | _RefRegionStartGap | _RefWolframPAD
            ) = _RefWolframPAD(n_lines, config.start_gap_psi)
        elif config.start_gap_regions > 1:
            self.start_gap = _RefRegionStartGap(
                n_lines, config.start_gap_psi, config.start_gap_regions
            )
        else:
            self.start_gap = _RefStartGap(n_lines, config.start_gap_psi)
        base_physical = self.start_gap.physical_lines
        spare_count = int(base_physical * config.spare_line_fraction)
        physical = base_physical + spare_count
        if len(endurance) != physical:
            raise ValueError(
                f"need endurance for {physical} physical lines, got {len(endurance)}"
            )
        self.capacity_lines = base_physical
        self.n_physical = physical
        if not spare_count:
            self.remapper = None
        elif self.wl_backend == "wolfram":
            self.remapper = _RefPadRemapper(
                spare_lines=list(range(base_physical, physical))
            )
        else:
            self.remapper = _RefFreeP(
                spare_lines=list(range(base_physical, physical)),
                pointer_bits=max(1, (physical - 1).bit_length()),
            )
        self.intra_wl = (
            _RefIntraWL(n_banks, config.intra_counter_limit)
            if config.use_intra_wear_leveling
            else None
        )
        self.lines = [_RefLine(row) for row in endurance]
        self.metadata = [_RefMeta() for _ in range(physical)]
        self.dead = [False] * physical
        self.dead_count = 0
        self.repairs: list[dict[int, int]] = [{} for _ in range(physical)]
        self.death_fault_counts: dict[int, int] = {}
        self.stats = {name: 0 for name in STAT_FIELDS}
        self.heuristic_steps: dict[int, int] = {}
        self._shadow: dict[int, bytes] = {}

    @classmethod
    def from_controller(cls, controller) -> "ReferenceModel":
        """Build the oracle twin of a freshly constructed fast controller.

        The oracle copies the controller's sampled per-cell endurance
        (the only random input) and re-derives everything else from the
        config, so the pair then evolves in lockstep deterministically.
        """
        from ..correction import make_scheme
        from ..pcm.mlc import MLCBankArray

        memory = controller.memory
        if isinstance(memory, MLCBankArray):
            raise NotImplementedError(
                "the reference model covers SLC banks only; MLC writes touch "
                "paired bits per cell, which the oracle's cell loop does not model"
            )
        stats = controller.stats
        if stats.demand_writes or stats.gap_move_writes:
            raise ValueError(
                "from_controller needs a fresh controller; this one has "
                f"already absorbed {stats.demand_writes} demand writes"
            )
        return cls(
            config=controller.config,
            n_lines=controller.n_lines,
            endurance=memory.endurance.tolist(),
            scheme=make_scheme(controller.config.correction_scheme),
            n_banks=controller.n_banks,
            fault_mode=memory.fault_mode,
        )

    # -- public API ------------------------------------------------------

    def write(self, logical: int, data: bytes) -> dict:
        """Handle one demand write-back; returns the stage-boundary record."""
        if len(data) != LINE_BYTES:
            raise ValueError(f"write data must be {LINE_BYTES} bytes")
        movement = self.start_gap.on_write(logical)
        if movement is not None:
            self._handle_gap_move(movement)
        self._shadow[logical] = data
        physical = self._resolve(self.start_gap.map(logical))
        self.stats["demand_writes"] += 1
        return self._write_line(physical, data, revival_allowed=False)

    def read(self, logical: int) -> bytes | None:
        """Read one line back; None when the data was lost to a death."""
        physical = self._resolve(self.start_gap.map(logical))
        if self.dead[physical]:
            return None
        if logical not in self._shadow:
            return None
        meta = self.metadata[physical]
        bits = list(self.lines[physical].stored)
        for position, value in self.repairs[physical].items():
            bits[position] = value
        if not meta.compressed:
            return _bits_to_bytes(bits)
        payload_bits = [bits[pos] for pos in _window_positions(meta.start_pointer, meta.stored_size)]
        payload = _bits_to_bytes(payload_bits)
        from .refcompress import reference_decompress

        return reference_decompress(meta.encoding, payload, meta.stored_size * 8)

    @property
    def dead_fraction(self) -> float:
        return self.dead_count / self.capacity_lines

    # -- lockstep state exports ------------------------------------------

    def stats_dict(self) -> dict:
        """All maintained counters plus the Figure 8 step tally."""
        out = dict(self.stats)
        out["heuristic_steps"] = dict(self.heuristic_steps)
        out["stored_writes"] = (
            self.stats["compressed_writes"] + self.stats["uncompressed_writes"]
        )
        return out

    def wl_registers(self) -> dict:
        out = {"start_gap": self.start_gap.registers()}
        if self.intra_wl is not None:
            out["intra_wl"] = self.intra_wl.registers()
        if self.remapper is not None:
            out["freep"] = (
                tuple(self.remapper.free_spares),
                tuple(sorted(self.remapper.remap_table.items())),
                self.remapper.remaps_performed,
            )
        return out

    def line_state(self, physical: int) -> tuple[tuple, tuple]:
        line = self.lines[physical]
        return (tuple(line.stored), tuple(line.counts))

    def metadata_tuple(self, physical: int) -> tuple:
        return self.metadata[physical].as_tuple()

    # -- write-path internals --------------------------------------------

    def _resolve(self, physical: int) -> int:
        if self.remapper is None:
            return physical
        return self.remapper.resolve(physical)

    def _handle_gap_move(self, movement: tuple) -> None:
        """Relocate displaced lines: one slot per gap move, two per swap."""
        if movement[0] == "pad":
            destinations = movement[1:]
            self.stats["pad_table_writes"] += 2
        else:
            destinations = (movement[1],)
        for destination in destinations:
            logical = self.start_gap.logical_of(destination)
            if logical is None:
                continue
            data = self._shadow.get(logical)
            if data is None:
                continue
            self.stats["gap_move_writes"] += 1
            self._write_line(
                self._resolve(destination), data, revival_allowed=True
            )

    def _write_line(self, physical: int, data: bytes, revival_allowed: bool) -> dict:
        config = self.config
        if self.dead[physical] and not (
            revival_allowed and config.use_dead_block_revival
        ):
            self.stats["lost_writes"] += 1
            return self._result(
                physical, compressed=False, size_bytes=LINE_BYTES,
                window_start=0, flips=0, lost=True,
            )
        was_dead = self.dead[physical]
        ctx = self._make_context(physical, data)
        ctx["hint"] = self._initial_hint(physical, ctx)
        result = self._attempt(physical, ctx)
        if result["died"]:
            return result
        if was_dead:
            self._revive(physical)
            result["revived"] = True
        if self.intra_wl is not None:
            self.intra_wl.record_write(physical % self.n_banks)
        return result

    def _make_context(self, physical: int, data: bytes) -> dict:
        compressed, comp_result, step = self._choose_format(physical, data)
        ctx = {
            "data": data,
            "compressed": compressed,
            "result": comp_result,
            "step": step,
            "hint": 0,
            "line_faults": 0,
        }
        if compressed:
            ctx["payload"] = comp_result.payload
            ctx["size"] = comp_result.size_bytes
        else:
            ctx["payload"] = data
            ctx["size"] = LINE_BYTES
        return ctx

    def _choose_format(self, physical: int, data: bytes):
        """Best-of compression + the Figure 8 decision flow, verbatim."""
        config = self.config
        if not config.use_compression:
            return False, None, 0
        comp_result = reference_best_compress(data)
        if comp_result.size_bytes >= LINE_BYTES:
            return False, comp_result, 0
        if not config.use_heuristic:
            return True, comp_result, 0
        meta = self.metadata[physical]
        new_size = comp_result.size_bytes
        sc_before = meta.sc
        if new_size < config.threshold1:
            compress, step = True, 1
        elif meta.sc == 3:
            compress, step = False, 2
        else:
            if abs(meta.stored_size - new_size) < config.threshold2:
                meta.sc = max(meta.sc - 1, 0)
            else:
                meta.sc = min(meta.sc + 1, 3)
            compress, step = True, 3
        if meta.sc != sc_before:
            self.stats["sc_updates"] += 1
        self.heuristic_steps[step] = self.heuristic_steps.get(step, 0) + 1
        return compress, comp_result, step

    def _initial_hint(self, physical: int, ctx: dict) -> int:
        if not ctx["compressed"]:
            return 0
        if self.intra_wl is not None:
            return self.intra_wl.offset(physical % self.n_banks)
        return self.metadata[physical].start_pointer

    def _attempt(self, physical: int, ctx: dict) -> dict:
        """The place/program/verify loop for one physical target."""
        flips = 0
        for _attempt in range(LINE_BYTES):
            start = self._place(physical, ctx)
            if start is None:
                break
            target, programmed = self._program(physical, ctx, start)
            flips += programmed
            if self._verify(physical, ctx, start):
                self._commit(physical, ctx, start, target)
                return self._result(
                    physical, compressed=ctx["compressed"], size_bytes=ctx["size"],
                    window_start=start, flips=flips, heuristic_step=ctx["step"],
                )
            ctx["hint"] = (start + 1) % LINE_BYTES

        if self._fallback_to_compressed(ctx):
            return self._attempt(physical, ctx)
        spare = self._try_remap(physical)
        if spare is not None:
            return self._attempt(spare, ctx)

        self._mark_dead(physical)
        return self._result(
            physical, compressed=ctx["compressed"], size_bytes=ctx["size"],
            window_start=0, flips=flips, died=True, lost=True,
            heuristic_step=ctx["step"],
        )

    def _place(self, physical: int, ctx: dict) -> int | None:
        line = self.lines[physical]
        ctx["line_faults"] = line.fault_count()
        if ctx["line_faults"] <= self.scheme.deterministic_capability:
            start = ctx["hint"] % LINE_BYTES
        else:
            start = self._find_window(
                line.fault_positions(), ctx["size"], ctx["hint"]
            )
        if start is None:
            return None
        if ctx["compressed"] and start != self.metadata[physical].start_pointer:
            self.stats["window_slides"] += 1
        return start

    def _faults_in_window(
        self, fault_positions: list[int], start_byte: int, size_bytes: int
    ) -> list[int]:
        start_bit = start_byte * 8
        size_bits = size_bytes * 8
        relative = []
        for position in fault_positions:
            rebased = (position - start_bit) % LINE_BITS
            if rebased < size_bits:
                relative.append(rebased)
        relative.sort()
        return relative

    def _find_window(
        self, fault_positions: list[int], size_bytes: int, hint: int
    ) -> int | None:
        scheme = self.scheme
        if len(fault_positions) <= scheme.deterministic_capability:
            return hint % LINE_BYTES
        if size_bytes == LINE_BYTES:
            inside = self._faults_in_window(fault_positions, 0, size_bytes)
            return 0 if scheme.can_correct(inside) else None
        for step in range(LINE_BYTES):
            start = (hint + step) % LINE_BYTES
            inside = self._faults_in_window(fault_positions, start, size_bytes)
            if len(inside) <= scheme.deterministic_capability or scheme.can_correct(
                inside
            ):
                return start
        return None

    def _program(self, physical: int, ctx: dict, start: int) -> tuple[list[int], int]:
        """Differential write of the payload window, cell by cell."""
        line = self.lines[physical]
        target = list(line.stored)
        payload_bits = _bytes_to_bits(ctx["payload"])
        for offset, position in enumerate(_window_positions(start, ctx["size"])):
            target[position] = payload_bits[offset]

        programmed = 0
        set_flips = 0
        new_faults = 0
        forced = None
        if self.fault_mode is FaultMode.STUCK_AT_SET:
            forced = 1
        elif self.fault_mode is FaultMode.STUCK_AT_RESET:
            forced = 0
        for position in range(LINE_BITS):
            if target[position] == line.stored[position]:
                continue
            if line.counts[position] >= line.endurance[position]:
                continue  # stuck cell: the program pulse has no effect
            line.counts[position] += 1
            line.stored[position] = target[position]
            programmed += 1
            if target[position]:
                set_flips += 1
            if line.counts[position] >= line.endurance[position]:
                new_faults += 1
                if forced is not None:
                    line.stored[position] = forced
        self.stats["total_flips"] += programmed
        self.stats["set_flips"] += set_flips
        self.stats["reset_flips"] += programmed - set_flips
        ctx["line_faults"] += new_faults
        return target, programmed

    def _verify(self, physical: int, ctx: dict, start: int) -> bool:
        if ctx["line_faults"] <= self.scheme.deterministic_capability:
            return True
        inside = self._faults_in_window(
            self.lines[physical].fault_positions(), start, ctx["size"]
        )
        return len(inside) <= self.scheme.deterministic_capability or (
            self.scheme.can_correct(inside)
        )

    def _commit(self, physical: int, ctx: dict, start: int, target: list[int]) -> None:
        meta = self.metadata[physical]
        new_pointer = start if ctx["compressed"] else 0
        new_encoding = (
            reference_encode_metadata(ctx["result"])
            if ctx["compressed"] and ctx["result"] is not None
            else meta.encoding
        )
        if new_pointer != meta.start_pointer:
            self.stats["start_pointer_updates"] += 1
        if new_encoding != meta.encoding or ctx["size"] != meta.stored_size:
            self.stats["encoding_updates"] += 1
        meta.start_pointer = new_pointer
        meta.compressed = ctx["compressed"]
        meta.stored_size = ctx["size"]
        meta.encoding = new_encoding
        line = self.lines[physical]
        if ctx["line_faults"]:
            window = _window_positions(start, ctx["size"])
            self.repairs[physical] = {
                position: target[position]
                for position in sorted(window)
                if line.is_faulty(position)
            }
        elif self.repairs[physical]:
            self.repairs[physical] = {}
        if ctx["compressed"]:
            self.stats["compressed_writes"] += 1
        else:
            self.stats["uncompressed_writes"] += 1

    def _try_remap(self, physical: int) -> int | None:
        if self.remapper is None:
            return None
        line = self.lines[physical]
        if self.wl_backend == "wolfram":
            # PAD remap: the decoder table holds the redirect, so the
            # dead line's remaining health is irrelevant.
            remapped = self.remapper.remap(physical)
            if remapped is None:
                return None
            spare, rewrites = remapped
            self.stats["pad_table_writes"] += rewrites
        else:
            healthy = LINE_BITS - line.fault_count()
            spare = self.remapper.remap(physical, healthy)
            if spare is None:
                return None
        self.stats["remaps"] += 1
        self.death_fault_counts[physical] = line.fault_count()
        return spare

    def _fallback_to_compressed(self, ctx: dict) -> bool:
        comp_result = ctx["result"]
        if not (
            self.config.use_dead_block_revival
            and not ctx["compressed"]
            and comp_result is not None
            and comp_result.size_bytes < LINE_BYTES
        ):
            return False
        ctx["compressed"] = True
        ctx["payload"] = comp_result.payload
        ctx["size"] = comp_result.size_bytes
        return True

    def _mark_dead(self, physical: int) -> None:
        if not self.dead[physical]:
            self.dead_count += 1
        self.dead[physical] = True
        self.stats["deaths"] += 1
        self.death_fault_counts[physical] = self.lines[physical].fault_count()
        self.stats["lost_writes"] += 1

    def _revive(self, physical: int) -> None:
        if self.dead[physical]:
            self.dead_count -= 1
        self.dead[physical] = False
        self.stats["revivals"] += 1

    @staticmethod
    def _result(
        physical: int,
        compressed: bool,
        size_bytes: int,
        window_start: int,
        flips: int,
        died: bool = False,
        revived: bool = False,
        lost: bool = False,
        heuristic_step: int = 0,
    ) -> dict:
        return {
            "physical": physical,
            "compressed": compressed,
            "size_bytes": size_bytes,
            "window_start": window_start,
            "flips": flips,
            "died": died,
            "revived": revived,
            "lost": lost,
            "heuristic_step": heuristic_step,
        }
