"""Randomized differential-fuzzing campaigns over the system registry.

:func:`run_fuzz` drives a :class:`~repro.validate.lockstep.ValidatingController`
per (system, correction scheme) pair with a deterministic, seeded write
stream designed to exercise the whole write path: the payload palette
mixes zero lines, repeated-word lines, BDI-friendly base+delta ramps,
FPC-friendly small words, incompressible noise, and byte mutations of
earlier payloads, while the address stream skews hot so wear (and
therefore fault handling, window slides, deaths, revival, and FREE-p
remaps) accumulates fast at tiny endurance.

A divergence is shrunk with a ddmin-style chunk-removal pass over the
write sequence -- each candidate prefix is replayed from scratch, so the
shrunk recipe is self-contained -- and written to the corpus directory
as a JSON repro seed.  ``python -m repro fuzz`` is the CLI entry point;
``--replay`` re-runs a corpus entry.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..engine.address_space import ShardMap, shard_seeds
from ..engine.context import ControllerStats
from ..engine.registry import get_system, system_names
from ..pcm import FaultMode
from .lockstep import DivergenceError, ValidatingController, replay_recipe

#: The paper's three fine-grained correction schemes (acceptance set).
DEFAULT_SCHEMES = ("ecp6", "safer32", "aegis17x31")

#: Short aliases accepted anywhere a scheme name is (CLI convenience).
SCHEME_ALIASES = {"aegis": "aegis17x31"}

#: Bound on from-scratch replays one shrink pass may spend.
DEFAULT_SHRINK_REPLAYS = 60

#: Campaign-manifest JSON schema version.
CAMPAIGN_MANIFEST_VERSION = 1


@dataclass
class CampaignResult:
    """Outcome of one (system, scheme) differential campaign."""

    system: str
    scheme: str
    seed: int
    writes_planned: int
    writes_run: int
    divergence: DivergenceError | None = None
    corpus_path: Path | None = None
    skipped: bool = False

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.skipped


@dataclass
class FuzzReport:
    """Everything one :func:`run_fuzz` invocation did."""

    campaigns: list[CampaignResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def failures(self) -> list[CampaignResult]:
        return [campaign for campaign in self.campaigns if campaign.divergence]

    @property
    def skipped(self) -> list[CampaignResult]:
        return [campaign for campaign in self.campaigns if campaign.skipped]


def normalize_scheme(name: str) -> str:
    """Resolve CLI scheme aliases (``aegis`` -> ``aegis17x31``)."""
    return SCHEME_ALIASES.get(name, name)


class _PayloadPalette:
    """Deterministic write-stream generator for one campaign."""

    def __init__(self, rng: np.random.Generator, n_lines: int) -> None:
        self._rng = rng
        self._n_lines = n_lines
        # A quarter of the address space takes ~70 % of the writes, so
        # per-cell wear concentrates and faults appear within a short
        # campaign even at moderate endurance.
        hot_count = max(1, n_lines // 4)
        self._hot = rng.permutation(n_lines)[:hot_count]
        self._recent: list[bytes] = []

    def next_op(self) -> tuple[int, bytes]:
        rng = self._rng
        if rng.random() < 0.7:
            logical = int(rng.choice(self._hot))
        else:
            logical = int(rng.integers(self._n_lines))
        payload = self._next_payload()
        self._recent.append(payload)
        if len(self._recent) > 8:
            self._recent.pop(0)
        return logical, payload

    def _next_payload(self) -> bytes:
        rng = self._rng
        kind = rng.integers(7)
        if kind == 0:  # all zeros (BDI zeros / FPC zero runs)
            return bytes(64)
        if kind == 1:  # repeated 8-byte word (BDI rep8)
            return bytes(rng.integers(256, size=8, dtype=np.uint8)) * 8
        if kind == 2:  # base + small deltas (BDI b8d1-style)
            base = int(rng.integers(1 << 48))
            deltas = rng.integers(-100, 100, size=8)
            words = [(base + int(delta)) % (1 << 64) for delta in deltas]
            return b"".join(word.to_bytes(8, "little") for word in words)
        if kind == 3:  # small 32-bit words (FPC sign-extension prefixes)
            words = rng.integers(-128, 128, size=16)
            return b"".join(
                int(word).to_bytes(4, "little", signed=True) for word in words
            )
        if kind == 4:  # sparse noise: mostly zero with a few hot bytes
            line = bytearray(64)
            for position in rng.integers(64, size=int(rng.integers(1, 6))):
                line[int(position)] = int(rng.integers(1, 256))
            return bytes(line)
        if kind == 5 and self._recent:  # mutate an earlier payload
            line = bytearray(self._recent[int(rng.integers(len(self._recent)))])
            line[int(rng.integers(64))] ^= int(rng.integers(1, 256))
            return bytes(line)
        # incompressible noise
        return bytes(rng.integers(256, size=64, dtype=np.uint8))


def shrink_recipe(
    recipe: dict, max_replays: int = DEFAULT_SHRINK_REPLAYS
) -> tuple[dict, DivergenceError]:
    """ddmin-style minimization of a divergence recipe's write sequence.

    Replays candidate subsequences from scratch and keeps any removal
    that still diverges.  Returns the smallest reproducing recipe found
    (taken from the replay's own :class:`DivergenceError`, so its op
    list is exactly what was issued) and the corresponding error.
    Raises ``ValueError`` if the input recipe does not reproduce at all.
    """
    replays = 0

    def reproduces(ops: list) -> DivergenceError | None:
        nonlocal replays
        replays += 1
        trial = dict(recipe)
        trial["ops"] = [[logical, payload] for logical, payload in ops]
        return replay_recipe(trial)

    best_error = reproduces(recipe["ops"])
    if best_error is None:
        raise ValueError("recipe does not reproduce; nothing to shrink")
    best_ops = best_error.recipe["ops"]

    chunk = max(1, len(best_ops) // 2)
    while chunk >= 1 and replays < max_replays:
        index = 0
        removed_any = False
        while index < len(best_ops) and replays < max_replays:
            candidate = best_ops[:index] + best_ops[index + chunk :]
            if not candidate:
                index += chunk
                continue
            error = reproduces(candidate)
            if error is not None:
                best_ops = error.recipe["ops"]
                best_error = error
                removed_any = True
                # Do not advance: the chunk now at `index` is new.
            else:
                index += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = max(1, chunk // 2)
    return best_error.recipe, best_error


def write_corpus_entry(
    corpus_dir: str | Path, campaign: str, recipe: dict, diffs: list[str],
    shrunk_from: int,
) -> Path:
    """Persist one failing repro seed; returns the file path."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    for counter in range(10_000):
        path = directory / f"divergence-{campaign}-{counter:03d}.json"
        if not path.exists():
            break
    entry = {
        "campaign": campaign,
        "recipe": recipe,
        "diffs": diffs[:40],
        "ops_shrunk_from": shrunk_from,
        "ops_shrunk_to": len(recipe["ops"]),
    }
    path.write_text(json.dumps(entry, indent=2, sort_keys=True))
    return path


def write_campaign_manifest(
    corpus_dir: str | Path, report: FuzzReport, params: dict
) -> Path:
    """Append one run's summary to the corpus campaign ledger.

    The manifest is the "we looked and found nothing" artifact: corpus
    entries only exist for divergences, so a clean campaign would leave
    no trace of how much fuzzing the checked-in corpus actually
    represents.  Each :func:`run_fuzz` invocation appends one record
    (parameters, outcome counts, and the corpus entry of every
    divergence) to ``campaign-manifest.json`` under ``corpus_dir``.
    """
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "campaign-manifest.json"
    if path.exists():
        manifest = json.loads(path.read_text())
    else:
        manifest = {"version": CAMPAIGN_MANIFEST_VERSION, "runs": []}
    ran = [c for c in report.campaigns if not c.skipped]
    manifest["runs"].append({
        **params,
        "campaigns": len(ran),
        "writes_run": sum(c.writes_run for c in ran),
        "skipped": len(report.skipped),
        "elapsed_seconds": round(report.elapsed_seconds, 1),
        "divergences": [
            {
                "system": c.system,
                "scheme": c.scheme,
                "corpus_entry": (
                    c.corpus_path.name if c.corpus_path else None
                ),
            }
            for c in report.failures
        ],
    })
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return path


def replay_corpus_entry(path: str | Path) -> DivergenceError | None:
    """Re-run a corpus entry (or bare recipe) file; returns the divergence."""
    entry = json.loads(Path(path).read_text())
    recipe = entry.get("recipe", entry)
    return replay_recipe(recipe)


def assert_fleet_view(shard_stats: list[ControllerStats]) -> ControllerStats:
    """Check the merged fleet view of a sharded campaign; returns it.

    Asserts the two structural properties the service relies on: the
    merge is reduction-order independent (forward fold == reverse
    fold), and the pipeline write-accounting invariant survives
    aggregation (fleet ``demand + gap_move == stored + lost``).
    """
    merged = ControllerStats.merge_all(shard_stats)
    reversed_merge = ControllerStats.merge_all(reversed(shard_stats))
    if merged != reversed_merge:
        raise AssertionError(
            "fleet stats merge is order-dependent: "
            f"forward={merged} reversed={reversed_merge}"
        )
    issued = merged.demand_writes + merged.gap_move_writes
    settled = merged.stored_writes + merged.lost_writes
    if issued != settled:
        raise AssertionError(
            "fleet write accounting broken: "
            f"demand+gap={issued} != stored+lost={settled}"
        )
    return merged


def run_fuzz(
    systems: tuple[str, ...] | None = None,
    schemes: tuple[str, ...] = DEFAULT_SCHEMES,
    writes: int = 2000,
    seed: int = 0,
    lines: int = 24,
    banks: int = 4,
    endurance_mean: float = 32.0,
    endurance_cov: float = 0.2,
    fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
    corpus_dir: str | Path | None = None,
    time_budget: float | None = None,
    check_state_every: int = 64,
    shrink: bool = True,
    progress=None,
    shards: int = 1,
    batch: int = 1,
    tier_lines: int = 0,
    wl_backend: str | None = None,
) -> FuzzReport:
    """Differential campaigns over ``systems`` x ``schemes``.

    Every campaign is deterministic in (``seed``, campaign index): the
    write stream comes from ``SeedSequence([seed, index])``, so a rerun
    with the same arguments replays identical campaigns.  On divergence
    the campaign stops, the failing sequence is shrunk, and -- when
    ``corpus_dir`` is given -- a JSON repro seed is written.

    ``time_budget`` (seconds) bounds the whole run: campaigns that
    would start after the budget is spent are marked ``skipped`` (for
    the nightly CI job; a skipped campaign is not a pass).

    ``shards > 1`` partitions each campaign memory with a
    :class:`~repro.engine.address_space.ShardMap` and runs one lockstep
    oracle *per shard* over its routed sub-stream (the address stream
    stays global, so routing itself is under test), then asserts the
    merged fleet view via :func:`assert_fleet_view`.  ``shards=1`` is
    exactly the historical unsharded campaign, seeds included.

    ``batch > 1`` groups every ``batch`` stream ops into one
    ``write_batch`` call per shard (order preserved within each
    shard), so the out-of-order scheduler's wave execution runs under
    the lockstep oracle; the stream itself is identical to the
    ``batch=1`` campaign.  Note a batch-only divergence need not
    reproduce under the (serial) recipe replay used for shrinking --
    in that case the unshrunk recipe is kept.

    ``tier_lines > 0`` fronts every shard's lockstep pair with a
    content-aware DRAM tier (:mod:`repro.tier`), so the oracle
    validates exactly the *post-tier* PCM write stream -- coalesced
    writes never reach either controller, eviction flushes reach both.
    End-of-campaign verification flushes each tier first (through the
    validated write path) so the full-state sweep covers every line
    the stream touched.  ``tier_lines=0`` is the historical campaign,
    bit for bit.

    ``wl_backend`` overrides every campaign config's wear-leveling /
    remap backend (``"startgap_freep"`` or ``"wolfram"``), so one flag
    re-runs a whole campaign matrix against the WoLFRaM PAD path and
    its independent reference model.  ``None`` (the default) keeps each
    system's own configured backend.  When the default system set is
    used with ``wl_backend="wolfram"``, multi-region Start-Gap systems
    are dropped from it (the config layer rejects that combination);
    explicitly listed systems are not filtered.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    if batch < 1:
        raise ValueError("batch must be positive")
    if tier_lines < 0:
        raise ValueError("tier_lines must be >= 0")
    report = FuzzReport()
    started = time.monotonic()
    if systems:
        names = tuple(systems)
    else:
        # Default set: every registered system the lockstep oracle can
        # model.  Energy-encoded variants store XOR-transformed cells,
        # which the reference model would flag as divergence -- their
        # read-back correctness is pinned by tests/energy instead.
        # Registry ``*_wolfram`` twins are excluded too: the PAD
        # backend is covered by re-running this same set under the
        # ``wl_backend`` override, not by doubling the default matrix.
        names = tuple(
            name for name in system_names()
            if getattr(get_system(name).config, "encoding", "none") == "none"
            and getattr(
                get_system(name).config, "wl_backend", "startgap_freep"
            ) == "startgap_freep"
        )
        if wl_backend == "wolfram":
            # The PAD table is region-free; multi-region Start-Gap
            # configs cannot take the override.
            names = tuple(
                name for name in names
                if get_system(name).config.start_gap_regions == 1
            )
    schemes = tuple(normalize_scheme(scheme) for scheme in schemes)
    shard_map = ShardMap(lines, shards)

    campaign_index = 0
    for system in names:
        for scheme in schemes:
            campaign_index += 1
            campaign = CampaignResult(
                system=system, scheme=scheme, seed=seed,
                writes_planned=writes, writes_run=0,
            )
            report.campaigns.append(campaign)
            if time_budget is not None and time.monotonic() - started > time_budget:
                campaign.skipped = True
                continue

            overrides = {"correction_scheme": scheme}
            if wl_backend is not None:
                overrides["wl_backend"] = wl_backend
            config = get_system(system).configured(**overrides)
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, campaign_index])
            )
            # One lockstep oracle per shard; shard_seeds keeps a 1-shard
            # campaign's seed (and thus its whole replay) unchanged.
            controllers = [
                ValidatingController(
                    config, shard_map.lines_of(shard),
                    endurance_mean=endurance_mean,
                    endurance_cov=endurance_cov,
                    seed=shard_seed, n_banks=banks,
                    fault_mode=fault_mode,
                    check_state_every=check_state_every,
                )
                for shard, shard_seed in enumerate(
                    shard_seeds(seed + campaign_index, shards)
                )
            ]
            if tier_lines:
                from ..tier import HybridController

                controllers = [
                    HybridController(controller, tier_lines)
                    for controller in controllers
                ]
            palette = _PayloadPalette(rng, lines)
            try:
                for _ in range(0, writes, batch):
                    chunk = [
                        palette.next_op()
                        for _ in range(min(batch, writes - campaign.writes_run))
                    ]
                    if batch == 1:
                        logical, payload = chunk[0]
                        shard, local = shard_map.to_local(logical)
                        controllers[shard].write(local, payload)
                    else:
                        for shard, bucket in enumerate(
                            shard_map.partition(chunk)
                        ):
                            if bucket:
                                controllers[shard].write_batch(bucket)
                    campaign.writes_run += len(chunk)
                    if (
                        time_budget is not None
                        and (batch > 1 or campaign.writes_run % 256 == 0)
                        and time.monotonic() - started > time_budget
                    ):
                        break
                else:
                    for controller in controllers:
                        # HybridController.verify_state flushes its
                        # tier first, so pending residents are diffed.
                        controller.verify_state()
                    assert_fleet_view([
                        (controller.inner if tier_lines else controller)
                        .fast.stats
                        for controller in controllers
                    ])
            except DivergenceError as error:
                if shrink:
                    try:
                        recipe, shrunk_error = shrink_recipe(error.recipe)
                    except ValueError:
                        # Batch-only divergence: the serial replay used
                        # for shrinking does not reproduce it.
                        recipe, shrunk_error = error.recipe, error
                else:
                    recipe, shrunk_error = error.recipe, error
                campaign.divergence = shrunk_error
                if corpus_dir is not None:
                    campaign.corpus_path = write_corpus_entry(
                        corpus_dir, f"{system}-{scheme}", recipe,
                        shrunk_error.diffs, shrunk_from=len(error.recipe["ops"]),
                    )
            if progress is not None:
                progress(campaign)
    report.elapsed_seconds = time.monotonic() - started
    return report
