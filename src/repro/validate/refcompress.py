"""Loop-based reference compressors for differential validation.

These are the pure-Python FPC and BDI codecs the oracle
(:mod:`repro.validate.reference`) stores lines with: word-at-a-time
encoders exactly as they existed before the numpy hot-path rewrite
(PR 2), plus matching loop-based decoders and the best-of selection /
5-bit metadata packing the fast :class:`repro.compression.BestOfCompressor`
performs.  Everything here works on plain Python ints and bytes -- no
numpy -- so a divergence from the vectorized kernels is always a bug in
exactly one of the two implementations.

Do not optimize this file; its entire value is that it stays slow and
obviously correct.  ``tests/compression/reference_impls.py`` re-exports
the two encoders under their historical names for the kernel
equivalence tests.
"""

from __future__ import annotations

from ..compression.base import (
    LINE_SIZE_BYTES,
    CompressionError,
    CompressionResult,
)

_WORD_BYTES = 4
_WORDS_PER_LINE = LINE_SIZE_BYTES // _WORD_BYTES
_BYTE_ORDER = "little"

# -- FPC constants (mirrors repro.compression.fpc) --------------------------

_PREFIX_BITS = 3
_PREFIX_ZERO_RUN = 0b000
_PREFIX_SE4 = 0b001
_PREFIX_SE8 = 0b010
_PREFIX_SE16 = 0b011
_PREFIX_HI_HALF = 0b100
_PREFIX_TWO_BYTES = 0b101
_PREFIX_REPEATED = 0b110
_PREFIX_UNCOMPRESSED = 0b111
_MAX_ZERO_RUN = 8

#: FPC's single self-describing encoding value.
ENC_FPC = 0

# -- BDI constants (mirrors repro.compression.bdi) --------------------------

ENC_BDI_UNCOMPRESSED = 0
ENC_BDI_ZEROS = 1
ENC_BDI_REP8 = 2

#: (encoding, base_bytes, delta_bytes), ordered by compressed size.
_BDI_VARIANTS = (
    (3, 8, 1),  # b8d1: 16 bytes
    (4, 4, 1),  # b4d1: 20 bytes
    (5, 8, 2),  # b8d2: 24 bytes
    (6, 2, 1),  # b2d1: 34 bytes
    (7, 4, 2),  # b4d2: 36 bytes
    (8, 8, 4),  # b8d4: 40 bytes
)
_BDI_VARIANT_BY_ENCODING = {
    encoding: (base, delta) for encoding, base, delta in _BDI_VARIANTS
}

#: 5-bit metadata layout of the default BestOfCompressor((BDI, FPC)):
#: BDI owns values [0, 9), FPC owns value 9.
_BDI_METADATA_BASE = 0
_FPC_METADATA_BASE = 9


class _BitWriter:
    """Append-only MSB-first bit buffer (pre-rewrite original)."""

    def __init__(self) -> None:
        self._value = 0
        self.bit_count = 0

    def write(self, value: int, width: int) -> None:
        self._value = (self._value << width) | (value & ((1 << width) - 1))
        self.bit_count += width

    def to_bytes(self) -> bytes:
        pad = (-self.bit_count) % 8
        return ((self._value << pad)).to_bytes((self.bit_count + pad) // 8, "big")


class _BitReader:
    """MSB-first reader over a packed FPC payload."""

    def __init__(self, payload: bytes) -> None:
        self._value = int.from_bytes(payload, "big")
        self._remaining = len(payload) * 8

    def read(self, width: int) -> int:
        if width > self._remaining:
            raise CompressionError("fpc: bitstream exhausted")
        self._remaining -= width
        return (self._value >> self._remaining) & ((1 << width) - 1)


# -- FPC -------------------------------------------------------------------


def _sign_extends(value: int, bits: int) -> bool:
    limit = 1 << (bits - 1)
    return -limit <= value < limit


def _to_signed32(word: int) -> int:
    return word - (1 << 32) if word >= (1 << 31) else word


def _both_halves_byte_extend(word: int) -> bool:
    for half in ((word >> 16) & 0xFFFF, word & 0xFFFF):
        signed = half - (1 << 16) if half >= (1 << 15) else half
        if not _sign_extends(signed, 8):
            return False
    return True


def _repeated_bytes(word: int) -> bool:
    byte = word & 0xFF
    return word == byte * 0x01010101


def _encode_word(writer: _BitWriter, word: int) -> None:
    signed = _to_signed32(word)
    if _sign_extends(signed, 4):
        writer.write(_PREFIX_SE4, _PREFIX_BITS)
        writer.write(signed, 4)
    elif _sign_extends(signed, 8):
        writer.write(_PREFIX_SE8, _PREFIX_BITS)
        writer.write(signed, 8)
    elif _sign_extends(signed, 16):
        writer.write(_PREFIX_SE16, _PREFIX_BITS)
        writer.write(signed, 16)
    elif word & 0xFFFF == 0:
        writer.write(_PREFIX_HI_HALF, _PREFIX_BITS)
        writer.write(word >> 16, 16)
    elif _both_halves_byte_extend(word):
        writer.write(_PREFIX_TWO_BYTES, _PREFIX_BITS)
        writer.write((word >> 16) & 0xFF, 8)
        writer.write(word & 0xFF, 8)
    elif _repeated_bytes(word):
        writer.write(_PREFIX_REPEATED, _PREFIX_BITS)
        writer.write(word & 0xFF, 8)
    else:
        writer.write(_PREFIX_UNCOMPRESSED, _PREFIX_BITS)
        writer.write(word, 32)


def reference_fpc_compress(data: bytes) -> CompressionResult:
    """The original word-at-a-time FPC encoder."""
    words = [
        int.from_bytes(data[offset : offset + _WORD_BYTES], _BYTE_ORDER)
        for offset in range(0, LINE_SIZE_BYTES, _WORD_BYTES)
    ]
    writer = _BitWriter()
    index = 0
    while index < _WORDS_PER_LINE:
        word = words[index]
        if word == 0:
            run = 1
            while (
                index + run < _WORDS_PER_LINE
                and words[index + run] == 0
                and run < _MAX_ZERO_RUN
            ):
                run += 1
            writer.write(_PREFIX_ZERO_RUN, _PREFIX_BITS)
            writer.write(run - 1, 3)
            index += run
            continue
        _encode_word(writer, word)
        index += 1
    return CompressionResult("fpc", ENC_FPC, writer.bit_count, writer.to_bytes())


def _sign_extend_field(value: int, bits: int) -> int:
    if value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value & 0xFFFFFFFF


def reference_fpc_decompress(payload: bytes) -> bytes:
    """Word-at-a-time decode of an FPC bitstream back to 64 bytes."""
    reader = _BitReader(payload)
    words: list[int] = []
    while len(words) < _WORDS_PER_LINE:
        prefix = reader.read(_PREFIX_BITS)
        if prefix == _PREFIX_ZERO_RUN:
            words.extend([0] * (reader.read(3) + 1))
        elif prefix == _PREFIX_SE4:
            words.append(_sign_extend_field(reader.read(4), 4))
        elif prefix == _PREFIX_SE8:
            words.append(_sign_extend_field(reader.read(8), 8))
        elif prefix == _PREFIX_SE16:
            words.append(_sign_extend_field(reader.read(16), 16))
        elif prefix == _PREFIX_HI_HALF:
            words.append(reader.read(16) << 16)
        elif prefix == _PREFIX_TWO_BYTES:
            high = _sign_extend_field(reader.read(8), 8) & 0xFFFF
            low = _sign_extend_field(reader.read(8), 8) & 0xFFFF
            words.append((high << 16) | low)
        elif prefix == _PREFIX_REPEATED:
            words.append(reader.read(8) * 0x01010101)
        else:
            words.append(reader.read(32))
    if len(words) != _WORDS_PER_LINE:
        raise CompressionError("fpc: bitstream decodes to a wrong word count")
    return b"".join(word.to_bytes(_WORD_BYTES, _BYTE_ORDER) for word in words)


# -- BDI -------------------------------------------------------------------


def _line_words(data: bytes, width: int) -> list[int]:
    return [
        int.from_bytes(data[offset : offset + width], _BYTE_ORDER)
        for offset in range(0, LINE_SIZE_BYTES, width)
    ]


def _wrapped_signed_delta(word: int, base: int, width: int) -> int:
    """``word - base`` modulo the word width, reinterpreted as signed."""
    modulus = 1 << (8 * width)
    delta = (word - base) % modulus
    if delta >= modulus // 2:
        delta -= modulus
    return delta


def _try_bdi_variant(data: bytes, base_bytes: int, delta_bytes: int) -> bytes | None:
    words = _line_words(data, base_bytes)
    base = words[0]
    limit = 1 << (8 * delta_bytes - 1)
    deltas = []
    for word in words:
        delta = _wrapped_signed_delta(word, base, base_bytes)
        if not -limit <= delta < limit:
            return None
        deltas.append(delta)
    parts = [data[:base_bytes]]
    parts.extend(
        delta.to_bytes(delta_bytes, _BYTE_ORDER, signed=True) for delta in deltas
    )
    return b"".join(parts)


def reference_bdi_compress(data: bytes) -> CompressionResult:
    """The original sequential BDI encoder."""
    if data == bytes(LINE_SIZE_BYTES):
        return CompressionResult("bdi", ENC_BDI_ZEROS, 8, b"\x00")
    if data[:8] * (LINE_SIZE_BYTES // 8) == data:
        return CompressionResult("bdi", ENC_BDI_REP8, 64, data[:8])
    for encoding, base_bytes, delta_bytes in _BDI_VARIANTS:
        payload = _try_bdi_variant(data, base_bytes, delta_bytes)
        if payload is not None:
            size_bytes = base_bytes + (LINE_SIZE_BYTES // base_bytes) * delta_bytes
            return CompressionResult("bdi", encoding, size_bytes * 8, payload)
    return CompressionResult(
        "bdi", ENC_BDI_UNCOMPRESSED, LINE_SIZE_BYTES * 8, bytes(data)
    )


def reference_bdi_decompress(encoding: int, payload: bytes) -> bytes:
    """Word-at-a-time decode of a BDI payload back to 64 bytes."""
    if encoding == ENC_BDI_UNCOMPRESSED:
        if len(payload) != LINE_SIZE_BYTES:
            raise CompressionError("bdi: bad uncompressed payload size")
        return bytes(payload)
    if encoding == ENC_BDI_ZEROS:
        return bytes(LINE_SIZE_BYTES)
    if encoding == ENC_BDI_REP8:
        if len(payload) != 8:
            raise CompressionError("bdi: bad rep8 payload size")
        return bytes(payload) * (LINE_SIZE_BYTES // 8)
    geometry = _BDI_VARIANT_BY_ENCODING.get(encoding)
    if geometry is None:
        raise CompressionError(f"bdi: unknown encoding {encoding}")
    base_bytes, delta_bytes = geometry
    word_count = LINE_SIZE_BYTES // base_bytes
    expected = base_bytes + word_count * delta_bytes
    if len(payload) != expected:
        raise CompressionError(
            f"bdi: encoding {encoding} payload must be {expected} bytes, "
            f"got {len(payload)}"
        )
    base = int.from_bytes(payload[:base_bytes], _BYTE_ORDER)
    modulus = 1 << (8 * base_bytes)
    words = []
    offset = base_bytes
    for _ in range(word_count):
        delta = int.from_bytes(
            payload[offset : offset + delta_bytes], _BYTE_ORDER, signed=True
        )
        words.append((base + delta) % modulus)
        offset += delta_bytes
    return b"".join(word.to_bytes(base_bytes, _BYTE_ORDER) for word in words)


# -- best-of selection + metadata codec ------------------------------------


def reference_best_compress(data: bytes) -> CompressionResult:
    """Best-of-BDI/FPC with BDI winning ties (the member order of the
    default fast :class:`~repro.compression.BestOfCompressor`)."""
    bdi = reference_bdi_compress(data)
    fpc = reference_fpc_compress(data)
    return bdi if bdi.size_bits <= fpc.size_bits else fpc


def reference_encode_metadata(result: CompressionResult) -> int:
    """Pack a result into the 5-bit per-line encoding metadata value."""
    if result.algorithm == "bdi":
        if not 0 <= result.encoding < _FPC_METADATA_BASE:
            raise CompressionError(f"bdi: encoding {result.encoding} out of range")
        return _BDI_METADATA_BASE + result.encoding
    if result.algorithm == "fpc":
        if result.encoding != ENC_FPC:
            raise CompressionError(f"fpc: encoding {result.encoding} out of range")
        return _FPC_METADATA_BASE
    raise CompressionError(f"no reference member named {result.algorithm!r}")


def reference_decode_metadata(metadata: int) -> tuple[str, int]:
    """Unpack the 5-bit metadata value into (member name, encoding)."""
    if _BDI_METADATA_BASE <= metadata < _FPC_METADATA_BASE:
        return "bdi", metadata - _BDI_METADATA_BASE
    if metadata == _FPC_METADATA_BASE:
        return "fpc", ENC_FPC
    raise CompressionError(f"metadata {metadata} names no reference member")


def reference_decompress(metadata: int, payload: bytes, size_bits: int) -> bytes:
    """Decode a stored window back to the 64-byte line."""
    del size_bits  # both decoders are word-count driven
    algorithm, encoding = reference_decode_metadata(metadata)
    if algorithm == "bdi":
        return reference_bdi_decompress(encoding, payload)
    return reference_fpc_decompress(payload)
