"""Cross-stage invariant checkers for the engine's debug mode.

Each checker is a small object with an ``after_write(state, result)``
hook; the :class:`~repro.engine.pipeline.WritePipeline` runs the hooks
on every completed write (including lost and dying ones) when it is
constructed with ``invariants=...``.  Checkers raise
:class:`InvariantViolation` -- they assert relationships that must hold
*by construction* between stages, so a failure always means a pipeline
bug, never a workload property:

* :class:`StatsConservation` -- every write commits exactly once or is
  lost exactly once, and the flip split adds up;
* :class:`WindowWithinLine` -- committed placement/metadata fields stay
  inside the 64-byte line and agree with the compressed flag;
* :class:`DeadSetMonotone` -- without revival, blocks never come back;
* :class:`DeadCountConsistent` -- the O(1) maintained death total
  matches the dead mask;
* :class:`FaultMaskConsistent` -- the incrementally maintained fault
  mask matches ``counts >= endurance`` recomputed from scratch on the
  written line;
* :class:`FlipWearConservation` -- every flip the stats counted wore
  exactly one cell: ``total_flips`` equals the wear-count total, even
  across compression rescues, retries, and spare-block remaps.

:func:`default_invariants` builds one of each.  The checkers are pure
observers: they never mutate engine state, so enabling them cannot
change simulation results (only speed).

:func:`check_checkpoint_roundtrip` is the checkpoint/resume state
checker: it saves a live simulator, re-reads the pickle, and diffs the
restored controller against the live one field by field.
"""

from __future__ import annotations

import numpy as np

from ..core.window import LINE_BYTES


class InvariantViolation(AssertionError):
    """A cross-stage engine invariant failed after a write."""


class StatsConservation:
    """Write accounting and flip-split conservation laws."""

    name = "stats-conservation"

    def after_write(self, state, result) -> None:
        stats = state.stats
        issued = stats.demand_writes + stats.gap_move_writes
        settled = stats.stored_writes + stats.lost_writes
        if issued != settled:
            raise InvariantViolation(
                f"{self.name}: demand+gap_move ({issued}) != "
                f"stored+lost ({settled})"
            )
        if stats.total_flips != stats.set_flips + stats.reset_flips:
            raise InvariantViolation(
                f"{self.name}: total_flips ({stats.total_flips}) != "
                f"set+reset ({stats.set_flips + stats.reset_flips})"
            )
        if stats.stored_writes != stats.compressed_writes + stats.uncompressed_writes:
            raise InvariantViolation(
                f"{self.name}: stored_writes ({stats.stored_writes}) != "
                f"compressed+uncompressed"
            )


class WindowWithinLine:
    """Committed windows and metadata stay inside the 64-byte line."""

    name = "window-within-line"

    def after_write(self, state, result) -> None:
        if not 0 <= result.window_start < LINE_BYTES:
            raise InvariantViolation(
                f"{self.name}: window_start {result.window_start} out of range"
            )
        if not 1 <= result.size_bytes <= LINE_BYTES:
            raise InvariantViolation(
                f"{self.name}: size_bytes {result.size_bytes} out of range"
            )
        if result.compressed and result.size_bytes >= LINE_BYTES:
            raise InvariantViolation(
                f"{self.name}: compressed write stored {result.size_bytes} bytes"
            )
        if result.lost:
            return  # no metadata was committed
        if not result.compressed and result.window_start != 0:
            raise InvariantViolation(
                f"{self.name}: uncompressed write landed at byte "
                f"{result.window_start}, not 0"
            )
        meta = state.metadata[result.physical]
        if meta.compressed != result.compressed or meta.stored_size != result.size_bytes:
            raise InvariantViolation(
                f"{self.name}: metadata (compressed={meta.compressed}, "
                f"size={meta.stored_size}) disagrees with the committed result "
                f"(compressed={result.compressed}, size={result.size_bytes})"
            )
        if meta.start_pointer != result.window_start:
            raise InvariantViolation(
                f"{self.name}: start pointer {meta.start_pointer} != committed "
                f"window start {result.window_start}"
            )


class DeadSetMonotone:
    """Without revival, the dead set only grows."""

    name = "dead-set-monotone"

    def __init__(self) -> None:
        self._previous: np.ndarray | None = None

    def after_write(self, state, result) -> None:
        dead = state.dead
        if self._previous is not None and not state.config.use_dead_block_revival:
            resurrected = np.flatnonzero(self._previous & ~dead)
            if resurrected.size:
                raise InvariantViolation(
                    f"{self.name}: blocks {resurrected.tolist()} came back "
                    "to life with revival disabled"
                )
        self._previous = dead.copy()


class DeadCountConsistent:
    """The maintained O(1) dead total matches the dead mask."""

    name = "dead-count-consistent"

    def after_write(self, state, result) -> None:
        actual = int(np.count_nonzero(state.dead))
        if state.dead_count != actual:
            raise InvariantViolation(
                f"{self.name}: maintained dead_count {state.dead_count} != "
                f"mask population {actual}"
            )


class FaultMaskConsistent:
    """The incremental fault mask matches first principles on the written line."""

    name = "fault-mask-consistent"

    def after_write(self, state, result) -> None:
        memory = state.memory
        counts = getattr(memory, "counts", None)
        faulty = getattr(memory, "faulty", None)
        if counts is None or faulty is None or counts.shape != faulty.shape:
            return  # cell-granular stores (MLC) keep counts per cell pair
        physical = result.physical
        recomputed = counts[physical] >= memory.endurance[physical]
        if not np.array_equal(faulty[physical], recomputed):
            drifted = np.flatnonzero(faulty[physical] != recomputed)
            raise InvariantViolation(
                f"{self.name}: maintained fault mask of line {physical} drifted "
                f"from counts>=endurance at cells {drifted.tolist()[:16]}"
            )
        fault_counts = getattr(memory, "fault_counts", None)
        if fault_counts is not None:
            actual = int(np.count_nonzero(faulty[physical]))
            if int(fault_counts[physical]) != actual:
                raise InvariantViolation(
                    f"{self.name}: maintained fault count {int(fault_counts[physical])} "
                    f"of line {physical} != mask population {actual}"
                )


class FlipWearConservation:
    """Counted flips and accumulated cell wear agree exactly.

    The program path increments ``stats.total_flips`` once per
    programmed cell and the bank increments that cell's wear count once
    per program, so the two totals must stay equal write after write --
    including writes that retried after a compression rescue or landed
    on a remapped spare, where a bug could easily price the same cell
    twice (or drop the second attempt's wear).  This is the energy
    model's ground truth: ``set/reset_flips`` feed picojoule pricing,
    so a double-count here silently inflates every energy figure.
    """

    name = "flip-wear-conservation"

    def after_write(self, state, result) -> None:
        memory = state.memory
        counts = getattr(memory, "counts", None)
        faulty = getattr(memory, "faulty", None)
        if counts is None or faulty is None or counts.shape != faulty.shape:
            return  # cell-granular stores (MLC) wear per cell pair
        worn = int(counts.sum())
        if state.stats.total_flips != worn:
            raise InvariantViolation(
                f"{self.name}: stats counted {state.stats.total_flips} flips "
                f"but the array accumulated {worn} cell programs"
            )


def default_invariants() -> tuple:
    """One instance of every checker, in documentation order."""
    return (
        StatsConservation(),
        WindowWithinLine(),
        DeadSetMonotone(),
        DeadCountConsistent(),
        FaultMaskConsistent(),
        FlipWearConservation(),
    )


# -- checkpoint/resume state equality ----------------------------------------


def controller_state_snapshot(controller) -> dict:
    """A comparable snapshot of everything a checkpoint must preserve."""
    engine = controller.engine
    stats = engine.stats
    memory = engine.memory
    snapshot = {
        "stats": {
            field: getattr(stats, field)
            for field in (
                "demand_writes", "gap_move_writes", "lost_writes", "sc_updates",
                "window_slides", "total_flips", "set_flips", "reset_flips",
                "compressed_writes", "uncompressed_writes",
                "start_pointer_updates", "encoding_updates", "remaps",
                "deaths", "revivals",
            )
        },
        "heuristic_steps": dict(stats.heuristic_steps),
        "stored": memory.stored.tolist(),
        "counts": memory.counts.tolist(),
        "endurance": memory.endurance.tolist(),
        "metadata": [
            (m.start_pointer, m.encoding, m.sc, m.compressed, m.stored_size)
            for m in engine.metadata
        ],
        "dead": engine.dead.tolist(),
        "dead_count": engine.dead_count,
        "repairs": [dict(r) for r in engine.repairs],
        "death_fault_counts": dict(engine.death_fault_counts),
        "shadow": dict(controller._shadow),
    }
    start_gap = engine.start_gap
    gaps = getattr(start_gap, "_gaps", None) or [start_gap]
    snapshot["start_gap"] = [
        (gap.start, gap.gap, gap.write_count, gap.gap_moves) for gap in gaps
    ]
    if engine.intra_wl is not None:
        intra = engine.intra_wl
        snapshot["intra_wl"] = (
            list(intra._counters), list(intra._offsets), intra.rotations,
        )
    if engine.remapper is not None:
        remapper = engine.remapper
        snapshot["freep"] = (
            list(remapper._free_spares),
            sorted(remapper._remap.items()),
            remapper.remaps_performed,
        )
    return snapshot


def check_checkpoint_roundtrip(simulator, directory) -> None:
    """Save a checkpoint, re-read it, and diff restored vs live state.

    Raises :class:`InvariantViolation` naming the first field where the
    pickled controller disagrees with the in-memory one -- the
    checkpoint/resume equality invariant of the debug mode.
    """
    from ..lifetime.checkpoint import read_checkpoint

    path = simulator.save_checkpoint(directory)
    checkpoint = read_checkpoint(path)
    live = controller_state_snapshot(simulator.controller)
    restored = controller_state_snapshot(checkpoint.controller)
    for field in live:
        if live[field] != restored[field]:
            raise InvariantViolation(
                f"checkpoint round-trip: field {field!r} changed across "
                f"pickle/unpickle"
            )
    if checkpoint.writes_issued != simulator.writes_issued:
        raise InvariantViolation(
            f"checkpoint round-trip: writes_issued {checkpoint.writes_issued} "
            f"!= live {simulator.writes_issued}"
        )
