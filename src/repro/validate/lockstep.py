"""Lockstep differential execution of the fast pipeline and the oracle.

:class:`ValidatingController` drives a production
:class:`~repro.core.controller.CompressedPCMController` and a
:class:`~repro.validate.reference.ReferenceModel` built from the same
sampled endurance, issues every write to both, and diffs the
stage-boundary state after each one: the write result (storage format,
window start/size, programmed flips, death/revival verdict), the full
statistics counters, the wear-leveling registers, the dead set, the
written line's cell state, the 13-bit metadata, the repair table, and a
read-back of the just-written logical line.  Any mismatch raises
:class:`DivergenceError` carrying a self-contained repro recipe --
config + seed + the exact write sequence -- that
:func:`replay_recipe` turns back into the failure.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.config import SystemConfig
from ..core.controller import CompressedPCMController
from ..pcm import EnduranceModel, FaultMode
from .reference import STAT_FIELDS, ReferenceModel

#: Default full-memory sweep period (every write still gets the cheap
#: written-line / stats / register diff).
DEFAULT_CHECK_STATE_EVERY = 64


class DivergenceError(AssertionError):
    """The fast pipeline and the reference model disagreed.

    Attributes:
        diffs: One human-readable line per mismatching field.
        recipe: A JSON-serializable dict that reproduces the failure via
            :func:`replay_recipe` (config + seed + write sequence).
    """

    def __init__(self, message: str, diffs: list[str], recipe: dict) -> None:
        detail = "\n  ".join(diffs[:20])
        more = f"\n  ... and {len(diffs) - 20} more" if len(diffs) > 20 else ""
        super().__init__(f"{message}\n  {detail}{more}")
        self.diffs = diffs
        self.recipe = recipe


class ValidatingController:
    """A fast controller and its oracle twin, diffed after every write."""

    def __init__(
        self,
        config: SystemConfig,
        n_lines: int,
        *,
        endurance_mean: float = 32.0,
        endurance_cov: float = 0.2,
        seed: int = 0,
        n_banks: int = 8,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        check_state_every: int = DEFAULT_CHECK_STATE_EVERY,
    ) -> None:
        self.config = config
        self.n_lines = n_lines
        self.n_banks = n_banks
        self.fault_mode = fault_mode
        self.endurance_mean = endurance_mean
        self.endurance_cov = endurance_cov
        self.seed = seed
        self.check_state_every = check_state_every
        model = EnduranceModel(mean=endurance_mean, cov=endurance_cov)
        self.fast = CompressedPCMController(
            config,
            n_lines,
            model,
            np.random.default_rng(seed),
            n_banks=n_banks,
            fault_mode=fault_mode,
        )
        self.oracle = ReferenceModel.from_controller(self.fast)
        self.ops: list[tuple[int, bytes]] = []
        self.write_index = 0

    # -- driving ---------------------------------------------------------

    def write(self, logical: int, data: bytes):
        """Issue one write to both models and diff the outcome."""
        self.ops.append((logical, bytes(data)))
        fast_result = self.fast.write(logical, data)
        oracle_record = self.oracle.write(logical, data)
        diffs = self._diff_write(logical, fast_result, oracle_record)
        self.write_index += 1
        if self.check_state_every and self.write_index % self.check_state_every == 0:
            diffs.extend(self._diff_full_state())
        if diffs:
            raise DivergenceError(
                f"fast/oracle divergence at write {self.write_index - 1} "
                f"(logical {logical})",
                diffs,
                self._recipe(logical, data),
            )
        return fast_result

    def write_batch(self, requests):
        """Issue a batch to the fast model, serially to the oracle, diff.

        The fast controller retires the whole batch through
        :meth:`~repro.core.controller.CompressedPCMController.write_batch`
        while the oracle replays the same requests one by one -- the
        strongest equivalence check the batched engine gets.  Per-write
        result rows are diffed pairwise; the cross-cutting state (stats,
        wear-leveling registers, dead set, written lines, read-backs) is
        diffed once both sides have retired every write, since it is
        only comparable at batch boundaries.
        """
        requests = [(logical, bytes(data)) for logical, data in requests]
        start_index = self.write_index
        self.ops.extend(requests)
        fast_results = self.fast.write_batch(requests)
        oracle_records = [
            self.oracle.write(logical, data) for logical, data in requests
        ]
        diffs: list[str] = []
        for offset, (fast_result, record) in enumerate(
            zip(fast_results, oracle_records)
        ):
            diffs.extend(
                f"[write {start_index + offset}] {line}"
                for line in self._diff_result(fast_result, record)
            )
        self.write_index += len(requests)
        diffs.extend(self._diff_globals())
        seen_lines: set[int] = set()
        seen_logicals: set[int] = set()
        for (logical, _), fast_result in zip(requests, fast_results):
            if fast_result.physical not in seen_lines:
                seen_lines.add(fast_result.physical)
                diffs.extend(self._diff_line(fast_result.physical))
            if logical not in seen_logicals:
                seen_logicals.add(logical)
                diffs.extend(self._diff_read(logical))
        if self.check_state_every and (
            self.write_index // self.check_state_every
            > start_index // self.check_state_every
        ):
            diffs.extend(self._diff_full_state())
        if diffs:
            raise DivergenceError(
                f"fast/oracle divergence in batched writes "
                f"[{start_index}, {self.write_index})",
                diffs,
                self._recipe(*requests[-1]),
            )
        return fast_results

    def verify_state(self) -> None:
        """Full-memory comparison; raises :class:`DivergenceError`."""
        diffs = self._diff_full_state()
        if diffs:
            raise DivergenceError(
                f"fast/oracle state divergence after write {self.write_index - 1}",
                diffs,
                self._recipe(*self.ops[-1]) if self.ops else self._recipe(0, bytes(64)),
            )

    # -- diffing ---------------------------------------------------------

    def _diff_write(self, logical: int, fast_result, oracle_record: dict) -> list[str]:
        diffs = self._diff_result(fast_result, oracle_record)
        diffs.extend(self._diff_globals())
        diffs.extend(self._diff_line(fast_result.physical))
        diffs.extend(self._diff_read(logical))
        return diffs

    @staticmethod
    def _diff_result(fast_result, oracle_record: dict) -> list[str]:
        diffs: list[str] = []
        for field, oracle_value in oracle_record.items():
            fast_value = getattr(fast_result, field)
            if fast_value != oracle_value:
                diffs.append(
                    f"result.{field}: fast={fast_value!r} oracle={oracle_value!r}"
                )
        return diffs

    def _diff_globals(self) -> list[str]:
        diffs: list[str] = []
        fast_stats = self._fast_stats_dict()
        oracle_stats = self.oracle.stats_dict()
        for field, oracle_value in oracle_stats.items():
            fast_value = fast_stats[field]
            if fast_value != oracle_value:
                diffs.append(
                    f"stats.{field}: fast={fast_value!r} oracle={oracle_value!r}"
                )

        fast_wl = self._fast_wl_registers()
        oracle_wl = self.oracle.wl_registers()
        for field, oracle_value in oracle_wl.items():
            fast_value = fast_wl.get(field)
            if fast_value != oracle_value:
                diffs.append(
                    f"registers.{field}: fast={fast_value!r} oracle={oracle_value!r}"
                )

        fast_dead = self.fast.dead.tolist()
        if fast_dead != self.oracle.dead:
            diffs.append(f"dead set: fast={fast_dead!r} oracle={self.oracle.dead!r}")
        fast_dead_count = self.fast.engine.dead_count
        if fast_dead_count != self.oracle.dead_count:
            diffs.append(
                f"dead_count: fast={fast_dead_count} oracle={self.oracle.dead_count}"
            )
        return diffs

    def _diff_read(self, logical: int) -> list[str]:
        fast_read = self._guarded_read(self.fast, logical)
        oracle_read = self._guarded_read(self.oracle, logical)
        if fast_read != oracle_read:
            return [
                f"read({logical}): fast={_hex(fast_read)} oracle={_hex(oracle_read)}"
            ]
        return []

    @staticmethod
    def _guarded_read(model, logical: int):
        """Read back one line; a decode crash is itself a divergence.

        Corrupted metadata (e.g. a stored size smaller than the real
        payload) makes decompression raise rather than return wrong
        bytes -- fold the exception into the comparison so it surfaces
        as a diff with a repro recipe instead of an unhandled error.
        """
        try:
            return model.read(logical)
        except Exception as error:  # noqa: BLE001 -- any crash is a diff
            return f"<read raised {type(error).__name__}: {error}>"

    def _diff_line(self, physical: int) -> list[str]:
        diffs: list[str] = []
        memory = self.fast.memory
        fast_stored = memory.stored[physical].tolist()
        fast_counts = memory.counts[physical].tolist()
        oracle_stored, oracle_counts = self.oracle.line_state(physical)
        if tuple(fast_stored) != oracle_stored:
            positions = [
                index
                for index, (a, b) in enumerate(zip(fast_stored, oracle_stored))
                if a != b
            ]
            diffs.append(f"line {physical} stored bits differ at cells {positions[:16]}")
        if tuple(fast_counts) != oracle_counts:
            positions = [
                index
                for index, (a, b) in enumerate(zip(fast_counts, oracle_counts))
                if a != b
            ]
            diffs.append(f"line {physical} wear counts differ at cells {positions[:16]}")

        fast_meta = self.fast.metadata[physical]
        fast_tuple = (
            fast_meta.start_pointer,
            fast_meta.encoding,
            fast_meta.sc,
            fast_meta.compressed,
            fast_meta.stored_size,
        )
        oracle_tuple = self.oracle.metadata_tuple(physical)
        if fast_tuple != oracle_tuple:
            diffs.append(
                f"line {physical} metadata (ptr, enc, sc, comp, size): "
                f"fast={fast_tuple!r} oracle={oracle_tuple!r}"
            )

        fast_repairs = {
            int(k): int(v) for k, v in self.fast.engine.repairs[physical].items()
        }
        if fast_repairs != self.oracle.repairs[physical]:
            diffs.append(
                f"line {physical} repairs: fast={fast_repairs!r} "
                f"oracle={self.oracle.repairs[physical]!r}"
            )
        return diffs

    def _diff_full_state(self) -> list[str]:
        diffs: list[str] = []
        for physical in range(self.oracle.n_physical):
            diffs.extend(self._diff_line(physical))
        # The maintained fault mask must agree with first principles.
        memory = self.fast.memory
        for physical in range(self.oracle.n_physical):
            fast_faults = np.flatnonzero(memory.faulty[physical]).tolist()
            oracle_faults = self.oracle.lines[physical].fault_positions()
            if fast_faults != oracle_faults:
                diffs.append(
                    f"line {physical} fault positions: fast={fast_faults!r} "
                    f"oracle={oracle_faults!r}"
                )
        fast_deaths = {
            int(k): int(v) for k, v in self.fast.death_fault_counts.items()
        }
        if fast_deaths != self.oracle.death_fault_counts:
            diffs.append(
                f"death_fault_counts: fast={fast_deaths!r} "
                f"oracle={self.oracle.death_fault_counts!r}"
            )
        return diffs

    def _fast_stats_dict(self) -> dict:
        stats = self.fast.stats
        out = {name: getattr(stats, name) for name in STAT_FIELDS}
        out["heuristic_steps"] = dict(stats.heuristic_steps)
        out["stored_writes"] = stats.stored_writes
        return out

    def _fast_wl_registers(self) -> dict:
        out: dict = {}
        start_gap = self.fast.start_gap
        gaps = getattr(start_gap, "_gaps", None)
        forward = getattr(start_gap, "_forward", None)
        if forward is not None:
            # WoLFRaM PAD backend: the whole permutation table is the
            # register state (plus the rotating partner pointer).
            out["start_gap"] = (
                "pad",
                tuple(forward),
                start_gap._partner,
                start_gap.write_count,
                start_gap.swaps,
            )
        elif gaps is not None:
            out["start_gap"] = tuple(
                (gap.start, gap.gap, gap.write_count, gap.gap_moves) for gap in gaps
            )
        else:
            out["start_gap"] = (
                start_gap.start,
                start_gap.gap,
                start_gap.write_count,
                start_gap.gap_moves,
            )
        intra = self.fast.intra_wl
        if intra is not None:
            out["intra_wl"] = (
                tuple(intra._counters),
                tuple(intra._offsets),
                intra.rotations,
            )
        remapper = self.fast.remapper
        if remapper is not None:
            out["freep"] = (
                tuple(remapper._free_spares),
                tuple(sorted(remapper._remap.items())),
                remapper.remaps_performed,
            )
        return out

    # -- repro recipes ---------------------------------------------------

    def _recipe(self, logical: int, data: bytes) -> dict:
        return {
            "config": dataclasses.asdict(self.config),
            "n_lines": self.n_lines,
            "n_banks": self.n_banks,
            "fault_mode": self.fault_mode.value,
            "endurance_mean": self.endurance_mean,
            "endurance_cov": self.endurance_cov,
            "seed": self.seed,
            "check_state_every": self.check_state_every,
            "write_index": self.write_index,
            "logical": logical,
            "payload": bytes(data).hex(),
            "ops": [[op_logical, op_data.hex()] for op_logical, op_data in self.ops],
        }


def controller_from_recipe(recipe: dict) -> ValidatingController:
    """Rebuild the validating pair a recipe was captured from."""
    config = SystemConfig(**recipe["config"])
    return ValidatingController(
        config,
        recipe["n_lines"],
        endurance_mean=recipe["endurance_mean"],
        endurance_cov=recipe["endurance_cov"],
        seed=recipe["seed"],
        n_banks=recipe["n_banks"],
        fault_mode=FaultMode(recipe["fault_mode"]),
        check_state_every=recipe.get("check_state_every", DEFAULT_CHECK_STATE_EVERY),
    )


def replay_recipe(recipe: dict) -> DivergenceError | None:
    """Re-run a recipe's write sequence; returns the divergence, or None.

    A ``None`` return means the recipe no longer reproduces (e.g. the
    underlying bug was fixed).
    """
    controller = controller_from_recipe(recipe)
    try:
        for logical, payload_hex in recipe["ops"]:
            controller.write(int(logical), bytes.fromhex(payload_hex))
        controller.verify_state()
    except DivergenceError as error:
        return error
    return None


def _hex(data: bytes | str | None) -> str:
    if data is None:
        return "None"
    if isinstance(data, str):  # a _guarded_read crash marker
        return data
    return data.hex()
