"""Write-energy-reducing line encoders: WIRE and restricted coset coding.

Both encoders are per-word XOR transforms chosen write-by-write to
minimize the *energy* of the differential write (SET and RESET pulses
priced separately, unlike Flip-N-Write's flip-count objective):

* :class:`WireEncoder` -- WIRE-style: every word may be stored direct
  or complemented, one flag bit per word, picked by energy-weighted
  cost against the currently stored cells.
* :class:`CosetEncoder` -- fine-grain *restricted* coset coding: each
  word is XORed with one of ``2**r`` coset masks, the ``r``-bit
  selector living in the slack bits word-level compression frees up.
  The restriction is the point: on an uncompressed write there is no
  slack, so the selector is forced to the identity coset -- only
  compressed writes can spend slack on energy reduction.

Every transform is an XOR with a fixed mask, so ``decode`` is the same
XOR again (an involution) and a word whose selector is *not* re-chosen
re-encodes to exactly its stored cells.  That involution property is
what lets the engine's window discipline survive encoding: bits outside
the compression window re-encode to their stored values bit-for-bit,
so the differential write's update mask stays valid (pinned by
``tests/energy/test_encoders.py``).

Selector/flag cells are modelled like the engine's 13-bit line
metadata: a reliable side array (no stuck-at faults), but their
*programming* energy is real -- flag-bit flips are counted separately
(``encoding_flag_set_flips`` / ``encoding_flag_reset_flips``) and
priced by :class:`repro.energy.model.EnergyModel` at the same per-cell
pulse costs as data cells.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..core.window import LINE_BITS, LINE_BYTES, window_mask
from ..pcm.device import PCMEnergy

#: Transform-name -> mask builder (word_bits -> 0/1 uint8 mask).
_TRANSFORMS = {
    "identity": lambda n: np.zeros(n, dtype=np.uint8),
    "invert": lambda n: np.ones(n, dtype=np.uint8),
    # Alternating masks (0xAAAA... / 0x5555...): the classic biased-coset
    # pair, cheap to generate in hardware and effective on the
    # run-of-identical-bytes patterns BDI-compressible data is full of.
    "alt10": lambda n: (np.arange(n, dtype=np.uint8) + 1) % 2,
    "alt01": lambda n: np.arange(n, dtype=np.uint8) % 2,
}


class EncodeOutcome(NamedTuple):
    """One ``encode`` call's result: the cell image plus flag accounting."""

    target: np.ndarray
    flag_set_flips: int
    flag_reset_flips: int
    encoded_words: int


class LineEncoder:
    """Per-word XOR-family encoder with per-line selector state.

    Subclasses fix the transform set and the restriction policy; this
    base owns the mechanics: mask tables, selector storage, the
    energy-weighted per-word choice, and the involution decode.
    """

    #: Registry name of the encoding family (``SystemConfig.encoding``).
    name = "xor"
    #: Whether non-identity selectors require a compressed write (the
    #: "restricted" in restricted coset coding).
    restricted = False

    def __init__(
        self,
        n_lines: int,
        word_bits: int = 32,
        transforms: tuple[str, ...] = ("identity", "invert"),
        energy: PCMEnergy | None = None,
    ) -> None:
        if n_lines < 1:
            raise ValueError("need at least one line")
        if word_bits <= 0 or LINE_BITS % word_bits:
            raise ValueError(
                f"word size must divide the {LINE_BITS}-bit line, "
                f"got {word_bits}"
            )
        if not transforms or transforms[0] != "identity":
            raise ValueError(
                "transform 0 must be 'identity' (the no-slack selector)"
            )
        unknown = [t for t in transforms if t not in _TRANSFORMS]
        if unknown:
            raise ValueError(
                f"unknown transforms {unknown}; choose from "
                f"{sorted(_TRANSFORMS)}"
            )
        self.word_bits = word_bits
        self.n_words = LINE_BITS // word_bits
        self.transforms = tuple(transforms)
        self.energy = energy or PCMEnergy()
        #: (n_transforms, word_bits) mask table, row t = transform t.
        self.masks = np.stack(
            [_TRANSFORMS[t](word_bits) for t in transforms]
        )
        #: Selector width in cells (1 transform -> 0 bits: pure identity
        #: encoders store nothing and flip nothing).
        self.flag_bits = (
            (len(transforms) - 1).bit_length() if len(transforms) > 1 else 0
        )
        #: (n_transforms, flag_bits) binary selector patterns, MSB first.
        self.flag_patterns = np.array(
            [
                [(t >> bit) & 1 for bit in range(self.flag_bits - 1, -1, -1)]
                for t in range(len(transforms))
            ],
            dtype=np.uint8,
        ).reshape(len(transforms), self.flag_bits)
        #: Per-line, per-word selector state (the flag/selector cells).
        self.flags = np.zeros((n_lines, self.n_words), dtype=np.uint8)

    # -- involution core -------------------------------------------------

    def decode(self, physical: int, stored: np.ndarray) -> np.ndarray:
        """Stored cell image -> logical bits (XOR is its own inverse)."""
        words = stored.reshape(self.n_words, self.word_bits)
        return (words ^ self.masks[self.flags[physical]]).reshape(-1)

    def encode(
        self,
        physical: int,
        stored: np.ndarray,
        logical: np.ndarray,
        start: int,
        size: int,
        compressed: bool,
    ) -> EncodeOutcome:
        """Logical line bits -> cell image, re-choosing in-window selectors.

        ``stored`` is the line's current cell image (the differential
        write's reference).  Only words *fully* inside the
        ``[start, start+size)`` byte window get a fresh selector (their
        cells are all writable); every other word keeps its current
        selector, so its encoded bits equal its stored bits wherever
        the logical bits are unchanged -- which is everywhere outside
        the window, keeping the differential write's update mask exact.
        """
        words = logical.reshape(self.n_words, self.word_bits)
        flags = self.flags[physical]
        if size == LINE_BYTES:
            chosen = np.arange(self.n_words)
        else:
            in_window = window_mask(start, size).reshape(
                self.n_words, self.word_bits
            )
            chosen = np.flatnonzero(in_window.all(axis=1))
        if chosen.size and len(self.transforms) > 1:
            if self.restricted and not compressed:
                # No compression slack -> no selector storage: the
                # re-written words fall back to the identity coset.
                new = np.zeros(chosen.size, dtype=np.uint8)
            else:
                stored_words = stored.reshape(
                    self.n_words, self.word_bits
                )[chosen]
                new = self._choose(
                    words[chosen], stored_words, flags[chosen]
                )
            old = flags[chosen]
            set_flips, reset_flips = self._flag_flips(old, new)
            flags[chosen] = new
            encoded_words = int(np.count_nonzero(new))
        else:
            set_flips = reset_flips = encoded_words = 0
        target = (words ^ self.masks[flags]).reshape(-1)
        return EncodeOutcome(target, set_flips, reset_flips, encoded_words)

    # -- selector choice -------------------------------------------------

    def _choose(
        self,
        logical_words: np.ndarray,
        stored_words: np.ndarray,
        old_flags: np.ndarray,
    ) -> np.ndarray:
        """Energy-minimizing transform per word, deterministic ties.

        Cost of transform ``t`` for a word = SET energy x (stored 0
        cells driven to 1) + RESET energy x (stored 1 cells driven
        to 0), for data and selector cells alike.  ``np.argmin``
        returns the first minimum, so ties break toward the lowest
        selector (identity first) -- the property the identity-
        parameter bit-identity tests rely on.
        """
        # (words, transforms, word_bits) candidate cell images.
        candidates = logical_words[:, None, :] ^ self.masks[None, :, :]
        stored = stored_words[:, None, :]
        sets = ((candidates == 1) & (stored == 0)).sum(axis=2)
        resets = ((candidates == 0) & (stored == 1)).sum(axis=2)
        cost = (
            sets * self.energy.set_pj_per_bit
            + resets * self.energy.reset_pj_per_bit
        )
        if self.flag_bits:
            old_patterns = self.flag_patterns[old_flags]
            flag_sets = (
                (self.flag_patterns[None, :, :] == 1)
                & (old_patterns[:, None, :] == 0)
            ).sum(axis=2)
            flag_resets = (
                (self.flag_patterns[None, :, :] == 0)
                & (old_patterns[:, None, :] == 1)
            ).sum(axis=2)
            cost = cost + (
                flag_sets * self.energy.set_pj_per_bit
                + flag_resets * self.energy.reset_pj_per_bit
            )
        return np.argmin(cost, axis=1).astype(np.uint8)

    def _flag_flips(
        self, old: np.ndarray, new: np.ndarray
    ) -> tuple[int, int]:
        """(SET, RESET) cell flips of moving selector cells old -> new."""
        if not self.flag_bits:
            return 0, 0
        old_bits = self.flag_patterns[old]
        new_bits = self.flag_patterns[new]
        set_flips = int(((new_bits == 1) & (old_bits == 0)).sum())
        reset_flips = int(((new_bits == 0) & (old_bits == 1)).sum())
        return set_flips, reset_flips

    # -- reporting -------------------------------------------------------

    @property
    def overhead_bits_per_line(self) -> int:
        """Selector storage per 512-bit line (0 for pure identity)."""
        return self.n_words * self.flag_bits

    def describe(self) -> str:
        masks = "/".join(self.transforms)
        slack = ", selectors in compression slack" if self.restricted else ""
        return (
            f"{self.name}: {self.word_bits}-bit words, cosets {masks} "
            f"({self.overhead_bits_per_line}b/line){slack}"
        )


class WireEncoder(LineEncoder):
    """WIRE-style energy-weighted inversion coding.

    Flip-N-Write's circuit with WIRE's objective: each 32-bit word is
    stored direct or complemented (one flag cell per word), chosen to
    minimize SET/RESET-weighted programming energy instead of raw flip
    count -- with asymmetric pulse costs the cheapest image is not the
    fewest-flips image.  Unrestricted: the flag cell is dedicated, so
    uncompressed writes encode too.

    ``transforms=("identity",)`` degenerates to a pure pass-through
    (zero flag bits, zero extra flips) -- the identity-parameter safety
    rail the bit-identity tests pin.
    """

    name = "wire"
    restricted = False

    def __init__(
        self,
        n_lines: int,
        word_bits: int = 32,
        transforms: tuple[str, ...] = ("identity", "invert"),
        energy: PCMEnergy | None = None,
    ) -> None:
        super().__init__(n_lines, word_bits, transforms, energy)


class CosetEncoder(LineEncoder):
    """Fine-grain restricted coset coding through word-level compression.

    Each word is XORed with one of four coset masks (identity, invert,
    0xAA.., 0x55..; 2-bit selector per word).  *Restricted*: selectors
    are stored in the slack bytes compression frees inside the line, so
    a write stored uncompressed has nowhere to put them and falls back
    to the identity coset for every word it touches.  Compressible data
    thus gets the full 4-coset energy reduction while incompressible
    data pays no storage overhead -- the collaborative-compression
    trade the paper's window machinery already exploits for lifetime.
    """

    name = "coset"
    restricted = True

    def __init__(
        self,
        n_lines: int,
        word_bits: int = 32,
        transforms: tuple[str, ...] = ("identity", "invert", "alt10", "alt01"),
        energy: PCMEnergy | None = None,
    ) -> None:
        super().__init__(n_lines, word_bits, transforms, energy)


#: ``SystemConfig.encoding`` values accepted by :func:`make_encoder`.
ENCODING_CHOICES = ("none", "wire", "coset")


def make_encoder(
    encoding: str, n_lines: int, energy: PCMEnergy | None = None
) -> LineEncoder | None:
    """Build the configured line encoder (None when encoding is off)."""
    if encoding == "none":
        return None
    if encoding == "wire":
        return WireEncoder(n_lines, energy=energy)
    if encoding == "coset":
        return CosetEncoder(n_lines, energy=energy)
    raise ValueError(
        f"unknown encoding {encoding!r}; choose from {ENCODING_CHOICES}"
    )
