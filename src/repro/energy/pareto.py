"""Energy x lifetime x throughput Pareto sweep over registered systems.

One sweep runs every requested system on every workload to the failure
criterion, prices its counters through :class:`~repro.energy.model.
EnergyModel`, attaches the Section V-B read-throughput model, and marks
the per-workload Pareto frontier: the systems no other system beats on
energy (lower), lifetime (higher), *and* throughput (higher) at once.
``benchmarks/test_ablation_energy.py`` writes the result to
``BENCH_energy.json``; ``python -m repro energy`` prints it.
"""

from __future__ import annotations

from .model import EnergyModel

#: Read-path decode latency of the XOR-family encoders, CPU cycles.
#: One XOR against the selector-expanded mask -- the same order as
#: BDI's 1-cycle decompressor; charged only to encoded systems.
ENCODING_DECODE_CYCLES = 1

#: Default workload trio: the compressibility extremes the paper's
#: energy discussion leans on (milc near-uniform compressible, gcc
#: mixed, lbm barely compressible).
DEFAULT_WORKLOADS = ("milc", "gcc", "lbm")


def run_energy_sweep(
    workloads: tuple[str, ...] = DEFAULT_WORKLOADS,
    systems: tuple[str, ...] | None = None,
    n_lines: int = 128,
    endurance_mean: float = 60.0,
    max_writes: int = 2_000_000,
    seed: int = 0,
    mix_samples: int = 500,
    model: EnergyModel | None = None,
    perf: PerformanceModel | None = None,
) -> list[dict]:
    """Run the sweep; returns one JSON-ready point dict per (system,
    workload) with ``pareto=True`` on each workload's frontier.

    ``systems=None`` sweeps every registered system.  Points are
    comparable *within* a workload (the frontier is marked per
    workload); cross-workload comparisons only make sense per metric.
    """
    # Deferred imports: the controller imports this package while
    # building encoders, so pulling the simulator stack in at module
    # scope would cycle through repro.core.
    from ..engine.registry import get_system, system_names
    from ..lifetime.systems import build_simulator
    from ..perf.overhead import PerformanceModel, ReadMix, measure_read_mix
    from ..traces import get_profile

    names = tuple(systems) if systems else system_names()
    model = model or EnergyModel()
    perf = perf or PerformanceModel()
    points: list[dict] = []
    for workload in workloads:
        mix = measure_read_mix(
            get_profile(workload), samples=mix_samples, seed=seed
        )
        group: list[dict] = []
        for name in names:
            spec = get_system(name)
            config = spec.config
            simulator = build_simulator(
                name, workload,
                n_lines=n_lines,
                endurance_mean=endurance_mean,
                seed=seed,
            )
            result = simulator.run(max_writes=max_writes)
            breakdown = model.breakdown(
                result, scheme=config.correction_scheme
            )
            read_ns = perf.average_read_latency_ns(
                mix if config.use_compression else ReadMix(1.0, 0.0, 0.0)
            )
            encoding = getattr(config, "encoding", "none")
            if encoding != "none":
                read_ns += ENCODING_DECODE_CYCLES * perf.latency.cpu_cycle_ns
            group.append({
                "system": name,
                "workload": workload,
                "encoding": encoding,
                "correction_scheme": config.correction_scheme,
                "writes_issued": result.writes_issued,
                "failed": result.failed,
                "flips_per_write": result.flips_per_write,
                "energy": breakdown.to_dict(),
                "energy_per_write_pj": breakdown.per_write_pj,
                "read_latency_ns": read_ns,
                # Modeled steady-state read throughput, M reads/s.
                "throughput_mreads_per_s": 1e3 / read_ns,
                "pareto": False,
            })
        for index in pareto_frontier(group):
            group[index]["pareto"] = True
        points.extend(group)
    return points


def pareto_frontier(
    points: list[dict],
    minimize: tuple[str, ...] = ("energy_per_write_pj",),
    maximize: tuple[str, ...] = ("writes_issued", "throughput_mreads_per_s"),
) -> list[int]:
    """Indices of the non-dominated points.

    Point ``a`` dominates ``b`` when it is no worse on every objective
    and strictly better on at least one.  Duplicate objective vectors
    all survive (neither strictly dominates the other).
    """

    def objectives(point: dict) -> tuple[float, ...]:
        # Negate the maximized metrics so dominance is uniformly
        # "<= everywhere, < somewhere".
        return tuple(point[key] for key in minimize) + tuple(
            -point[key] for key in maximize
        )

    vectors = [objectives(point) for point in points]
    frontier = []
    for i, a in enumerate(vectors):
        dominated = any(
            all(x <= y for x, y in zip(b, a)) and b != a
            for j, b in enumerate(vectors)
            if j != i
        )
        if not dominated:
            frontier.append(i)
    return frontier
