"""Energy-aware encoding and per-operation write-energy accounting.

Three pieces (ROADMAP: energy-aware encodings / Pareto comparison):

* :mod:`repro.energy.model` -- prices the engine's operation counters
  (SET/RESET cell flips, encoding flag flips, correction-scheme gate
  activity) into picojoules.
* :mod:`repro.energy.encoders` -- the WIRE and restricted-coset line
  encoders the engine's :class:`~repro.engine.stages.EncodingStage`
  drives (``SystemConfig.encoding``).
* :mod:`repro.energy.pareto` -- the energy x lifetime x throughput
  sweep behind ``BENCH_energy.json`` and ``python -m repro energy``.
"""

from .encoders import (
    ENCODING_CHOICES,
    CosetEncoder,
    EncodeOutcome,
    LineEncoder,
    WireEncoder,
    make_encoder,
)
from .model import (
    CORRECTION_ENERGY,
    CorrectionEnergy,
    EnergyBreakdown,
    EnergyModel,
    correction_energy,
)
from .pareto import pareto_frontier, run_energy_sweep

__all__ = [
    "ENCODING_CHOICES",
    "CORRECTION_ENERGY",
    "CorrectionEnergy",
    "CosetEncoder",
    "EncodeOutcome",
    "EnergyBreakdown",
    "EnergyModel",
    "LineEncoder",
    "WireEncoder",
    "correction_energy",
    "make_encoder",
    "pareto_frontier",
    "run_energy_sweep",
]
