"""Per-operation write-path energy model (array cells + ECC logic).

The lifetime simulator has always counted *what* was programmed
(``set_flips`` / ``reset_flips``); this module prices those counters --
plus the encoding flag cells and the correction scheme's logic -- into
picojoules, so systems can be compared on an energy x lifetime x
throughput Pareto frontier instead of lifetime alone.

Three cost groups:

* **Array programming** -- per-cell SET/RESET pulse energies from
  :class:`~repro.pcm.device.PCMEnergy` (Table II-era NVSim numbers).
  SET pulses are long/low-current, RESET short/high-current.
* **Encoding flags** -- WIRE inversion flags and coset selectors are
  extra PCM cells programmed alongside the data; their flips are
  counted separately (``encoding_flag_set_flips`` /
  ``encoding_flag_reset_flips`` in
  :class:`~repro.engine.context.ControllerStats`) and priced at the
  same per-cell pulse costs.
* **Correction logic** -- gate-level accounting in the spirit of the
  Error-Code-Correction simulator's ``gate_energy.hpp``: each scheme
  gets a per-write *check* cost (syndrome/feasibility evaluation) and a
  per-commit *repair-state* cost (pointer/flag register updates),
  derived from rough gate counts priced at a per-switch CMOS energy.

Every cost is an explicit dataclass field, so sensitivity studies can
swap any constant without touching the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pcm.device import PCMEnergy

#: Energy of one CMOS gate switching event, picojoules (~1 fJ at a
#: 22 nm-class node; only relative magnitudes matter downstream).
GATE_SWITCH_PJ = 0.001

#: Energy of one flip-flop / register-bit update, picojoules.
REGISTER_BIT_PJ = 0.002

#: Width of one WoLFRaM programmable-address-decoder entry, bits.  A
#: PAD entry holds a physical row index; 16 bits covers any bank this
#: repo models (and matches the register granularity real decoders
#: provision).  Each entry rewrite -- two per wear-triggered swap, one
#: plus collapsed chain links per fault remap
#: (``pad_table_writes`` in ControllerStats) -- is priced as
#: ``PAD_ENTRY_BITS`` register-bit updates.
PAD_ENTRY_BITS = 16


@dataclass(frozen=True)
class CorrectionEnergy:
    """Gate-level energy of one correction scheme's write-path logic.

    Attributes:
        name: Scheme name (matches ``repro.correction.make_scheme``).
        check_gates: Gate switches per write for the feasibility /
            syndrome check (runs on *every* stored write).
        commit_register_bits: Register bits rewritten when the repair
            state is refreshed (runs only on writes that land on a line
            with stuck cells -- ``repair_commits`` in the stats).
    """

    name: str
    check_gates: int
    commit_register_bits: int

    def check_pj(self, gate_pj: float = GATE_SWITCH_PJ) -> float:
        """Energy of one per-write feasibility/syndrome evaluation."""
        return self.check_gates * gate_pj

    def commit_pj(self, register_pj: float = REGISTER_BIT_PJ) -> float:
        """Energy of one repair-state refresh."""
        return self.commit_register_bits * register_pj


#: Gate-count table for the four supported schemes.  Counts are rough
#: structural estimates (documented per scheme) -- the point is that
#: the *relative* logic cost rides the Pareto sweep, not that any one
#: number is synthesis-exact.
CORRECTION_ENERGY: dict[str, CorrectionEnergy] = {
    # ECP-6: six 9-bit fault pointers; the check compares each pointer
    # against the window's fault positions (6 x ~18 XOR/AND) plus a
    # small priority tree; a commit rewrites up to 6 x (9+1)-bit
    # pointer entries.
    "ecp6": CorrectionEnergy("ecp6", check_gates=140, commit_register_bits=60),
    # SAFER-32: 32 groups from a 5-level bit-index partition; the check
    # folds the 512-bit fault mask through per-group XOR trees
    # (~512/2 gates) plus group-state compares; a commit rewrites the
    # 32 group-inversion flags and the 5x5 partition selectors.
    "safer32": CorrectionEnergy("safer32", check_gates=300, commit_register_bits=57),
    # Aegis 17x31: 2-D (17 x 31) grid membership -- the check maps the
    # window's faults onto grid lines (mod-17/mod-31 index arithmetic,
    # ~20 gates per fault against an 8-fault design point) plus the
    # per-axis conflict scan; a commit rewrites one grid-line pointer
    # pair per repaired fault (design-point 17 + 31 selector bits).
    "aegis17x31": CorrectionEnergy("aegis17x31", check_gates=260, commit_register_bits=48),
    # SECDED (72,64): eight parity bits, each an XOR tree over ~27 data
    # bits (~208 XORs to encode) plus the 72-bit syndrome compare on
    # check; a commit rewrites the 8 stored check bits.
    "secded": CorrectionEnergy("secded", check_gates=280, commit_register_bits=8),
}


def correction_energy(scheme: str) -> CorrectionEnergy:
    """The gate-level cost entry for a scheme name.

    Unknown schemes fall back to the ECP-6 entry (the paper's default
    substrate) rather than raising -- the energy model must be able to
    price stats from configs it has never seen.
    """
    return CORRECTION_ENERGY.get(scheme, CORRECTION_ENERGY["ecp6"])


@dataclass(frozen=True)
class EnergyBreakdown:
    """One run's write-path energy, split by cost group (picojoules)."""

    array_set_pj: float
    array_reset_pj: float
    flag_set_pj: float
    flag_reset_pj: float
    correction_check_pj: float
    correction_commit_pj: float
    #: Demand writes the energy was spent over (0 when unknown).
    writes: int = 0
    #: WoLFRaM PAD decoder-table rewrite energy (0.0 on the Start-Gap
    #: backend and for records predating the field).
    pad_table_pj: float = 0.0

    @property
    def array_pj(self) -> float:
        """Data-cell programming energy."""
        return self.array_set_pj + self.array_reset_pj

    @property
    def flag_pj(self) -> float:
        """Encoding flag/selector cell programming energy."""
        return self.flag_set_pj + self.flag_reset_pj

    @property
    def correction_pj(self) -> float:
        """Correction-scheme logic energy."""
        return self.correction_check_pj + self.correction_commit_pj

    @property
    def total_pj(self) -> float:
        """Total write-path energy."""
        return self.array_pj + self.flag_pj + self.correction_pj + self.pad_table_pj

    @property
    def per_write_pj(self) -> float:
        """Mean energy per demand write (0.0 when writes is unknown)."""
        return self.total_pj / self.writes if self.writes else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (benchmark records, telemetry)."""
        return {
            "array_set_pj": self.array_set_pj,
            "array_reset_pj": self.array_reset_pj,
            "flag_set_pj": self.flag_set_pj,
            "flag_reset_pj": self.flag_reset_pj,
            "correction_check_pj": self.correction_check_pj,
            "correction_commit_pj": self.correction_commit_pj,
            "pad_table_pj": self.pad_table_pj,
            "total_pj": self.total_pj,
            "writes": self.writes,
            "per_write_pj": self.per_write_pj,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Prices write-path operation counters into picojoules.

    The counter source is duck-typed: anything exposing the
    :class:`~repro.engine.context.ControllerStats` counter names works,
    including :class:`~repro.lifetime.results.LifetimeResult` (missing
    attributes read as 0, so pre-energy records price cleanly).
    """

    cell: PCMEnergy = field(default_factory=PCMEnergy)
    gate_pj: float = GATE_SWITCH_PJ
    register_pj: float = REGISTER_BIT_PJ

    def breakdown(
        self,
        counters,
        scheme: str = "ecp6",
        writes: int | None = None,
    ) -> EnergyBreakdown:
        """Price one run's counters under ``scheme``'s logic costs.

        ``writes`` overrides the per-write denominator (defaults to the
        counters' ``demand_writes`` / ``writes_issued``).
        """
        get = lambda name: getattr(counters, name, 0)  # noqa: E731
        correction = correction_energy(scheme)
        stored = get("stored_writes")
        if writes is None:
            writes = get("demand_writes") or get("writes_issued")
        return EnergyBreakdown(
            array_set_pj=get("set_flips") * self.cell.set_pj_per_bit,
            array_reset_pj=get("reset_flips") * self.cell.reset_pj_per_bit,
            flag_set_pj=get("encoding_flag_set_flips") * self.cell.set_pj_per_bit,
            flag_reset_pj=(
                get("encoding_flag_reset_flips") * self.cell.reset_pj_per_bit
            ),
            correction_check_pj=stored * correction.check_pj(self.gate_pj),
            correction_commit_pj=(
                get("repair_commits") * correction.commit_pj(self.register_pj)
            ),
            writes=int(writes or 0),
            pad_table_pj=(
                get("pad_table_writes") * PAD_ENTRY_BITS * self.register_pj
            ),
        )
