"""Fleet-scale request streams and the ``run_workload`` driver.

The lifetime simulator replays SPEC-calibrated *single-DIMM* streams;
the memory service simulates a datacenter tier, whose traffic has a
different shape.  This module provides four address-pattern generators
over the global (sharded) address space, all reusing the calibrated
per-line value model of :class:`repro.traces.SyntheticWorkload` (so
payload compressibility statistics stay faithful to the paper's
analysis) while owning their own address streams:

* ``monotonic`` -- a sequential sweep over the whole space: the
  best-case even-wear pattern (log-structured flush, bulk load).
* ``high-reuse`` -- a small hot set takes nearly all writes: the
  worst-case wear-concentration pattern (in-place counters, locks).
* ``memcached`` -- key-value SET traffic: Zipf-popular keys hashed over
  the space, value payloads from a compressible mixed profile; the
  canonical datacenter cache shape (skewed, scattered, no locality).
* ``nginx`` -- web-server writes: an append-style access-log region
  cycling sequentially plus Zipf-popular cached objects over the rest;
  a two-population mix of streaming and reuse.

:func:`run_workload` drives any of them through a service front end --
the in-process :class:`~repro.service.sharded.ShardedController` or
the multi-process :class:`~repro.service.service.MemoryService`, which
share the ``write_batch``/``read`` surface -- in fixed-size batches.
"""

from __future__ import annotations

import numpy as np

from ..traces import SyntheticWorkload, WriteBack
from ..traces.workloads import get_profile

#: Recognized service workload profiles.
SERVICE_WORKLOADS = ("monotonic", "high-reuse", "memcached", "nginx")

#: Value models behind each stream (calibrated SPEC profiles): mcf's
#: mid-size mixed-compressibility lines stand in for structured
#: key-value payloads, gcc's volatile wide-spectrum lines for web
#: objects and log text.
_VALUE_PROFILES = {
    "monotonic": "mcf",
    "high-reuse": "mcf",
    "memcached": "mcf",
    "nginx": "gcc",
}


class RequestStream:
    """Base class: a deterministic global-address write-request stream."""

    def __init__(self, name: str, total_lines: int, seed: int = 0) -> None:
        if total_lines < 1:
            raise ValueError("need at least one line")
        self.name = name
        self.total_lines = total_lines
        self._rng = np.random.default_rng(seed)
        self._values = SyntheticWorkload(
            get_profile(_VALUE_PROFILES[name]), total_lines, rng=self._rng
        )

    def next_request(self) -> WriteBack:
        """The next write request (global line + 64-byte payload)."""
        return self._values.write_to(self._next_line())

    def iter_requests(self, count: int):
        """Yield ``count`` consecutive requests."""
        for _ in range(count):
            yield self.next_request()

    def _next_line(self) -> int:
        raise NotImplementedError


class MonotonicStream(RequestStream):
    """Sequential sweep over the whole space, wrapping around."""

    def __init__(self, total_lines: int, seed: int = 0) -> None:
        super().__init__("monotonic", total_lines, seed)
        self._cursor = 0

    def _next_line(self) -> int:
        line = self._cursor
        self._cursor = (self._cursor + 1) % self.total_lines
        return line


class HighReuseStream(RequestStream):
    """A small hot set absorbs nearly all writes.

    ``hot_fraction`` of the lines (scattered by a seeded permutation)
    receive ``hot_share`` of the writes uniformly; the rest of the
    stream scatters uniformly over the cold lines.
    """

    def __init__(
        self,
        total_lines: int,
        seed: int = 0,
        hot_fraction: float = 0.1,
        hot_share: float = 0.9,
    ) -> None:
        super().__init__("high-reuse", total_lines, seed)
        if not 0 < hot_fraction < 1 or not 0 < hot_share < 1:
            raise ValueError("hot fraction/share must be in (0, 1)")
        permutation = self._rng.permutation(total_lines)
        hot = max(1, int(total_lines * hot_fraction))
        self._hot = permutation[:hot]
        self._cold = permutation[hot:]
        self.hot_share = hot_share

    def _next_line(self) -> int:
        pool = (
            self._hot
            if (self._rng.random() < self.hot_share or not len(self._cold))
            else self._cold
        )
        return int(pool[self._rng.integers(0, len(pool))])


class MemcachedStream(RequestStream):
    """Key-value SET traffic: Zipf-popular keys hashed over the space.

    The key space is ``keys_per_line`` times the line count; each key's
    popularity follows a Zipf(``alpha``) law and its storage line is a
    seeded hash of the key, so hot keys scatter uniformly across shards
    -- the standard consistent-hashing deployment.
    """

    def __init__(
        self,
        total_lines: int,
        seed: int = 0,
        alpha: float = 1.0,
        keys_per_line: int = 4,
    ) -> None:
        super().__init__("memcached", total_lines, seed)
        keys = total_lines * keys_per_line
        ranks = np.arange(1, keys + 1, dtype=float)
        probabilities = ranks ** (-alpha)
        probabilities /= probabilities.sum()
        self._cumulative = np.cumsum(probabilities)
        # key -> line via a seeded random map (hash-ring stand-in).
        self._key_lines = self._rng.integers(0, total_lines, size=keys)
        self._buffer: list[int] = []

    def _next_line(self) -> int:
        if not self._buffer:
            draws = np.searchsorted(self._cumulative, self._rng.random(1024))
            draws = np.minimum(draws, len(self._key_lines) - 1)
            self._buffer = self._key_lines[draws].tolist()
        return int(self._buffer.pop())


class NginxStream(RequestStream):
    """Web-server writes: log appends plus Zipf-popular cached objects.

    ``log_fraction`` of the space is an access-log region written
    strictly sequentially (wrapping); each request is a log append with
    probability ``log_share``, otherwise a cache-object write whose
    address follows a Zipf law over the remaining lines.
    """

    def __init__(
        self,
        total_lines: int,
        seed: int = 0,
        log_fraction: float = 0.125,
        log_share: float = 0.4,
        alpha: float = 0.9,
    ) -> None:
        super().__init__("nginx", total_lines, seed)
        if not 0 < log_fraction < 1 or not 0 <= log_share <= 1:
            raise ValueError("log fraction must be in (0,1), share in [0,1]")
        log_lines = max(1, int(total_lines * log_fraction))
        permutation = self._rng.permutation(total_lines)
        self._log = permutation[:log_lines]
        self._objects = permutation[log_lines:]
        if not len(self._objects):
            raise ValueError("log region cannot cover the whole space")
        self.log_share = log_share
        self._log_cursor = 0
        ranks = np.arange(1, len(self._objects) + 1, dtype=float)
        probabilities = ranks ** (-alpha)
        probabilities /= probabilities.sum()
        self._cumulative = np.cumsum(probabilities)
        self._buffer: list[int] = []

    def _next_line(self) -> int:
        if self._rng.random() < self.log_share:
            line = int(self._log[self._log_cursor])
            self._log_cursor = (self._log_cursor + 1) % len(self._log)
            return line
        if not self._buffer:
            draws = np.searchsorted(self._cumulative, self._rng.random(1024))
            draws = np.minimum(draws, len(self._objects) - 1)
            self._buffer = self._objects[draws].tolist()
        return int(self._buffer.pop())


_STREAMS = {
    "monotonic": MonotonicStream,
    "high-reuse": HighReuseStream,
    "memcached": MemcachedStream,
    "nginx": NginxStream,
}


def make_stream(name: str, total_lines: int, seed: int = 0, **kwargs) -> RequestStream:
    """Build a service request stream by profile name."""
    try:
        cls = _STREAMS[name]
    except KeyError:
        raise ValueError(
            f"unknown service workload {name!r}; "
            f"choose from {SERVICE_WORKLOADS}"
        ) from None
    return cls(total_lines, seed, **kwargs)


def run_workload(
    service,
    stream: RequestStream | str,
    requests: int,
    batch: int = 64,
    seed: int = 0,
):
    """Drive ``requests`` writes from a stream through a service front end.

    ``service`` is anything with the service surface
    (``submit``/``write_batch`` plus ``total_lines``) -- the
    multi-process :class:`~repro.service.service.MemoryService` or the
    in-process :class:`~repro.service.sharded.ShardedController`.  A
    stream given by name is built over the service's address space with
    ``seed``.  Returns the stream (so callers can inspect or continue
    it); fleet statistics come from the service itself.
    """
    if requests < 0:
        raise ValueError("request count cannot be negative")
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if isinstance(stream, str):
        stream = make_stream(stream, service.total_lines, seed)
    elif stream.total_lines != service.total_lines:
        raise ValueError(
            f"stream addresses {stream.total_lines} lines but the service "
            f"has {service.total_lines}"
        )
    submit = getattr(service, "submit", None) or service.write_batch
    remaining = requests
    while remaining > 0:
        size = min(batch, remaining)
        submit([
            (request.line, request.data)
            for request in stream.iter_requests(size)
        ])
        remaining -= size
    return stream
