"""In-process sharded fleet: K range-aware controllers behind one map.

:class:`ShardedController` is the reference semantics of the memory
service: it partitions the global logical address space with a
:class:`~repro.engine.address_space.ShardMap` and runs one complete,
unmodified :class:`~repro.core.CompressedPCMController` per shard, each
owning its contiguous slice.  The multi-process
:class:`~repro.service.service.MemoryService` is bit-identical to this
class by construction (same routing, same per-shard controllers, same
seeds) -- tests compare the two directly -- and this class in turn is
bit-identical to K *independent* single-bank controllers each replaying
its shard's sub-stream, because sharding is pure routing plus address
translation (see :mod:`repro.engine.address_space`).

With ``shards=1`` the single controller gets the base seed unchanged
and the whole space as its range, so a 1-shard fleet reproduces the
monolithic controller -- and the existing golden-trace digests --
bit for bit.
"""

from __future__ import annotations

import numpy as np

from ..core.config import SystemConfig
from ..core.controller import CompressedPCMController, WriteResult
from ..engine.address_space import ShardMap
from ..engine.context import ControllerStats
from ..pcm import EnduranceModel, FaultMode
from ..tier import HybridController


class ShardedController:
    """K range-aware controllers serving one global address space."""

    def __init__(
        self,
        config: SystemConfig,
        total_lines: int,
        shards: int = 1,
        endurance_mean: float = 100.0,
        endurance_cov: float = 0.15,
        seed: int = 0,
        n_banks: int = 8,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        cell_type: str = "slc",
        tier_lines: int = 0,
    ) -> None:
        self.config = config
        self.shard_map = ShardMap(total_lines, shards)
        self.total_lines = total_lines
        model = EnduranceModel(mean=endurance_mean, cov=endurance_cov)
        self.controllers = [
            CompressedPCMController(
                config=config,
                n_lines=len(shard_range),
                endurance_model=model,
                rng=np.random.default_rng(shard_seed),
                n_banks=n_banks,
                fault_mode=fault_mode,
                cell_type=cell_type,
                address_range=shard_range,
            )
            for shard_range, shard_seed in zip(
                self.shard_map.ranges, self.shard_map.shard_seeds(seed)
            )
        ]
        if tier_lines:
            # Per-shard DRAM front tiers (the fleet shape a real
            # deployment runs): each shard's tier sees only its own
            # sub-stream, so fleet bit-identity to independent tiered
            # controllers is preserved.  0 keeps the bare fleet.
            self.controllers = [
                HybridController(controller, tier_lines)
                for controller in self.controllers
            ]

    @property
    def shards(self) -> int:
        """Number of shards in the fleet."""
        return len(self.controllers)

    # -- request routing -------------------------------------------------

    def write(self, line: int, data: bytes) -> WriteResult:
        """Route one global-line demand write to its owning shard."""
        return self.controllers[self.shard_map.shard_of(line)].write(line, data)

    def write_batch(self, requests) -> list[WriteResult]:
        """Route a batch of ``(line, data)`` requests by shard.

        Requests are grouped per shard preserving stream order (shards
        are independent address spaces, so only the within-shard order
        matters for bit-identity) and each group flows through the
        shard's batched write engine; results come back in request
        order.
        """
        requests = list(requests)
        buckets: list[list] = [[] for _ in self.controllers]
        slots: list[list[int]] = [[] for _ in self.controllers]
        for position, (line, data) in enumerate(requests):
            shard = self.shard_map.shard_of(line)
            buckets[shard].append((line, data))
            slots[shard].append(position)
        results: list[WriteResult | None] = [None] * len(requests)
        for controller, bucket, positions in zip(
            self.controllers, buckets, slots
        ):
            if not bucket:
                continue
            for position, result in zip(
                positions, controller.write_batch(bucket)
            ):
                results[position] = result
        return results

    def read(self, line: int) -> bytes | None:
        """Read one global line back from its owning shard."""
        return self.controllers[self.shard_map.shard_of(line)].read(line)

    def flush_tiers(self) -> int:
        """Flush every shard's DRAM tier to PCM; returns lines flushed.

        A no-op (returning 0) on a bare fleet, so callers can always
        call it before comparing PCM-resident state.
        """
        return sum(
            controller.flush()
            for controller in self.controllers
            if isinstance(controller, HybridController)
        )

    # -- fleet views -----------------------------------------------------

    @property
    def stats(self) -> ControllerStats:
        """The exact fleet aggregate of every shard's counters."""
        return ControllerStats.merge_all(
            controller.stats for controller in self.controllers
        )

    def shard_stats(self) -> list[ControllerStats]:
        """Each shard's own counters, in shard order."""
        return [controller.stats for controller in self.controllers]

    @property
    def dead_fraction(self) -> float:
        """Fleet-wide dead blocks over fleet-wide nominal capacity."""
        dead = sum(c.engine.dead_count for c in self.controllers)
        capacity = sum(c.engine.capacity_lines for c in self.controllers)
        return dead / capacity
