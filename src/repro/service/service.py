"""Multi-process PCM memory service: sharded banks behind one front door.

:class:`MemoryService` runs one worker process per shard, each hosting
a complete range-aware :class:`~repro.core.CompressedPCMController`
over its slice of the global address space.  The parent routes an
incoming request stream by :class:`~repro.engine.address_space.ShardMap`,
fans per-shard batches out over request queues, and aggregates the
workers' acknowledgements into one fleet view.

Telemetry mirrors the lifetime runner's JSONL conventions
(:mod:`repro.lifetime.telemetry`): each worker appends request-count
driven ``shard_heartbeat`` events to ``shard-<i>/events.jsonl`` under
the telemetry directory, and the parent appends ``fleet_heartbeat``
events -- exact sums of the latest per-shard acknowledgements -- to
``fleet.jsonl``.

Fault tolerance reuses the sweep runner's quarantine discipline
(:func:`repro.engine.sweep.quarantine_run_dir`): when a shard worker
dies mid-run (crash or SIGTERM), its telemetry directory is quarantined
into ``attempt-<N>/``, a fresh worker is spawned from the same spec
(same seed, so the same endurance draws), and the shard's complete
routed request history is re-fed.  Because every component is
deterministic, the recovered shard's state is *bit-identical* to one
that never died -- recovery is recomputation, not approximation.  The
retry budget bounds how many deaths per shard are absorbed before
:class:`ServiceError` is raised.

Workers call :func:`repro.core.window.clear_window_caches` on teardown
-- the same lifecycle hole PR 3 closed for sweep workers -- so shard
restarts within one service (and services within one long-lived
process) never accumulate stale placement caches.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import queue
import time
from dataclasses import asdict, dataclass, field

from ..core.config import SystemConfig
from ..engine.address_space import ShardMap, shard_seeds
from ..engine.context import ControllerStats
from ..engine.sweep import quarantine_run_dir
from ..lifetime.telemetry import TELEMETRY_VERSION
from ..pcm import FaultMode

#: Default requests between per-shard heartbeat events.
DEFAULT_SHARD_HEARTBEAT = 1_000

#: Seconds the parent waits on a reply before re-checking liveness.
_POLL_SECONDS = 0.25

#: Seconds without any reply before the parent declares a worker hung.
DEFAULT_WORKER_TIMEOUT = 120.0


class ServiceError(RuntimeError):
    """A shard kept failing after its retry budget was exhausted."""


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to build its shard (fully pickleable)."""

    index: int
    config: SystemConfig
    start: int
    stop: int
    endurance_mean: float
    endurance_cov: float
    seed: int
    n_banks: int
    fault_mode: FaultMode
    cell_type: str
    telemetry_dir: str | None
    heartbeat_interval: int
    #: Per-shard DRAM front tier capacity (:mod:`repro.tier`); 0 runs
    #: the bare controller.  Defaulted so specs pickled before the
    #: hybrid tier existed still rebuild.
    tier_lines: int = 0


@dataclass(frozen=True)
class ServiceResult:
    """Final fleet view of one service run."""

    shards: int
    total_lines: int
    requests_routed: int
    recoveries: int
    dead_fraction: float
    stats: ControllerStats
    shard_stats: list[ControllerStats] = field(default_factory=list)
    shard_writes: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form (golden comparisons, CLI output)."""
        return {
            "shards": self.shards,
            "total_lines": self.total_lines,
            "requests_routed": self.requests_routed,
            "recoveries": self.recoveries,
            "dead_fraction": self.dead_fraction,
            "stats": _stats_dict(self.stats),
            "shard_stats": [_stats_dict(s) for s in self.shard_stats],
            "shard_writes": list(self.shard_writes),
        }


def _stats_dict(stats: ControllerStats) -> dict:
    payload = asdict(stats)
    # JSON objects key by string; keep the heuristic histogram readable.
    payload["heuristic_steps"] = {
        str(step): count for step, count in stats.heuristic_steps.items()
    }
    return payload


class _JsonlWriter:
    """Append-only JSONL stream with the repo's standard envelope."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None

    def emit(self, event: str, payload: dict) -> None:
        if self._handle is None:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        record = {"event": event, "version": TELEMETRY_VERSION,
                  "time": time.time(), **payload}
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _build_controller(spec: ShardSpec):
    """Construct the shard's controller exactly as a respawn would."""
    import numpy as np

    from ..core.controller import CompressedPCMController
    from ..engine.address_space import AddressRange
    from ..pcm import EnduranceModel

    controller = CompressedPCMController(
        config=spec.config,
        n_lines=spec.stop - spec.start,
        endurance_model=EnduranceModel(
            mean=spec.endurance_mean, cov=spec.endurance_cov
        ),
        rng=np.random.default_rng(spec.seed),
        n_banks=spec.n_banks,
        fault_mode=spec.fault_mode,
        cell_type=spec.cell_type,
        address_range=AddressRange(spec.start, spec.stop),
    )
    tier_lines = getattr(spec, "tier_lines", 0)
    if tier_lines:
        from ..tier import HybridController

        # The tier is part of the spec, so a recovery respawn rebuilds
        # it too and the history replay reconstructs its residents --
        # exact recovery holds for hybrid shards unchanged.
        controller = HybridController(controller, tier_lines)
    return controller


def shard_worker(spec: ShardSpec, requests: mp.Queue, replies: mp.Queue) -> None:
    """Worker-process entry point: one shard's serve loop."""
    from ..core.window import clear_window_caches

    writer = None
    if spec.telemetry_dir is not None:
        writer = _JsonlWriter(
            os.path.join(
                spec.telemetry_dir, f"shard-{spec.index}", "events.jsonl"
            )
        )
    try:
        controller = _build_controller(spec)
        if writer is not None:
            writer.emit("shard_start", {
                "shard": spec.index,
                "range": [spec.start, spec.stop],
                "system": spec.config.name,
                "seed": spec.seed,
            })
        served = 0
        last_beat = 0
        while True:
            command = requests.get()
            kind = command[0]
            if kind == "apply":
                batch = command[1]
                controller.write_batch(batch)
                served += len(batch)
                if writer is not None and (
                    served // spec.heartbeat_interval
                    > last_beat // spec.heartbeat_interval
                ):
                    writer.emit("shard_heartbeat", {
                        "shard": spec.index,
                        "requests_served": served,
                        "dead_fraction": controller.dead_fraction,
                        "stored_writes": controller.stats.stored_writes,
                        "lost_writes": controller.stats.lost_writes,
                        "batch_waves": controller.stats.batch_waves,
                        "batch_wave_width_mean":
                            controller.stats.batch_wave_width_mean,
                    })
                last_beat = served
                replies.put(("applied", spec.index, served, {
                    "dead_blocks": controller.engine.dead_count,
                    "capacity_lines": controller.engine.capacity_lines,
                    "lost_writes": controller.stats.lost_writes,
                    "batch_waves": controller.stats.batch_waves,
                    "batch_wave_ops": controller.stats.batch_wave_ops,
                    "batch_wave_width_max":
                        controller.stats.batch_wave_width_max,
                }))
            elif kind == "read":
                replies.put(("data", spec.index, controller.read(command[1])))
            elif kind == "snapshot":
                replies.put((
                    "snapshot", spec.index, controller.stats,
                    controller.engine.dead_count,
                    controller.engine.capacity_lines, served,
                ))
            elif kind == "stop":
                if writer is not None:
                    writer.emit("shard_end", {
                        "shard": spec.index,
                        "requests_served": served,
                        "dead_fraction": controller.dead_fraction,
                    })
                replies.put(("stopped", spec.index, served))
                return
            else:  # pragma: no cover - protocol misuse guard
                raise ValueError(f"unknown service command {kind!r}")
    finally:
        # Worker teardown: the placement caches in repro.core.window are
        # module-global; clearing them here keeps forked workers (and
        # any in-process fallback runs) from leaking them across shard
        # restarts.
        clear_window_caches()
        if writer is not None:
            writer.close()


class MemoryService:
    """Sharded multi-process PCM memory fleet with exact-recovery retries.

    Args:
        config: The system configuration every shard runs.
        total_lines: Global logical address-space size.
        shards: Worker processes / address-space slices.
        endurance_mean / endurance_cov: Per-cell endurance model.
        seed: Base seed; per-shard seeds derive via
            :func:`repro.engine.address_space.shard_seeds` (one shard
            keeps it unchanged -- the golden-digest identity).
        telemetry_dir: When set, per-shard JSONL streams are written to
            ``shard-<i>/events.jsonl`` and the fleet view to
            ``fleet.jsonl`` under it.  None disables all telemetry.
        heartbeat_interval: Requests between shard heartbeat events.
        fleet_interval: Routed requests between fleet heartbeat events.
        retries: Worker deaths absorbed *per shard* before
            :class:`ServiceError`.
        worker_timeout: Seconds without any reply from a live worker
            before it is declared hung and restarted.
        tier_lines: Per-shard content-aware DRAM front tier capacity
            (:mod:`repro.tier`); 0 (default) runs bare shards,
            bit-identical to every pre-tier service run.
    """

    def __init__(
        self,
        config: SystemConfig,
        total_lines: int,
        shards: int = 1,
        endurance_mean: float = 100.0,
        endurance_cov: float = 0.15,
        seed: int = 0,
        n_banks: int = 8,
        fault_mode: FaultMode = FaultMode.STUCK_AT_LAST,
        cell_type: str = "slc",
        telemetry_dir: str | None = None,
        heartbeat_interval: int = DEFAULT_SHARD_HEARTBEAT,
        fleet_interval: int = DEFAULT_SHARD_HEARTBEAT,
        retries: int = 2,
        worker_timeout: float = DEFAULT_WORKER_TIMEOUT,
        tier_lines: int = 0,
    ) -> None:
        if heartbeat_interval < 1 or fleet_interval < 1:
            raise ValueError("heartbeat intervals must be >= 1")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        self.shard_map = ShardMap(total_lines, shards)
        self.total_lines = total_lines
        self.telemetry_dir = telemetry_dir
        self.fleet_interval = fleet_interval
        self.retries = retries
        self.worker_timeout = worker_timeout
        seeds = shard_seeds(seed, shards)
        self.specs = [
            ShardSpec(
                index=index,
                config=config,
                start=shard_range.start,
                stop=shard_range.stop,
                endurance_mean=endurance_mean,
                endurance_cov=endurance_cov,
                seed=shard_seed,
                n_banks=n_banks,
                fault_mode=fault_mode,
                cell_type=cell_type,
                telemetry_dir=telemetry_dir,
                heartbeat_interval=heartbeat_interval,
                tier_lines=tier_lines,
            )
            for index, (shard_range, shard_seed) in enumerate(
                zip(self.shard_map.ranges, seeds)
            )
        ]
        self._ctx = mp.get_context()
        self._workers: list[mp.Process | None] = [None] * shards
        self._requests: list[mp.Queue | None] = [None] * shards
        self._replies: list[mp.Queue | None] = [None] * shards
        #: Complete routed request history per shard -- the exact-recovery
        #: source: a respawned worker replays it to reconstruct, bit for
        #: bit, the state the dead worker held.
        self._history: list[list[list]] = [[] for _ in range(shards)]
        self._attempts = [0] * shards
        self._served = [0] * shards
        self._shard_health = [
            {"dead_blocks": 0, "capacity_lines": 0, "lost_writes": 0}
            for _ in range(shards)
        ]
        self.requests_routed = 0
        self.recoveries = 0
        self._last_fleet_beat = 0
        self._fleet_writer = (
            _JsonlWriter(os.path.join(telemetry_dir, "fleet.jsonl"))
            if telemetry_dir is not None
            else None
        )
        self._started = False

    # -- lifecycle -------------------------------------------------------

    @property
    def shards(self) -> int:
        """Number of shards in the fleet."""
        return len(self.specs)

    def __enter__(self) -> "MemoryService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> None:
        """Spawn one worker process per shard."""
        if self._started:
            raise RuntimeError("service already started")
        for index in range(self.shards):
            self._spawn(index)
        self._started = True
        if self._fleet_writer is not None:
            self._fleet_writer.emit("service_start", {
                "shards": self.shards,
                "total_lines": self.total_lines,
                "system": self.specs[0].config.name,
                "ranges": [
                    [r.start, r.stop] for r in self.shard_map.ranges
                ],
            })

    def _spawn(self, index: int) -> None:
        requests: mp.Queue = self._ctx.Queue()
        replies: mp.Queue = self._ctx.Queue()
        worker = self._ctx.Process(
            target=shard_worker,
            args=(self.specs[index], requests, replies),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        worker.start()
        self._workers[index] = worker
        self._requests[index] = requests
        self._replies[index] = replies

    def worker_pid(self, shard: int) -> int:
        """The shard worker's current OS pid (for external kill tests)."""
        worker = self._workers[shard]
        if worker is None or worker.pid is None:
            raise RuntimeError(f"shard {shard} has no running worker")
        return worker.pid

    def stop(self) -> ServiceResult | None:
        """Stop every worker; returns the final fleet result once."""
        if not self._started:
            return None
        result = self.result()
        for index in range(self.shards):
            try:
                self._send(index, ("stop",))
                self._await(index, "stopped")
            except ServiceError:
                pass  # already collecting the final state; best effort
            worker = self._workers[index]
            if worker is not None:
                worker.join(timeout=10)
                if worker.is_alive():  # pragma: no cover - hung worker
                    worker.terminate()
                self._workers[index] = None
        if self._fleet_writer is not None:
            self._fleet_writer.emit("service_end", {
                "requests_routed": self.requests_routed,
                "recoveries": self.recoveries,
                "dead_fraction": result.dead_fraction,
                "stored_writes": result.stats.stored_writes,
                "lost_writes": result.stats.lost_writes,
            })
            self._fleet_writer.close()
        self._started = False
        return result

    # -- request path ----------------------------------------------------

    def submit(self, requests) -> None:
        """Route a batch of ``(line, data)`` requests to their shards.

        Per-shard order follows stream order (all that matters for
        bit-identity across disjoint shards); the call returns once
        every involved worker has applied its sub-batch, so a
        subsequent :meth:`read` observes the writes.
        """
        self._require_started()
        buckets: list[list] = [[] for _ in range(self.shards)]
        for line, data in requests:
            buckets[self.shard_map.shard_of(line)].append((line, data))
        sent = [False] * self.shards
        for index, bucket in enumerate(buckets):
            if not bucket:
                continue
            sent[index] = self._dispatch_apply(index, bucket)
        for index, bucket in enumerate(buckets):
            if not bucket:
                continue
            # A batch already absorbed by a recovery replay must not be
            # awaited (it was never sent); resync its acknowledgement.
            reply = (
                self._await(index, "applied")
                if sent[index]
                else self._resync(index)
            )
            self._served[index] = reply[2]
            self._shard_health[index] = reply[3]
            self.requests_routed += len(bucket)
        self._maybe_fleet_heartbeat()

    def _dispatch_apply(self, index: int, bucket: list) -> bool:
        """Record and send one shard batch; False when a recovery
        triggered at dispatch time already replayed it (the batch joins
        the history *before* the liveness check precisely so the replay
        covers it exactly once)."""
        self._history[index].append(bucket)
        worker = self._workers[index]
        if worker is None or not worker.is_alive():
            self._recover(index)
            return False
        self._requests[index].put(("apply", bucket))
        return True

    def read(self, line: int) -> bytes | None:
        """Read one global line from its owning shard."""
        self._require_started()
        shard = self.shard_map.shard_of(line)
        self._send(shard, ("read", line))
        return self._await(shard, "data")[2]

    # -- fleet views -----------------------------------------------------

    def snapshot(self) -> list[tuple[ControllerStats, int, int, int]]:
        """Each shard's ``(stats, dead_blocks, capacity, served)`` now."""
        self._require_started()
        for index in range(self.shards):
            self._send(index, ("snapshot",))
        return [
            self._await(index, "snapshot")[2:]
            for index in range(self.shards)
        ]

    def stats(self) -> ControllerStats:
        """The exact fleet aggregate of every shard's counters."""
        return ControllerStats.merge_all(
            shard[0] for shard in self.snapshot()
        )

    def result(self) -> ServiceResult:
        """The complete fleet view (exact sums of shard views)."""
        shards = self.snapshot()
        merged = ControllerStats.merge_all(shard[0] for shard in shards)
        dead = sum(shard[1] for shard in shards)
        capacity = sum(shard[2] for shard in shards)
        return ServiceResult(
            shards=self.shards,
            total_lines=self.total_lines,
            requests_routed=self.requests_routed,
            recoveries=self.recoveries,
            dead_fraction=dead / capacity,
            stats=merged,
            shard_stats=[shard[0] for shard in shards],
            shard_writes=[shard[3] for shard in shards],
        )

    def _maybe_fleet_heartbeat(self) -> None:
        if self._fleet_writer is None:
            return
        if (
            self.requests_routed // self.fleet_interval
            == self._last_fleet_beat // self.fleet_interval
        ):
            self._last_fleet_beat = self.requests_routed
            return
        self._last_fleet_beat = self.requests_routed
        dead = sum(h["dead_blocks"] for h in self._shard_health)
        capacity = sum(h["capacity_lines"] for h in self._shard_health)
        self._fleet_writer.emit("fleet_heartbeat", {
            "requests_routed": self.requests_routed,
            "recoveries": self.recoveries,
            "shard_requests": list(self._served),
            "dead_fraction": dead / capacity if capacity else 0.0,
            "lost_writes": sum(h["lost_writes"] for h in self._shard_health),
            # Scheduler telemetry merges like ControllerStats: waves and
            # ops sum across shards, wave width takes the fleet max.
            "batch_waves": sum(
                h.get("batch_waves", 0) for h in self._shard_health
            ),
            "batch_wave_ops": sum(
                h.get("batch_wave_ops", 0) for h in self._shard_health
            ),
            "batch_wave_width_max": max(
                (h.get("batch_wave_width_max", 0)
                 for h in self._shard_health), default=0,
            ),
        })

    # -- failure handling ------------------------------------------------

    def _require_started(self) -> None:
        if not self._started:
            raise RuntimeError("service not started (use start() or `with`)")

    def _send(self, index: int, command: tuple) -> None:
        self._ensure_alive(index)
        self._requests[index].put(command)

    def _await(self, index: int, expected: str) -> tuple:
        """Wait for one reply, recovering the shard if its worker died.

        On worker death the in-flight command is *not* lost: recovery
        replays the shard's full history (which includes any pending
        ``apply``), so the returned reply reflects exactly the state a
        never-interrupted worker would have reached.
        """
        deadline = time.monotonic() + self.worker_timeout
        while True:
            try:
                reply = self._replies[index].get(timeout=_POLL_SECONDS)
            except queue.Empty:
                worker = self._workers[index]
                if worker is None or not worker.is_alive():
                    self._recover(index)
                    if expected == "applied":
                        # History replay already applied the in-flight
                        # batch; synthesize its acknowledgement.
                        return self._resync(index)
                    deadline = time.monotonic() + self.worker_timeout
                    continue
                if time.monotonic() > deadline:
                    worker.terminate()
                    worker.join(timeout=10)
                    self._recover(index)
                    if expected == "applied":
                        return self._resync(index)
                    deadline = time.monotonic() + self.worker_timeout
                continue
            if reply[0] != expected:  # pragma: no cover - protocol guard
                raise ServiceError(
                    f"shard {index}: expected {expected!r} reply, "
                    f"got {reply[0]!r}"
                )
            return reply

    def _resync(self, index: int) -> tuple:
        """Post-recovery ``applied`` acknowledgement from a snapshot."""
        self._send(index, ("snapshot",))
        _, _, stats, dead, capacity, served = self._await(index, "snapshot")
        return ("applied", index, served, {
            "dead_blocks": dead,
            "capacity_lines": capacity,
            "lost_writes": stats.lost_writes,
            "batch_waves": stats.batch_waves,
            "batch_wave_ops": stats.batch_wave_ops,
            "batch_wave_width_max": stats.batch_wave_width_max,
        })

    def _ensure_alive(self, index: int) -> None:
        worker = self._workers[index]
        if worker is None or not worker.is_alive():
            self._recover(index)

    def _recover(self, index: int) -> None:
        """Quarantine, respawn, and replay a dead shard worker."""
        self._attempts[index] += 1
        if self._attempts[index] > self.retries:
            raise ServiceError(
                f"shard {index} worker died {self._attempts[index]} time(s); "
                f"retry budget of {self.retries} exhausted"
            )
        worker = self._workers[index]
        exitcode = worker.exitcode if worker is not None else None
        if worker is not None:
            worker.join(timeout=10)
        quarantine = None
        if self.telemetry_dir is not None:
            quarantine = quarantine_run_dir(
                os.path.join(self.telemetry_dir, f"shard-{index}"),
                self._attempts[index],
            )
        self._spawn(index)
        for batch in self._history[index]:
            self._requests[index].put(("apply", batch))
        # Drain the replay acknowledgements; the worker is fresh, so
        # these arrive in order with no interleaving.
        for _ in self._history[index]:
            reply = self._await(index, "applied")
            self._served[index] = reply[2]
            self._shard_health[index] = reply[3]
        self.recoveries += 1
        if self._fleet_writer is not None:
            self._fleet_writer.emit("shard_recovered", {
                "shard": index,
                "attempt": self._attempts[index],
                "exitcode": exitcode,
                "replayed_batches": len(self._history[index]),
                "requests_served": self._served[index],
                "quarantine": quarantine,
            })
