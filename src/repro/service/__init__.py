"""Sharded multi-bank PCM memory service (fleet-scale simulation).

Built on the shardable address-space refactor
(:mod:`repro.engine.address_space`): a fleet is K complete, independent
controllers, each range-aware over its contiguous slice, behind pure
routing.  Three layers:

* :class:`ShardedController` -- the in-process reference fleet (also
  the bit-identity oracle for the service tests);
* :class:`MemoryService` -- one worker process per shard, JSONL
  telemetry per shard plus an aggregated fleet view, and exact
  (replay-based) recovery from worker deaths;
* :mod:`repro.service.workloads` -- fleet-shaped request streams
  (monotonic / high-reuse / memcached / nginx) and the
  :func:`run_workload` driver, surfaced as ``python -m repro serve``
  and ``python -m repro workload``.
"""

from .service import (
    DEFAULT_SHARD_HEARTBEAT,
    MemoryService,
    ServiceError,
    ServiceResult,
    ShardSpec,
    shard_worker,
)
from .sharded import ShardedController
from .workloads import (
    SERVICE_WORKLOADS,
    HighReuseStream,
    MemcachedStream,
    MonotonicStream,
    NginxStream,
    RequestStream,
    make_stream,
    run_workload,
)

__all__ = [
    "DEFAULT_SHARD_HEARTBEAT",
    "SERVICE_WORKLOADS",
    "HighReuseStream",
    "MemcachedStream",
    "MemoryService",
    "MonotonicStream",
    "NginxStream",
    "RequestStream",
    "ServiceError",
    "ServiceResult",
    "ShardSpec",
    "ShardedController",
    "make_stream",
    "run_workload",
    "shard_worker",
]
