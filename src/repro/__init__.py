"""Reproduction of "Exploring the Potential for Collaborative Data
Compression and Hard-Error Tolerance in PCM Memories" (DSN 2017).

Quick tour of the public API::

    from repro.compression import BestOfCompressor
    from repro.core import comp_wf, CompressedPCMController
    from repro.lifetime import run_system_comparison
    from repro.faultinjection import tolerable_faults
    from repro.traces import get_profile, SyntheticWorkload

See README.md for a walkthrough and DESIGN.md for the system inventory
and the per-figure experiment index.
"""

__version__ = "1.0.0"

from . import (
    analysis,
    compression,
    core,
    correction,
    engine,
    faultinjection,
    lifetime,
    pcm,
    perf,
    rng,
    traces,
    wearleveling,
)

__all__ = [
    "__version__",
    "analysis",
    "compression",
    "core",
    "correction",
    "engine",
    "faultinjection",
    "lifetime",
    "pcm",
    "perf",
    "rng",
    "traces",
    "wearleveling",
]
