"""Terminal-friendly chart rendering for examples and benchmark reports.

Pure-text output (no plotting dependencies): horizontal bar charts,
empirical-CDF staircases, sparklines, and per-cell wear heatmaps.  The
wear map is the most instructive: it shows compression concentrating
flips at the least-significant bytes under Comp and the rotation
spreading them under Comp+W (Section V-A's non-uniformity story).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

_SHADES = " .:-=+*#%@"


def _shade(value: float, top: float) -> str:
    if top <= 0:
        return _SHADES[0]
    index = int(min(value, top) / top * (len(_SHADES) - 1))
    return _SHADES[index]


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line intensity profile of a series."""
    if not values:
        return ""
    step = max(1, len(values) // width)
    sampled = list(values)[::step][:width]
    top = max(max(sampled), 1e-12)
    return "".join(_shade(value, top) for value in sampled)


def bar_chart(
    data: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bars, one per labelled value."""
    if not data:
        return ""
    top = max(max(data.values()), 1e-12)
    label_width = max(len(label) for label in data)
    lines = []
    for label, value in data.items():
        bar = "#" * max(1, round(value / top * width)) if value > 0 else ""
        lines.append(f"{label:<{label_width}} |{bar:<{width}} {value:.2f}{unit}")
    return "\n".join(lines)


def cdf_plot(
    values: np.ndarray,
    cumulative: np.ndarray,
    width: int = 48,
    height: int = 10,
) -> str:
    """A staircase rendering of an empirical CDF."""
    if values.size == 0:
        return ""
    grid = [[" "] * width for _ in range(height)]
    low, high = float(values[0]), float(values[-1])
    span = max(high - low, 1e-12)
    for value, fraction in zip(values, cumulative):
        column = int((value - low) / span * (width - 1))
        row = height - 1 - int(fraction * (height - 1))
        grid[row][column] = "*"
    lines = ["1.0 " + "".join(grid[0])]
    lines.extend("    " + "".join(row) for row in grid[1:-1])
    lines.append("0.0 " + "".join(grid[-1]))
    lines.append(f"    {low:<8.0f}{'':^{max(0, width - 16)}}{high:>8.0f}")
    return "\n".join(lines)


def wear_map(
    counts: np.ndarray,
    cells_per_row: int = 64,
    label: str = "",
) -> str:
    """Per-cell wear rendered as a shaded grid.

    Args:
        counts: Per-cell program counts; either one line's 512 cells or
            a (blocks, cells) matrix, which is averaged over blocks.
        cells_per_row: Grid width (64 puts one byte per 8 columns).
        label: Optional heading.
    """
    array = np.asarray(counts, dtype=float)
    if array.ndim == 2:
        array = array.mean(axis=0)
    if array.size % cells_per_row != 0:
        raise ValueError(
            f"{array.size} cells do not fold into rows of {cells_per_row}"
        )
    top = max(float(array.max()), 1e-12)
    rows = array.reshape(-1, cells_per_row)
    lines = []
    if label:
        lines.append(label)
    for index, row in enumerate(rows):
        rendered = "".join(_shade(value, top) for value in row)
        lines.append(f"  bits {index * cells_per_row:4d}+ |{rendered}|")
    lines.append(f"  (max {top:.0f} programs/cell; scale '{_SHADES.strip()}')")
    return "\n".join(lines)


def wear_imbalance(counts: np.ndarray) -> float:
    """Coefficient of variation of per-cell wear (0 = perfectly even)."""
    array = np.asarray(counts, dtype=float).reshape(-1)
    mean = array.mean()
    if mean == 0:
        return 0.0
    return float(array.std() / mean)
