"""Per-figure/table experiment entry points (see DESIGN.md's index)."""

from .figures import (
    CompressedSizeRow,
    cdf_fraction_below,
    fig3_compressed_sizes,
    fig6_size_change_probability,
    fig7_size_trajectories,
    fig11_max_size_cdf,
)
from .flips import (
    UNTOUCHED_BAND,
    FlipClassification,
    classify_flip_impact,
    hot_block_flip_series,
)
from .lifetime_study import (
    WorkloadStudy,
    geometric_mean_normalized,
    high_variation_study,
    run_full_study,
    run_workload_study,
)

__all__ = [
    "UNTOUCHED_BAND",
    "CompressedSizeRow",
    "FlipClassification",
    "WorkloadStudy",
    "cdf_fraction_below",
    "classify_flip_impact",
    "fig3_compressed_sizes",
    "fig6_size_change_probability",
    "fig7_size_trajectories",
    "fig11_max_size_cdf",
    "geometric_mean_normalized",
    "high_variation_study",
    "hot_block_flip_series",
    "run_full_study",
    "run_workload_study",
]

from .ascii_charts import (  # noqa: E402
    bar_chart,
    cdf_plot,
    sparkline,
    wear_imbalance,
    wear_map,
)

__all__ += ["bar_chart", "cdf_plot", "sparkline", "wear_imbalance", "wear_map"]
