"""Compression-statistics experiments: Figures 3, 6, 7 and 11.

Each function regenerates one figure's data series from the synthetic
workloads; the corresponding benchmark prints them next to the paper's
reference values (EXPERIMENTS.md holds the comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compression import (
    BestOfCompressor,
    size_cdf,
    size_change_probability,
)
from ..traces import SyntheticWorkload, WorkloadProfile


@dataclass(frozen=True)
class CompressedSizeRow:
    """One Figure 3 bar group: mean compressed size per compressor."""

    workload: str
    bdi: float
    fpc: float
    best: float

    @property
    def best_ratio(self) -> float:
        """BEST's compression ratio (size / 64)."""
        return self.best / 64.0


def fig3_compressed_sizes(
    profile: WorkloadProfile,
    n_lines: int = 128,
    writes: int = 3000,
    seed: int = 0,
    compressor: BestOfCompressor | None = None,
) -> CompressedSizeRow:
    """Average BDI / FPC / BEST compressed size over the write stream."""
    compressor = compressor or BestOfCompressor()
    generator = SyntheticWorkload(profile, n_lines=n_lines, seed=seed)
    sums = {"bdi": 0, "fpc": 0, "best": 0}
    for write in generator.iter_writes(writes):
        results = compressor.compress_all(write.data)
        sizes = {name: min(64, result.size_bytes) for name, result in results.items()}
        sums["bdi"] += sizes["bdi"]
        sums["fpc"] += sizes["fpc"]
        sums["best"] += min(sizes.values())
    return CompressedSizeRow(
        workload=profile.name,
        bdi=sums["bdi"] / writes,
        fpc=sums["fpc"] / writes,
        best=sums["best"] / writes,
    )


def fig6_size_change_probability(
    profile: WorkloadProfile,
    n_lines: int = 128,
    writes: int = 6000,
    seed: int = 0,
    compressor: BestOfCompressor | None = None,
) -> float:
    """Probability that consecutive same-block writes change size."""
    compressor = compressor or BestOfCompressor()
    generator = SyntheticWorkload(profile, n_lines=n_lines, seed=seed)
    per_line: dict[int, list[int]] = {}
    for write in generator.iter_writes(writes):
        size = compressor.compress(write.data).size_bytes
        per_line.setdefault(write.line, []).append(size)
    rates = [
        size_change_probability(sizes)
        for sizes in per_line.values()
        if len(sizes) > 3
    ]
    return float(np.mean(rates)) if rates else 0.0


def fig7_size_trajectories(
    profile: WorkloadProfile,
    n_blocks: int = 3,
    n_lines: int = 128,
    writes: int = 8000,
    seed: int = 0,
    compressor: BestOfCompressor | None = None,
) -> dict[int, list[int]]:
    """Per-write compressed sizes of the hottest blocks (Figure 7)."""
    compressor = compressor or BestOfCompressor()
    generator = SyntheticWorkload(profile, n_lines=n_lines, seed=seed)
    per_line: dict[int, list[int]] = {}
    for write in generator.iter_writes(writes):
        size = compressor.compress(write.data).size_bytes
        per_line.setdefault(write.line, []).append(size)
    hottest = sorted(per_line, key=lambda line: len(per_line[line]), reverse=True)
    return {line: per_line[line] for line in hottest[:n_blocks]}


def fig11_max_size_cdf(
    profile: WorkloadProfile,
    n_lines: int = 256,
    writes: int = 8000,
    seed: int = 0,
    compressor: BestOfCompressor | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """CDF of each address's *largest* compressed write (Figure 11)."""
    compressor = compressor or BestOfCompressor()
    generator = SyntheticWorkload(profile, n_lines=n_lines, seed=seed)
    max_size: dict[int, int] = {}
    for write in generator.iter_writes(writes):
        size = compressor.compress(write.data).size_bytes
        max_size[write.line] = max(size, max_size.get(write.line, 0))
    return size_cdf(list(max_size.values()))


def cdf_fraction_below(
    values: np.ndarray, cumulative: np.ndarray, threshold: float
) -> float:
    """Fraction of the CDF mass strictly below ``threshold`` bytes."""
    below = values < threshold
    if not below.any():
        return 0.0
    return float(cumulative[below][-1])
