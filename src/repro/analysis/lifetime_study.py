"""Lifetime experiments: Figures 10, 12, 13 and Table IV.

These wrap :mod:`repro.lifetime` into per-figure studies.  Simulation
scale (lines, endurance) is configurable; the defaults trade precision
for wall-clock time and are what the benchmarks use.  All Figure 10/13
numbers are normalized to the baseline run, which is the scale-invariant
quantity (see ``tests/lifetime/test_scaling_invariance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import EVALUATED_SYSTEMS
from ..lifetime import (
    LifetimeResult,
    lifetime_months,
    normalized_against_baseline,
    run_system_comparison,
)
from ..pcm import HIGH_VARIATION_COV, PAPER_ENDURANCE_COV
from ..traces import WORKLOAD_ORDER, get_profile


@dataclass
class WorkloadStudy:
    """All lifetime metrics for one workload."""

    workload: str
    results: dict[str, LifetimeResult]
    normalized: dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        self.normalized = normalized_against_baseline(self.results)

    def months(self, system: str) -> float:
        """Table IV extrapolation for one system."""
        return lifetime_months(
            self.results[system], wpki=get_profile(self.workload).wpki
        )

    def tolerated_faults(self, system: str = "comp_wf") -> float:
        """Figure 12 metric: average faults in a failed block."""
        return self.results[system].avg_faults_per_dead_block


def run_workload_study(
    workload: str,
    systems: tuple[str, ...] = EVALUATED_SYSTEMS,
    n_lines: int = 96,
    endurance_mean: float = 60.0,
    endurance_cov: float = PAPER_ENDURANCE_COV,
    seed: int = 0,
    max_writes: int = 4_000_000,
    workers: int = 1,
    checkpoint_dir: str | None = None,
    checkpoint_interval: int = 0,
    resume: bool = False,
    progress: bool = False,
    batch: int = 1,
    tier_lines: int = 0,
) -> WorkloadStudy:
    """One Figure 10 column group (all systems, one workload).

    ``workers > 1`` parallelizes the per-system runs through
    :class:`~repro.engine.SweepRunner` with identical results.  The
    durability knobs (``checkpoint_dir``, ``checkpoint_interval``,
    ``resume``, ``progress``) pass straight through to
    :func:`repro.lifetime.run_system_comparison`; none of them affect
    the simulated results.  ``tier_lines > 0`` fronts every system
    with the content-aware DRAM tier (:mod:`repro.tier`; serial path
    only) -- that one *does* change results, by design.
    """
    results = run_system_comparison(
        workload,
        systems=systems,
        n_lines=n_lines,
        endurance_mean=endurance_mean,
        endurance_cov=endurance_cov,
        seed=seed,
        max_writes=max_writes,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_interval=checkpoint_interval,
        resume=resume,
        progress=progress,
        batch=batch,
        tier_lines=tier_lines,
    )
    unfinished = [name for name, result in results.items() if not result.failed]
    if unfinished:
        raise RuntimeError(
            f"runs did not reach the failure criterion: {unfinished}; "
            "raise max_writes or shrink the memory"
        )
    return WorkloadStudy(workload=workload, results=results)


def run_full_study(
    workloads: tuple[str, ...] = WORKLOAD_ORDER,
    systems: tuple[str, ...] = EVALUATED_SYSTEMS,
    endurance_cov: float = PAPER_ENDURANCE_COV,
    workers: int = 1,
    **kwargs,
) -> dict[str, WorkloadStudy]:
    """Figure 10 (cov=0.15) or Figure 13 (cov=0.25) across workloads.

    With ``workers > 1`` the whole (workload x system) grid is fanned
    out at once through :class:`~repro.engine.SweepRunner` -- the grid
    (not each column group) is the right parallelism unit, since every
    run is independent.  Results are identical to the serial path.
    """
    if workers != 1:
        from ..engine.sweep import SweepRunner

        runner = SweepRunner(
            systems=tuple(systems),
            workers=workers,
            n_lines=kwargs.get("n_lines", 96),
            endurance_mean=kwargs.get("endurance_mean", 60.0),
            endurance_cov=endurance_cov,
            max_writes=kwargs.get("max_writes", 4_000_000),
            checkpoint_dir=kwargs.get("checkpoint_dir"),
            checkpoint_interval=kwargs.get("checkpoint_interval", 0),
            resume=kwargs.get("resume", False),
        )
        grid = runner.run(workloads, seed=kwargs.get("seed", 0))
        studies = {}
        for workload, results in grid.items():
            unfinished = [n for n, r in results.items() if not r.failed]
            if unfinished:
                raise RuntimeError(
                    f"runs did not reach the failure criterion: {unfinished}; "
                    "raise max_writes or shrink the memory"
                )
            studies[workload] = WorkloadStudy(workload=workload, results=results)
        return studies
    return {
        workload: run_workload_study(
            workload, systems=systems, endurance_cov=endurance_cov, **kwargs
        )
        for workload in workloads
    }


def geometric_mean_normalized(
    studies: dict[str, WorkloadStudy], system: str
) -> float:
    """Average normalized lifetime across workloads (paper uses the
    arithmetic mean of per-application normalized lifetimes)."""
    values = [study.normalized[system] for study in studies.values()]
    return sum(values) / len(values)


def high_variation_study(**kwargs) -> dict[str, WorkloadStudy]:
    """Figure 13: Comp+WF vs baseline at CoV = 0.25."""
    kwargs.setdefault("systems", ("baseline", "comp_wf"))
    return run_full_study(endurance_cov=HIGH_VARIATION_COV, **kwargs)
