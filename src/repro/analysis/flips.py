"""Bit-flip analyses behind Figures 1 and 5.

Figure 1 shows that under differential writes the per-write flip counts
of one hot block are large and randomly scattered.  Figure 5 classifies
every write-back by whether storing it *compressed* (payload at the
window, rest of the line stale) produces more, fewer, or about the same
(+-5 %) bit flips as storing it *uncompressed* -- the effect the
Figure 8 heuristic exists to manage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compression import BestOfCompressor
from ..pcm import bytes_to_bits
from ..core.window import place_bytes
from ..traces import SyntheticWorkload, WorkloadProfile

#: Figure 5's "untouched" band: within +-5 % of the uncompressed flips.
UNTOUCHED_BAND = 0.05


def hot_block_flip_series(
    profile: WorkloadProfile,
    n_lines: int = 128,
    writes: int = 20_000,
    seed: int = 0,
) -> list[int]:
    """Figure 1: DW flip counts for consecutive writes to a hot block.

    Replays the workload, finds the most-written block, and reports the
    differential-write flip count of each consecutive (uncompressed)
    write to it.
    """
    generator = SyntheticWorkload(profile, n_lines=n_lines, seed=seed)
    per_line: dict[int, list[bytes]] = {}
    for write in generator.iter_writes(writes):
        per_line.setdefault(write.line, []).append(write.data)
    hot_line = max(per_line, key=lambda line: len(per_line[line]))
    payloads = per_line[hot_line]

    flips = []
    previous = bytes_to_bits(bytes(64))
    for payload in payloads:
        current = bytes_to_bits(payload)
        flips.append(int(np.count_nonzero(previous != current)))
        previous = current
    return flips


@dataclass(frozen=True)
class FlipClassification:
    """Figure 5's three-way split for one workload."""

    workload: str
    increased: float
    untouched: float
    decreased: float
    samples: int

    def __post_init__(self) -> None:
        total = self.increased + self.untouched + self.decreased
        if self.samples and abs(total - 1.0) > 1e-6:
            raise ValueError("fractions must sum to 1")


def classify_flip_impact(
    profile: WorkloadProfile,
    n_lines: int = 128,
    writes: int = 10_000,
    seed: int = 0,
    compressor: BestOfCompressor | None = None,
) -> FlipClassification:
    """Figure 5: per-write flip comparison, compressed vs uncompressed.

    Both storage forms are simulated per block: the uncompressed image
    is the raw 64 bytes; the compressed image keeps the payload at the
    least-significant bytes with the remainder of the line holding
    whatever was there before (the naive Comp layout).
    """
    compressor = compressor or BestOfCompressor()
    generator = SyntheticWorkload(profile, n_lines=n_lines, seed=seed)

    raw_state: dict[int, np.ndarray] = {}
    comp_state: dict[int, np.ndarray] = {}
    increased = untouched = decreased = 0
    samples = 0

    for write in generator.iter_writes(writes):
        new_raw = bytes_to_bits(write.data)
        result = compressor.compress(write.data)
        payload = result.payload if result.size_bytes < 64 else write.data

        old_raw = raw_state.get(write.line)
        old_comp = comp_state.get(write.line)
        if old_raw is not None:
            flips_raw = int(np.count_nonzero(old_raw != new_raw))
            new_comp = place_bytes(old_comp, payload, 0)
            flips_comp = int(np.count_nonzero(old_comp != new_comp))
            samples += 1
            band = UNTOUCHED_BAND * flips_raw
            if flips_comp > flips_raw + band:
                increased += 1
            elif flips_comp < flips_raw - band:
                decreased += 1
            else:
                untouched += 1
            comp_state[write.line] = new_comp
        else:
            comp_state[write.line] = place_bytes(
                bytes_to_bits(bytes(64)).copy(), payload, 0
            )
        raw_state[write.line] = new_raw

    if samples == 0:
        return FlipClassification(profile.name, 0.0, 0.0, 0.0, 0)
    return FlipClassification(
        workload=profile.name,
        increased=increased / samples,
        untouched=untouched / samples,
        decreased=decreased / samples,
        samples=samples,
    )
