"""Monte Carlo fault-injection harness (Figure 9)."""

from .montecarlo import (
    PAPER_DATA_SIZES,
    FailurePoint,
    block_survives,
    failure_probability,
    sweep,
    tolerable_faults,
)

__all__ = [
    "PAPER_DATA_SIZES",
    "FailurePoint",
    "block_survives",
    "failure_probability",
    "sweep",
    "tolerable_faults",
]
