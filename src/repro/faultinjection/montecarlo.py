"""Monte Carlo fault injection (Figure 9).

For a single 64-byte block, the paper injects ``k`` uniformly placed
stuck-at faults (modelling perfect intra-line wear-leveling), assumes
the written data compresses to ``W`` bytes, and asks whether the block
is still usable: is there a compression-window placement whose in-window
faults the correction scheme can mask?  Sweeping ``k`` from 1 to 128
and ``W`` from 1 to 64 bytes for ECP-6, SAFER-32 and Aegis 17x31 yields
the failure-probability surfaces of Figure 9.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.window import find_window
from ..correction import ECP, CorrectionScheme
from ..rng import as_generator

#: The data sizes highlighted in Figure 9's legend.
PAPER_DATA_SIZES = (1, 8, 16, 20, 24, 32, 34, 36, 40, 64)


@dataclass(frozen=True)
class FailurePoint:
    """Failure probability of one (scheme, data size, fault count) cell."""

    scheme: str
    data_bytes: int
    n_faults: int
    trials: int
    failures: int

    @property
    def failure_probability(self) -> float:
        """Estimated P(block failure) for this cell."""
        return self.failures / self.trials if self.trials else 0.0


def block_survives(
    scheme: CorrectionScheme,
    fault_positions: np.ndarray,
    data_bytes: int,
    line_bytes: int = 64,
) -> bool:
    """Whether a block with these faults can still store ``data_bytes``."""
    if isinstance(scheme, ECP):
        return _ecp_survives(scheme, fault_positions, data_bytes, line_bytes)
    return (
        find_window(fault_positions, data_bytes, scheme, line_bytes=line_bytes)
        is not None
    )


def _ecp_survives(
    scheme: ECP, fault_positions: np.ndarray, data_bytes: int, line_bytes: int
) -> bool:
    """Vectorized ECP feasibility: some circular window has few faults.

    ECP corrects any ``entries`` faults regardless of placement, so the
    block survives iff the minimum fault count over all ``line_bytes``
    circular byte windows of ``data_bytes`` is at most ``entries``.
    """
    if fault_positions.size <= scheme.entries:
        return True
    per_byte = np.bincount(fault_positions // 8, minlength=line_bytes)
    doubled = np.concatenate([per_byte, per_byte])
    cumulative = np.concatenate([[0], np.cumsum(doubled)])
    window_sums = (
        cumulative[data_bytes : data_bytes + line_bytes] - cumulative[:line_bytes]
    )
    return bool(window_sums.min() <= scheme.entries)


def failure_probability(
    scheme: CorrectionScheme,
    data_bytes: int,
    n_faults: int,
    trials: int,
    rng: np.random.Generator,
    line_bits: int = 512,
) -> FailurePoint:
    """Estimate one Figure 9 point by Monte Carlo fault injection."""
    if not 1 <= data_bytes <= line_bits // 8:
        raise ValueError("data size must be within the line")
    if n_faults < 0 or n_faults > line_bits:
        raise ValueError("fault count must be within the line")
    if trials < 1:
        raise ValueError("need at least one trial")

    failures = 0
    for _ in range(trials):
        faults = np.sort(rng.choice(line_bits, size=n_faults, replace=False))
        if not block_survives(scheme, faults, data_bytes, line_bits // 8):
            failures += 1
    return FailurePoint(
        scheme=scheme.name,
        data_bytes=data_bytes,
        n_faults=n_faults,
        trials=trials,
        failures=failures,
    )


def sweep(
    schemes: Iterable[CorrectionScheme],
    data_sizes: Sequence[int] = PAPER_DATA_SIZES,
    fault_counts: Sequence[int] = tuple(range(0, 129, 8)),
    trials: int = 1000,
    seed: int | np.random.SeedSequence | np.random.Generator = 0,
) -> list[FailurePoint]:
    """The full Figure 9 grid (paper: 100k trials; default scaled down).

    ``seed`` also accepts an explicit ``Generator``/``SeedSequence`` so
    parallel sweeps can thread independent spawned streams through.
    """
    rng = as_generator(seed)
    points = []
    for scheme in schemes:
        for data_bytes in data_sizes:
            for n_faults in fault_counts:
                points.append(
                    failure_probability(
                        scheme, data_bytes, n_faults, trials, rng
                    )
                )
    return points


def tolerable_faults(
    scheme: CorrectionScheme,
    data_bytes: int,
    target_probability: float = 0.5,
    trials: int = 400,
    seed: int | np.random.SeedSequence | np.random.Generator = 0,
    max_faults: int = 128,
) -> float:
    """Fault count at which failure probability crosses ``target``.

    This is the Figure 9 headline statistic: e.g. at a 32-byte
    compressed size and P(fail) = 0.5, the paper reports ~18 (ECP-6),
    ~38 (SAFER-32) and ~41 (Aegis) tolerable faults.  Linear
    interpolation between the two bracketing fault counts.
    """
    rng = as_generator(seed)
    previous_count, previous_prob = 0, 0.0
    for n_faults in range(1, max_faults + 1):
        point = failure_probability(scheme, data_bytes, n_faults, trials, rng)
        probability = point.failure_probability
        if probability >= target_probability:
            if probability == previous_prob:
                return float(n_faults)
            fraction = (target_probability - previous_prob) / (
                probability - previous_prob
            )
            return previous_count + fraction * (n_faults - previous_count)
        previous_count, previous_prob = n_faults, probability
    return float(max_faults)
