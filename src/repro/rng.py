"""Explicit random-generator plumbing for reproducible parallel runs.

Every stochastic component in the repo (synthetic workloads, endurance
variation, Monte Carlo fault injection) takes an explicit
``numpy.random.Generator`` or an integer seed -- there is no
module-level RNG state anywhere.  This module holds the two helpers
that keep that policy convenient:

* :func:`as_generator` normalizes "a seed or a generator" arguments;
* :func:`spawn_seeds` derives independent per-run seeds from one root
  seed via :class:`numpy.random.SeedSequence`, so a parallel sweep's
  runs are both reproducible (same root seed -> same streams) and
  statistically independent (no overlapping substreams).
"""

from __future__ import annotations

import numpy as np


def as_generator(
    seed: int | np.random.SeedSequence | np.random.Generator | None,
) -> np.random.Generator:
    """Normalize a seed-or-generator argument into a Generator.

    Passing an existing ``Generator`` returns it unchanged (the caller
    shares its stream); anything else -- an int, a ``SeedSequence``, or
    None -- seeds a fresh PCG64 stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(root_seed: int, count: int) -> list[int]:
    """``count`` independent 32-bit seeds derived from one root seed.

    Uses ``SeedSequence.spawn`` so the derived streams are independent
    by construction, unlike ``root_seed + i`` arithmetic (which can
    collide with a neighbouring run's ``root_seed``).
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    children = np.random.SeedSequence(root_seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def spawn_generators(root_seed: int, count: int) -> list[np.random.Generator]:
    """``count`` independent generators derived from one root seed."""
    return [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(root_seed).spawn(count)
    ]
