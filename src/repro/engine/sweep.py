"""Parallel (profile x system) lifetime sweep runner.

A full Figure 10/13 study is dozens of completely independent lifetime
simulations -- one per (workload profile, system) pair -- that the old
code ran strictly serially.  :class:`SweepRunner` fans them out across
worker processes and merges the per-run
:class:`~repro.lifetime.results.LifetimeResult`\\ s back into the same
``{workload: {system: result}}`` shape the serial helpers produce.

Determinism: each run builds its own simulator from ``(system,
workload, seed)`` exactly as :func:`repro.lifetime.run_system_comparison`
does, so for the default ``seed_mode="shared"`` the parallel results are
bit-for-bit identical to the serial ones regardless of worker count or
scheduling (verified by ``tests/engine/test_sweep.py``).  With
``seed_mode="spawned"`` each run instead gets an independent seed
derived via :func:`repro.rng.spawn_seeds`, which is what you want when
averaging over many sweeps rather than comparing against a serial run.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..rng import spawn_seeds
from .registry import PAPER_SYSTEMS

#: Recognized per-run seeding policies.
SEED_MODES = ("shared", "spawned")


@dataclass(frozen=True)
class SweepTask:
    """One independent lifetime run (fully pickleable)."""

    system: str
    workload: str
    n_lines: int
    endurance_mean: float
    endurance_cov: float
    seed: int
    max_writes: int
    cell_type: str = "slc"
    config_overrides: tuple[tuple[str, object], ...] = ()


def run_task(task: SweepTask):
    """Execute one sweep task; the worker-process entry point."""
    # Imported here (not at module top) so the engine package can be
    # imported without pulling the whole lifetime stack, and so forked
    # workers resolve it against their own interpreter state.
    from ..lifetime.systems import build_simulator

    simulator = build_simulator(
        task.system,
        task.workload,
        n_lines=task.n_lines,
        endurance_mean=task.endurance_mean,
        endurance_cov=task.endurance_cov,
        seed=task.seed,
        cell_type=task.cell_type,
        **dict(task.config_overrides),
    )
    return simulator.run(max_writes=task.max_writes)


@dataclass
class SweepRunner:
    """Fans independent (profile x system) lifetime runs across processes.

    Args:
        systems: System names (registry specs) to run per workload.
        workers: Worker processes; ``None`` uses the CPU count, ``1``
            runs serially in-process (no pool, handy for debugging).
        seed_mode: ``"shared"`` gives every run the same base seed
            (matching ``run_system_comparison``); ``"spawned"`` derives
            an independent seed per run via ``SeedSequence.spawn``.
    """

    systems: tuple[str, ...] = PAPER_SYSTEMS
    workers: int | None = None
    seed_mode: str = "shared"
    n_lines: int = 256
    endurance_mean: float = 100.0
    endurance_cov: float = 0.15
    max_writes: int = 2_000_000
    cell_type: str = "slc"
    config_overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.seed_mode not in SEED_MODES:
            raise ValueError(
                f"seed_mode must be one of {SEED_MODES}, got {self.seed_mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be positive")

    def tasks(self, workloads, seed: int = 0) -> list[SweepTask]:
        """The task grid for a sweep, in (workload, system) order."""
        pairs = [
            (workload, system)
            for workload in workloads
            for system in self.systems
        ]
        if self.seed_mode == "spawned":
            seeds = spawn_seeds(seed, len(pairs))
        else:
            seeds = [seed] * len(pairs)
        return [
            SweepTask(
                system=system,
                workload=workload,
                n_lines=self.n_lines,
                endurance_mean=self.endurance_mean,
                endurance_cov=self.endurance_cov,
                seed=run_seed,
                max_writes=self.max_writes,
                cell_type=self.cell_type,
                config_overrides=tuple(sorted(self.config_overrides.items())),
            )
            for (workload, system), run_seed in zip(pairs, seeds)
        ]

    def run(self, workloads, seed: int = 0) -> dict[str, dict[str, object]]:
        """Run the full grid; returns ``{workload: {system: result}}``."""
        workloads = tuple(workloads)
        tasks = self.tasks(workloads, seed=seed)
        workers = self.workers if self.workers is not None else os.cpu_count() or 1
        workers = min(workers, len(tasks)) or 1
        if workers == 1:
            outcomes = [run_task(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(run_task, tasks))
        merged: dict[str, dict[str, object]] = {w: {} for w in workloads}
        for task, outcome in zip(tasks, outcomes):
            merged[task.workload][task.system] = outcome
        return merged

    def run_comparison(self, workload: str, seed: int = 0) -> dict[str, object]:
        """One workload across all systems (a Figure 10 column group)."""
        return self.run((workload,), seed=seed)[workload]
