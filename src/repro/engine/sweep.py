"""Parallel, fault-tolerant (profile x system) lifetime sweep runner.

A full Figure 10/13 study is dozens of completely independent lifetime
simulations -- one per (workload profile, system) pair -- that the old
code ran strictly serially.  :class:`SweepRunner` fans them out across
worker processes and merges the per-run
:class:`~repro.lifetime.results.LifetimeResult`\\ s back into the same
``{workload: {system: result}}`` shape the serial helpers produce.

Determinism: each run builds its own simulator from ``(system,
workload, seed)`` exactly as :func:`repro.lifetime.run_system_comparison`
does, so for the default ``seed_mode="shared"`` the parallel results are
bit-for-bit identical to the serial ones regardless of worker count or
scheduling (verified by ``tests/engine/test_sweep.py``).  With
``seed_mode="spawned"`` each run instead gets an independent seed
derived via :func:`repro.rng.spawn_seeds`, which is what you want when
averaging over many sweeps rather than comparing against a serial run.

Fault tolerance: tasks run as individual futures, never ``pool.map``
(whose iteration rethrows the first worker exception and discards every
completed sibling result).  A failing task is retried up to
``retries`` times, then recorded as a structured :class:`TaskFailure`
(task spec + traceback); the sweep always finishes the rest of the grid
and reports partial results (verified by
``tests/engine/test_sweep_failures.py``).  A JSON run-manifest of task
outcomes can be written for post-mortems, and per-run checkpointing /
resume (see :mod:`repro.lifetime.checkpoint`) threads through
:class:`SweepTask` so an interrupted grid picks up where it stopped.
"""

from __future__ import annotations

import json
import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..rng import spawn_seeds
from .registry import PAPER_SYSTEMS

#: Recognized per-run seeding policies.
SEED_MODES = ("shared", "spawned")

#: Recognized failure-handling policies for :meth:`SweepRunner.run`.
FAILURE_MODES = ("raise", "collect")

#: Manifest JSON schema version.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class SweepTask:
    """One independent lifetime run (fully pickleable)."""

    system: str
    workload: str
    n_lines: int
    endurance_mean: float
    endurance_cov: float
    seed: int
    max_writes: int
    cell_type: str = "slc"
    config_overrides: tuple[tuple[str, object], ...] = ()
    #: Root checkpoint directory of the sweep; each task checkpoints
    #: into a ``<workload>-<system>`` subdirectory.  None disables
    #: checkpointing and telemetry for the run.
    checkpoint_dir: str | None = None
    #: Writes between checkpoints (only used when ``checkpoint_dir`` is
    #: set; 0 means the simulator default).
    checkpoint_interval: int = 0
    #: Resume from the run directory's latest checkpoint if one exists.
    resume: bool = False

    @property
    def run_dir(self) -> str | None:
        """This task's checkpoint/telemetry directory (None when off)."""
        if self.checkpoint_dir is None:
            return None
        return os.path.join(
            self.checkpoint_dir, f"{self.workload}-{self.system}"
        )


@dataclass(frozen=True)
class TaskFailure:
    """One task that kept failing after its retry budget."""

    task: SweepTask
    error_type: str
    message: str
    traceback: str
    attempts: int

    def __str__(self) -> str:
        return (
            f"({self.task.workload}, {self.task.system}) failed after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.message}"
        )


class SweepError(RuntimeError):
    """A sweep had failing tasks under ``failure_mode="raise"``.

    The partial results are not lost: :attr:`report` carries every
    completed sibling result plus the structured failures.
    """

    def __init__(self, report: "SweepReport") -> None:
        lines = [str(failure) for failure in report.failures]
        super().__init__(
            f"{len(report.failures)} of {report.n_tasks} sweep task(s) "
            "failed:\n  " + "\n  ".join(lines)
        )
        self.report = report


@dataclass
class SweepReport:
    """Outcome of one sweep: partial results plus structured failures."""

    results: dict[str, dict[str, object]]
    failures: list[TaskFailure]
    n_tasks: int

    @property
    def ok(self) -> bool:
        """True when every task of the grid completed."""
        return not self.failures

    def raise_if_failed(self) -> None:
        """Raise :class:`SweepError` when any task failed."""
        if self.failures:
            raise SweepError(self)

    def to_manifest(self, seed: int | None = None) -> dict:
        """The JSON-serializable run-manifest of this sweep."""
        completed = [
            {
                "workload": result.workload,
                "system": system,
                "writes_issued": result.writes_issued,
                "failed": result.failed,
                "dead_fraction": result.dead_fraction,
            }
            for by_system in self.results.values()
            for system, result in by_system.items()
        ]
        return {
            "version": MANIFEST_VERSION,
            "seed": seed,
            "n_tasks": self.n_tasks,
            "completed": completed,
            "failures": [
                {
                    "workload": failure.task.workload,
                    "system": failure.task.system,
                    "seed": failure.task.seed,
                    "error_type": failure.error_type,
                    "message": failure.message,
                    "attempts": failure.attempts,
                    "traceback": failure.traceback,
                }
                for failure in self.failures
            ],
        }


def quarantine_run_dir(run_dir: str | None, attempt: int) -> str | None:
    """Move a crashed attempt's artifacts into ``attempt-<N>/``.

    The directory-level primitive behind :func:`quarantine_attempt`,
    shared with the memory service's shard-restart path
    (:mod:`repro.service`): everything the attempt left in ``run_dir``
    (checkpoints, ``events.jsonl``) is moved into an ``attempt-<N>/``
    subdirectory -- kept for post-mortems, invisible to
    ``latest_checkpoint`` and to the retry's fresh JSONL stream.

    Returns the quarantine directory, or None when there was nothing
    to move (no directory, or the attempt died before creating one).
    """
    if run_dir is None or not os.path.isdir(run_dir):
        return None
    entries = [
        name for name in os.listdir(run_dir)
        if not name.startswith("attempt-")
    ]
    if not entries:
        return None
    quarantine = os.path.join(run_dir, f"attempt-{attempt}")
    os.makedirs(quarantine, exist_ok=True)
    for name in entries:
        os.replace(
            os.path.join(run_dir, name), os.path.join(quarantine, name)
        )
    return quarantine


def quarantine_attempt(task: SweepTask, attempt: int) -> str | None:
    """Preserve a crashed attempt's run artifacts before a retry.

    Retrying into a run directory that still holds the crashed
    attempt's files is a correctness trap: with ``resume`` set the
    retry would silently resume from the *failed* attempt's latest
    checkpoint -- state that may be exactly what made it crash --
    instead of starting clean, and its telemetry stream would be
    appended onto the crashed one.  See :func:`quarantine_run_dir` for
    what moves where.
    """
    return quarantine_run_dir(task.run_dir, attempt)


def run_task(task: SweepTask):
    """Execute one sweep task; the worker-process entry point."""
    # Imported here (not at module top) so the engine package can be
    # imported without pulling the whole lifetime stack, and so forked
    # workers resolve it against their own interpreter state.
    from ..lifetime.checkpoint import latest_checkpoint
    from ..lifetime.simulator import DEFAULT_CHECKPOINT_INTERVAL
    from ..lifetime.systems import build_simulator
    from ..lifetime.telemetry import JsonlObserver

    simulator = build_simulator(
        task.system,
        task.workload,
        n_lines=task.n_lines,
        endurance_mean=task.endurance_mean,
        endurance_cov=task.endurance_cov,
        seed=task.seed,
        cell_type=task.cell_type,
        **dict(task.config_overrides),
    )
    run_kwargs: dict = {"max_writes": task.max_writes}
    run_dir = task.run_dir
    if run_dir is not None:
        run_kwargs["checkpoint_dir"] = run_dir
        run_kwargs["checkpoint_interval"] = (
            task.checkpoint_interval or DEFAULT_CHECKPOINT_INTERVAL
        )
        run_kwargs["observers"] = (
            JsonlObserver(os.path.join(run_dir, "events.jsonl")),
        )
        if task.resume:
            run_kwargs["resume_from"] = latest_checkpoint(run_dir)
    return simulator.run(**run_kwargs)


@dataclass
class SweepRunner:
    """Fans independent (profile x system) lifetime runs across processes.

    Args:
        systems: System names (registry specs) to run per workload.
        workers: Worker processes; ``None`` uses the CPU count, ``1``
            runs serially in-process (no pool, handy for debugging).
        seed_mode: ``"shared"`` gives every run the same base seed
            (matching ``run_system_comparison``); ``"spawned"`` derives
            an independent seed per run via ``SeedSequence.spawn``.
        retries: How often a failing task is re-executed before being
            recorded as a :class:`TaskFailure` (0 = no retries).  Every
            retry starts from a *clean* run directory: whatever the
            crashed attempt left there (checkpoints, ``events.jsonl``)
            is first moved into an ``attempt-<N>/`` subdirectory by
            :func:`quarantine_attempt`, so a ``resume`` sweep never
            silently resumes a failed attempt's stale state.
        failure_mode: What :meth:`run` does about failures --
            ``"raise"`` raises a :class:`SweepError` carrying the full
            report (completed sibling results included), ``"collect"``
            returns the partial grid silently.  :meth:`run_report`
            always returns the structured report regardless.
        checkpoint_dir: Root directory for per-run checkpoints and
            JSONL telemetry (``<workload>-<system>/`` per task) and the
            sweep's ``manifest.json``.  None disables all of it.
        checkpoint_interval: Writes between per-run checkpoints (0 =
            simulator default).
        resume: Resume each task from its latest checkpoint when one
            exists under ``checkpoint_dir``.
    """

    systems: tuple[str, ...] = PAPER_SYSTEMS
    workers: int | None = None
    seed_mode: str = "shared"
    n_lines: int = 256
    endurance_mean: float = 100.0
    endurance_cov: float = 0.15
    max_writes: int = 2_000_000
    cell_type: str = "slc"
    config_overrides: dict = field(default_factory=dict)
    retries: int = 0
    failure_mode: str = "raise"
    checkpoint_dir: str | None = None
    checkpoint_interval: int = 0
    resume: bool = False

    def __post_init__(self) -> None:
        if self.seed_mode not in SEED_MODES:
            raise ValueError(
                f"seed_mode must be one of {SEED_MODES}, got {self.seed_mode!r}"
            )
        if self.failure_mode not in FAILURE_MODES:
            raise ValueError(
                f"failure_mode must be one of {FAILURE_MODES}, "
                f"got {self.failure_mode!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be positive")
        if self.retries < 0:
            raise ValueError("retries cannot be negative")

    def tasks(self, workloads, seed: int = 0) -> list[SweepTask]:
        """The task grid for a sweep, in (workload, system) order."""
        pairs = [
            (workload, system)
            for workload in workloads
            for system in self.systems
        ]
        if self.seed_mode == "spawned":
            seeds = spawn_seeds(seed, len(pairs))
        else:
            seeds = [seed] * len(pairs)
        return [
            SweepTask(
                system=system,
                workload=workload,
                n_lines=self.n_lines,
                endurance_mean=self.endurance_mean,
                endurance_cov=self.endurance_cov,
                seed=run_seed,
                max_writes=self.max_writes,
                cell_type=self.cell_type,
                config_overrides=tuple(sorted(self.config_overrides.items())),
                checkpoint_dir=self.checkpoint_dir,
                checkpoint_interval=self.checkpoint_interval,
                resume=self.resume,
            )
            for (workload, system), run_seed in zip(pairs, seeds)
        ]

    # -- execution -------------------------------------------------------

    def run_report(self, workloads, seed: int = 0) -> SweepReport:
        """Run the full grid, capturing failures instead of aborting.

        Every task is attempted (and retried up to ``retries`` times);
        the report carries results for each completed (workload,
        system) pair and a :class:`TaskFailure` per task that kept
        failing.  When ``checkpoint_dir`` is set, the sweep's
        ``manifest.json`` is (re)written there afterwards.
        """
        from ..core.window import clear_window_caches

        workloads = tuple(workloads)
        tasks = self.tasks(workloads, seed=seed)
        workers = self.workers if self.workers is not None else os.cpu_count() or 1
        workers = min(workers, len(tasks)) or 1
        try:
            if workers == 1:
                outcomes = [self._attempt_serial(task) for task in tasks]
            else:
                outcomes = self._attempt_parallel(tasks, workers)
        finally:
            # Sweep-worker teardown: the placement caches in
            # repro.core.window are module-global and would otherwise
            # outlive the sweep in this (potentially long-lived)
            # process; pool workers release theirs on process exit.
            clear_window_caches()

        merged: dict[str, dict[str, object]] = {w: {} for w in workloads}
        failures: list[TaskFailure] = []
        for task, outcome in zip(tasks, outcomes):
            if isinstance(outcome, TaskFailure):
                failures.append(outcome)
            else:
                merged[task.workload][task.system] = outcome
        report = SweepReport(
            results=merged, failures=failures, n_tasks=len(tasks)
        )
        if self.checkpoint_dir is not None:
            self.write_manifest(report, seed=seed)
        return report

    def run(self, workloads, seed: int = 0) -> dict[str, dict[str, object]]:
        """Run the full grid; returns ``{workload: {system: result}}``.

        Under the default ``failure_mode="raise"`` a failing task
        raises :class:`SweepError` *after* the rest of the grid
        finished (the exception's ``report`` holds the partial
        results); ``failure_mode="collect"`` returns the partial grid
        without raising.  Use :meth:`run_report` to always get the
        structured report.
        """
        report = self.run_report(workloads, seed=seed)
        if self.failure_mode == "raise":
            report.raise_if_failed()
        return report.results

    def run_comparison(self, workload: str, seed: int = 0) -> dict[str, object]:
        """One workload across all systems (a Figure 10 column group)."""
        return self.run((workload,), seed=seed)[workload]

    def write_manifest(self, report: SweepReport, seed: int | None = None) -> str:
        """Write the sweep run-manifest JSON; returns its path."""
        assert self.checkpoint_dir is not None
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        path = os.path.join(self.checkpoint_dir, "manifest.json")
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(report.to_manifest(seed=seed), handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    # -- attempt plumbing ------------------------------------------------

    def _attempt_serial(self, task: SweepTask):
        """Run one task in-process with the retry budget."""
        for attempt in range(1, self.retries + 2):
            if attempt > 1:
                quarantine_attempt(task, attempt - 1)
            try:
                return run_task(task)
            except Exception as error:  # noqa: BLE001 -- captured, reported
                failure = self._failure(task, error, attempt)
        return failure

    def _attempt_parallel(self, tasks: list[SweepTask], workers: int) -> list:
        """Run the grid as independent futures; failures never cascade."""
        outcomes: list = [None] * len(tasks)
        attempts = dict.fromkeys(range(len(tasks)), 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {
                pool.submit(run_task, task): index
                for index, task in enumerate(tasks)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    error = future.exception()
                    if error is None:
                        outcomes[index] = future.result()
                        continue
                    if attempts[index] <= self.retries:
                        quarantine_attempt(tasks[index], attempts[index])
                        attempts[index] += 1
                        pending[pool.submit(run_task, tasks[index])] = index
                        continue
                    outcomes[index] = self._failure(
                        tasks[index], error, attempts[index]
                    )
        return outcomes

    @staticmethod
    def _failure(task: SweepTask, error: BaseException, attempts: int) -> TaskFailure:
        return TaskFailure(
            task=task,
            error_type=type(error).__name__,
            message=str(error),
            traceback="".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ),
            attempts=attempts,
        )
