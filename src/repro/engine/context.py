"""Shared state, per-write context, and counters for the write engine.

The engine splits the write path into stages (see
:mod:`repro.engine.stages`) that communicate through two objects:

* :class:`EngineState` -- the long-lived, shared mutable state of one
  PCM region: the bank array, per-line metadata, death bookkeeping,
  wear-leveling and correction components, and the statistics counters.
  Exactly one instance exists per controller; every stage holds a
  reference to it.
* :class:`WriteContext` -- the scratch state of one in-flight write:
  the chosen storage format, payload, window hint, and accumulated
  flags.  A fresh context is created per demand/gap-move write and
  flows through the stage list.

:class:`WriteResult` and :class:`ControllerStats` live here because the
stages are what produce them; :mod:`repro.core` re-exports both under
their historical names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from ..compression import BestOfCompressor, CompressionResult
from ..core.config import SystemConfig
from ..core.heuristic import BitFlipHeuristic
from ..core.metadata import LineMetadata
from ..core.window import LINE_BYTES
from ..correction.base import CorrectionScheme
from ..correction.freep import FreePRemapper
from ..wearleveling import IntraLineWearLeveler
from .address_space import AddressRange


class WriteResult(NamedTuple):
    """Outcome of one engine write.

    A ``NamedTuple`` rather than a frozen dataclass: one is built per
    write on the simulator's hot path, and tuple construction is
    several times cheaper while keeping the same immutable,
    attribute-accessed surface.
    """

    physical: int
    compressed: bool
    size_bytes: int
    window_start: int
    flips: int
    died: bool = False
    revived: bool = False
    lost: bool = False
    heuristic_step: int = 0


@dataclass
class ControllerStats:
    """Aggregate write-path counters, maintained by the pipeline stages.

    Each counter is owned by exactly one stage (noted per group below);
    the pipeline itself owns only the top-level write accounting.  Two
    invariants follow from that ownership and are pinned by
    ``tests/core/test_stats_invariants.py``:

    * ``stored_writes == compressed_writes + uncompressed_writes``
      (definitionally -- ``stored_writes`` is derived, never counted);
    * every write either commits exactly once or is lost exactly once:
      ``demand_writes + gap_move_writes == stored_writes + lost_writes``.
    """

    # -- pipeline-level write accounting --------------------------------
    demand_writes: int = 0
    gap_move_writes: int = 0
    lost_writes: int = 0
    # -- CompressStage ---------------------------------------------------
    heuristic_steps: dict[int, int] = field(default_factory=dict)
    sc_updates: int = 0
    #: Content-addressed compression-cache counters, mirrored from the
    #: :class:`~repro.compression.cache.CachingCompressor` (both stay 0
    #: when the cache is disabled or compression is off).
    compression_cache_hits: int = 0
    compression_cache_misses: int = 0
    # -- PlacementStage --------------------------------------------------
    window_slides: int = 0
    # -- ProgramStage ----------------------------------------------------
    total_flips: int = 0
    set_flips: int = 0
    reset_flips: int = 0
    # -- EncodingStage (WIRE / restricted coset; repro.energy) -----------
    #
    # All zero when ``config.encoding == "none"`` (no encoder is built),
    # so they cannot perturb bit-identity of non-encoded runs.  Flag
    # flips are the selector/flag cells programmed alongside the data --
    # the energy model prices them at the same SET/RESET pulse costs as
    # array cells; ``encoded_words`` counts words stored under a
    # non-identity coset this run.
    encoding_flag_set_flips: int = 0
    encoding_flag_reset_flips: int = 0
    encoded_words: int = 0
    # -- CorrectionStage (commit + FREE-p remap) -------------------------
    compressed_writes: int = 0
    uncompressed_writes: int = 0
    start_pointer_updates: int = 0
    encoding_updates: int = 0
    #: Repair-state refreshes (writes landing on a line with stuck
    #: cells); the per-commit gate-energy multiplier in ``repro.energy``.
    repair_commits: int = 0
    remaps: int = 0  # FREE-p extension: blocks retired to spares
    # -- WoLFRaM PAD backend (``config.wl_backend == "wolfram"``) --------
    #
    #: Programmable-address-decoder entries rewritten: 2 per
    #: wear-leveling swap plus 1 per remap-to-spare redirect (and per
    #: collapsed chain link).  Always 0 on the Start-Gap backend, so it
    #: cannot perturb bit-identity of existing runs; the energy model
    #: prices each rewrite as a register update
    #: (:data:`repro.energy.model.PAD_ENTRY_BITS`).
    pad_table_writes: int = 0
    # -- RemapStage (death / revival) ------------------------------------
    deaths: int = 0
    revivals: int = 0
    # -- BatchScheduler (observability only) -----------------------------
    #
    # Pure scheduling telemetry: how the out-of-order batch scheduler
    # partitioned request streams into waves and why it had to cut
    # serial barriers.  These counters describe *how* writes were
    # executed, never *what* was written, so they are excluded from
    # bit-identity comparisons (see :data:`SCHEDULER_FIELDS`) -- a
    # batched run and its serial replay agree on every other field
    # while legitimately disagreeing here.
    batch_waves: int = 0
    batch_wave_ops: int = 0
    batch_wave_width_max: int = 0
    batch_collision_edges: int = 0
    barrier_gap_move: int = 0
    barrier_collision: int = 0
    barrier_ineligible_row: int = 0
    # -- DramTier (hybrid DRAM front tier; repro.tier) --------------------
    #
    # Maintained by the tier's routing logic, never by the pipeline; all
    # zero whenever no tier is configured, so they cannot perturb
    # bit-identity of bare-controller runs.  ``tier_pcm_writes_avoided``
    # counts demand writes the tier absorbed (coalesced or admitted);
    # the *net* PCM demand-write reduction over a stream is that figure
    # minus the eviction flushes (and any final drain), which the inner
    # counters account as ordinary demand writes.
    tier_hits: int = 0
    tier_coalesced_writes: int = 0
    tier_dedup_hits: int = 0
    tier_evictions: int = 0
    tier_pcm_writes_avoided: int = 0

    def count_step(self, step: int) -> None:
        """Tally one Figure 8 step for the statistics."""
        self.heuristic_steps[step] = self.heuristic_steps.get(step, 0) + 1

    @property
    def batch_wave_width_mean(self) -> float:
        """Mean scheduled ops per wave (0.0 before any batched write)."""
        if not self.batch_waves:
            return 0.0
        return self.batch_wave_ops / self.batch_waves

    @property
    def stored_writes(self) -> int:
        """Writes that landed (compressed or raw) -- the derived total."""
        return self.compressed_writes + self.uncompressed_writes

    # -- fleet aggregation ----------------------------------------------
    #
    # Every counter is an additive event count over disjoint write
    # streams, so shard stats merge exactly: the fleet view of K shards
    # is the field-wise sum of the shard views.  ``merge`` forms a
    # commutative monoid with :meth:`identity` as its identity element
    # (pinned by ``tests/engine/test_stats_merge.py``).

    @classmethod
    def identity(cls) -> "ControllerStats":
        """The merge identity: a stats record with every counter zero."""
        return cls()

    def merge(self, other: "ControllerStats") -> "ControllerStats":
        """The exact fleet aggregate of two disjoint shards' counters.

        Returns a new record; neither operand is mutated.  Associative
        and commutative, with :meth:`identity` as the identity element,
        so any reduction order over shard stats yields the same fleet
        view.
        """
        steps = dict(self.heuristic_steps)
        for step, count in other.heuristic_steps.items():
            steps[step] = steps.get(step, 0) + count
        merged = ControllerStats(heuristic_steps=steps)
        for name in self.__dataclass_fields__:
            if name == "heuristic_steps":
                continue
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        # The one non-additive counter: the widest wave any shard saw.
        # max() is associative/commutative with identity 0, so the
        # monoid laws the other fields satisfy still hold.
        merged.batch_wave_width_max = max(
            self.batch_wave_width_max, other.batch_wave_width_max
        )
        return merged

    @classmethod
    def merge_all(cls, stats) -> "ControllerStats":
        """Fold :meth:`merge` over any iterable of shard stats."""
        merged = cls.identity()
        for item in stats:
            merged = merged.merge(item)
        return merged

    def without_scheduler_telemetry(self) -> "ControllerStats":
        """A copy with the wave/barrier telemetry zeroed.

        Bit-identity comparisons between differently-executed replays
        of one stream (serial vs batched, or different chunkings) use
        this view: the scheduler counters describe execution shape and
        legitimately differ, every remaining counter must agree
        exactly.  See :data:`SCHEDULER_FIELDS`.
        """
        clone = self.merge(ControllerStats())  # copies the steps dict too
        for name in SCHEDULER_FIELDS:
            setattr(clone, name, 0)
        return clone


#: The :class:`ControllerStats` fields that describe *how* the batch
#: scheduler executed a stream rather than *what* was written.  A
#: batched run is bit-identical to its serial replay on every counter
#: except these (a serial loop has no waves or barriers), so
#: equivalence tests and state fingerprints exclude them.
SCHEDULER_FIELDS = frozenset(
    {
        "batch_waves",
        "batch_wave_ops",
        "batch_wave_width_max",
        "batch_collision_edges",
        "barrier_gap_move",
        "barrier_collision",
        "barrier_ineligible_row",
    }
)


@dataclass
class EngineState:
    """Long-lived shared state of one PCM region's write engine."""

    config: SystemConfig
    scheme: CorrectionScheme
    compressor: BestOfCompressor
    memory: object  # PCMBankArray | MLCBankArray (duck-typed line store)
    start_gap: object  # StartGap | RegionStartGap | WolframPAD
    metadata: list[LineMetadata]
    dead: np.ndarray
    repairs: list[dict[int, int]]
    death_fault_counts: dict[int, int]
    stats: ControllerStats
    n_banks: int
    capacity_lines: int
    heuristic: BitFlipHeuristic | None = None
    intra_wl: IntraLineWearLeveler | None = None
    #: Remap-to-spare pool: a FREE-p pointer-chain remapper on the
    #: default backend, a :class:`~repro.wearleveling.wolfram.
    #: PadSpareRemapper` under ``wl_backend == "wolfram"`` (duck-typed:
    #: both expose ``resolve`` / ``remap`` / ``spares_available``).
    remapper: FreePRemapper | None = None
    #: Write-energy-reducing line encoder (``repro.energy.encoders``),
    #: or ``None`` when ``config.encoding == "none"``.  Duck-typed to
    #: avoid a core->energy import cycle; the
    #: :class:`~repro.engine.stages.EncodingStage` drives it.
    encoder: object | None = None
    #: Maintained count of True entries in ``dead`` -- kept in sync by
    #: RemapStage.mark_dead/revive so ``dead_fraction`` is O(1).
    dead_count: int = 0
    #: The slice of the *global* logical address space this engine owns
    #: (see :mod:`repro.engine.address_space`).  Every index inside the
    #: engine -- metadata, bank rows, Start-Gap, stages -- is local to
    #: ``[0, len(address_range))``; the range exists so a sharded
    #: deployment can translate and label globally.  ``None`` means the
    #: engine *is* the whole space (the historical single-bank setup).
    address_range: AddressRange | None = None

    def bank_of(self, physical: int) -> int:
        """The bank a physical line belongs to (round-robin striping)."""
        return physical % self.n_banks

    def global_of(self, local: int) -> int:
        """A local logical line's global line number (identity unsharded)."""
        if self.address_range is None:
            return local
        return self.address_range.to_global(local)

    def local_of(self, line: int) -> int:
        """A global logical line's local index (identity unsharded)."""
        if self.address_range is None:
            return line
        return self.address_range.to_local(line)

    def resolve(self, physical: int) -> int:
        """Follow FREE-p remap pointers when the extension is enabled."""
        if self.remapper is None:
            return physical
        return self.remapper.resolve(physical)

    @property
    def dead_fraction(self) -> float:
        """Dead blocks as a fraction of the nominal (non-spare) capacity."""
        return self.dead_count / self.capacity_lines


@dataclass(slots=True)
class WriteContext:
    """Scratch state of one write as it flows through the pipeline.

    The compress stage fixes the storage format (``compressed``,
    ``payload``, ``size``); the placement/program/correction loop
    consumes and updates ``hint``; the remap stage may rewrite the
    format on a fallback-to-compressed rescue.  ``was_dead`` and
    ``revival_allowed`` carry the dead-block revival gate's inputs.
    """

    physical: int
    data: bytes
    revival_allowed: bool = False
    was_dead: bool = False
    compressed: bool = False
    result: CompressionResult | None = None
    payload: bytes = b""
    size: int = LINE_BYTES
    hint: int = 0
    step: int = 0
    #: Maintained fault count of the current physical line: set by the
    #: placement stage, bumped by the program stage when cells wear out,
    #: so verify/commit need no further memory lookups.
    line_faults: int = 0
