"""Bank-parallel wave programming over shared-memory PCM state.

The out-of-order scheduler's waves are sets of writes to *distinct*
physical rows, so the row kernel's state updates for different ops
never overlap -- which makes a wave embarrassingly parallel across
banks.  This module exploits that: the bank arrays (cell values, wear
counts, fault state, per-row write totals) move into POSIX shared
memory, a pool of worker processes maps them once at startup, and each
wave is split by bank (``row % n_banks``, the controller's interleave)
into disjoint row sets that the workers program concurrently through
:func:`~repro.pcm.bank.write_rows_arrays` -- the exact same kernel the
serial path runs, on the exact same memory, so results are
bit-identical by construction.

This is an opt-in throughput feature
(``CompressedPCMController.enable_bank_parallel``): per-wave fan-out
only pays off when waves are wide and cores are plentiful, and a
single-core host will see pure dispatch overhead.  Everything else --
scheduling, compression, metadata commits -- stays in the parent
process, which also keeps mutating the shared arrays directly through
its own views (serial writes, barrier flushes, reads all still work,
because the views *are* the bank state while the executor is active).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context, resource_tracker, shared_memory

import numpy as np

from ..pcm.bank import PCMBankArray, write_rows_arrays

__all__ = ["BankParallelExecutor"]

#: Bank-state arrays mirrored into shared memory, in the positional
#: argument order of :func:`~repro.pcm.bank.write_rows_arrays`.
_STATE_ARRAYS = (
    "stored", "counts", "endurance", "faulty",
    "fault_counts", "row_writes", "no_wear_limit",
)

#: Worker-process globals: the attached shared views (kernel argument
#: order) and the segments keeping their buffers alive.
_worker_state: tuple[np.ndarray, ...] | None = None
_worker_segments: list[shared_memory.SharedMemory] = []


def _attach_worker(spec) -> None:
    """Pool initializer: map the shared bank state into this process."""
    global _worker_state
    arrays = []
    for name, shape, dtype in spec:
        segment = shared_memory.SharedMemory(name=name)
        # Attaching registers the segment with the resource tracker a
        # second time (fixed by ``track=False`` in 3.13); unregister so
        # only the creating process unlinks it.
        resource_tracker.unregister(segment._name, "shared_memory")
        _worker_segments.append(segment)
        arrays.append(np.ndarray(shape, dtype=dtype, buffer=segment.buf))
    _worker_state = tuple(arrays)


def _program_rows(
    rows: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the write kernel on one bank's slice of a wave."""
    return write_rows_arrays(*_worker_state, rows, targets)


class BankParallelExecutor:
    """Dispatches each wave's row programming across a process pool.

    Construction moves ``memory``'s state arrays into shared segments
    (replacing the attributes with equal-valued shared views) and forks
    the pool; :meth:`close` copies the state back into private arrays,
    unlinks the segments, and shuts the pool down, leaving the bank
    indistinguishable from one that never went parallel.
    """

    def __init__(
        self,
        memory: PCMBankArray,
        n_banks: int,
        workers: int | None = None,
    ) -> None:
        if not isinstance(memory, PCMBankArray):
            raise ValueError(
                "bank-parallel execution needs a PCMBankArray (SLC) memory"
            )
        if n_banks < 1:
            raise ValueError("need at least one bank")
        self.memory = memory
        self.n_banks = n_banks
        self.workers = workers or max(
            1, min(n_banks, (os.cpu_count() or 1) - 1)
        )
        self._segments: list[shared_memory.SharedMemory] = []
        self._pool = None
        try:
            spec = []
            for attr in _STATE_ARRAYS:
                source = getattr(memory, attr)
                segment = shared_memory.SharedMemory(
                    create=True, size=source.nbytes
                )
                view = np.ndarray(
                    source.shape, dtype=source.dtype, buffer=segment.buf
                )
                view[...] = source
                setattr(memory, attr, view)
                self._segments.append(segment)
                spec.append((segment.name, source.shape, source.dtype))
            # Fork-based pool: workers attach the segments by name in
            # their initializer, so the parent's later array contents
            # (not the fork-time snapshot) are always what they program.
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context("fork"),
                initializer=_attach_worker,
                initargs=(spec,),
            )
        except BaseException:
            # Partial construction must not leak OS-level segments (nor
            # leave the bank pointing at soon-unlinked shared buffers);
            # the construction failure outranks any teardown error.
            try:
                self.close()
            except Exception:
                pass
            raise

    def write_rows(
        self, rows: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One wave: partition by bank, program concurrently, reassemble.

        Drop-in for :meth:`PCMBankArray.write_rows` (the scheduler
        passes this to ``WritePipeline.program_rows``).  Rows are
        distinct within a wave, and banks partition them into disjoint
        sets touching disjoint slices of every shared array, so the
        concurrent kernels are race-free.
        """
        if self._pool is None:
            raise RuntimeError("bank-parallel executor is closed")
        banks = rows % self.n_banks
        members = [
            np.flatnonzero(banks == bank) for bank in np.unique(banks)
        ]
        if len(members) == 1:
            # Whole wave in one bank: no fan-out to win, skip the IPC.
            return self.memory.write_rows(rows, targets)
        futures = [
            self._pool.submit(_program_rows, rows[index], targets[index])
            for index in members
        ]
        programmed = np.zeros(len(rows), dtype=np.int64)
        set_flips = np.zeros(len(rows), dtype=np.int64)
        worn = np.zeros(len(rows), dtype=np.int64)
        for index, future in zip(members, futures):
            bank_programmed, bank_sets, bank_worn = future.result()
            programmed[index] = bank_programmed
            set_flips[index] = bank_sets
            worn[index] = bank_worn
        return programmed, set_flips, worn

    def close(self) -> None:
        """Tear down: privatize the state, free the shared segments.

        Idempotent and exception-safe: a failure while releasing one
        segment never strands the others (every remaining segment is
        still closed and unlinked, and the first error re-raised once
        teardown finishes), and calling again after any outcome --
        including a partially-failed ``__init__`` -- is a no-op.
        """
        pool, self._pool = self._pool, None
        segments, self._segments = self._segments, []
        error: BaseException | None = None
        try:
            if pool is not None:
                pool.shutdown(wait=True)
        finally:
            # Privatize before unlinking: the bank must never be left
            # referencing a shared buffer that is about to disappear.
            for attr in _STATE_ARRAYS:
                held = getattr(self.memory, attr)
                if held.base is not None:
                    setattr(self.memory, attr, np.array(held))
            for segment in segments:
                for release in (segment.close, segment.unlink):
                    try:
                        release()
                    except BaseException as exc:
                        if error is None:
                            error = exc
        if error is not None:
            raise error

    def __enter__(self) -> "BankParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
