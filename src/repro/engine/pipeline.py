"""The write pipeline: sequences the stages over one write (Figure 4).

The pipeline owns the control flow the 2017 controller had fused into
one method: the place -> program -> verify loop that absorbs cells
wearing out *during* a write, the fallback-to-compressed rescue, the
FREE-p remap-to-spare, and death/revival bookkeeping.  The stages own
the mechanisms; the pipeline owns only their sequencing, so swapping a
stage (a different compressor, correction scheme, or wear-leveler)
never touches this file.
"""

from __future__ import annotations

import numpy as np

from ..core.window import (
    LINE_BYTES,
    _payload_bits,
    _window_bit_indices,
)
from ..pcm import FaultMode
from .context import EngineState, WriteContext, WriteResult
from .stages import (
    CompressStage,
    CorrectionStage,
    EncodingStage,
    PlacementStage,
    ProgramStage,
    RemapStage,
    Stage,
)


class WritePipeline:
    """Runs one write through compress/placement/program/correction/remap."""

    def __init__(
        self,
        state: EngineState,
        compress: CompressStage | None = None,
        placement: PlacementStage | None = None,
        program: ProgramStage | None = None,
        correction: CorrectionStage | None = None,
        remap: RemapStage | None = None,
        invariants: tuple = (),
    ) -> None:
        self.state = state
        self.compress = compress or CompressStage(state)
        self.placement = placement or PlacementStage(state)
        self.program = program or ProgramStage(state)
        # The program stage owns its encoding sub-stage; surface it so
        # the stage listing and the controller's read path reach it.
        self.encoding: EncodingStage = self.program.encoding
        self.correction = correction or CorrectionStage(state)
        self.remap = remap or RemapStage(state)
        #: Debug-mode checkers (see :mod:`repro.validate.invariants`):
        #: each is called as ``checker.after_write(state, result)`` on
        #: every completed write.  Empty (the default) costs nothing.
        self.invariants = tuple(invariants)

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The stage list in execution order."""
        return (
            self.compress,
            self.placement,
            self.encoding,
            self.program,
            self.correction,
            self.remap,
        )

    def describe(self) -> list[str]:
        """One human-readable line per stage (``systems`` listing)."""
        return [stage.describe() for stage in self.stages]

    # -- write path ------------------------------------------------------

    def write_line(
        self, physical: int, data: bytes, revival_allowed: bool = False
    ) -> WriteResult:
        """Run one write-back through the full stage sequence."""
        result = self._run_write(physical, data, revival_allowed)
        for checker in self.invariants:
            checker.after_write(self.state, result)
        return result

    def _run_write(
        self, physical: int, data: bytes, revival_allowed: bool
    ) -> WriteResult:
        state = self.state
        if self.remap.blocked(physical, revival_allowed):
            state.stats.lost_writes += 1
            return WriteResult(
                physical=physical, compressed=False, size_bytes=LINE_BYTES,
                window_start=0, flips=0, lost=True,
            )

        was_dead = bool(state.dead[physical])
        ctx = WriteContext(
            physical=physical, data=data,
            revival_allowed=revival_allowed, was_dead=was_dead,
        )
        self.compress.run(ctx)
        ctx.hint = self.placement.initial_hint(physical, ctx)

        result = self._attempt(physical, ctx)
        if result.died:
            return result
        if was_dead:
            self.remap.revive(physical)
            result = result._replace(revived=True)
        self.placement.note_commit(physical)
        return result

    # -- batched write path ----------------------------------------------

    def step_batch(
        self, requests: list[tuple[int, bytes]]
    ) -> list[WriteResult]:
        """Run K write-backs to *distinct* physical lines as one batch.

        Bit-identical to calling :meth:`write_line` on each request in
        order (``revival_allowed=False``, the demand-write setting):
        the compress stage runs once over the whole batch (one cache
        gather), then rows whose line provably cannot exceed the
        correction scheme's deterministic capability this write -- the
        overwhelmingly common case -- take a vectorized
        place/program/commit across the ``(K, 512)`` cell matrix, with
        one differential-write scatter into the bank arrays.  Rows that
        fail the precheck (or hit the rescue/remap/death machinery) run
        the ordinary serial loop at their in-batch position, so every
        cross-write ordering effect (cache LRU, intra-line rotation,
        FREE-p spare consumption) is preserved exactly.
        """
        if not requests:
            return []
        state = self.state
        memory = state.memory
        if (
            self.invariants
            or state.encoder is not None
            or len(requests) < 2
            or not hasattr(memory, "write_rows")
            or memory.fault_mode is not FaultMode.STUCK_AT_LAST
        ):
            # Invariant checkers observe per-write state; line encoders
            # keep per-write selector state the row kernel does not
            # model; MLC arrays and probabilistic fault modes have no
            # vectorized row kernel.
            return [
                self.write_line(physical, data) for physical, data in requests
            ]
        seen: set[int] = set()
        for physical, _ in requests:
            if physical in seen:
                raise ValueError(
                    "step_batch requests must target distinct physical lines"
                )
            seen.add(physical)

        results: list[WriteResult | None] = [None] * len(requests)
        live: list[int] = []
        ctxs: list[WriteContext] = []
        for index, (physical, data) in enumerate(requests):
            if self.remap.blocked(physical, False):
                state.stats.lost_writes += 1
                results[index] = WriteResult(
                    physical=physical, compressed=False,
                    size_bytes=LINE_BYTES, window_start=0, flips=0, lost=True,
                )
            else:
                live.append(index)
                ctxs.append(WriteContext(physical=physical, data=data))
        if not ctxs:
            return results

        self.compress.run_batch(ctxs)

        # A row is batch-eligible when even the worst case -- every
        # at-risk cell (within 1 program of its endurance limit, or
        # already stuck) failing inside the window -- stays within the
        # scheme's deterministic capability: placement's O(1) fast path
        # applies and post-write verification cannot fail, so the write
        # is guaranteed to commit in one program.  The bank's O(K)
        # per-row wear bound usually proves every row has zero at-risk
        # cells; only once a row nears its weakest cell's limit does
        # the exact per-cell scan run.
        rows = np.array([ctx.physical for ctx in ctxs], dtype=np.intp)
        if bool((memory.row_writes[rows] < memory.no_wear_limit[rows]).all()):
            eligible = None
        else:
            at_risk = (
                (memory.endurance[rows] - memory.counts[rows]) <= 1
            ).sum(axis=1)
            eligible = (
                at_risk <= state.scheme.deterministic_capability
            ).tolist()

        fast: list[tuple[int, WriteContext, int]] = []
        for position, index in enumerate(live):
            ctx = ctxs[position]
            if eligible is None or eligible[position]:
                ctx.hint = self.placement.initial_hint(ctx.physical, ctx)
                start = self.placement.place(ctx.physical, ctx)
                # Guaranteed commit: advance the intra-line rotation
                # now so later rows in the scan see serial-order hints.
                self.placement.note_commit(ctx.physical)
                fast.append((index, ctx, start))
            else:
                results[index] = self._finish_serial(ctx)

        if fast:
            targets, flips, new_faults = self.program_rows(
                [(ctx, start) for _, ctx, start in fast]
            )
            for j, (index, ctx, start) in enumerate(fast):
                if new_faults is not None and new_faults[j]:
                    ctx.line_faults += new_faults[j]
                self.correction.commit(ctx.physical, ctx, start, targets[j])
                results[index] = WriteResult(
                    physical=ctx.physical, compressed=ctx.compressed,
                    size_bytes=ctx.size, window_start=start,
                    flips=flips[j], heuristic_step=ctx.step,
                )
        return results

    def program_rows(
        self,
        entries: list[tuple[WriteContext, int]],
        write_rows=None,
    ) -> tuple[np.ndarray, list[int], list[int] | None]:
        """Program K writes to *distinct* rows as one vectorized pass.

        ``entries`` pairs each context (storage format already fixed)
        with its placed window start.  Overlays every payload on a copy
        of its stored row (exactly ``place_bytes``, row-wise; cells
        outside each window keep their stored value, so the
        differential write needs no update mask), issues a single
        ``write_rows`` scatter, and accounts the flip counters.
        Returns ``(targets, flips, worn)`` aligned with ``entries``;
        ``worn`` is None when no cell wore out.  Shared by
        :meth:`step_batch` and the out-of-order batch scheduler's wave
        execution; ``write_rows`` overrides the bank kernel (the
        bank-parallel executor passes its fan-out dispatch here).
        """
        state = self.state
        memory = state.memory
        rows = np.array([ctx.physical for ctx, _ in entries], dtype=np.intp)
        if all(ctx.size == LINE_BYTES for ctx, _ in entries):
            # Full-line wave (the uncompressed steady state): every row
            # is fully overwritten, so stack the payloads directly and
            # skip the stored-row gather (np.stack copies, so the
            # cached read-only bit rows stay untouched).
            targets = np.stack(
                [_payload_bits(ctx.payload) for ctx, _ in entries]
            )
        else:
            targets = memory.stored[rows]  # fancy indexing copies the rows
            for j, (ctx, start) in enumerate(entries):
                bits = _payload_bits(ctx.payload)
                size = ctx.size
                if size == LINE_BYTES:
                    targets[j] = bits
                else:
                    end = start + size
                    if end <= LINE_BYTES:
                        targets[j, start * 8 : end * 8] = bits
                    else:  # wrapping window
                        indices = _window_bit_indices(start, size, LINE_BYTES)
                        targets[j, indices] = bits
        kernel = write_rows if write_rows is not None else memory.write_rows
        programmed, set_flips, worn = kernel(rows, targets)
        total = int(programmed.sum())
        sets = int(set_flips.sum())
        stats = state.stats
        stats.total_flips += total
        stats.set_flips += sets
        stats.reset_flips += total - sets
        return targets, programmed.tolist(), (
            worn.tolist() if worn.any() else None
        )

    def _finish_serial(self, ctx: WriteContext) -> WriteResult:
        """Finish one batch row through the ordinary serial machinery.

        The context's storage format is already fixed (the batched
        compress stage ran), so this is :meth:`_run_write` minus the
        dead gate and compress call; batch rows are demand writes into
        live blocks, so there is no revival to record either.
        """
        physical = ctx.physical
        ctx.hint = self.placement.initial_hint(physical, ctx)
        result = self._attempt(physical, ctx)
        if result.died:
            return result
        self.placement.note_commit(physical)
        return result

    def _attempt(self, physical: int, ctx: WriteContext) -> WriteResult:
        """The place/program/verify loop for one physical target.

        Recurses (mirroring the write-path state machine) when the
        remap stage rewrites the context to its compressed form or the
        correction stage retires the block to a FREE-p spare.  Flips
        are accounted per target: a rescue's result reports only the
        flips spent on the line it finally landed on.
        """
        flips = 0
        for _attempt in range(LINE_BYTES):
            start = self.placement.place(physical, ctx)
            if start is None:
                break
            target, programmed = self.program.program(physical, ctx, start)
            flips += programmed
            if self.correction.verify(physical, ctx, start):
                self.correction.commit(physical, ctx, start, target)
                return WriteResult(
                    physical=physical, compressed=ctx.compressed,
                    size_bytes=ctx.size, window_start=start, flips=flips,
                    heuristic_step=ctx.step,
                )
            # New faults broke this placement; slide past it and retry.
            ctx.hint = (start + 1) % LINE_BYTES

        # No feasible placement for this payload: try the Comp+WF
        # compressed-form rescue, then a FREE-p spare, then give up.
        if self.remap.fallback_to_compressed(ctx):
            return self._attempt(physical, ctx)
        spare = self.correction.try_remap(physical)
        if spare is not None:
            return self._attempt(spare, ctx)

        self.remap.mark_dead(physical)
        return WriteResult(
            physical=physical, compressed=ctx.compressed, size_bytes=ctx.size,
            window_start=0, flips=flips, died=True, lost=True,
            heuristic_step=ctx.step,
        )
