"""The write pipeline: sequences the stages over one write (Figure 4).

The pipeline owns the control flow the 2017 controller had fused into
one method: the place -> program -> verify loop that absorbs cells
wearing out *during* a write, the fallback-to-compressed rescue, the
FREE-p remap-to-spare, and death/revival bookkeeping.  The stages own
the mechanisms; the pipeline owns only their sequencing, so swapping a
stage (a different compressor, correction scheme, or wear-leveler)
never touches this file.
"""

from __future__ import annotations

from ..core.window import LINE_BYTES
from .context import EngineState, WriteContext, WriteResult
from .stages import (
    CompressStage,
    CorrectionStage,
    PlacementStage,
    ProgramStage,
    RemapStage,
    Stage,
)


class WritePipeline:
    """Runs one write through compress/placement/program/correction/remap."""

    def __init__(
        self,
        state: EngineState,
        compress: CompressStage | None = None,
        placement: PlacementStage | None = None,
        program: ProgramStage | None = None,
        correction: CorrectionStage | None = None,
        remap: RemapStage | None = None,
        invariants: tuple = (),
    ) -> None:
        self.state = state
        self.compress = compress or CompressStage(state)
        self.placement = placement or PlacementStage(state)
        self.program = program or ProgramStage(state)
        self.correction = correction or CorrectionStage(state)
        self.remap = remap or RemapStage(state)
        #: Debug-mode checkers (see :mod:`repro.validate.invariants`):
        #: each is called as ``checker.after_write(state, result)`` on
        #: every completed write.  Empty (the default) costs nothing.
        self.invariants = tuple(invariants)

    @property
    def stages(self) -> tuple[Stage, ...]:
        """The stage list in execution order."""
        return (
            self.compress,
            self.placement,
            self.program,
            self.correction,
            self.remap,
        )

    def describe(self) -> list[str]:
        """One human-readable line per stage (``systems`` listing)."""
        return [stage.describe() for stage in self.stages]

    # -- write path ------------------------------------------------------

    def write_line(
        self, physical: int, data: bytes, revival_allowed: bool = False
    ) -> WriteResult:
        """Run one write-back through the full stage sequence."""
        result = self._run_write(physical, data, revival_allowed)
        for checker in self.invariants:
            checker.after_write(self.state, result)
        return result

    def _run_write(
        self, physical: int, data: bytes, revival_allowed: bool
    ) -> WriteResult:
        state = self.state
        if self.remap.blocked(physical, revival_allowed):
            state.stats.lost_writes += 1
            return WriteResult(
                physical=physical, compressed=False, size_bytes=LINE_BYTES,
                window_start=0, flips=0, lost=True,
            )

        was_dead = bool(state.dead[physical])
        ctx = WriteContext(
            physical=physical, data=data,
            revival_allowed=revival_allowed, was_dead=was_dead,
        )
        self.compress.run(ctx)
        ctx.hint = self.placement.initial_hint(physical, ctx)

        result = self._attempt(physical, ctx)
        if result.died:
            return result
        if was_dead:
            self.remap.revive(physical)
            result = result._replace(revived=True)
        self.placement.note_commit(physical)
        return result

    def _attempt(self, physical: int, ctx: WriteContext) -> WriteResult:
        """The place/program/verify loop for one physical target.

        Recurses (mirroring the write-path state machine) when the
        remap stage rewrites the context to its compressed form or the
        correction stage retires the block to a FREE-p spare.  Flips
        are accounted per target: a rescue's result reports only the
        flips spent on the line it finally landed on.
        """
        flips = 0
        for _attempt in range(LINE_BYTES):
            start = self.placement.place(physical, ctx)
            if start is None:
                break
            target, programmed = self.program.program(physical, ctx, start)
            flips += programmed
            if self.correction.verify(physical, ctx, start):
                self.correction.commit(physical, ctx, start, target)
                return WriteResult(
                    physical=physical, compressed=ctx.compressed,
                    size_bytes=ctx.size, window_start=start, flips=flips,
                    heuristic_step=ctx.step,
                )
            # New faults broke this placement; slide past it and retry.
            ctx.hint = (start + 1) % LINE_BYTES

        # No feasible placement for this payload: try the Comp+WF
        # compressed-form rescue, then a FREE-p spare, then give up.
        if self.remap.fallback_to_compressed(ctx):
            return self._attempt(physical, ctx)
        spare = self.correction.try_remap(physical)
        if spare is not None:
            return self._attempt(spare, ctx)

        self.remap.mark_dead(physical)
        return WriteResult(
            physical=physical, compressed=ctx.compressed, size_bytes=ctx.size,
            window_start=0, flips=flips, died=True, lost=True,
            heuristic_step=ctx.step,
        )
