"""The composable write-path engine (refactor of the 2017 controller).

Three layers:

* **Stages + pipeline** -- the write path as explicit, swappable
  stages (compress / placement / program / correction / remap) over a
  shared :class:`EngineState`, sequenced by :class:`WritePipeline`.
  :class:`repro.core.CompressedPCMController` is a thin facade over
  this machinery with identical semantics.
* **Registry** -- declarative, serializable :class:`SystemSpec`\\ s for
  the paper's evaluated systems and the repo's ablation/extension
  variants, consumed uniformly by ``lifetime``, the CLI, benchmarks
  and examples.
* **SweepRunner** -- fans independent (profile x system) lifetime runs
  out across processes with per-run seeded generators.
"""

from .address_space import AddressRange, ShardMap, shard_seeds
from .context import ControllerStats, EngineState, WriteContext, WriteResult
from .pipeline import WritePipeline
from .registry import (
    PAPER_SYSTEMS,
    SystemSpec,
    get_system,
    list_systems,
    register_system,
    resolve_config,
    system_names,
)
from .stages import (
    CompressStage,
    CorrectionStage,
    EncodingStage,
    PlacementStage,
    ProgramStage,
    RemapStage,
    Stage,
)
from .sweep import (
    FAILURE_MODES,
    SEED_MODES,
    SweepError,
    SweepReport,
    SweepRunner,
    SweepTask,
    TaskFailure,
    quarantine_attempt,
    quarantine_run_dir,
    run_task,
)

__all__ = [
    "FAILURE_MODES",
    "PAPER_SYSTEMS",
    "SEED_MODES",
    "AddressRange",
    "CompressStage",
    "ControllerStats",
    "CorrectionStage",
    "EncodingStage",
    "EngineState",
    "PlacementStage",
    "ProgramStage",
    "RemapStage",
    "ShardMap",
    "Stage",
    "SweepError",
    "SweepReport",
    "SweepRunner",
    "SweepTask",
    "SystemSpec",
    "TaskFailure",
    "WriteContext",
    "WritePipeline",
    "WriteResult",
    "get_system",
    "list_systems",
    "quarantine_attempt",
    "quarantine_run_dir",
    "register_system",
    "resolve_config",
    "run_task",
    "shard_seeds",
    "system_names",
]
